"""Beyond k-NN: range queries and sub-trajectory search on TrajTree.

The paper closes by noting TrajTree "can potentially be utilized for other
trajectory operations" (Sec. VI).  This example exercises the two
extensions the library ships:

* **range queries** — all trips within an EDwP radius of a probe trip
  (e.g. "find every past trip that essentially took this route");
* **sub-trajectory search** — trips *containing* a piece similar to the
  probe (EDwPsub, Eq. 6), e.g. "who drove through this corridor, whatever
  else their trip did".

Run:  python examples/advanced_queries.py
"""

from repro import TrajTree
from repro.datasets import generate_beijing
from repro.index.trajtree import TrajTreeStats


def main() -> None:
    db = generate_beijing(100, seed=21)
    tree = TrajTree(db, normalized=True, seed=3)
    print(f"indexed {len(tree)} taxi trips; storage: {tree.storage_summary()}")

    # --- 1. Range query ----------------------------------------------------
    probe = db[10]
    k5 = tree.knn(probe, 6)
    radius = k5[-1][1]          # radius reaching the 5 nearest other trips
    stats = TrajTreeStats()
    within = tree.range_query(probe, radius, stats=stats)
    print(f"\ntrips within EDwP_avg <= {radius:.1f} of trip #10: "
          f"{[tid for tid, _ in within]}")
    print(f"  ({stats.exact_computations} exact evaluations, "
          f"{stats.nodes_pruned} subtrees pruned)")
    assert within == tree.range_query_scan(probe, radius)

    # --- 2. Sub-trajectory search -------------------------------------------
    # cut the middle third out of a database trip and look for its source
    source = db[42]
    third = len(source) // 3
    corridor = source.subtrajectory(third, 2 * third + 1)
    print(f"\nprobe corridor: points {third}..{2 * third} of trip #42 "
          f"({len(corridor)} samples)")

    hits = tree.subtrajectory_knn(corridor, 5)
    print("trips containing the most similar sub-trajectory (EDwPsub):")
    for tid, dist in hits:
        marker = "  <-- the source trip" if tid == 42 else ""
        print(f"  trip #{tid:<4d} EDwPsub = {dist:10.2f}{marker}")
    assert hits[0][0] == 42

    # contrast: global EDwP ranks the source much lower, because the
    # corridor must then pay for everything the full trip does besides
    global_rank = [tid for tid, _ in tree.knn(corridor, len(tree))].index(42)
    print(f"\nunder *global* EDwP the source trip ranks #{global_rank + 1}; "
          "sub-trajectory alignment is what finds it")


if __name__ == "__main__":
    main()
