"""Quickstart: EDwP distances and TrajTree retrieval in two minutes.

Run:  python examples/quickstart.py
"""

from repro import Trajectory, TrajTree, edwp, edwp_avg, edwp_alignment


def main() -> None:
    # --- 1. Build trajectories: (x, y, t) points -------------------------
    # The pair from the paper's Fig. 2(a): a cab driving north on x=0,
    # sampled sparsely, versus a parallel cab on x=2, sampled densely.
    t1 = Trajectory([(0, 0, 0), (0, 10, 30), (3, 17, 51)])
    t2 = Trajectory([(2, 0, 0), (2, 7, 14), (2, 10, 20)])

    print("EDwP(T1, T2)      =", round(edwp(t1, t2), 2))
    print("EDwP_avg(T1, T2)  =", round(edwp_avg(t1, t2), 4),
          " (length-normalized, Eq. 4)")

    # --- 2. Inspect the optimal edit script ------------------------------
    # Projections insert points dynamically: the first edit splits T1's
    # first segment at (0, 7) — the projection of T2's sample (2, 7).
    print("\nOptimal edit script:")
    for edit in edwp_alignment(t1, t2).edits:
        print(f"  {edit.op:4s}  {edit.piece1}  <->  {edit.piece2}"
              f"   cost={edit.cost:.2f}")

    # --- 3. Sampling-rate robustness in one line -------------------------
    # Densifying a trajectory (same path, more samples) leaves EDwP at ~0;
    # point-based metrics see a different object.
    dense_t1 = t1.with_point_inserted(0, 0.3).with_point_inserted(1, 0.6)
    print("\nEDwP(T1, densified T1) =", round(edwp(t1, dense_t1), 6))

    from repro.baselines import edr
    print("EDR (eps=1) on the same pair =", edr(t1, dense_t1, eps=1.0),
          " (counts the extra samples as edits)")

    # --- 4. Index a small fleet and query it ------------------------------
    from repro.datasets import generate_beijing

    db = generate_beijing(60, seed=7)          # synthetic taxi trips
    tree = TrajTree(db, normalized=True, seed=0)
    query = generate_beijing(1, seed=999)[0]   # an unseen trip

    print(f"\nIndexed {len(tree)} trips "
          f"(height {tree.height()}, {tree.node_count()} nodes)")
    print("5-NN of the query trip (exact, Alg. 2):")
    for tid, dist in tree.knn(query, k=5):
        print(f"  trip #{tid:<3d} EDwP_avg = {dist:.4f}")


if __name__ == "__main__":
    main()
