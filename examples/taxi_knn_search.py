"""Taxi fleet analytics: raw GPS streams -> trips -> indexed k-NN search.

The workload the paper's introduction motivates: a fleet of cabs with
heterogeneous GPS settings produces raw streams with parked dwells and
signal gaps.  This example runs the full production pipeline:

  1. split raw streams into single trips (the paper's 15-minute rule),
  2. bulk-load a TrajTree over the trips,
  3. answer "which past trips most resemble this one?" queries exactly,
  4. compare the index's work against a sequential scan.

Choosing a backend: this example runs EDwP on the vectorized numpy kernel
(``backend="numpy"`` below) because index workloads are batch-shaped —
leaf refinement and the sequential-scan comparison evaluate one query
against many trips, which the lockstep kernel computes an order of
magnitude faster.  The pure-Python backend (the default) gives identical
results and is the better choice for single distances on short
trajectories or when auditing the DP against the paper; see DESIGN.md,
"Dual-backend EDwP kernels".

Run:  python examples/taxi_knn_search.py
"""

import time

from repro import TrajTree
from repro.datasets import generate_beijing, generate_cab_streams, split_trips
from repro.index.trajtree import TrajTreeStats


def main() -> None:
    # --- 1. Raw streams and trip splitting --------------------------------
    streams = generate_cab_streams(10, trips_per_cab=4, seed=42)
    trips = [t for t in split_trips(streams) if t.num_segments >= 3]
    print(f"{len(streams)} raw cab streams -> {len(trips)} single trips "
          f"after the 15-minute splitter")
    print(f"  trip sizes: {min(len(t) for t in trips)}"
          f"..{max(len(t) for t in trips)} samples")

    # Pad the corpus with additional single trips so the index has work.
    extra = generate_beijing(90, seed=43)
    for t in extra:
        t.traj_id = None
    corpus = trips + extra
    for i, t in enumerate(corpus):
        t.traj_id = i

    # --- 2. Index (exact distances on the vectorized numpy backend) -------
    start = time.perf_counter()
    tree = TrajTree(corpus, normalized=True, seed=1, backend="numpy")
    print(f"\nTrajTree over {len(tree)} trips built in "
          f"{time.perf_counter() - start:.1f}s "
          f"(height {tree.height()}, branching {tree.branching_factors()[:3]}...)")

    # --- 3. Query: find trips similar to a fresh (unindexed) one ----------
    query = generate_beijing(1, seed=4242)[0]
    stats = TrajTreeStats()
    start = time.perf_counter()
    neighbours = tree.knn(query, k=5, stats=stats)
    tree_secs = time.perf_counter() - start

    print("\n5 most similar past trips:")
    for tid, dist in neighbours:
        trip = tree.get(tid)
        print(f"  trip #{tid:<4d} EDwP_avg={dist:.4f} "
              f"({len(trip)} samples, {trip.length / 1000:.1f} km)")

    # --- 4. Index vs sequential scan ---------------------------------------
    start = time.perf_counter()
    scan = tree.knn_scan(query, k=5)
    scan_secs = time.perf_counter() - start
    assert [t for t, _ in neighbours] == [t for t, _ in scan]

    print(f"\nexact EDwP evaluations: {stats.exact_computations} of "
          f"{len(tree)} trips ({stats.nodes_pruned} subtrees pruned)")
    print(f"query time: index {tree_secs:.2f}s vs scan {scan_secs:.2f}s")

    # --- 5. The index stays correct under updates --------------------------
    new_id = tree.insert(generate_beijing(1, seed=777)[0])
    tree.delete(neighbours[-1][0])
    check = tree.knn(query, k=5)
    assert [t for t, _ in check] == [t for t, _ in tree.knn_scan(query, k=5)]
    print(f"\ninserted trip #{new_id} and deleted trip "
          f"#{neighbours[-1][0]}; k-NN still exact "
          f"(rebuild recommended: {tree.needs_rebuild()})")


if __name__ == "__main__":
    main()
