"""Gesture recognition: classify sign-language trajectories by 1-NN.

The paper's Fig. 5(a) scenario: hand-movement trajectories labelled with
the sign they denote, recorded at inconsistent sampling rates.  A 1-NN
classifier is only as good as its distance function — this example compares
EDwP against EDR, LCSS, DISSIM and MA on the same data.

Run:  python examples/sign_classification.py
"""

from repro.datasets import generate_asl
from repro.eval.classification import cross_validated_accuracy, nn_classify
from repro.experiments.common import classification_metrics


def main() -> None:
    # --- 1. A labelled corpus of sign trajectories -------------------------
    num_classes = 10
    dataset = generate_asl(num_classes=num_classes, instances_per_class=8,
                           seed=11)
    sizes = sorted({len(t) for t in dataset})
    print(f"{len(dataset)} instances of {num_classes} signs; sample counts "
          f"range {sizes[0]}..{sizes[-1]} (inconsistent capture rates)")

    # --- 2. Classify one held-out instance --------------------------------
    metrics = classification_metrics(dataset)
    probe = dataset[0]
    references = dataset[1:]
    predicted = nn_classify(probe, references, metrics["EDwP"])
    print(f"\nprobe instance of {probe.label!r} -> EDwP 1-NN predicts "
          f"{predicted!r}")

    # --- 3. Cross-validated accuracy per distance function ----------------
    print(f"\n5-fold cross-validated 1-NN accuracy ({num_classes} classes):")
    scores = {}
    for name, dist in metrics.items():
        scores[name] = cross_validated_accuracy(dataset, dist, folds=5,
                                                seed=0)
    width = max(len(n) for n in scores)
    for name, acc in sorted(scores.items(), key=lambda kv: -kv[1]):
        bar = "#" * int(acc * 40)
        print(f"  {name:<{width}}  {acc:6.1%}  {bar}")

    best = max(scores, key=scores.get)
    print(f"\nbest distance function on this corpus: {best}")


if __name__ == "__main__":
    main()
