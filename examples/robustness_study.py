"""Sampling-noise robustness study: who keeps their neighbourhoods?

Reproduces the paper's Sec. V-C measurement loop at demo scale: take a
clean taxi corpus D1, inject each of the four noise protocols to get D2,
and check how much each distance function's k-NN answers change (Spearman
rank correlation of the two k-NN lists; 1.0 = unaffected by the noise).

Run:  python examples/robustness_study.py
"""

from repro.eval.robustness import NOISE_PROTOCOLS, robustness_experiment
from repro.experiments.common import beijing_database, robustness_metrics

PROTOCOL_LABELS = {
    "inter": "inter-trajectory sampling variance (Fig. 5b/c)",
    "intra": "intra-trajectory sampling variance (Fig. 5d/e)",
    "phase": "sampling phase variation          (Fig. 5f/g)",
    "perturb": "location perturbation             (Fig. 5h/i)",
}


def main() -> None:
    clean = beijing_database(50, seed=5)
    metrics = robustness_metrics(clean)
    print(f"clean corpus: {len(clean)} synthetic taxi trips; "
          f"metrics: {', '.join(metrics)}")
    print("k-NN rank correlation between clean and noised databases "
          "(k=5, noise on 80% of segments/points):\n")

    names = list(metrics)
    header = f"{'protocol':<12}" + "".join(f"{n:>9}" for n in names)
    print(header)
    print("-" * len(header))
    rows = {}
    for protocol in NOISE_PROTOCOLS:
        result = robustness_experiment(
            clean, metrics, protocol, k=5, noise_fraction=0.8,
            num_queries=4, seed=1,
        )
        rows[protocol] = result.correlations
        row = f"{protocol:<12}"
        for n in names:
            row += f"{result.correlations[n]:>9.3f}"
        print(row)

    sampling = ["inter", "intra", "phase"]
    mean_over_sampling = {
        n: sum(rows[p][n] for p in sampling) / len(sampling) for n in names
    }
    best = max(mean_over_sampling, key=mean_over_sampling.get)
    print(f"\nmean correlation over the three sampling protocols:")
    for n, v in sorted(mean_over_sampling.items(), key=lambda kv: -kv[1]):
        print(f"  {n:<6} {v:.3f}")
    print(f"\nmost robust to sampling noise: {best} "
          "(the paper's Table I predicts EDwP)")
    print("note: at demo scale the integer-valued threshold metrics can "
          "look stable simply because coarse distances rarely reorder; "
          "the benchmark harness runs the full sweeps of Figs. 5(b)-(i).")


if __name__ == "__main__":
    main()
