#!/usr/bin/env python
"""Fail if source docstrings/comments reference repo-root docs that don't exist.

Docstrings throughout the package point the reader at repo-root markdown
files ("see DESIGN.md", "the benchmark matrix in README.md").  Those
references have a habit of outliving — or predating — the files they name;
this check walks every python file under the scanned directories, collects
every capitalized markdown-file token, and fails unless a file of that name
exists at the repository root.

Usage:  python tools/check_doc_links.py
Exits non-zero listing each dangling reference with its file and line.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Directories whose python files promise repo-root docs to their readers.
SCAN_DIRS = ("src", "tests", "benchmarks", "examples", "tools")

_MD_TOKEN = re.compile(r"\b([A-Z][A-Za-z0-9_]*\.md)\b")


def dangling_references() -> list[tuple[Path, int, str]]:
    """All ``(file, line_number, token)`` referencing a missing root doc."""
    missing: list[tuple[Path, int, str]] = []
    for directory in SCAN_DIRS:
        for path in sorted((REPO_ROOT / directory).rglob("*.py")):
            text = path.read_text(encoding="utf-8")
            for lineno, line in enumerate(text.splitlines(), start=1):
                for token in _MD_TOKEN.findall(line):
                    if not (REPO_ROOT / token).is_file():
                        missing.append((path.relative_to(REPO_ROOT), lineno, token))
    return missing


def main() -> int:
    missing = dangling_references()
    if missing:
        print("dangling repo-root doc references:", file=sys.stderr)
        for path, lineno, token in missing:
            print(f"  {path}:{lineno}: {token}", file=sys.stderr)
        return 1
    print(f"doc links OK ({', '.join(SCAN_DIRS)} -> repo root)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
