"""Tests for the synthetic workload generators (DESIGN.md substitutions)."""

import numpy as np
import pytest

from repro.core import Trajectory, edwp_avg
from repro.datasets import (
    ASLConfig,
    BeijingConfig,
    generate_asl,
    generate_beijing,
    generate_cab_streams,
    sign_names,
)


class TestBeijing:
    def test_count_and_ids(self):
        db = generate_beijing(15, seed=1)
        assert len(db) == 15
        assert [t.traj_id for t in db] == list(range(15))

    def test_deterministic(self):
        a = generate_beijing(10, seed=3)
        b = generate_beijing(10, seed=3)
        for ta, tb in zip(a, b):
            assert np.array_equal(ta.data, tb.data)

    def test_seed_changes_data(self):
        a = generate_beijing(5, seed=1)
        b = generate_beijing(5, seed=2)
        assert not np.array_equal(a[0].data, b[0].data)

    def test_timestamps_increase(self):
        for t in generate_beijing(10, seed=4):
            assert np.all(np.diff(t.times()) > 0)

    def test_within_extent(self):
        cfg = BeijingConfig()
        margin = 5 * cfg.jitter
        for t in generate_beijing(10, seed=5, config=cfg):
            xs, ys = t.data[:, 0], t.data[:, 1]
            assert xs.min() > -margin and xs.max() < cfg.extent + margin
            assert ys.min() > -margin and ys.max() < cfg.extent + margin

    def test_sampling_rates_vary_across_trips(self):
        """The paper's motivating nuisance: heterogeneous device rates."""
        db = generate_beijing(20, seed=6)
        rates = [float(np.diff(t.times()).mean()) for t in db if len(t) > 2]
        assert max(rates) / min(rates) > 2.0

    def test_route_families_create_near_neighbours(self):
        db = generate_beijing(24, seed=7)
        # under route families, some pair must be much closer than the
        # typical pair
        import itertools
        dists = [edwp_avg(a, b) for a, b in itertools.combinations(db[:12], 2)]
        assert min(dists) < 0.2 * np.median(dists)

    def test_independent_mode(self):
        cfg = BeijingConfig(route_families=10 ** 9)
        db = generate_beijing(8, seed=8, config=cfg)
        assert len(db) == 8


class TestCabStreams:
    def test_streams_have_dwells_or_gaps(self):
        streams = generate_cab_streams(2, trips_per_cab=3, seed=1)
        assert len(streams) == 2
        # raw streams span hours and contain many points
        for s in streams:
            assert s.duration > 1800.0
            assert len(s) > 20

    def test_splitting_yields_multiple_trips(self):
        from repro.datasets import split_trips

        streams = generate_cab_streams(3, trips_per_cab=4, seed=2)
        trips = split_trips(streams)
        assert len(trips) > len(streams)
        for t in trips:
            assert len(t) >= 2


class TestASL:
    def test_labels_and_counts(self):
        ds = generate_asl(num_classes=4, instances_per_class=5, seed=1)
        assert len(ds) == 20
        labels = {t.label for t in ds}
        assert labels == set(sign_names(4))
        for name in sign_names(4):
            assert sum(1 for t in ds if t.label == name) == 5

    def test_sign_names_stable(self):
        assert sign_names(3) == ["sign_000", "sign_001", "sign_002"]

    def test_class_count_validation(self):
        with pytest.raises(ValueError):
            generate_asl(num_classes=0)
        with pytest.raises(ValueError):
            generate_asl(num_classes=99)

    def test_deterministic(self):
        a = generate_asl(num_classes=3, instances_per_class=2, seed=9)
        b = generate_asl(num_classes=3, instances_per_class=2, seed=9)
        for ta, tb in zip(a, b):
            assert np.array_equal(ta.data, tb.data)

    def test_variable_sampling_rates(self):
        """Instances of one sign get different sample counts — the paper's
        sampling nuisance, baked into the clean workload."""
        cfg = ASLConfig()
        ds = generate_asl(num_classes=2, instances_per_class=10, seed=2,
                          config=cfg)
        counts = {len(t) for t in ds}
        assert len(counts) > 3
        assert min(counts) >= cfg.min_points
        assert max(counts) <= cfg.max_points

    def test_intra_class_tighter_than_inter(self):
        """1-NN learnability: same-class instances are closer on average."""
        ds = generate_asl(num_classes=6, instances_per_class=4, seed=3)
        by_label = {}
        for t in ds:
            by_label.setdefault(t.label, []).append(t)
        intra, inter = [], []
        labels = list(by_label)
        for lab in labels[:3]:
            group = by_label[lab]
            intra.append(edwp_avg(group[0], group[1]))
            other = by_label[labels[(labels.index(lab) + 1) % len(labels)]]
            inter.append(edwp_avg(group[0], other[0]))
        assert np.mean(intra) < np.mean(inter)
