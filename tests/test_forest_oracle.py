"""Forest-vs-tree oracle suite (ISSUE 7).

The sharded :class:`~repro.index.forest.TrajForest` claims *exactness*:
for any shard count and either assignment scheme, every query — knn,
range, subtrajectory-knn, and the batched ``query_many`` — returns ids,
distances and ordering bit-identical to a single
:class:`~repro.index.TrajTree` over the unsharded dataset, under the
library-wide ascending ``(distance, traj_id)`` tie order.  These tests
pin that claim over the shard-count × k matrix, both schemes, the
store-backed build paths, and the forest served through
:class:`~repro.service.QueryService` under concurrency (reusing the
serial-oracle pattern of ``tests/test_service_concurrency.py``).
"""

import asyncio
import random

import pytest

from repro.datasets import generate_beijing
from repro.index import (
    SHARD_SCHEMES,
    TrajForest,
    TrajTree,
    assign_shards,
    ensure_query_index,
)
from repro.service import QueryRequest, QueryService, ServiceConfig
from repro.store import ColumnarStore

from test_service_concurrency import random_requests, serial_oracle

DB_SIZE = 36
SHARD_COUNTS = (1, 2, 4, 7)
KS = (1, 5, 20)


@pytest.fixture(scope="module")
def db():
    return generate_beijing(DB_SIZE, seed=7)


@pytest.fixture(scope="module")
def tree(db):
    """The single-tree oracle over the unsharded dataset."""
    return TrajTree(db, normalized=True, num_vps=6, seed=7, backend="numpy")


@pytest.fixture(scope="module")
def queries(db):
    return generate_beijing(6, seed=1007)


@pytest.fixture(scope="module")
def forests(db):
    """One forest per shard count (module-scoped: builds are the cost)."""
    return {
        shards: TrajForest(db, num_shards=shards, normalized=True,
                           num_vps=6, seed=7, backend="numpy")
        for shards in SHARD_COUNTS
    }


# ---------------------------------------------------------------------- #
# the shard-count × k matrix
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("k", KS)
def test_knn_matches_single_tree(forests, tree, queries, shards, k):
    """Forest knn == tree knn: same ids, same distances (bit-identical),
    same order, for every shard count and k — including k past the
    dataset (k=20 per shard of ≤36/7 trajectories exercises short
    per-shard lists in the merge)."""
    forest = forests[shards]
    for query in queries:
        assert forest.knn(query, k) == tree.knn(query, k)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_range_matches_single_tree(forests, tree, queries, shards):
    forest = forests[shards]
    for query in queries:
        # radii straddling the 4-NN distance make results non-trivial
        anchor = tree.knn(query, 4)[-1][1]
        for radius in (anchor * 0.5, anchor, anchor * 1.5):
            assert forest.range_query(query, radius) == \
                tree.range_query(query, radius)


@pytest.mark.parametrize("shards", (1, 4))
@pytest.mark.parametrize("k", (1, 5))
def test_subtrajectory_knn_matches_single_tree(forests, tree, queries,
                                               shards, k):
    forest = forests[shards]
    for query in queries[:3]:
        assert forest.subtrajectory_knn(query, k) == \
            tree.subtrajectory_knn(query, k)


def test_tie_order_is_distance_then_id(forests, tree, db):
    """The documented tie policy: a query *in* the database ties at
    d=0 only with itself, and equal distances order by ascending id —
    identical between forest and tree."""
    forest = forests[4]
    for query in db[:4]:
        got = forest.knn(query, 5)
        assert got == tree.knn(query, 5)
        assert got[0] == (query.traj_id, 0.0)
        assert got == sorted(got, key=lambda r: (r[1], r[0]))


@pytest.mark.parametrize("scheme", SHARD_SCHEMES)
def test_both_schemes_same_answers(db, tree, queries, scheme):
    """Shard assignment affects balance only, never answers."""
    forest = TrajForest(db, num_shards=5, scheme=scheme, normalized=True,
                        num_vps=6, seed=7, backend="numpy")
    assert len(forest) == DB_SIZE
    for query in queries[:3]:
        assert forest.knn(query, 5) == tree.knn(query, 5)


def test_query_many_matches_tree_and_singleflights(forests, tree, queries):
    """Batched dispatch: order-preserving, oracle-exact per request, and
    duplicate requests share one (results, stats) object — the same
    contract TrajTree.query_many pins."""
    forest = forests[4]
    rng = random.Random(3)
    requests = random_requests(tree, queries, rng, 10)
    requests = requests + [requests[1], requests[6]]   # exact dups
    out = forest.query_many(requests)
    want = tree.query_many(requests)
    assert len(out) == len(requests)
    for (results, stats), (want_results, _) in zip(out, want):
        assert results == want_results
        assert stats.nodes_visited > 0
    assert out[10] is out[1]
    assert out[11] is out[6]
    with pytest.raises(ValueError, match="unknown query kind"):
        forest.query_many([("nope", queries[0], 1)])


# ---------------------------------------------------------------------- #
# sharding mechanics
# ---------------------------------------------------------------------- #


def test_assign_shards_round_robin_balance():
    groups = assign_shards(list(range(10)), 4, "round_robin")
    assert [len(g) for g in groups] == [3, 3, 2, 2]
    assert sorted(p for g in groups for p in g) == list(range(10))
    # position i goes to shard i % num_shards
    assert groups[1] == [1, 5, 9]


def test_assign_shards_hash_is_a_partition_and_id_stable():
    ids = [3, 11, 42, 7, 100, 255]
    groups = assign_shards(ids, 3, "hash")
    assert sorted(p for g in groups for p in g) == list(range(len(ids)))
    # hash keys on the *id*: reordering the dataset moves positions but
    # keeps each id's shard
    by_id = {}
    for g in groups:
        for pos in g:
            by_id[ids[pos]] = [ids[p] for p in g]
    reordered = list(reversed(ids))
    regroups = assign_shards(reordered, 3, "hash")
    for g in regroups:
        members = sorted(reordered[p] for p in g)
        assert members == sorted(by_id[reordered[g[0]]])


def test_shard_count_clamped_and_validated(db):
    forest = TrajForest(db[:3], num_shards=10, normalized=True,
                        num_vps=2, seed=7, backend="numpy")
    assert forest.num_shards == 3
    with pytest.raises(ValueError, match="num_shards"):
        assign_shards([1, 2], 0)
    with pytest.raises(ValueError, match="unknown shard scheme"):
        assign_shards([1, 2], 2, scheme="alphabetical")
    with pytest.raises(ValueError, match="empty database"):
        TrajForest([], num_shards=2)


def test_container_surface_matches_tree(forests, tree, db):
    forest = forests[4]
    assert len(forest) == len(tree) == DB_SIZE
    assert forest.ids() == tree.ids()
    assert forest.num_shards == 4
    for tid in (0, 17, DB_SIZE - 1):
        assert tid in forest
        shard = forest.shard_of(tid)
        assert tid in forest.shards[shard].ids()
        assert forest.get(tid).traj_id == tid
    assert DB_SIZE + 5 not in forest
    # aggregates are elementwise sums over shards
    summary = forest.storage_summary()
    per_shard = [t.storage_summary() for t in forest.shards]
    for key in per_shard[0]:
        assert summary[key] == sum(s[key] for s in per_shard)


# ---------------------------------------------------------------------- #
# store-backed builds
# ---------------------------------------------------------------------- #


def test_from_store_views_match_object_backed(db, tree, queries, tmp_path):
    """Store round-trip then forest build: mmap'd zero-copy views produce
    the same forest answers as the original objects."""
    store_path = tmp_path / "store"
    ColumnarStore.from_trajectories(db).save(store_path)
    forest = TrajForest.from_store(
        store_path, num_shards=4, normalized=True, num_vps=6, seed=7,
        backend="numpy",
    )
    for query in queries[:3]:
        assert forest.knn(query, 5) == tree.knn(query, 5)


def test_from_store_parallel_equals_serial(db, tmp_path):
    """Worker-process builds are bit-identical to in-process builds:
    shard seeds derive from shard indices, not from worker scheduling."""
    store_path = tmp_path / "store"
    ColumnarStore.from_trajectories(db).save(store_path)
    kwargs = dict(num_shards=3, normalized=True, num_vps=4, seed=7,
                  backend="numpy")
    serial = TrajForest.from_store(store_path, workers=1, **kwargs)
    parallel = TrajForest.from_store(store_path, workers=2, **kwargs)
    query = db[5]
    assert parallel.knn(query, 6) == serial.knn(query, 6)
    assert parallel.ids() == serial.ids()
    assert [t.ids() for t in parallel.shards] == \
        [t.ids() for t in serial.shards]


# ---------------------------------------------------------------------- #
# the forest behind the query service
# ---------------------------------------------------------------------- #


def test_forest_conforms_to_query_index(forests):
    ensure_query_index(forests[4])   # must not raise
    with pytest.raises(TypeError, match="QueryIndex.*missing"):
        ensure_query_index(object())


@pytest.mark.parametrize("seed", [0, 1])
def test_service_over_forest_matches_serial_oracle(forests, tree, queries,
                                                   seed):
    """The concurrency oracle of test_service_concurrency, served by a
    forest: N async clients with coalescing and caching on, every answer
    equal to the *serial single-tree* call."""
    forest = forests[4]
    rng = random.Random(seed)
    workloads = [
        random_requests(tree, queries, rng, 4) for _ in range(8)
    ]
    expected = [[serial_oracle(tree, r) for r in w] for w in workloads]

    async def run():
        service = QueryService(forest, ServiceConfig(
            window=0.02, max_batch=16, cache_capacity=64,
        ))

        async def client(requests):
            answers = []
            for kind, query, param in requests:
                answers.append(
                    await service.submit(QueryRequest(kind, query, param))
                )
            return answers

        got = await asyncio.gather(*(client(w) for w in workloads))
        await service.aclose()
        return got, service

    got, service = asyncio.run(run())
    for client_got, client_want in zip(got, expected):
        for answer, want in zip(client_got, client_want):
            assert answer.results == want
    stats = service.stats_dict()
    assert stats["completed"] == sum(len(w) for w in workloads)
    assert stats["errors"] == {}
    assert stats["index"]["trajectories"] == DB_SIZE


def test_service_set_tree_swaps_tree_for_forest(tree, forests, queries):
    """set_tree accepts a forest via the QueryIndex protocol; the swap
    bumps the snapshot and answers stay oracle-exact."""

    async def run():
        service = QueryService(tree, ServiceConfig(cache_capacity=8))
        before = await service.submit(QueryRequest("knn", queries[0], 5))
        snapshot = service.set_tree(forests[2])
        after = await service.submit(QueryRequest("knn", queries[0], 5))
        await service.aclose()
        return before, after, snapshot, service

    before, after, snapshot, service = asyncio.run(run())
    assert snapshot == 1
    assert before.results == after.results == tree.knn(queries[0], 5)
    assert after.meta["snapshot_id"] == 1
    assert service.tree is forests[2]


def test_native_backend_forest_matches_python_tree(db, queries):
    """Cross-backend forest oracle (ISSUE 9): a forest whose shards run
    the native kernels answers bit-identically to a python-backend
    single tree.  Native availability is forced through the memoized
    probe, so without numba the kernels run un-jitted — an
    operation-for-operation replay of the reference DP, hence *exact*
    equality, ties included."""
    import repro._native as native

    prev = native._AVAILABLE
    native._AVAILABLE = True
    try:
        forest = TrajForest(db, num_shards=3, normalized=True, num_vps=6,
                            seed=7, backend="native")
        oracle = TrajTree(db, normalized=True, num_vps=6, seed=7,
                          backend="python")
        for q in queries[:3]:
            assert forest.knn(q, 5) == oracle.knn(q, 5)
            assert forest.subtrajectory_knn(q, 3) == \
                oracle.subtrajectory_knn(q, 3)
            radius = oracle.knn(q, 4)[-1][1] * 1.1
            assert forest.range_query(q, radius) == \
                oracle.range_query(q, radius)
    finally:
        native._AVAILABLE = prev
