"""Noise protocol tests (Sec. V-C)."""

import numpy as np
import pytest

from repro.core import Trajectory, edwp
from repro.datasets.noise import (
    average_speed,
    densify,
    densify_first_half,
    perturb,
    phase_pair,
    thirty_second_radius,
)

from helpers import random_walk_trajectory


@pytest.fixture
def base(rng):
    return random_walk_trajectory(rng, 10, scale=100.0)


class TestDensify:
    def test_shape_preserved(self, base, rng):
        noisy = densify(base, 0.5, rng)
        assert noisy.length == pytest.approx(base.length)
        assert len(noisy) > len(base)

    def test_fraction_controls_count(self, base, rng):
        small = densify(base, 0.1, np.random.default_rng(0))
        big = densify(base, 1.0, np.random.default_rng(0))
        assert len(big) - len(base) >= len(small) - len(base)
        assert len(big) == len(base) + base.num_segments

    def test_zero_fraction_is_identity(self, base, rng):
        assert densify(base, 0.0, rng) is base

    def test_edwp_invariant_under_densify(self, base, rng):
        """EDwP's core robustness claim on the actual noise protocol."""
        noisy = densify(base, 1.0, rng)
        assert edwp(base, noisy) <= 1e-6 * max(1.0, base.length)

    def test_timestamps_stay_sorted(self, base, rng):
        noisy = densify(base, 1.0, rng)
        assert np.all(np.diff(noisy.times()) >= 0)


class TestDensifyFirstHalf:
    def test_only_first_half_touched(self, base, rng):
        noisy = densify_first_half(base, 1.0, rng)
        half_end_xy = base.data[base.num_segments // 2]
        # the second half point set is unchanged
        tail_base = base.data[base.num_segments // 2 + 1:]
        tail_noisy = noisy.data[-tail_base.shape[0]:]
        assert np.allclose(tail_base, tail_noisy)

    def test_shape_preserved(self, base, rng):
        noisy = densify_first_half(base, 1.0, rng)
        assert noisy.length == pytest.approx(base.length)


class TestPhasePair:
    def test_same_size_different_points(self, base, rng):
        d1, d2 = phase_pair(base, 0.6, rng)
        assert len(d1) == len(d2)
        assert not np.array_equal(d1.data, d2.data)

    def test_same_shape(self, base, rng):
        d1, d2 = phase_pair(base, 0.6, rng)
        assert d1.length == pytest.approx(base.length)
        assert d2.length == pytest.approx(base.length)

    def test_zero_fraction(self, base, rng):
        d1, d2 = phase_pair(base, 0.0, rng)
        assert d1 is base and d2 is base

    def test_edwp_tolerates_phase(self, base, rng):
        d1, d2 = phase_pair(base, 1.0, rng)
        assert edwp(d1, d2) <= 1e-6 * max(1.0, base.length)


class TestPerturb:
    def test_points_move_within_radius(self, base, rng):
        radius = 5.0
        noisy = perturb(base, 1.0, radius, rng)
        deltas = np.hypot(*(noisy.data[:, :2] - base.data[:, :2]).T)
        assert deltas.max() <= radius + 1e-9
        assert deltas.max() > 0.0

    def test_fraction_limits_moved_points(self, base, rng):
        noisy = perturb(base, 0.3, 5.0, rng)
        moved = (np.abs(noisy.data[:, :2] - base.data[:, :2]).sum(axis=1) > 0)
        assert moved.sum() == max(1, round(0.3 * len(base)))

    def test_zero_radius_is_identity(self, base, rng):
        assert perturb(base, 0.5, 0.0, rng) is base

    def test_timestamps_unchanged(self, base, rng):
        noisy = perturb(base, 1.0, 5.0, rng)
        assert np.array_equal(noisy.times(), base.times())


class TestSpeedHelpers:
    def test_average_speed(self):
        t = Trajectory([(0, 0, 0), (100, 0, 10)])
        assert average_speed([t]) == pytest.approx(10.0)

    def test_thirty_second_radius(self):
        t = Trajectory([(0, 0, 0), (100, 0, 10)])
        assert thirty_second_radius([t]) == pytest.approx(300.0)

    def test_zero_duration(self):
        t = Trajectory([(0, 0, 0), (1, 0, 0)])
        assert average_speed([t]) == 0.0
