"""Tests for the evaluation harnesses (classification, robustness, UB)."""

import numpy as np
import pytest

from repro.core import Trajectory, edwp_avg
from repro.datasets import generate_asl, generate_beijing
from repro.eval.classification import (
    classification_experiment,
    cross_validated_accuracy,
    nn_classify,
)
from repro.eval.knn import distance_table, knn_from_table, knn_scan
from repro.eval.robustness import (
    NOISE_PROTOCOLS,
    make_noisy_dataset,
    robustness_experiment,
)
from repro.eval.ubfactor import random_ub_factor, vp_experiment

from helpers import random_walk_trajectory


class TestKnnHelpers:
    def test_distance_table_keys(self, rng):
        db = [random_walk_trajectory(rng, 5) for _ in range(4)]
        db[0].traj_id = 10
        db[1].traj_id = 11
        db[2].traj_id = 12
        db[3].traj_id = 13
        q = random_walk_trajectory(rng, 5)
        table = distance_table(q, db, edwp_avg)
        assert set(table) == {10, 11, 12, 13}

    def test_knn_from_table_order(self):
        table = {1: 3.0, 2: 1.0, 3: 2.0}
        assert [t for t, _ in knn_from_table(table, 2)] == [2, 3]

    def test_knn_scan(self, rng):
        db = [random_walk_trajectory(rng, 5) for _ in range(6)]
        result = knn_scan(db[2], db, edwp_avg, 1)
        assert result[0][0] == 2


class TestClassification:
    def test_nn_classify_picks_nearest_label(self, rng):
        a = random_walk_trajectory(rng, 5)
        a.label = "A"
        b = a.translated(500, 500)
        b.label = "B"
        q = a.translated(0.1, 0.1)
        assert nn_classify(q, [a, b], edwp_avg) == "A"

    def test_nn_classify_no_references(self, rng):
        assert nn_classify(random_walk_trajectory(rng, 5), [], edwp_avg) is None

    def test_cv_accuracy_separable(self, rng):
        """Well-separated classes classify perfectly."""
        ds = []
        for c in range(3):
            base = random_walk_trajectory(rng, 6,
                                          origin=np.array([c * 1000.0, 0.0]))
            for _ in range(4):
                t = base.translated(float(rng.normal(0, 1)),
                                    float(rng.normal(0, 1)))
                t.label = f"c{c}"
                ds.append(t)
        assert cross_validated_accuracy(ds, edwp_avg, folds=4) == 1.0

    def test_cv_accuracy_requires_data(self):
        with pytest.raises(ValueError):
            cross_validated_accuracy([Trajectory([(0, 0, 0)])], edwp_avg)

    def test_experiment_shape(self):
        ds = generate_asl(num_classes=4, instances_per_class=3, seed=1)
        res = classification_experiment(
            ds, {"EDwP": edwp_avg}, class_counts=[2, 4], repeats=1, folds=3
        )
        assert res.class_counts == [2, 4]
        assert len(res.accuracy["EDwP"]) == 2
        for acc in res.accuracy["EDwP"]:
            assert 0.0 <= acc <= 1.0

    def test_experiment_too_many_classes(self):
        ds = generate_asl(num_classes=3, instances_per_class=2, seed=1)
        with pytest.raises(ValueError):
            classification_experiment(ds, {"EDwP": edwp_avg},
                                      class_counts=[5], repeats=1)


class TestRobustness:
    @pytest.mark.parametrize("protocol", NOISE_PROTOCOLS)
    def test_make_noisy_dataset_shapes(self, protocol):
        clean = generate_beijing(8, seed=1)
        d1, d2 = make_noisy_dataset(clean, protocol, 0.5, seed=0)
        assert len(d1) == len(d2) == len(clean)

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            make_noisy_dataset(generate_beijing(4, seed=1), "bogus", 0.5)

    def test_densify_protocols_leave_d1_clean(self):
        clean = generate_beijing(5, seed=2)
        d1, _ = make_noisy_dataset(clean, "inter", 0.5, seed=0)
        for a, b in zip(clean, d1):
            assert np.array_equal(a.data, b.data)

    def test_phase_protocol_alters_both(self):
        clean = generate_beijing(5, seed=2)
        d1, d2 = make_noisy_dataset(clean, "phase", 1.0, seed=0)
        assert len(d1[0]) == len(d2[0])
        assert not np.array_equal(d1[0].data, d2[0].data)

    def test_edwp_correlation_near_one_under_densify(self):
        """EDwP's robustness claim on the real harness."""
        clean = generate_beijing(20, seed=3)
        res = robustness_experiment(
            clean, {"EDwP": edwp_avg}, "inter", k=5, noise_fraction=1.0,
            num_queries=2, seed=0,
        )
        assert res.correlations["EDwP"] > 0.9


class TestUBFactor:
    def test_vp_experiment_sane(self):
        db = generate_beijing(25, seed=4)
        queries = generate_beijing(2, seed=99)
        stats = vp_experiment(db, queries, num_vps=10, k=5)
        assert stats["vp_ub_factor"] >= 1.0 - 1e-9
        assert stats["random_ub_factor"] >= 1.0 - 1e-9
        assert -1.0 <= stats["vp_knn_correlation"] <= 1.0

    def test_vp_beats_random(self):
        """Fig. 6(c)'s claim: VP-based upper bounds are tighter than random
        selections (averaged over queries)."""
        db = generate_beijing(40, seed=5)
        queries = generate_beijing(4, seed=77)
        stats = vp_experiment(db, queries, num_vps=40, k=5)
        assert stats["vp_ub_factor"] <= stats["random_ub_factor"]

    def test_random_ub_factor_at_least_one(self):
        db = generate_beijing(15, seed=6)
        q = generate_beijing(1, seed=88)[0]
        assert random_ub_factor(q, db, k=3) >= 1.0 - 1e-9
