"""Algorithm 1 (pivot partitioning) unit tests."""

import random

import numpy as np
import pytest

from repro.core import Trajectory
from repro.index.partition import partition, select_pivots

from helpers import random_walk_trajectory


def clustered_trajectories(rng, clusters=3, per_cluster=8):
    """Trajectories in well-separated spatial clusters."""
    out = []
    for c in range(clusters):
        origin = np.array([c * 200.0, 0.0])
        for _ in range(per_cluster):
            out.append(random_walk_trajectory(rng, 6, scale=10.0,
                                              origin=origin + rng.uniform(0, 5, 2)))
    return out


class TestSelectPivots:
    def test_empty(self):
        assert select_pivots([], 0.8, random.Random(0)) == []

    def test_single(self):
        t = Trajectory.from_xy([(0, 0), (1, 1)])
        assert select_pivots([t], 0.8, random.Random(0)) == [0]

    def test_pivots_cover_clusters(self, rng):
        """With clearly clustered data, the pivots land in distinct
        clusters before the diversity drop stops growth."""
        trajs = clustered_trajectories(rng, clusters=3, per_cluster=5)
        pivots = select_pivots(trajs, theta=0.8, rng=random.Random(1))
        clusters_hit = {p // 5 for p in pivots}
        assert len(clusters_hit) == 3

    def test_max_pivots_cap(self, rng):
        trajs = [random_walk_trajectory(rng, 5) for _ in range(30)]
        pivots = select_pivots(trajs, theta=0.99, rng=random.Random(0),
                               max_pivots=4)
        assert len(pivots) <= 4

    def test_pivots_unique(self, rng):
        trajs = [random_walk_trajectory(rng, 5) for _ in range(15)]
        pivots = select_pivots(trajs, theta=0.8, rng=random.Random(0),
                               max_pivots=8)
        assert len(set(pivots)) == len(pivots)

    def test_theta_zero_stops_early(self, rng):
        """θ = 0 tolerates no diversity drop at all, so the pivot set stays
        minimal (at most a handful on uniform data)."""
        trajs = [random_walk_trajectory(rng, 5) for _ in range(20)]
        few = select_pivots(trajs, theta=0.0, rng=random.Random(0))
        many = select_pivots(trajs, theta=0.999, rng=random.Random(0))
        assert len(few) <= len(many)


class TestPartition:
    def test_small_node_returns_none(self, rng):
        trajs = [random_walk_trajectory(rng, 5) for _ in range(5)]
        assert partition(trajs, min_node_size=10) is None

    def test_groups_cover_everything_once(self, rng):
        trajs = [random_walk_trajectory(rng, 5) for _ in range(25)]
        result = partition(trajs, min_node_size=5, max_pivots=4,
                           rng=random.Random(0))
        assert result is not None
        all_indices = sorted(i for g in result.groups for i in g)
        assert all_indices == list(range(25))

    def test_each_group_contains_its_pivot(self, rng):
        trajs = [random_walk_trajectory(rng, 5) for _ in range(25)]
        result = partition(trajs, min_node_size=5, max_pivots=4,
                           rng=random.Random(0))
        assert result is not None
        for pivot, group in zip(result.pivots, result.groups):
            assert pivot in group

    def test_one_boxseq_per_group(self, rng):
        trajs = [random_walk_trajectory(rng, 5) for _ in range(25)]
        result = partition(trajs, min_node_size=5, max_pivots=4,
                           rng=random.Random(0))
        assert result is not None
        assert len(result.boxseqs) == len(result.groups)

    def test_clustered_data_groups_by_cluster(self, rng):
        """Minimum-volume-growth assignment keeps clusters together."""
        trajs = clustered_trajectories(rng, clusters=3, per_cluster=8)
        result = partition(trajs, min_node_size=4, max_pivots=3,
                           rng=random.Random(2))
        assert result is not None
        for group in result.groups:
            clusters = {i // 8 for i in group}
            assert len(clusters) == 1, f"group mixes clusters: {group}"

    def test_deterministic_given_rng(self, rng):
        trajs = [random_walk_trajectory(rng, 5) for _ in range(20)]
        r1 = partition(trajs, min_node_size=5, rng=random.Random(3),
                       max_pivots=4)
        r2 = partition(trajs, min_node_size=5, rng=random.Random(3),
                       max_pivots=4)
        assert r1 is not None and r2 is not None
        assert r1.groups == r2.groups
