"""The documentation contract: referenced docs exist and keep their anchors.

Docstrings across the package send the reader to DESIGN.md sections and
README.md's benchmark matrix; this locks those promises in, alongside the
standalone checker (``tools/check_doc_links.py``) that CI runs.
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_no_dangling_doc_references():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        from check_doc_links import dangling_references
    finally:
        sys.path.pop(0)
    assert dangling_references() == []


def test_design_md_keeps_promised_sections():
    """Every section docstrings point at must stay in DESIGN.md."""
    text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    for heading in (
        "## The EDwPsub DP realization",
        "## TrajTree leaf refinement",
        "## Partition balance guard",
        "## Dataset substitution table",
        "## Dual-backend EDwP kernels",
        "## Baseline kernels",
        "## Index bound kernels",
        "### Batched leaf refinement",
        "## Query service",
        "## Columnar store and sharded forest",
        "## Fault model and degraded serving",
        "## Native kernel tier",
        "## Overload control and anytime queries",
    ):
        assert heading in text, f"DESIGN.md lost section {heading!r}"
    # the deviations those sections must keep documenting
    for keyword in ("Viterbi", "min_node_size", "nearest pivot",
                    "T-Drive", "Sign Language", "lockstep"):
        assert keyword in text
    # the baseline-kernels section must keep its anchored sub-contracts
    for keyword in ("anti-diagonal", "pairwise_matrix", "cross_matrix",
                    "eps-threshold conventions", "corner cell",
                    "<= eps", "delta > 0", "DistanceSpec.symmetric"):
        assert keyword in text, f"DESIGN.md lost {keyword!r}"
    # the index-bound-kernels section must keep its sub-contracts
    for keyword in ("repeating their final box", "geometry()",
                    "distance_rows", "REFINE_FLUSH", "members_pruned",
                    "fig6a_bound_gate"):
        assert keyword in text, f"DESIGN.md lost {keyword!r}"
    # the query-service section must keep its sub-contracts
    for keyword in ("coalescing window", "singleflight", "snapshot id",
                    "ServiceOverloaded", "RequestTimeout", "query_many",
                    "service_gate", "naive serial dispatch"):
        assert keyword in text, f"DESIGN.md lost {keyword!r}"
    # the store/forest section must keep its sub-contracts
    for keyword in ("offsets[-1] == P", "round-robin",
                    "mmap_mode=\"r\"", "StoreError", "heapq.merge",
                    "(distance, traj_id)", "forest.json", "ShardLoadError",
                    "forest_gate", "elementwise sum"):
        assert keyword in text, f"DESIGN.md lost {keyword!r}"
    # the fault-model section must keep its sub-contracts
    for keyword in ("os.replace", "fsync", "sha256", "verify_checksum",
                    "on_shard_error", "shard_census", "full jitter",
                    "ServiceConnectionError", "repro.testing.faults",
                    "resilience_gate"):
        assert keyword in text, f"DESIGN.md lost {keyword!r}"
    # the overload-control section must keep its sub-contracts
    for keyword in ("QueryBudget", "BudgetTracker", "AnytimeResult",
                    "bound_factor", "residual", "shard_exact",
                    "max_inflight - reserved_control", "half_open",
                    "retry_after", "RetryExhausted", "combine_budgets",
                    "p99 / SLO", "overload_gate"):
        assert keyword in text, f"DESIGN.md lost {keyword!r}"
    # the native-kernel-tier section must keep its sub-contracts
    for keyword in ("@njit(cache=True)", "pip install .[native]",
                    "NativeBackendUnavailableError", "UnknownBackendError",
                    "warmup()", "NUMBA_CACHE_DIR", "_AVAILABLE",
                    "core_ops_native_gate", "fig6a_native_gate",
                    "un-jitted", "never imports"):
        assert keyword in text, f"DESIGN.md lost {keyword!r}"
    # in-page anchors that README/docstrings point at must resolve to a
    # heading (GitHub slug rule: lowercase, spaces -> dashes)
    slugs = {
        re.sub(r"[^a-z0-9 -]", "", line.lstrip("#").strip().lower())
        .replace(" ", "-")
        for line in text.splitlines() if line.startswith("#")
    }
    for anchor in ("baseline-kernels", "dual-backend-edwp-kernels",
                   "the-edwpsub-dp-realization", "trajtree-leaf-refinement",
                   "dataset-substitution-table", "index-bound-kernels",
                   "batched-leaf-refinement", "query-service",
                   "columnar-store-and-sharded-forest",
                   "fault-model-and-degraded-serving",
                   "native-kernel-tier",
                   "overload-control-and-anytime-queries"):
        assert anchor in slugs, f"DESIGN.md anchor #{anchor} no longer resolves"


def test_readme_covers_the_promised_ground():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for needle in (
        "examples/quickstart.py",
        "python -m repro",
        "set_backend",
        "edwp_many",
        "bench_core_ops.py",
        "repro.core.edwp",        # paper -> module map
        "DESIGN.md",
        # the baseline-family backend guide and matrix-engine quickstart
        "pairwise_matrix",
        "cross_matrix",
        "dtw_many",
        "repro.baselines.fast",
        "DESIGN.md#baseline-kernels",
        "bench_table1_features.py",
        # the index bound engine's backend guide and gate
        "DESIGN.md#index-bound-kernels",
        "bench_fig6a_querytime_dbsize.py",
        # the query service quickstart and gate
        "repro serve",
        "repro.service",
        "ServiceClient",
        "DESIGN.md#query-service",
        "bench_service_throughput.py",
        # the columnar-store / forest quickstart and gate
        "repro.store",
        "build-store",
        "build-forest",
        "--forest",
        "TrajForest",
        "ColumnarStore",
        "DESIGN.md#columnar-store-and-sharded-forest",
        "bench_forest_scale.py",
        # the fault-tolerance ops notes and chaos gate
        "--on-shard-error",
        "RetryPolicy",
        "health",
        "reload",
        "ServiceConnectionError",
        "SIGTERM",
        "repro.testing.faults",
        "DESIGN.md#fault-model-and-degraded-serving",
        "bench_service_resilience.py",
        # the overload-control ops notes and gate
        "QueryBudget",
        "--slo-ms",
        "RetryExhausted",
        "ServiceUnavailable",
        "retry_after",
        "DESIGN.md#overload-control-and-anytime-queries",
        "bench_service_overload.py",
        # the native-tier backend guide, gates and differential matrix
        "pip install .[native]",
        "set_backend(\"native\")",
        "NativeBackendUnavailableError",
        "UnknownBackendError",
        "DESIGN.md#native-kernel-tier",
        "test_backend_matrix.py",
    ):
        assert needle in text, f"README.md lost {needle!r}"
