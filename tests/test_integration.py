"""End-to-end integration tests across the whole stack.

These walk the full user story: generate a fleet, split trips, inject
noise, index, query, and evaluate — the pipeline every figure of the paper
runs through.
"""

import numpy as np
import pytest

from repro import Trajectory, TrajTree, edwp, edwp_avg
from repro.baselines import EDRIndex, get_distance
from repro.datasets import (
    densify,
    generate_asl,
    generate_beijing,
    generate_cab_streams,
    interpolate_dataset,
    split_trips,
)
from repro.eval.knn import knn_scan
from repro.eval.robustness import make_noisy_dataset, pair_correlations
from repro.eval.spearman import knn_list_correlation


class TestFullPipeline:
    def test_streams_to_knn(self):
        """Raw streams -> trip splitting -> TrajTree -> exact k-NN."""
        streams = generate_cab_streams(4, trips_per_cab=3, seed=5)
        trips = split_trips(streams)
        trips = [t for t in trips if t.num_segments >= 1]
        assert len(trips) >= 4
        tree = TrajTree(trips, num_vps=10, min_node_size=4,
                        normalized=True, seed=0)
        q = trips[0]
        got = tree.knn(q, 3)
        want = tree.knn_scan(q, 3)
        assert [t for t, _ in got] == [t for t, _ in want]

    def test_noise_pipeline_correlation(self):
        """The Fig. 5 measurement loop on a small corpus, EDwP vs EDR."""
        clean = generate_beijing(25, seed=9)
        d1, d2 = make_noisy_dataset(clean, "inter", 1.0, seed=0)
        eps = 500.0
        metrics = {
            "EDwP": get_distance("edwp").fn,
            "EDR": get_distance("edr", eps=eps).fn,
        }
        result = pair_correlations(d1, d2, metrics, k=5, query_ids=[0, 7])
        edwp_corr = np.mean(result["EDwP"])
        edr_corr = np.mean(result["EDR"])
        assert edwp_corr > 0.85
        assert edwp_corr >= edr_corr - 1e-9

    def test_trajtree_beats_index_free_candidates(self):
        """TrajTree computes exact EDwP for fewer trajectories than a scan
        on clustered city data."""
        from repro.index.trajtree import TrajTreeStats

        db = generate_beijing(60, seed=3)
        tree = TrajTree(db, num_vps=20, normalized=True, seed=0)
        q = generate_beijing(3, seed=123)[2]
        stats = TrajTreeStats()
        got = tree.knn(q, 5, stats=stats)
        assert [t for t, _ in got] == [t for t, _ in tree.knn_scan(q, 5)]
        assert stats.exact_computations < len(db)

    def test_edr_index_on_interpolated_city_data(self):
        db = generate_beijing(30, seed=4)
        dbi = interpolate_dataset(db, max_points=64)
        idx = EDRIndex(dbi, eps=400.0, num_references=4, seed=0)
        qi = interpolate_dataset(generate_beijing(1, seed=321),
                                 max_points=64)[0]
        assert [t for t, _ in idx.knn(qi, 4)] == [
            t for t, _ in idx.knn_scan(qi, 4)
        ]

    def test_classification_pipeline(self):
        """ASL corpus -> 1-NN classification beats chance under EDwP."""
        from repro.eval.classification import cross_validated_accuracy

        ds = generate_asl(num_classes=5, instances_per_class=4, seed=11)
        acc = cross_validated_accuracy(ds, edwp_avg, folds=4, seed=0)
        assert acc > 1.0 / 5 + 0.2

    def test_densified_database_preserves_edwp_knn(self):
        """The headline robustness property at database level: densifying
        every trajectory leaves the EDwP k-NN list (near) unchanged."""
        db = generate_beijing(20, seed=6)
        rng = np.random.default_rng(0)
        noisy = [densify(t, 1.0, rng) for t in db]
        q = db[3]
        table1 = {t.traj_id: edwp_avg(q, t) for t in db}
        table2 = {t.traj_id: edwp_avg(q, t) for t in noisy}
        table1.pop(3)
        table2.pop(3)
        assert knn_list_correlation(table1, table2, k=5) > 0.95
