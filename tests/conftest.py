"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Trajectory

from helpers import random_walk_trajectory


@pytest.fixture
def rng():
    """Deterministic numpy generator for tests."""
    return np.random.default_rng(42)


@pytest.fixture
def small_database(rng):
    """A 40-trajectory database of random walks."""
    return [
        random_walk_trajectory(rng, int(rng.integers(4, 12)))
        for _ in range(40)
    ]


@pytest.fixture
def paper_appendix_trajectories():
    """The Appendix-A triangle-inequality counterexample trio."""
    t1 = Trajectory.from_xy([(0, 0), (0, 1)])
    t2 = Trajectory.from_xy([(0, 0), (0, 1), (0, 2)])
    t3 = Trajectory.from_xy([(0, 0), (0, 1), (0, 2), (0, 3)])
    return t1, t2, t3


@pytest.fixture
def fig2_trajectories():
    """The Fig. 2(a) pair (T1's unprinted last point chosen arbitrarily)."""
    t1 = Trajectory([(0, 0, 0), (0, 10, 30), (3, 17, 51)])
    t2 = Trajectory([(2, 0, 0), (2, 7, 14), (2, 10, 20)])
    return t1, t2
