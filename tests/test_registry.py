"""Distance registry tests."""

import pytest

from repro.baselines import MAParams, get_distance, list_distances
from repro.core import Trajectory


A = Trajectory.from_xy([(0, 0), (1, 0), (2, 0)])
B = Trajectory.from_xy([(0, 1), (1, 1), (2, 1)])


class TestRegistry:
    def test_all_names_resolve(self):
        for name in list_distances():
            eps = 1.0 if name in ("edr", "lcss") else None
            spec = get_distance(name, eps=eps)
            value = spec(A, B)
            assert value >= 0.0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_distance("sspd")

    def test_threshold_metrics_require_eps(self):
        with pytest.raises(ValueError):
            get_distance("edr")
        with pytest.raises(ValueError):
            get_distance("lcss")

    def test_threshold_free_flags(self):
        assert get_distance("edwp").threshold_free
        assert get_distance("dtw").threshold_free
        assert not get_distance("edr", eps=1.0).threshold_free
        assert not get_distance("ma").threshold_free

    def test_edwp_variants_differ(self):
        raw = get_distance("edwp_raw")(A, B)
        avg = get_distance("edwp")(A, B)
        assert raw == pytest.approx(avg * (A.length + B.length))

    def test_ma_params_threaded_through(self):
        strict = get_distance("ma", ma_params=MAParams(gap_penalty=50.0))
        loose = get_distance("ma", ma_params=MAParams(gap_penalty=0.001))
        far = B.translated(0, 100)
        assert strict(A, far) != pytest.approx(loose(A, far))

    def test_spec_is_callable_and_named(self):
        spec = get_distance("dtw")
        assert spec.name == "DTW"
        assert spec(A, A) == 0.0
