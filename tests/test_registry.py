"""Distance registry tests."""

import pytest

from repro.baselines import MAParams, get_distance, list_distances
from repro.core import Trajectory


A = Trajectory.from_xy([(0, 0), (1, 0), (2, 0)])
B = Trajectory.from_xy([(0, 1), (1, 1), (2, 1)])


class TestRegistry:
    def test_all_names_resolve(self):
        for name in list_distances():
            eps = 1.0 if name in ("edr", "lcss") else None
            spec = get_distance(name, eps=eps)
            value = spec(A, B)
            assert value >= 0.0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_distance("sspd")

    def test_threshold_metrics_require_eps(self):
        with pytest.raises(ValueError):
            get_distance("edr")
        with pytest.raises(ValueError):
            get_distance("lcss")

    def test_threshold_free_flags(self):
        assert get_distance("edwp").threshold_free
        assert get_distance("dtw").threshold_free
        assert not get_distance("edr", eps=1.0).threshold_free
        assert not get_distance("ma").threshold_free

    def test_edwp_variants_differ(self):
        raw = get_distance("edwp_raw")(A, B)
        avg = get_distance("edwp")(A, B)
        assert raw == pytest.approx(avg * (A.length + B.length))

    def test_ma_params_threaded_through(self):
        strict = get_distance("ma", ma_params=MAParams(gap_penalty=50.0))
        loose = get_distance("ma", ma_params=MAParams(gap_penalty=0.001))
        far = B.translated(0, 100)
        assert strict(A, far) != pytest.approx(loose(A, far))

    def test_spec_is_callable_and_named(self):
        spec = get_distance("dtw")
        assert spec.name == "DTW"
        assert spec(A, A) == 0.0

    def test_unused_params_rejected(self):
        """Parameters a metric does not consume raise TypeError naming the
        valid ones instead of being silently ignored."""
        with pytest.raises(TypeError, match="valid parameters for 'dtw'"):
            get_distance("dtw", eps=1.0)
        with pytest.raises(TypeError, match="ma_params"):
            get_distance("edwp", ma_params=MAParams())
        with pytest.raises(TypeError, match="eps"):
            get_distance("ma", eps=2.0)
        # the valid combinations still resolve
        get_distance("edr", eps=1.0, backend="numpy")
        get_distance("ma", ma_params=MAParams())

    def test_bad_backend_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_distance("dtw", backend="cuda")

    def test_batched_capability(self):
        """Lockstep-kernel metrics expose `many`; the rest fall back."""
        for name in ("edwp", "edwp_raw", "dtw", "erp", "frechet"):
            assert get_distance(name).batched
        for name in ("edr", "lcss"):
            assert get_distance(name, eps=1.0).batched
        for name in ("ma", "hausdorff", "dissim", "lp"):
            assert not get_distance(name).batched

    def test_many_matches_pairwise(self):
        targets = [A, B, A.translated(5.0, 5.0)]
        for backend in ("python", "numpy"):
            spec = get_distance("dtw", backend=backend)
            assert spec.many(A, targets) == pytest.approx(
                [spec.fn(A, t) for t in targets]
            )

    def test_ma_flagged_asymmetric(self):
        assert not get_distance("ma").symmetric
        assert get_distance("dtw").symmetric
