"""The deterministic fault-injection harness itself (repro.testing.faults).

The harness underpins every crash/corruption test and the resilience
chaos gate, so its own contract is pinned here: seeded plans inject the
same fault sequence on every run, rules respect their ``times`` /
``after`` / ``probability`` bounds in registration order, each kind does
what the docs say, and ``injected()`` always restores the no-plan state.
"""

import os

import pytest

from repro.testing import faults
from repro.testing.faults import (
    CrashInjected,
    FaultInjected,
    FaultPlan,
    Truncate,
    injected,
)


class TestPlanLifecycle:
    def test_no_plan_is_a_noop(self):
        assert faults.active() is None
        assert faults.fire("anything.at.all") is None

    def test_injected_installs_and_restores(self):
        plan = FaultPlan()
        with injected(plan) as active_plan:
            assert active_plan is plan
            assert faults.active() is plan
        assert faults.active() is None

    def test_injected_restores_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with injected(FaultPlan()):
                raise RuntimeError("boom")
        assert faults.active() is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan().on("x", "meteor")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultPlan().on("x", "error", probability=1.5)


class TestKinds:
    def test_error_raises_os_error(self):
        with injected(FaultPlan().on("io.read", "error")):
            with pytest.raises(FaultInjected) as excinfo:
                faults.fire("io.read")
        assert isinstance(excinfo.value, OSError)
        assert "io.read" in str(excinfo.value)

    def test_crash_raises_crash_injected(self):
        with injected(FaultPlan().on("save", "crash")):
            with pytest.raises(CrashInjected):
                faults.fire("save")

    def test_truncate_returns_directive(self):
        with injected(FaultPlan().on("write", "truncate", 37)):
            assert faults.fire("write") == Truncate(37)
            assert faults.fire("write") is None   # times=1 by default

    def test_drop_raises_connection_reset(self):
        with injected(FaultPlan().on("client.send", "drop")):
            with pytest.raises(ConnectionResetError):
                faults.fire("client.send")

    def test_exit_is_noop_in_owner_process(self):
        # The rule models the environment killing a *worker*; in the
        # process that owns the plan it must never fire os._exit — it is
        # recorded and skipped (or the serial rebuild after a worker kill
        # would die too).
        plan = FaultPlan().on("forest.build_shard:1", "exit", 17)
        assert plan._owner_pid == os.getpid()
        with injected(plan):
            assert faults.fire("forest.build_shard:1") is None
        assert plan.fired("forest.build_shard:*") == 1


class TestRuleBounds:
    def test_times_bounds_firing(self):
        plan = FaultPlan().on("p", "error", times=2)
        with injected(plan):
            for _ in range(2):
                with pytest.raises(FaultInjected):
                    faults.fire("p")
            assert faults.fire("p") is None
        assert plan.fired("p") == 2

    def test_times_none_is_unlimited(self):
        plan = FaultPlan().on("p", "truncate", 0, times=None)
        with injected(plan):
            for _ in range(10):
                assert faults.fire("p") == Truncate(0)

    def test_after_skips_leading_matches(self):
        plan = FaultPlan().on("p", "error", after=2)
        with injected(plan):
            assert faults.fire("p") is None
            assert faults.fire("p") is None
            with pytest.raises(FaultInjected):
                faults.fire("p")

    def test_rules_fire_in_registration_order(self):
        plan = (FaultPlan()
                .on("p", "truncate", 5)
                .on("p", "error"))
        with injected(plan):
            assert faults.fire("p") == Truncate(5)   # first rule first
            with pytest.raises(FaultInjected):       # then the second
                faults.fire("p")
            assert faults.fire("p") is None          # both exhausted
        assert plan.log == [("p", "truncate"), ("p", "error")]

    def test_patterns_match_fnmatch(self):
        plan = FaultPlan().on("atomic.write:*", "error", times=None)
        with injected(plan):
            with pytest.raises(FaultInjected):
                faults.fire("atomic.write:points.npy")
            with pytest.raises(FaultInjected):
                faults.fire("atomic.write:meta.json")
            assert faults.fire("atomic.rename:points.npy") is None


class TestDeterminism:
    def fire_sequence(self, seed, n=200):
        plan = FaultPlan(seed).on("p", "error", times=None, probability=0.3)
        fired = []
        with injected(plan):
            for _ in range(n):
                try:
                    faults.fire("p")
                    fired.append(False)
                except FaultInjected:
                    fired.append(True)
        return fired

    def test_same_seed_same_fault_sequence(self):
        assert self.fire_sequence(11) == self.fire_sequence(11)

    def test_different_seed_different_sequence(self):
        assert self.fire_sequence(11) != self.fire_sequence(12)

    def test_probability_roughly_honored(self):
        fired = self.fire_sequence(7, n=1000)
        assert 0.2 < sum(fired) / len(fired) < 0.4
