"""Unit tests for the trajectory data model (Definitions 1-3)."""

import math

import numpy as np
import pytest

from repro.core import STPoint, Segment, Trajectory


class TestSTPoint:
    def test_fields(self):
        p = STPoint(1.0, 2.0, 3.0)
        assert (p.x, p.y, p.t) == (1.0, 2.0, 3.0)
        assert p.xy == (1.0, 2.0)

    def test_distance_is_spatial_only(self):
        a = STPoint(0, 0, 0)
        b = STPoint(3, 4, 1000)
        assert a.distance(b) == 5.0

    def test_equality_and_hash(self):
        assert STPoint(1, 2, 3) == STPoint(1, 2, 3)
        assert STPoint(1, 2, 3) != STPoint(1, 2, 4)
        assert hash(STPoint(1, 2, 3)) == hash(STPoint(1, 2, 3))

    def test_iter(self):
        assert tuple(STPoint(1, 2, 3)) == (1.0, 2.0, 3.0)


class TestSegment:
    def test_length_and_duration(self):
        seg = Segment(STPoint(0, 0, 0), STPoint(3, 4, 10))
        assert seg.length == 5.0
        assert seg.duration == 10.0
        assert seg.speed == 0.5

    def test_zero_duration_speed_is_inf(self):
        seg = Segment(STPoint(0, 0, 5), STPoint(1, 0, 5))
        assert seg.speed == math.inf

    def test_point_at_fraction_matches_paper_insert_rule(self):
        """Example 1: splitting (0,0,0)-(0,10,30) at the point (0,7)
        assigns timestamp 21 (proportional to the spatial split)."""
        seg = Segment(STPoint(0, 0, 0), STPoint(0, 10, 30))
        p = seg.point_at_fraction(0.7)
        assert (p.x, p.y) == (0.0, 7.0)
        assert p.t == pytest.approx(21.0)


class TestTrajectoryConstruction:
    def test_from_xyt(self):
        t = Trajectory([(0, 0, 0), (1, 1, 5)])
        assert len(t) == 2
        assert t.num_segments == 1

    def test_two_columns_get_default_times(self):
        t = Trajectory([(0, 0), (1, 1), (2, 2)])
        assert list(t.times()) == [0.0, 1.0, 2.0]

    def test_empty(self):
        t = Trajectory([])
        assert len(t) == 0
        assert t.num_segments == 0
        assert t.length == 0.0

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            Trajectory([(0, 0, 0), (float("nan"), 1, 1)])

    def test_rejects_decreasing_time(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            Trajectory([(0, 0, 5), (1, 1, 3)])

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Trajectory([(1, 2, 3, 4)])

    def test_from_xy_dt(self):
        t = Trajectory.from_xy([(0, 0), (1, 0)], dt=30.0)
        assert list(t.times()) == [0.0, 30.0]

    def test_metadata_kept(self):
        t = Trajectory([(0, 0, 0), (1, 1, 1)], traj_id=7, label="sign_001")
        assert t.traj_id == 7
        assert t.label == "sign_001"


class TestTrajectoryDerived:
    def test_length_eq1(self):
        """Eq. 1: trajectory length is the sum of segment lengths."""
        t = Trajectory.from_xy([(0, 0), (3, 4), (3, 10)])
        assert t.length == pytest.approx(5.0 + 6.0)
        assert list(t.segment_lengths()) == pytest.approx([5.0, 6.0])

    def test_duration(self):
        t = Trajectory([(0, 0, 10), (1, 1, 25)])
        assert t.duration == 15.0

    def test_bounding_rect(self):
        t = Trajectory.from_xy([(1, 5), (-2, 3), (4, 7)])
        assert t.bounding_rect() == (-2.0, 3.0, 4.0, 7.0)

    def test_bounding_rect_empty_raises(self):
        with pytest.raises(ValueError):
            Trajectory([]).bounding_rect()

    def test_segments_iteration(self):
        t = Trajectory.from_xy([(0, 0), (1, 0), (2, 0)])
        segs = list(t.segments())
        assert len(segs) == 2
        assert segs[0].s1 == STPoint(0, 0, 0)
        assert segs[1].s2 == STPoint(2, 0, 2)

    def test_segment_out_of_range(self):
        t = Trajectory.from_xy([(0, 0), (1, 0)])
        with pytest.raises(IndexError):
            t.segment(1)


class TestSubTrajectory:
    def test_subtrajectory_slice(self):
        t = Trajectory.from_xy([(0, 0), (1, 0), (2, 0), (3, 0)])
        sub = t.subtrajectory(1, 3)
        assert len(sub) == 2
        assert sub[0].x == 1.0

    def test_is_subtrajectory_definition2(self):
        t = Trajectory.from_xy([(0, 0), (1, 0), (2, 0), (3, 0)])
        assert t.subtrajectory(1, 3).is_subtrajectory_of(t)
        assert t.is_subtrajectory_of(t)
        assert Trajectory([]).is_subtrajectory_of(t)

    def test_non_contiguous_is_not_subtrajectory(self):
        t = Trajectory.from_xy([(0, 0), (1, 0), (2, 0), (3, 0)])
        gappy = Trajectory(np.vstack([t.data[0], t.data[2]]))
        assert not gappy.is_subtrajectory_of(t)


class TestInsertAndInterpolation:
    def test_with_point_inserted_preserves_shape(self):
        t = Trajectory([(0, 0, 0), (0, 10, 30)])
        t2 = t.with_point_inserted(0, 0.7)
        assert len(t2) == 3
        assert t2[1].xy == (0.0, 7.0)
        assert t2[1].t == pytest.approx(21.0)
        assert t2.length == pytest.approx(t.length)

    def test_insert_bad_index(self):
        t = Trajectory([(0, 0, 0), (1, 0, 1)])
        with pytest.raises(IndexError):
            t.with_point_inserted(5, 0.5)

    def test_point_at_time_interior(self):
        t = Trajectory([(0, 0, 0), (10, 0, 10)])
        p = t.point_at_time(4.0)
        assert p.x == pytest.approx(4.0)

    def test_point_at_time_clamps(self):
        t = Trajectory([(0, 0, 0), (10, 0, 10)])
        assert t.point_at_time(-5).x == 0.0
        assert t.point_at_time(50).x == 10.0

    def test_resampled_at_times(self):
        t = Trajectory([(0, 0, 0), (10, 0, 10)])
        r = t.resampled_at_times([0, 2.5, 5, 10])
        assert len(r) == 4
        assert r[1].x == pytest.approx(2.5)

    def test_distance_travelled_at(self):
        t = Trajectory.from_xy([(0, 0), (3, 4), (3, 10)])
        assert t.distance_travelled_at(0) == 0.0
        assert t.distance_travelled_at(1) == pytest.approx(5.0)
        assert t.distance_travelled_at(2) == pytest.approx(11.0)


class TestTransforms:
    def test_translated(self):
        t = Trajectory([(0, 0, 0), (1, 1, 1)]).translated(10, -5)
        assert t[0].xy == (10.0, -5.0)

    def test_reversed_keeps_time_axis(self):
        t = Trajectory([(0, 0, 0), (1, 0, 5), (2, 0, 20)])
        r = t.reversed()
        assert r[0].xy == (2.0, 0.0)
        assert list(r.times()) == [0.0, 5.0, 20.0]

    def test_equality(self):
        a = Trajectory([(0, 0, 0), (1, 1, 1)])
        b = Trajectory([(0, 0, 0), (1, 1, 1)])
        c = Trajectory([(0, 0, 0), (1, 2, 1)])
        assert a == b
        assert a != c
