"""Tests for the TrajTree extensions: range queries and sub-trajectory
similarity search (Sec. VI's 'other trajectory operations')."""

import numpy as np
import pytest

from repro.core import Trajectory
from repro.core.edwp_sub import edwp_sub
from repro.index import TrajTree, edwp_sub_box
from repro.index.trajtree import TrajTreeStats

from helpers import random_walk_trajectory


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(55)
    out = []
    for c in range(5):
        origin = np.array([c * 120.0, 0.0])
        for _ in range(12):
            out.append(random_walk_trajectory(rng, int(rng.integers(4, 10)),
                                              origin=origin))
    return out


@pytest.fixture(scope="module")
def tree(db):
    return TrajTree(db, num_vps=10, min_node_size=6, seed=2)


class TestRangeQuery:
    def test_matches_scan(self, tree):
        rng = np.random.default_rng(1)
        for _ in range(6):
            q = random_walk_trajectory(rng, 7,
                                       origin=np.array([120.0, 0.0]))
            for radius_scale in (0.5, 1.0, 2.0):
                radius = radius_scale * tree.knn_scan(q, 5)[-1][1]
                got = tree.range_query(q, radius)
                want = tree.range_query_scan(q, radius)
                assert got == want

    def test_zero_radius(self, tree, db):
        member = db[3]
        got = tree.range_query(member, 0.0)
        assert (3, 0.0) in [(t, round(d, 9)) for t, d in got]

    def test_prunes_far_clusters(self, tree):
        rng = np.random.default_rng(2)
        q = random_walk_trajectory(rng, 7, origin=np.array([0.0, 0.0]))
        radius = tree.knn_scan(q, 3)[-1][1]
        stats = TrajTreeStats()
        tree.range_query(q, radius, stats=stats)
        assert stats.exact_computations < len(tree)
        assert stats.nodes_pruned > 0

    def test_negative_radius_raises(self, tree):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            tree.range_query(random_walk_trajectory(rng, 5), -1.0)

    def test_results_sorted(self, tree):
        rng = np.random.default_rng(4)
        q = random_walk_trajectory(rng, 7)
        result = tree.range_query(q, 1e12)
        dists = [d for _, d in result]
        assert dists == sorted(dists)
        assert len(result) == len(tree)


class TestSubtrajectoryKnn:
    def test_matches_scan(self, tree):
        rng = np.random.default_rng(5)
        for _ in range(6):
            q = random_walk_trajectory(rng, 5,
                                       origin=np.array([240.0, 0.0]))
            got = [t for t, _ in tree.subtrajectory_knn(q, 5)]
            want = [t for t, _ in tree.subtrajectory_knn_scan(q, 5)]
            assert got == want

    def test_embedded_query_found_first(self, tree, db):
        """A piece cut out of a database trajectory finds its source."""
        source = db[7]
        if source.num_segments >= 3:
            piece = source.subtrajectory(1, len(source) - 1)
            result = tree.subtrajectory_knn(piece, 1)
            assert result[0][0] == 7
            assert result[0][1] == pytest.approx(0.0, abs=1e-9)

    def test_box_bound_underestimates_subdistance(self, tree, db):
        """The search's pruning premise, checked directly."""
        rng = np.random.default_rng(6)
        for _ in range(8):
            q = random_walk_trajectory(rng, 6)
            for child in tree.root.children:
                lb = edwp_sub_box(q, child.boxseq)
                for tid in child.subtree_ids:
                    assert lb <= edwp_sub(q, tree.get(tid)) + 1e-6

    def test_invalid_k(self, tree):
        rng = np.random.default_rng(7)
        with pytest.raises(ValueError):
            tree.subtrajectory_knn(random_walk_trajectory(rng, 5), 0)
