"""Exact accounting of :class:`repro.index.trajtree.TrajTreeStats`.

The counters feed the fig6cd-style ablation numbers, so they must obey
the contract stated on the dataclass: every considered node lands in
exactly one of visited/pruned, bound counters reflect kernel evaluations
(quick-bound prunes never touch ``bound_computations``), and the whole
set is backend-independent.
"""

from dataclasses import fields

import numpy as np
import pytest

from repro.core.edwp import BACKENDS
from repro.index import TrajForest, TrajTree
from repro.index.trajtree import TrajTreeStats

from helpers import random_walk_trajectory


@pytest.fixture(scope="module")
def database():
    rng = np.random.default_rng(9)
    return [
        random_walk_trajectory(rng, int(rng.integers(4, 14)))
        for _ in range(70)
    ]


@pytest.fixture(scope="module")
def tree(database):
    return TrajTree(database, theta=0.8, num_vps=6, normalized=True, seed=2)


@pytest.fixture(scope="module")
def query():
    rng = np.random.default_rng(33)
    return random_walk_trajectory(rng, 9)


def _count_children(node):
    total = len(node.children)
    for child in node.children:
        total += _count_children(child)
    return total


def _leaf_index(node, out):
    if node.is_leaf:
        out[id(node)] = node
    for child in node.children:
        _leaf_index(child, out)
    return out


class TestKnnAccounting:
    def test_considered_nodes_partition(self, tree, query):
        """root + children-of-visited-internals == visited + pruned.

        Visited nodes are a prefix-closed subset of the tree, so the
        total number of considered nodes can be recomputed from the
        traversal itself; the two counters must partition it exactly.
        """
        stats = TrajTreeStats()
        tree.knn(query, 5, stats=stats)
        considered = stats.nodes_visited + stats.nodes_pruned
        # Reconstruct: walk the tree counting nodes whose parent chain
        # could have been visited.  Instead of re-simulating Alg. 2 we
        # use the invariant directly: every visit pops a considered node
        # and every internal visit adds its children to the considered
        # pool, so `considered` can never exceed 1 + sum over internal
        # nodes of their child counts, and the search accounts for every
        # candidate still queued when it stops.
        assert considered <= 1 + _count_children(tree.root)
        assert stats.nodes_visited >= 1
        assert stats.nodes_pruned >= 0

    def test_quick_prunes_skip_bound_counter(self, database, query):
        """Quick-bound prunes must not inflate ``bound_computations``."""
        tree = TrajTree(database, theta=0.8, num_vps=6, normalized=True,
                        seed=2, use_quick_bound=True)
        with_quick = TrajTreeStats()
        tree.knn(query, 5, stats=with_quick)
        tree.use_quick_bound = False
        without_quick = TrajTreeStats()
        tree.knn(query, 5, stats=without_quick)
        assert with_quick.bound_computations <= (
            without_quick.bound_computations
        )
        assert with_quick.quick_bound_computations > 0
        assert without_quick.quick_bound_computations == 0

    def test_exact_plus_pruned_covers_visited_leaves(self, tree, query):
        """Refined + member-pruned + VP offers cover every member of
        every visited leaf exactly once (the deferral cannot lose or
        double-count anyone)."""
        stats = TrajTreeStats()
        result = tree.knn(query, 5, stats=stats)
        assert len(result) == 5
        # Every exact computation enters the counter exactly once, and a
        # member either got an exact distance or a per-member prune.
        assert stats.exact_computations + stats.members_pruned >= 5
        assert stats.exact_computations <= len(tree._db)

    def test_exact_computations_count_actual_kernel_work(self, database,
                                                         query):
        """The counter equals the number of distances the tree really
        computed (spied via _exact_many/_exact)."""
        tree = TrajTree(database, theta=0.8, num_vps=6, normalized=True,
                        seed=2)
        calls = {"n": 0}
        orig_many = tree._exact_many

        def spy_many(q, tids):
            calls["n"] += len(tids)
            return orig_many(q, tids)

        tree._exact_many = spy_many
        stats = TrajTreeStats()
        tree.knn(query, 5, stats=stats)
        assert stats.exact_computations == calls["n"]

    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_counters_identical_across_backends(self, tree, query, k):
        per_backend = {}
        for backend in BACKENDS:
            tree.backend = backend
            stats = TrajTreeStats()
            tree.knn(query, k, stats=stats)
            per_backend[backend] = stats
        tree.backend = None
        assert per_backend["python"] == per_backend["numpy"]

    def test_members_pruned_zero_when_unnormalized(self, database, query):
        """Raw-EDwP trees have node-constant denominators, so the
        per-member re-normalization can never prune anyone."""
        tree = TrajTree(database, theta=0.8, num_vps=6, normalized=False,
                        seed=2)
        stats = TrajTreeStats()
        tree.knn(query, 5, stats=stats)
        assert stats.members_pruned == 0


class TestOtherQueriesAccounting:
    def test_range_query_counters(self, tree, query):
        stats = TrajTreeStats()
        radius = tree.knn(query, 8)[-1][1] * 1.01
        out = tree.range_query(query, radius, stats=stats)
        assert len(out) >= 1
        assert stats.exact_computations >= len(out)
        assert stats.bound_computations >= 1
        for backend in BACKENDS:
            tree.backend = backend
            s = TrajTreeStats()
            tree.range_query(query, radius, stats=s)
            assert s == stats
        tree.backend = None

    def test_subtrajectory_knn_counters(self, tree, query):
        per_backend = {}
        for backend in BACKENDS:
            tree.backend = backend
            stats = TrajTreeStats()
            tree.subtrajectory_knn(query, 4, stats=stats)
            per_backend[backend] = stats
        tree.backend = None
        assert per_backend["python"] == per_backend["numpy"]
        assert per_backend["python"].exact_computations >= 4


class TestForestAccounting:
    """Forest stats are the *elementwise sum* of the per-shard counters:
    each shard's work is counted exactly once, no double counting and
    nothing dropped in the fan-out (DESIGN.md, "Columnar store and
    sharded forest")."""

    @pytest.fixture(scope="class")
    def forest(self, database):
        return TrajForest(database, num_shards=4, theta=0.8, num_vps=6,
                          normalized=True, seed=2)

    @pytest.mark.parametrize("kind, param", [
        ("knn", 5), ("range", None), ("subtrajectory_knn", 3),
    ])
    def test_query_stats_are_shardwise_sums(self, forest, query, kind,
                                            param):
        if kind == "range":
            param = forest.knn(query, 6)[-1][1] * 1.01
        total = TrajTreeStats()
        per_shard = []
        for shard in forest.shards:
            s = TrajTreeStats()
            if kind == "knn":
                shard.knn(query, param, stats=s)
            elif kind == "range":
                shard.range_query(query, param, stats=s)
            else:
                shard.subtrajectory_knn(query, param, stats=s)
            per_shard.append(s)
        if kind == "knn":
            forest.knn(query, param, stats=total)
        elif kind == "range":
            forest.range_query(query, param, stats=total)
        else:
            forest.subtrajectory_knn(query, param, stats=total)
        for f in fields(TrajTreeStats):
            assert getattr(total, f.name) == sum(
                getattr(s, f.name) for s in per_shard
            ), f.name
        assert total.nodes_visited >= forest.num_shards

    def test_build_stats_are_shardwise_sums(self, forest):
        total = forest.build_stats
        for f in fields(TrajTreeStats):
            assert getattr(total, f.name) == sum(
                getattr(t.build_stats, f.name) for t in forest.shards
            ), f.name

    def test_query_many_stats_are_shardwise_sums(self, forest, query):
        (results, stats), = forest.query_many([("knn", query, 5)])
        direct = TrajTreeStats()
        assert forest.knn(query, 5, stats=direct) == results
        assert stats == direct
