"""The batched distance-matrix engine: pairwise_matrix / cross_matrix."""

import numpy as np
import pytest

from repro import pairwise_matrix, cross_matrix
from repro.baselines import DistanceSpec, get_distance, list_distances, ma
from repro.core import Trajectory, use_backend


@pytest.fixture(scope="module")
def trajs():
    rng = np.random.default_rng(3)
    lengths = [4, 9, 1, 15, 7, 2, 11]
    return [
        Trajectory.from_xy(rng.normal(0, 5, (n, 2)).cumsum(axis=0),
                           traj_id=i)
        for i, n in enumerate(lengths)
    ]


class TestPairwiseMatrix:
    @pytest.mark.parametrize("metric,params", [
        ("dtw", {}),
        ("edr", {"eps": 3.0}),
        ("lcss", {"eps": 3.0}),
        ("erp", {}),
        ("frechet", {}),
        ("hausdorff", {}),
        ("edwp", {}),
    ])
    def test_symmetry_and_consistency(self, trajs, metric, params):
        spec = get_distance(metric, **params)
        mat = pairwise_matrix(trajs, metric, backend="numpy", **params)
        assert mat.shape == (len(trajs), len(trajs))
        assert np.array_equal(mat, mat.T)
        ref = np.array([[spec.fn(a, b) for b in trajs] for a in trajs])
        assert np.array_equal(np.isinf(mat), np.isinf(ref))
        finite = np.isfinite(ref)
        assert np.abs(mat[finite] - ref[finite]).max() < 1e-9
        assert np.allclose(np.diag(mat), 0.0, atol=1e-9)

    def test_backends_agree(self, trajs):
        a = pairwise_matrix(trajs, "dtw", backend="python")
        b = pairwise_matrix(trajs, "dtw", backend="numpy")
        assert np.abs(a - b).max() < 1e-9

    def test_follows_global_backend(self, trajs):
        with use_backend("numpy"):
            mat = pairwise_matrix(trajs, "dtw")
        assert np.abs(mat - pairwise_matrix(trajs, "dtw")).max() < 1e-9

    def test_workers_equivalent(self, trajs):
        serial = pairwise_matrix(trajs, "erp", backend="numpy")
        threaded = pairwise_matrix(trajs, "erp", backend="numpy", workers=4)
        assert np.array_equal(serial, threaded)

    def test_ma_computes_full_matrix(self, trajs):
        """MA is asymmetric: the spec flags it and the engine must not
        mirror the upper triangle."""
        spec = get_distance("ma")
        assert not spec.symmetric
        mat = pairwise_matrix(trajs, "ma")
        ref = np.array([[ma(a, b) for b in trajs] for a in trajs])
        assert np.abs(mat - ref).max() < 1e-12
        assert not np.array_equal(mat, mat.T)

    def test_forced_symmetric_override(self, trajs):
        full = pairwise_matrix(trajs, "dtw", backend="numpy",
                               symmetric=False)
        mirrored = pairwise_matrix(trajs, "dtw", backend="numpy",
                                   symmetric=True)
        assert np.abs(full - mirrored).max() < 1e-9

    def test_accepts_prebuilt_spec(self, trajs):
        spec = get_distance("lcss", eps=3.0, backend="numpy")
        mat = pairwise_matrix(trajs, spec)
        assert np.abs(
            mat - pairwise_matrix(trajs, "lcss", eps=3.0, backend="numpy")
        ).max() == 0.0

    def test_spec_plus_params_rejected(self, trajs):
        spec = get_distance("dtw")
        with pytest.raises(TypeError):
            pairwise_matrix(trajs, spec, eps=1.0)

    def test_empty_trajectory_entries(self, trajs):
        withempty = list(trajs) + [Trajectory([])]
        mat = pairwise_matrix(withempty, "dtw", backend="numpy")
        assert np.all(np.isinf(mat[-1, :-1]))
        assert np.all(np.isinf(mat[:-1, -1]))
        assert mat[-1, -1] == 0.0


class TestCrossMatrix:
    def test_matches_pairwise_block(self, trajs):
        queries = trajs[:3]
        mat = cross_matrix(queries, trajs, "dtw", backend="numpy")
        assert mat.shape == (3, len(trajs))
        square = pairwise_matrix(trajs, "dtw", backend="numpy")
        assert np.abs(mat - square[:3]).max() < 1e-9

    def test_every_registry_metric_runs(self, trajs):
        small = [t for t in trajs if len(t) >= 2][:3]
        for name in list_distances():
            params = {"eps": 3.0} if name in ("edr", "lcss") else {}
            mat = cross_matrix(small, small, name, **params)
            assert mat.shape == (3, 3)
            assert np.all(np.isfinite(mat))

    def test_unknown_metric(self, trajs):
        with pytest.raises(KeyError):
            cross_matrix(trajs, trajs, "sspd")

    def test_workers_equivalent(self, trajs):
        serial = cross_matrix(trajs, trajs, "lcss", eps=3.0,
                              backend="numpy")
        threaded = cross_matrix(trajs, trajs, "lcss", eps=3.0,
                                backend="numpy", workers=3)
        assert np.array_equal(serial, threaded)
