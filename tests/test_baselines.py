"""Unit tests for the baseline distance functions (Table I comparators)."""

import math

import numpy as np
import pytest

from repro.core import Trajectory
from repro.baselines import (
    MAParams,
    dissim,
    dtw,
    edr,
    edr_normalized,
    erp,
    lcss,
    lcss_distance,
    lcss_length,
    lp_norm,
    ma,
)

from helpers import random_walk_trajectory


LINE = Trajectory.from_xy([(0, 0), (1, 0), (2, 0), (3, 0)])
SHIFTED = Trajectory.from_xy([(0, 5), (1, 5), (2, 5), (3, 5)])


class TestDTW:
    def test_identity(self):
        assert dtw(LINE, LINE) == 0.0

    def test_parallel_lines(self):
        assert dtw(LINE, SHIFTED) == pytest.approx(20.0)  # 4 matches x 5

    def test_empty_cases(self):
        assert dtw(Trajectory([]), Trajectory([])) == 0.0
        assert dtw(LINE, Trajectory([])) == math.inf

    def test_symmetry(self, rng):
        a = random_walk_trajectory(rng, 6)
        b = random_walk_trajectory(rng, 9)
        assert dtw(a, b) == pytest.approx(dtw(b, a))

    def test_many_to_one_absorbs_time_shift(self):
        """DTW's raison d'etre: a point repeated on one side is free."""
        a = Trajectory.from_xy([(0, 0), (1, 0), (2, 0)])
        b = Trajectory.from_xy([(0, 0), (0, 0), (1, 0), (2, 0)])
        assert dtw(a, b) == 0.0

    def test_window_constrains(self, rng):
        a = random_walk_trajectory(rng, 10)
        b = random_walk_trajectory(rng, 10)
        assert dtw(a, b, window=1) >= dtw(a, b) - 1e-9


class TestLCSS:
    def test_identical_full_match(self):
        assert lcss_length(LINE, LINE, eps=0.5) == 4
        assert lcss(LINE, LINE, eps=0.5) == 1.0
        assert lcss_distance(LINE, LINE, eps=0.5) == 0.0

    def test_no_match_beyond_eps(self):
        assert lcss_length(LINE, SHIFTED, eps=0.5) == 0

    def test_eps_is_per_dimension(self):
        a = Trajectory.from_xy([(0, 0)])
        b = Trajectory.from_xy([(0.9, 0.9)])
        # euclidean distance 1.27 > 1, but per-dim deltas are < 1
        assert lcss_length(a, b, eps=1.0) == 1

    def test_subsequence_not_substring(self):
        a = Trajectory.from_xy([(0, 0), (5, 5), (1, 0), (2, 0)])
        b = Trajectory.from_xy([(0, 0), (1, 0), (2, 0)])
        assert lcss_length(a, b, eps=0.1) == 3

    def test_empty(self):
        assert lcss_distance(Trajectory([]), Trajectory([]), eps=1.0) == 0.0
        assert lcss_distance(LINE, Trajectory([]), eps=1.0) == 1.0

    def test_monotone_in_eps(self, rng):
        a = random_walk_trajectory(rng, 8)
        b = random_walk_trajectory(rng, 8)
        assert lcss_length(a, b, eps=0.5) <= lcss_length(a, b, eps=5.0)


class TestERP:
    def test_identity(self):
        assert erp(LINE, LINE) == 0.0

    def test_empty_is_gap_cost(self):
        t = Trajectory.from_xy([(3, 4), (6, 8)])
        assert erp(t, Trajectory([])) == pytest.approx(5.0 + 10.0)

    def test_triangle_inequality(self, rng):
        """ERP is a metric — spot-check the triangle inequality."""
        for _ in range(25):
            a = random_walk_trajectory(rng, int(rng.integers(2, 7)))
            b = random_walk_trajectory(rng, int(rng.integers(2, 7)))
            c = random_walk_trajectory(rng, int(rng.integers(2, 7)))
            assert erp(a, c) <= erp(a, b) + erp(b, c) + 1e-9

    def test_symmetry(self, rng):
        a = random_walk_trajectory(rng, 5)
        b = random_walk_trajectory(rng, 8)
        assert erp(a, b) == pytest.approx(erp(b, a))

    def test_custom_gap_point(self):
        a = Trajectory.from_xy([(10, 10)])
        assert erp(a, Trajectory([]), gap=(10, 10)) == 0.0


class TestEDR:
    def test_identity(self):
        assert edr(LINE, LINE, eps=0.5) == 0

    def test_length_difference_floor(self, rng):
        a = random_walk_trajectory(rng, 4)
        b = random_walk_trajectory(rng, 9)
        assert edr(a, b, eps=1.0) >= 5

    def test_paper_fig1c_threshold_flip(self):
        """Fig. 1(c)/Sec. II-4: distance 3 at eps=2 but 0 at eps=3."""
        t1 = Trajectory([(0, 0, 0), (0, 50, 50), (0, 100, 100)])
        t2 = Trajectory([(0, 3, 0), (0, 53, 50), (0, 103, 100)])
        assert edr(t1, t2, eps=2.0) == 3
        assert edr(t1, t2, eps=3.0) == 0

    def test_empty(self):
        assert edr(Trajectory([]), LINE, eps=1.0) == 4
        assert edr(Trajectory([]), Trajectory([]), eps=1.0) == 0

    def test_normalized_range(self, rng):
        a = random_walk_trajectory(rng, 6)
        b = random_walk_trajectory(rng, 9)
        assert 0.0 <= edr_normalized(a, b, eps=1.0) <= 1.0

    def test_symmetry(self, rng):
        a = random_walk_trajectory(rng, 6)
        b = random_walk_trajectory(rng, 9)
        assert edr(a, b, eps=1.0) == edr(b, a, eps=1.0)


class TestDISSIM:
    def test_identity(self):
        assert dissim(LINE, LINE) == pytest.approx(0.0)

    def test_parallel_constant_distance(self):
        """Two synchronized parallel lines: integral = d x duration."""
        a = Trajectory([(0, 0, 0), (10, 0, 10)])
        b = Trajectory([(0, 3, 0), (10, 3, 10)])
        assert dissim(a, b) == pytest.approx(30.0)

    def test_empty_is_inf(self):
        assert dissim(Trajectory([]), LINE) == math.inf

    def test_speed_sensitivity(self):
        """Same contour at different speeds looks dissimilar to DISSIM —
        the Table-I weakness."""
        fast_then_slow = Trajectory([(0, 0, 0), (8, 0, 2), (10, 0, 10)])
        slow_then_fast = Trajectory([(0, 0, 0), (2, 0, 8), (10, 0, 10)])
        assert dissim(fast_then_slow, slow_then_fast) > 10.0

    def test_disjoint_windows(self):
        a = Trajectory([(0, 0, 0), (1, 0, 1)])
        b = Trajectory([(5, 0, 100), (6, 0, 101)])
        assert dissim(a, b) >= 0.0


class TestMA:
    def test_identity(self):
        assert ma(LINE, LINE) == pytest.approx(0.0)

    def test_empty(self):
        assert ma(Trajectory([]), Trajectory([])) == 0.0
        assert ma(LINE, Trajectory([])) == pytest.approx(1.0)

    def test_interpolated_matching_beats_point_matching(self):
        """MA matches to non-sampled points: a phase-shifted copy of a line
        costs almost nothing even though no samples coincide."""
        a = Trajectory.from_xy([(0, 0), (2, 0), (4, 0), (6, 0)])
        b = Trajectory.from_xy([(1, 0), (3, 0), (5, 0)])
        assert ma(a, b) < 0.35

    def test_fig1d_ordering_pathology(self):
        """Fig. 1(d): MA cannot distinguish in-order from out-of-order
        traversal of equidistant points, while EDwP can."""
        from repro.eval.feature_matrix import fig1d_ordering_scenario
        from repro.core import edwp

        t1, t2, t3 = fig1d_ordering_scenario()
        ratio_ma = ma(t1, t2) / max(ma(t3, t2), 1e-12)
        ratio_edwp = edwp(t1, t2) / max(edwp(t3, t2), 1e-12)
        assert ratio_ma == pytest.approx(1.0, abs=0.05)
        assert ratio_edwp > 1.3

    def test_params_threshold_dependence(self, rng):
        """MA is threshold-dependent (Table I): results move with params."""
        a = random_walk_trajectory(rng, 8)
        b = random_walk_trajectory(rng, 8)
        loose = ma(a, b, MAParams(gap_penalty=100.0, match_threshold=100.0))
        tight = ma(a, b, MAParams(gap_penalty=0.01, match_threshold=0.01))
        assert loose != pytest.approx(tight)


class TestLpNorm:
    def test_identity(self):
        assert lp_norm(LINE, LINE) == 0.0

    def test_parallel(self):
        assert lp_norm(LINE, SHIFTED) == pytest.approx((4 * 25.0) ** 0.5)

    def test_length_padding(self):
        a = Trajectory.from_xy([(0, 0), (1, 0)])
        b = Trajectory.from_xy([(0, 0), (1, 0), (1, 0)])
        assert lp_norm(a, b) == 0.0

    def test_inf_norm(self):
        assert lp_norm(LINE, SHIFTED, p=math.inf) == 5.0

    def test_empty(self):
        assert lp_norm(Trajectory([]), Trajectory([])) == 0.0
        assert lp_norm(LINE, Trajectory([])) == math.inf
