"""Tests for the Table-I probe machinery and Fig. 1 scenarios."""

import pytest

from repro.baselines import get_distance
from repro.core import edwp
from repro.eval.feature_matrix import (
    PAPER_TABLE_I,
    feature_matrix,
    fig1d_ordering_scenario,
    format_feature_table,
    probe_inter_sampling,
    probe_intra_sampling,
    probe_phase,
    probe_time_shift,
)


EDWP = get_distance("edwp").fn
EDR = get_distance("edr", eps=3.0).fn
DISSIM = get_distance("dissim").fn


class TestProbes:
    def test_edwp_handles_everything(self):
        """The paper's headline row of Table I."""
        for probe in (probe_time_shift, probe_inter_sampling,
                      probe_intra_sampling, probe_phase):
            assert probe(EDWP).handled, probe.__name__

    def test_edr_fails_sampling_probes(self):
        """Table I: EDR is not robust to sampling-rate variation."""
        assert not probe_inter_sampling(EDR).handled
        assert not probe_intra_sampling(EDR).handled

    def test_dissim_fails_time_shift(self):
        """Table I: DISSIM cannot absorb local time shifts."""
        assert not probe_time_shift(DISSIM).handled

    def test_dissim_handles_inter_sampling(self):
        """Table I: DISSIM compares continuous motion, so resampling the
        same motion is free."""
        assert probe_inter_sampling(DISSIM).handled

    def test_probe_ratio_properties(self):
        p = probe_inter_sampling(EDWP)
        assert p.nuisance_distance >= 0
        assert p.reference_distance > 0
        assert p.ratio == p.nuisance_distance / p.reference_distance


class TestFig1d:
    def test_scenario_structure(self):
        t1, t2, t3 = fig1d_ordering_scenario()
        # all of T1/T3's points are at distance 1 from T2's line
        for t in (t1, t3):
            assert all(abs(row[1] - 1.0) < 1e-9 for row in t.data)

    def test_edwp_separates_orderings(self):
        t1, t2, t3 = fig1d_ordering_scenario()
        assert edwp(t3, t2) < edwp(t1, t2)


class TestMatrixRendering:
    def test_matrix_and_table(self):
        metrics = {"EDwP": EDWP, "EDR": EDR}
        results = feature_matrix(metrics)
        assert set(results) == {"EDwP", "EDR"}
        table = format_feature_table(results, {"EDwP": True, "EDR": False})
        assert "EDwP" in table
        assert "time_shift" in table

    def test_paper_table_shape(self):
        assert set(PAPER_TABLE_I) == {
            "DTW", "LCSS", "ERP", "EDR", "DISSIM", "MA", "EDwP"
        }
        assert PAPER_TABLE_I["EDwP"] == (True, True, True, True, True)
