"""EDwP unit tests: paper anchors, base cases, invariants, alignment."""

import math

import numpy as np
import pytest

from repro.core import Trajectory, edwp, edwp_alignment, edwp_avg
from repro.core.edwp import coverage, rep_cost


class TestPaperAnchors:
    """Every fully-specified EDwP number printed in the paper."""

    def test_appendix_a_counterexample(self, paper_appendix_trajectories):
        t1, t2, t3 = paper_appendix_trajectories
        assert edwp(t1, t2) == pytest.approx(1.0)
        assert edwp(t2, t3) == pytest.approx(1.0)
        assert edwp(t1, t3) == pytest.approx(4.0)

    def test_triangle_inequality_violated(self, paper_appendix_trajectories):
        """Theorem 1: EDwP(T1,T2) + EDwP(T2,T3) < EDwP(T1,T3)."""
        t1, t2, t3 = paper_appendix_trajectories
        assert edwp(t1, t2) + edwp(t2, t3) < edwp(t1, t3)

    def test_example1_insert_and_rep_cost(self, fig2_trajectories):
        """Example 1: ins(T1,T2) projects (2,7) to (0,7) on T1.e1 and the
        following rep costs 4 (unweighted), 4 x 14 = 56 weighted."""
        t1, t2 = fig2_trajectories
        result = edwp_alignment(t1, t2)
        first = result.edits[0]
        assert first.op == "ins1"
        assert first.piece1[1] == pytest.approx((0.0, 7.0))
        assert first.piece2 == ((2.0, 0.0), (2.0, 7.0))
        assert first.cost == pytest.approx(56.0)

    def test_rep_cost_eq2(self):
        """Eq. 2 on the Example-1 segments: 2 + 2 = 4."""
        assert rep_cost((0, 0), (0, 7), (2, 0), (2, 7)) == pytest.approx(4.0)

    def test_coverage_eq3(self):
        """Eq. 3 on the Example-1 segments: 7 + 7 = 14."""
        assert coverage((0, 0), (0, 7), (2, 0), (2, 7)) == pytest.approx(14.0)


class TestBaseCases:
    def test_both_empty(self):
        assert edwp(Trajectory([]), Trajectory([])) == 0.0

    def test_one_empty(self):
        t = Trajectory.from_xy([(0, 0), (1, 1)])
        assert edwp(Trajectory([]), t) == math.inf
        assert edwp(t, Trajectory([])) == math.inf

    def test_single_points_have_no_segments(self):
        """|T| counts segments: two single-point trajectories are both
        'empty' under the recursion and get distance 0."""
        a = Trajectory([(5, 5, 0)])
        b = Trajectory([(9, 9, 0)])
        assert edwp(a, b) == 0.0

    def test_single_point_vs_segments_is_inf(self):
        a = Trajectory([(5, 5, 0)])
        b = Trajectory.from_xy([(0, 0), (1, 1)])
        assert edwp(a, b) == math.inf


class TestInvariants:
    def test_identity(self, rng):
        for _ in range(10):
            t = Trajectory.from_xy(rng.uniform(0, 10, (6, 2)))
            assert edwp(t, t) == pytest.approx(0.0, abs=1e-9)

    def test_symmetry(self, rng):
        for _ in range(20):
            a = Trajectory.from_xy(rng.uniform(0, 10, (int(rng.integers(2, 8)), 2)))
            b = Trajectory.from_xy(rng.uniform(0, 10, (int(rng.integers(2, 8)), 2)))
            assert edwp(a, b) == pytest.approx(edwp(b, a), rel=1e-9)

    def test_non_negative(self, rng):
        for _ in range(20):
            a = Trajectory.from_xy(rng.uniform(0, 10, (5, 2)))
            b = Trajectory.from_xy(rng.uniform(0, 10, (7, 2)))
            assert edwp(a, b) >= 0.0

    def test_timestamps_do_not_affect_distance(self, rng):
        xy_a = rng.uniform(0, 10, (5, 2))
        xy_b = rng.uniform(0, 10, (6, 2))
        a1 = Trajectory.from_xy(xy_a, dt=1.0)
        a2 = Trajectory.from_xy(xy_a, dt=37.0)
        b = Trajectory.from_xy(xy_b, dt=5.0)
        assert edwp(a1, b) == pytest.approx(edwp(a2, b))

    def test_translation_invariance(self, rng):
        a = Trajectory.from_xy(rng.uniform(0, 10, (5, 2)))
        b = Trajectory.from_xy(rng.uniform(0, 10, (6, 2)))
        assert edwp(a.translated(100, -50), b.translated(100, -50)) == (
            pytest.approx(edwp(a, b), rel=1e-9)
        )

    def test_separated_trajectories_cost_scales(self):
        """Parallel lines at distance d cost ~ 2d x 2L (one rep)."""
        a = Trajectory.from_xy([(0, 0), (0, 10)])
        b = Trajectory.from_xy([(3, 0), (3, 10)])
        assert edwp(a, b) == pytest.approx((3 + 3) * (10 + 10))


class TestDynamicInterpolationRobustness:
    """The core claim: EDwP is insensitive to re-sampling of the same path."""

    def test_densified_copy_is_near_zero(self, rng):
        base = Trajectory.from_xy([(0, 0), (10, 0), (10, 10), (20, 10)])
        dense = base
        for seg in (2, 0, 1):
            dense = dense.with_point_inserted(seg, 0.37)
        assert edwp(base, dense) == pytest.approx(0.0, abs=1e-9)

    def test_inserting_point_rarely_hurts(self, rng):
        """Lemma 3's direction: refining one side should not increase the
        distance.  The Viterbi DP (DESIGN.md) is a heuristic, so the test
        tolerates rare small regressions but fails on systematic ones."""
        regressions = 0
        for _ in range(40):
            a = Trajectory.from_xy(rng.uniform(0, 10, (5, 2)))
            b = Trajectory.from_xy(rng.uniform(0, 10, (5, 2)))
            base = edwp(a, b)
            seg = int(rng.integers(0, b.num_segments))
            refined = edwp(a, b.with_point_inserted(seg, float(rng.uniform(0.1, 0.9))))
            if refined > base * 1.10 + 1e-9:
                regressions += 1
        assert regressions <= 3


class TestEdwpAvg:
    def test_eq4_normalization(self, fig2_trajectories):
        t1, t2 = fig2_trajectories
        assert edwp_avg(t1, t2) == pytest.approx(
            edwp(t1, t2) / (t1.length + t2.length)
        )

    def test_degenerate_lengths(self):
        a = Trajectory([(1, 1, 0), (1, 1, 5)])  # zero length, one segment
        assert edwp_avg(a, a) == 0.0

    def test_identity_zero(self):
        t = Trajectory.from_xy([(0, 0), (5, 5), (10, 0)])
        assert edwp_avg(t, t) == pytest.approx(0.0, abs=1e-12)


class TestAlignment:
    def test_edit_costs_sum_to_distance(self, rng):
        for _ in range(15):
            a = Trajectory.from_xy(rng.uniform(0, 10, (int(rng.integers(2, 7)), 2)))
            b = Trajectory.from_xy(rng.uniform(0, 10, (int(rng.integers(2, 7)), 2)))
            result = edwp_alignment(a, b)
            assert sum(e.cost for e in result.edits) == pytest.approx(
                result.distance, rel=1e-9, abs=1e-9
            )
            assert result.distance == pytest.approx(edwp(a, b))

    def test_alignment_pieces_are_contiguous(self, rng):
        a = Trajectory.from_xy(rng.uniform(0, 10, (5, 2)))
        b = Trajectory.from_xy(rng.uniform(0, 10, (6, 2)))
        edits = edwp_alignment(a, b).edits
        for prev, cur in zip(edits[:-1], edits[1:]):
            assert prev.piece1[1] == pytest.approx(cur.piece1[0])
            assert prev.piece2[1] == pytest.approx(cur.piece2[0])

    def test_alignment_spans_both_trajectories(self, rng):
        a = Trajectory.from_xy(rng.uniform(0, 10, (4, 2)))
        b = Trajectory.from_xy(rng.uniform(0, 10, (5, 2)))
        edits = edwp_alignment(a, b).edits
        assert edits[0].piece1[0] == pytest.approx(tuple(a.data[0, :2]))
        assert edits[0].piece2[0] == pytest.approx(tuple(b.data[0, :2]))
        assert edits[-1].piece1[1] == pytest.approx(tuple(a.data[-1, :2]))
        assert edits[-1].piece2[1] == pytest.approx(tuple(b.data[-1, :2]))

    def test_empty_alignment(self):
        result = edwp_alignment(Trajectory([]), Trajectory([]))
        assert result.distance == 0.0
        assert result.edits == []
