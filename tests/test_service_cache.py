"""LRU result cache coverage (ISSUE 6): the unit behaviour of
:class:`repro.service.cache.LRUCache` and the service-level contract —
cached results deep-equal fresh computations, hit-vs-computed is visible
in the per-request ``TrajTreeStats`` deltas, and a new index snapshot
invalidates every cached entry.
"""

import asyncio

import pytest

from repro.datasets import generate_beijing
from repro.index import TrajTree
from repro.service import (
    LRUCache,
    QueryRequest,
    QueryService,
    ServiceConfig,
)


@pytest.fixture(scope="module")
def tree():
    db = generate_beijing(24, seed=7)
    return TrajTree(db, normalized=True, num_vps=4, seed=7, backend="numpy")


@pytest.fixture(scope="module")
def queries():
    return generate_beijing(6, seed=1007)


def submit_all(service, requests):
    async def run():
        answers = []
        for request in requests:
            answers.append(await service.submit(request))
        await service.aclose()
        return answers

    return asyncio.run(run())


class TestLRUCacheUnit:
    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key.upper())
        assert cache.get("a") == "A"          # refresh 'a'
        cache.put("d", "D")                   # evicts 'b', the LRU
        assert cache.get("b") is None
        assert [k for k in cache.keys()] == ["c", "a", "d"]

    def test_put_refreshes_recency_too(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)                    # overwrite refreshes 'a'
        cache.put("c", 3)                     # so 'b' is the victim
        assert cache.get("b") is None
        assert cache.get("a") == 10
        assert cache.get("c") == 3

    def test_counters_track_hits_misses_evictions(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        cache.put("b", 2)
        cache.put("c", 3)
        counters = cache.counters()
        assert counters == {
            "hits": 1, "misses": 1, "evictions": 1,
            "size": 2, "capacity": 2,
        }

    def test_capacity_zero_disables_storage(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert cache.counters()["size"] == 0

    def test_clear_empties_but_keeps_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert cache.get("a") is None
        counters = cache.counters()
        assert counters["size"] == 0
        assert counters["hits"] == 1
        assert counters["misses"] == 1


class TestServiceCacheContract:
    def test_hit_deep_equals_fresh_and_reports_zero_tree_work(self, tree,
                                                              queries):
        service = QueryService(tree, ServiceConfig(
            window=0.0, cache_capacity=16,
        ))
        request = QueryRequest("knn", queries[0], 4)
        first, second = submit_all(service, [request, request])

        # the fresh computation did tree work and says so
        assert first.meta["computed"] is True
        assert first.meta["cache_hit"] is False
        assert sum(first.meta["tree_stats"].values()) > 0

        # the hit is byte-for-byte the same answer with zero tree deltas
        assert second.results == first.results == tree.knn(queries[0], 4)
        assert second.meta["cache_hit"] is True
        assert second.meta["computed"] is False
        assert all(v == 0 for v in second.meta["tree_stats"].values())

        stats = service.stats_dict()
        assert stats["cache_hits"] == 1
        assert stats["computed"] == 1
        assert stats["cache"]["hits"] == 1
        # aggregate tree totals count the computation exactly once: the
        # hit added nothing
        assert stats["tree"] == first.meta["tree_stats"]

    def test_mutating_returned_results_does_not_poison_cache(self, tree,
                                                             queries):
        request = QueryRequest("range", queries[1], 200.0)
        expected = tree.range_query(queries[1], 200.0)

        async def run():
            service = QueryService(tree, ServiceConfig(
                window=0.0, cache_capacity=16,
            ))
            first = await service.submit(request)
            # a careless caller scribbling on its response list must not
            # corrupt what later hits are served
            first.results.append(("junk", -1.0))
            first.results.reverse()
            second = await service.submit(request)
            await service.aclose()
            return second

        second = asyncio.run(run())
        assert second.meta["cache_hit"] is True
        assert second.results == expected

    def test_snapshot_bump_invalidates_cache(self, queries):
        db_a = generate_beijing(24, seed=7)
        db_b = generate_beijing(24, seed=8)
        tree_a = TrajTree(db_a, normalized=True, num_vps=4, seed=7,
                          backend="numpy")
        tree_b = TrajTree(db_b, normalized=True, num_vps=4, seed=7,
                          backend="numpy")
        request = QueryRequest("knn", queries[2], 3)

        async def run():
            service = QueryService(tree_a, ServiceConfig(
                window=0.0, cache_capacity=16,
            ))
            on_a = await service.submit(request)
            hit_a = await service.submit(request)
            new_id = service.set_tree(tree_b)
            on_b = await service.submit(request)
            hit_b = await service.submit(request)
            await service.aclose()
            return on_a, hit_a, new_id, on_b, hit_b, service

        on_a, hit_a, new_id, on_b, hit_b, service = asyncio.run(run())
        assert on_a.results == tree_a.knn(queries[2], 3)
        assert hit_a.meta["cache_hit"] is True
        assert new_id == 1
        # the swap recomputed on the new tree rather than serving stale
        assert on_b.meta["cache_hit"] is False
        assert on_b.meta["computed"] is True
        assert on_b.meta["snapshot_id"] == 1
        assert on_b.results == tree_b.knn(queries[2], 3)
        assert on_b.results != on_a.results
        assert hit_b.meta["cache_hit"] is True
        assert hit_b.results == on_b.results
        assert service.stats_dict()["cache"]["size"] == 1

    def test_service_eviction_recomputes_evicted_query(self, tree, queries):
        service = QueryService(tree, ServiceConfig(
            window=0.0, cache_capacity=2,
        ))
        r0 = QueryRequest("knn", queries[0], 3)
        r1 = QueryRequest("knn", queries[1], 3)
        r2 = QueryRequest("knn", queries[2], 3)
        answers = submit_all(service, [r0, r1, r2, r0])
        # r2 evicted r0 (capacity 2), so the second r0 recomputed
        assert answers[3].meta["cache_hit"] is False
        assert answers[3].meta["computed"] is True
        assert answers[3].results == answers[0].results
        counters = service.stats_dict()["cache"]
        # two evictions: r2 pushed out r0, then re-caching r0 pushed out r1
        assert counters["evictions"] == 2
        assert counters["size"] == 2
