"""Tests for TrajTree's auxiliary features: storage accounting, pruning
configuration, and the cheap rectangle pre-filter bound."""

import numpy as np
import pytest

from repro.core import Trajectory, edwp
from repro.core.geometry import polyline_rect_distance, point_rect_distance
from repro.index import TrajTree

from helpers import random_walk_trajectory


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(31)
    return [
        random_walk_trajectory(rng, int(rng.integers(4, 10)))
        for _ in range(50)
    ]


class TestPolylineRectDistance:
    def test_single_point(self):
        assert polyline_rect_distance([(15, 10)], 0, 0, 10, 10) == 5.0

    def test_crossing_is_zero(self):
        assert polyline_rect_distance([(-5, 5), (15, 5)], 0, 0, 10, 10) == 0.0

    def test_matches_per_segment_scan(self, rng):
        from repro.core.geometry import segment_rect_distance

        for _ in range(100):
            pts = rng.uniform(-5, 5, (int(rng.integers(2, 7)), 2))
            x0, y0 = rng.uniform(-5, 5, 2)
            w, h = rng.uniform(0.1, 4, 2)
            rect = (x0, y0, x0 + w, y0 + h)
            got = polyline_rect_distance(pts, *rect)
            want = min(
                segment_rect_distance(pts[i], pts[i + 1], *rect)
                for i in range(len(pts) - 1)
            )
            assert got == pytest.approx(want, abs=1e-9)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            polyline_rect_distance(np.empty((0, 2)), 0, 0, 1, 1)


class TestQuickBound:
    def test_quick_bound_underestimates_edwp(self, db):
        """2 * dist(polyline, union rect) * len(Q) <= EDwP(Q, T) for every
        subtree member — the pre-filter's soundness requirement."""
        tree = TrajTree(db, num_vps=10, seed=0)
        rng = np.random.default_rng(5)
        for _ in range(10):
            q = random_walk_trajectory(rng, 7)
            for child in tree.root.children:
                quick = tree._quick_bound(q, child)
                full = tree._bound(q, child)
                for tid in child.subtree_ids:
                    assert quick <= edwp(q, tree.get(tid)) + 1e-6
                # the pre-filter must never exceed the DP bound's role:
                # both underestimate, so max() in the query loop is sound
                assert quick >= 0.0
                assert full >= 0.0

    def test_disabling_quick_bound_keeps_exactness(self, db):
        tree = TrajTree(db, num_vps=10, seed=0, use_quick_bound=False)
        rng = np.random.default_rng(6)
        for _ in range(5):
            q = random_walk_trajectory(rng, 7)
            assert [t for t, _ in tree.knn(q, 5)] == [
                t for t, _ in tree.knn_scan(q, 5)
            ]

    def test_vp_levels_zero_keeps_exactness(self, db):
        tree = TrajTree(db, num_vps=10, seed=0, vp_levels=0)
        rng = np.random.default_rng(7)
        for _ in range(5):
            q = random_walk_trajectory(rng, 7)
            assert [t for t, _ in tree.knn(q, 5)] == [
                t for t, _ in tree.knn_scan(q, 5)
            ]

    def test_deep_vp_levels_keeps_exactness(self, db):
        tree = TrajTree(db, num_vps=10, seed=0, vp_levels=99,
                        min_node_size=6)
        rng = np.random.default_rng(8)
        for _ in range(5):
            q = random_walk_trajectory(rng, 7)
            assert [t for t, _ in tree.knn(q, 5)] == [
                t for t, _ in tree.knn_scan(q, 5)
            ]


class TestStorageSummary:
    def test_counts(self, db):
        tree = TrajTree(db, num_vps=10, seed=0, min_node_size=8)
        summary = tree.storage_summary()
        assert summary["trajectories"] == len(db)
        assert summary["nodes"] == tree.node_count()
        assert summary["leaves"] >= 1
        assert summary["boxes"] >= summary["nodes"]
        # vp_levels=1 by default: only the root stores descriptors
        assert summary["descriptor_entries"] == len(db) * min(
            10, tree.root.vantage.descriptors.shape[1]
        ) * 1 if tree.root.vantage is not None else 0

    def test_descriptor_storage_grows_with_vp_levels(self, db):
        shallow = TrajTree(db, num_vps=10, seed=0, vp_levels=1,
                           min_node_size=8)
        deep = TrajTree(db, num_vps=10, seed=0, vp_levels=5,
                        min_node_size=8)
        assert (
            deep.storage_summary()["descriptor_entries"]
            >= shallow.storage_summary()["descriptor_entries"]
        )

    def test_updates_reflected(self, db):
        tree = TrajTree(db[:20], num_vps=8, seed=0)
        before = tree.storage_summary()["trajectories"]
        rng = np.random.default_rng(9)
        tree.insert(random_walk_trajectory(rng, 6))
        assert tree.storage_summary()["trajectories"] == before + 1
