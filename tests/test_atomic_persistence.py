"""Crash-safe persistence: atomic writes, checksums, corruption matrix.

The acceptance contract of DESIGN.md ("Fault model and degraded
serving"): a crash simulated at *any byte offset* during a save never
yields a load that silently succeeds with wrong data — every outcome is
either the previous intact version or a typed error (``StoreError``,
``ShardLoadError``, ``ValueError``).  Plus the on-disk corruption matrix:
truncated arrays, bit-flipped payloads caught by sha256, missing shard
files, and stale temp siblings from a crashed save being ignored on load
and swept on the next save.
"""

import json
import pickle

import numpy as np
import pytest

from repro.index import TrajForest, TrajTree
from repro.index.persistence import (
    ShardLoadError,
    load_forest,
    load_tree,
    save_forest,
    save_tree,
)
from repro.store import ColumnarStore, StoreError
from repro.store.atomic import (
    IntegrityError,
    TMP_SUFFIX,
    atomic_write_bytes,
    cleanup_stale_temps,
    sha256_bytes,
    sha256_file,
    verify_checksum,
)
from repro.testing.faults import CrashInjected, FaultPlan, injected

from helpers import random_walk_trajectory


def make_db(seed, n=16):
    rng = np.random.default_rng(seed)
    return [random_walk_trajectory(rng, int(rng.integers(4, 9)))
            for _ in range(n)]


def assert_stores_identical(a: ColumnarStore, b: ColumnarStore):
    np.testing.assert_array_equal(np.asarray(a.points),
                                  np.asarray(b.points))
    np.testing.assert_array_equal(a.offsets, b.offsets)
    np.testing.assert_array_equal(a.ids, b.ids)


class TestAtomicWrite:
    def test_write_is_all_or_nothing(self, tmp_path):
        path = tmp_path / "blob.bin"
        checksum = atomic_write_bytes(path, b"first version")
        assert path.read_bytes() == b"first version"
        assert checksum == sha256_bytes(b"first version")
        assert checksum == sha256_file(path)

        # crash at every byte offset of the replacement payload: the
        # final name must keep the first version, bit for bit
        payload = b"second version, longer"
        for nbytes in range(len(payload) + 1):
            plan = FaultPlan().on(f"atomic.write:{path.name}",
                                  "truncate", nbytes)
            with injected(plan):
                with pytest.raises(CrashInjected):
                    atomic_write_bytes(path, payload)
            assert path.read_bytes() == b"first version"

    def test_crash_between_fsync_and_rename(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"old")
        plan = FaultPlan().on(f"atomic.rename:{path.name}", "crash")
        with injected(plan):
            with pytest.raises(CrashInjected):
                atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"old"

    def test_crash_leaves_temp_sibling_for_next_sweep(self, tmp_path):
        path = tmp_path / "blob.bin"
        with injected(FaultPlan().on("atomic.write:blob.bin",
                                     "truncate", 3)):
            with pytest.raises(CrashInjected):
                atomic_write_bytes(path, b"payload")
        temps = list(tmp_path.glob(f".*{TMP_SUFFIX}"))
        assert len(temps) == 1
        assert temps[0].read_bytes() == b"pay"
        removed = cleanup_stale_temps(tmp_path)
        assert removed == [temps[0].name]
        assert not list(tmp_path.glob(f".*{TMP_SUFFIX}"))

    def test_verify_checksum_raises_caller_type(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"data")
        verify_checksum(path, sha256_bytes(b"data"))
        with pytest.raises(IntegrityError, match="integrity"):
            verify_checksum(path, sha256_bytes(b"other"))
        with pytest.raises(StoreError):
            verify_checksum(path, sha256_bytes(b"other"),
                            error_cls=StoreError)


class TestStoreCrashSafety:
    """Crashes during ColumnarStore.save over an existing store."""

    @pytest.mark.parametrize("target", ["points.npy", "offsets.npy",
                                        "ids.npy", "meta.json"])
    def test_crash_mid_save_never_loads_wrong(self, tmp_path, target):
        root = tmp_path / "db.store"
        old = ColumnarStore.from_trajectories(make_db(1))
        old.save(root)
        new = ColumnarStore.from_trajectories(make_db(2))

        for nbytes in (0, 1, 57):
            with injected(FaultPlan().on(f"atomic.write:{target}",
                                         "truncate", nbytes)):
                with pytest.raises(CrashInjected):
                    new.save(root)
            # The one legal pair of outcomes: the old store, intact —
            # or a typed StoreError.  Never a quiet mixed/partial load.
            try:
                loaded = ColumnarStore.load(root, mmap=False)
            except StoreError:
                continue
            assert_stores_identical(loaded, old)

    def test_completed_save_overwrites_cleanly(self, tmp_path):
        root = tmp_path / "db.store"
        ColumnarStore.from_trajectories(make_db(1)).save(root)
        new = ColumnarStore.from_trajectories(make_db(2))
        new.save(root)
        assert_stores_identical(ColumnarStore.load(root, mmap=False), new)

    def test_stale_temps_ignored_on_load_and_swept_on_save(self, tmp_path):
        root = tmp_path / "db.store"
        store = ColumnarStore.from_trajectories(make_db(1))
        store.save(root)
        # a crashed save from some other process left temp siblings
        (root / f".points.npy.99999{TMP_SUFFIX}").write_bytes(b"garbage")
        (root / f".meta.json.99999{TMP_SUFFIX}").write_bytes(b"{")
        loaded = ColumnarStore.load(root, mmap=False)
        assert_stores_identical(loaded, store)
        store.save(root)      # next save sweeps them
        assert not list(root.glob(f".*{TMP_SUFFIX}"))

    def test_bit_flip_in_points_caught_by_checksum(self, tmp_path):
        root = tmp_path / "db.store"
        ColumnarStore.from_trajectories(make_db(1)).save(root)
        raw = bytearray((root / "points.npy").read_bytes())
        raw[len(raw) // 2] ^= 0x40    # flip one bit mid-data
        (root / "points.npy").write_bytes(bytes(raw))
        with pytest.raises(StoreError, match="integrity"):
            ColumnarStore.load(root, mmap=False)
        # without the checksum pass the flip would load silently — the
        # hash is what stands between bit rot and wrong answers
        ColumnarStore.load(root, mmap=False, verify=False)

    def test_missing_checksums_refused(self, tmp_path):
        root = tmp_path / "db.store"
        ColumnarStore.from_trajectories(make_db(1)).save(root)
        meta = json.loads((root / "meta.json").read_text())
        del meta["checksums"]
        (root / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(StoreError, match="checksums"):
            ColumnarStore.load(root, mmap=False)


class TestTreeCrashSafety:
    """Crashes during save_tree over an existing snapshot."""

    def test_crash_mid_save_keeps_old_tree(self, tmp_path):
        path = tmp_path / "index.pkl"
        db = make_db(3)
        old_tree = TrajTree(db[:10], num_vps=4, min_node_size=4, seed=1)
        save_tree(old_tree, path)
        new_tree = TrajTree(db, num_vps=4, min_node_size=4, seed=2)
        payload_len = len(pickle.dumps(
            {"magic": "x"}, protocol=pickle.HIGHEST_PROTOCOL))
        for nbytes in (0, 1, payload_len, 4096):
            with injected(FaultPlan().on("atomic.write:index.pkl",
                                         "truncate", nbytes)):
                with pytest.raises(CrashInjected):
                    save_tree(new_tree, path)
            loaded = load_tree(path)
            assert loaded.ids() == old_tree.ids()
            q = random_walk_trajectory(np.random.default_rng(9), 6)
            assert loaded.knn(q, 3) == old_tree.knn(q, 3)

    def test_truncated_pickle_is_a_typed_error(self, tmp_path):
        path = tmp_path / "index.pkl"
        save_tree(TrajTree(make_db(3), num_vps=4, seed=1), path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ValueError, match="truncated or corrupt"):
            load_tree(path)


class TestForestCrashSafety:
    @pytest.fixture()
    def forests(self):
        db = make_db(4, n=20)
        old = TrajForest(db[:12], num_shards=3, num_vps=4,
                         min_node_size=4, seed=1)
        new = TrajForest(db, num_shards=3, num_vps=4,
                         min_node_size=4, seed=2)
        return old, new

    def probe(self):
        return random_walk_trajectory(np.random.default_rng(8), 6)

    @pytest.mark.parametrize("target", ["shard_0000.pkl", "shard_0002.pkl",
                                        "forest.json"])
    def test_crash_mid_save_never_loads_wrong(self, tmp_path, target,
                                              forests):
        old, new = forests
        root = tmp_path / "forest"
        save_forest(old, root)
        with injected(FaultPlan().on(f"atomic.write:{target}",
                                     "truncate", 100)):
            with pytest.raises(CrashInjected):
                save_forest(new, root)
        # manifest-last ordering: either the old manifest still matches
        # its (old) shards, or the mix is detected as a shard error
        try:
            loaded = load_forest(root)
        except (ShardLoadError, ValueError):
            return
        assert loaded.ids() == old.ids()
        assert loaded.knn(self.probe(), 4) == old.knn(self.probe(), 4)

    def test_bit_flip_in_shard_caught_by_checksum(self, tmp_path, forests):
        old, _ = forests
        root = tmp_path / "forest"
        save_forest(old, root)
        raw = bytearray((root / "shard_0001.pkl").read_bytes())
        raw[len(raw) // 2] ^= 0x01
        (root / "shard_0001.pkl").write_bytes(bytes(raw))
        with pytest.raises(ShardLoadError, match="shard 1.*integrity"):
            load_forest(root)

    def test_stale_temps_swept_on_next_save(self, tmp_path, forests):
        old, _ = forests
        root = tmp_path / "forest"
        save_forest(old, root)
        (root / f".shard_0000.pkl.12345{TMP_SUFFIX}").write_bytes(b"junk")
        loaded = load_forest(root)       # temp sibling is invisible
        assert loaded.ids() == old.ids()
        save_forest(old, root)
        assert not list(root.glob(f".*{TMP_SUFFIX}"))

    def test_save_tree_returns_manifest_checksum(self, tmp_path, forests):
        old, _ = forests
        path = tmp_path / "one.pkl"
        checksum = save_tree(old.shards[0], path)
        assert checksum.startswith("sha256:")
        assert checksum == sha256_file(path)
