"""Three-backend differential harness (ISSUE 9).

One parameterized oracle matrix runs shared hypothesis strategies over
every dual-backend kernel — the EDwP family, the five baseline DPs and
the Theorem-2 box bound — and checks each non-reference backend
(``"numpy"``, ``"native"``) against the pure-Python reference to ``1e-9``
relative (exact for the integer edit/match counts and for ``inf``).

The strategies deliberately cover the shapes that break DP kernels:
ragged length pairs, length-1 trajectories (zero segments), duplicate
points (zero-length segments, degenerate projections), collinear runs
(projection clamps at ``t = 0``/``t = 1``), and quarter-grid coordinates
with matched epsilons so EDR's inclusive ``<= eps`` and LCSS's strict
``< eps`` are probed exactly *at* the boundary.

The ``"native"`` column runs everywhere: on machines without numba the
kernels execute un-jitted (the ``njit`` shim is an identity decorator),
which pins the kernel *logic* bit-for-bit; on machines with numba the
same tests exercise the actual compiled code (``TestNativeCompiled``
additionally asserts, skipif-numba-absent, that the kernels really are
jitted).  Availability is forced through the memoized probe
(``repro._native._AVAILABLE``) so backend *dispatch* — resolution, the
typed selection errors, every ``resolved == "native"`` branch — is
covered on every machine too (see ``TestBackendSelection`` and
``TestNativeFallback``).
"""

import math
import subprocess
import sys
from contextlib import contextmanager

import pytest
from hypothesis import given, settings, strategies as st

import repro._native as native
from repro import Trajectory, edwp, edwp_avg, edwp_many, set_backend, use_backend
from repro.core.edwp import (
    BACKENDS,
    KNOWN_BACKENDS,
    BackendError,
    NativeBackendUnavailableError,
    UnknownBackendError,
    available_backends,
    resolve_backend,
)
from repro.core.edwp_sub import (
    edwp_sub,
    edwp_sub_fast,
    edwp_sub_fast_queries,
    edwp_sub_many,
    prefix_dist,
)
from repro.baselines.dtw import dtw, dtw_many
from repro.baselines.edr import edr, edr_many
from repro.baselines.erp import erp, erp_many
from repro.baselines.frechet import discrete_frechet, frechet_many
from repro.baselines.lcss import lcss_distance_many, lcss_length
from repro.baselines.registry import get_distance
from repro.index.tboxseq import TBoxSeq, edwp_sub_box, edwp_sub_box_many

NUMBA_INSTALLED = native.numba_available()

#: The non-reference columns of the matrix, each checked against python.
MATRIX_BACKENDS = ["numpy", "native"]


@contextmanager
def backend_available(backend):
    """Make ``backend`` selectable for the duration of a test.

    For ``"native"`` this forces the memoized availability probe, which
    is exactly how a numba-install looks to the dispatch layer; without
    numba the kernels then run un-jitted, which is the point — the logic
    and every dispatch branch get covered on any machine.
    """
    if backend == "native":
        prev = native._AVAILABLE
        native._AVAILABLE = True
        try:
            yield
        finally:
            native._AVAILABLE = prev
    else:
        yield


def assert_matches(ref, got):
    """Cross-backend agreement: exact for ints and inf, 1e-9 relative
    (1e-12 absolute near zero) for float costs."""
    if isinstance(ref, int):
        assert got == ref
    elif math.isinf(ref):
        assert math.isinf(got) and (got > 0) == (ref > 0)
    else:
        assert abs(got - ref) <= max(1e-9 * abs(ref), 1e-12)


def assert_lists_match(ref, got):
    assert len(ref) == len(got)
    for r, g in zip(ref, got):
        assert_matches(r, g)


# --------------------------------------------------------------------- #
# shared strategies
# --------------------------------------------------------------------- #

# Quarter-grid coordinates: deltas between any two values are exact
# multiples of 0.25, so an eps drawn from the same grid lands matches
# exactly on the inclusive/strict boundary.
grid_coord = st.integers(min_value=-8, max_value=8).map(lambda k: k * 0.25)
free_coord = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


@st.composite
def trajectories(draw, min_len=1, max_len=10, coord=free_coord):
    """Trajectory strategy mixing the adversarial shapes.

    ``random``: arbitrary points; ``dup``: points resampled from a small
    pool, forcing exact duplicates (zero-length segments); ``collinear``:
    points on one line with monotone or repeated parameters (projection
    clamps); plain length-1 draws fall out of ``min_len=1``.
    """
    n = draw(st.integers(min_len, max_len))
    mode = draw(st.sampled_from(["random", "dup", "collinear"]))
    if mode == "dup":
        pool = [
            (draw(coord), draw(coord))
            for _ in range(draw(st.integers(1, max(1, n // 2 + 1))))
        ]
        pts = [pool[draw(st.integers(0, len(pool) - 1))] for _ in range(n)]
    elif mode == "collinear":
        x0, y0 = draw(coord), draw(coord)
        dx, dy = draw(coord), draw(coord)
        steps = [draw(st.integers(0, 3)) for _ in range(n)]
        pts, s = [], 0
        for k in steps:
            s += k
            pts.append((x0 + dx * s, y0 + dy * s))
    else:
        pts = [(draw(coord), draw(coord)) for _ in range(n)]
    return Trajectory([(x, y, float(i)) for i, (x, y) in enumerate(pts)])


def batches(**kwargs):
    return st.lists(trajectories(**kwargs), min_size=0, max_size=5)


eps_grid = st.sampled_from([0.25, 0.5, 1.0])

MATRIX_SETTINGS = settings(max_examples=25, deadline=None)


# --------------------------------------------------------------------- #
# the oracle matrix
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", MATRIX_BACKENDS)
class TestBackendMatrix:
    """python × numpy × native over every kernel, python as ground truth."""

    @MATRIX_SETTINGS
    @given(t1=trajectories(), t2=trajectories())
    def test_edwp_and_avg(self, backend, t1, t2):
        with backend_available(backend):
            assert_matches(edwp(t1, t2, backend="python"),
                           edwp(t1, t2, backend=backend))
            assert_matches(edwp_avg(t1, t2, backend="python"),
                           edwp_avg(t1, t2, backend=backend))

    @MATRIX_SETTINGS
    @given(q=trajectories(), targets=batches())
    def test_edwp_many(self, backend, q, targets):
        with backend_available(backend):
            assert_lists_match(
                edwp_many(q, targets, backend="python"),
                edwp_many(q, targets, backend=backend),
            )
            assert_lists_match(
                edwp_many(q, targets, normalized=True, backend="python"),
                edwp_many(q, targets, normalized=True, backend=backend),
            )

    @MATRIX_SETTINGS
    @given(t=trajectories(), s=trajectories())
    def test_edwp_sub_family(self, backend, t, s):
        with backend_available(backend):
            assert_matches(edwp_sub(t, s, backend="python"),
                           edwp_sub(t, s, backend=backend))
            assert_matches(edwp_sub_fast(t, s, backend="python"),
                           edwp_sub_fast(t, s, backend=backend))
            assert_matches(prefix_dist(t, s, backend="python"),
                           prefix_dist(t, s, backend=backend))

    @MATRIX_SETTINGS
    @given(t=trajectories(), targets=batches())
    def test_edwp_sub_many(self, backend, t, targets):
        with backend_available(backend):
            assert_lists_match(
                edwp_sub_many(t, targets, backend="python"),
                edwp_sub_many(t, targets, backend=backend),
            )

    @MATRIX_SETTINGS
    @given(queries=batches(), s=trajectories())
    def test_edwp_sub_fast_queries(self, backend, queries, s):
        with backend_available(backend):
            assert_lists_match(
                edwp_sub_fast_queries(queries, s, backend="python"),
                edwp_sub_fast_queries(queries, s, backend=backend),
            )

    @MATRIX_SETTINGS
    @given(t1=trajectories(min_len=0), t2=trajectories(min_len=0),
           window=st.sampled_from([0, 2]))
    def test_dtw(self, backend, t1, t2, window):
        with backend_available(backend):
            assert_matches(dtw(t1, t2, window=window, backend="python"),
                           dtw(t1, t2, window=window, backend=backend))

    @MATRIX_SETTINGS
    @given(t1=trajectories(coord=grid_coord),
           t2=trajectories(coord=grid_coord), eps=eps_grid)
    def test_edr_near_eps(self, backend, t1, t2, eps):
        with backend_available(backend):
            assert_matches(edr(t1, t2, eps, backend="python"),
                           edr(t1, t2, eps, backend=backend))

    @MATRIX_SETTINGS
    @given(t1=trajectories(), t2=trajectories(),
           gap=st.tuples(free_coord, free_coord))
    def test_erp(self, backend, t1, t2, gap):
        with backend_available(backend):
            assert_matches(erp(t1, t2, backend="python"),
                           erp(t1, t2, backend=backend))
            assert_matches(erp(t1, t2, gap=gap, backend="python"),
                           erp(t1, t2, gap=gap, backend=backend))

    @MATRIX_SETTINGS
    @given(t1=trajectories(coord=grid_coord),
           t2=trajectories(coord=grid_coord), eps=eps_grid)
    def test_lcss_near_eps(self, backend, t1, t2, eps):
        with backend_available(backend):
            assert_matches(lcss_length(t1, t2, eps, backend="python"),
                           lcss_length(t1, t2, eps, backend=backend))

    @MATRIX_SETTINGS
    @given(t1=trajectories(), t2=trajectories())
    def test_frechet(self, backend, t1, t2):
        with backend_available(backend):
            assert_matches(discrete_frechet(t1, t2, backend="python"),
                           discrete_frechet(t1, t2, backend=backend))

    @MATRIX_SETTINGS
    @given(base=trajectories(min_len=2), q=trajectories(),
           max_boxes=st.sampled_from([2, 4, 8]),
           thorough=st.booleans())
    def test_box_bound(self, backend, base, q, max_boxes, thorough):
        seq = TBoxSeq.from_trajectory(base, max_boxes=max_boxes)
        with backend_available(backend):
            assert_matches(
                edwp_sub_box(q, seq, thorough=thorough, backend="python"),
                edwp_sub_box(q, seq, thorough=thorough, backend=backend),
            )

    @MATRIX_SETTINGS
    @given(bases=st.lists(trajectories(min_len=2), min_size=0, max_size=4),
           q=trajectories(), thorough=st.booleans())
    def test_box_bound_many(self, backend, bases, q, thorough):
        seqs = [TBoxSeq.from_trajectory(b, max_boxes=4) for b in bases]
        with backend_available(backend):
            assert_lists_match(
                edwp_sub_box_many(q, seqs, thorough=thorough,
                                  backend="python"),
                edwp_sub_box_many(q, seqs, thorough=thorough,
                                  backend=backend),
            )

    @MATRIX_SETTINGS
    @given(q=trajectories(min_len=0), targets=batches(min_len=0))
    def test_batched_baselines(self, backend, q, targets):
        with backend_available(backend):
            assert_lists_match(dtw_many(q, targets, backend="python"),
                               dtw_many(q, targets, backend=backend))
            assert_lists_match(edr_many(q, targets, 0.5, backend="python"),
                               edr_many(q, targets, 0.5, backend=backend))
            assert_lists_match(erp_many(q, targets, backend="python"),
                               erp_many(q, targets, backend=backend))
            assert_lists_match(
                lcss_distance_many(q, targets, 0.5, backend="python"),
                lcss_distance_many(q, targets, 0.5, backend=backend),
            )
            assert_lists_match(frechet_many(q, targets, backend="python"),
                               frechet_many(q, targets, backend=backend))

    def test_global_switch_routes_this_backend(self, backend):
        """set_backend/use_backend (no per-call override) reach the same
        kernels: spot-check one value per family against python."""
        t1 = Trajectory([(0, 0, 0), (3, 4, 1), (6, 0, 2)])
        t2 = Trajectory([(1, 1, 0), (4, 5, 1), (7, 1, 2), (8, 2, 3)])
        seq = TBoxSeq.from_trajectory(t2, max_boxes=3)
        with backend_available(backend):
            with use_backend(backend):
                got = (edwp(t1, t2), edwp_sub(t1, t2), dtw(t1, t2),
                       edr(t1, t2, 0.5), edwp_sub_box(t1, seq))
        with use_backend("python"):
            ref = (edwp(t1, t2), edwp_sub(t1, t2), dtw(t1, t2),
                   edr(t1, t2, 0.5), edwp_sub_box(t1, seq))
        for r, g in zip(ref, got):
            assert_matches(r, g)


# --------------------------------------------------------------------- #
# selection-time errors (satellite: typed error naming valid backends)
# --------------------------------------------------------------------- #


class TestBackendSelection:
    def test_known_and_available_names(self):
        assert KNOWN_BACKENDS == ("python", "numpy", "native")
        avail = available_backends()
        assert avail[:2] == ("python", "numpy")
        assert ("native" in avail) == NUMBA_INSTALLED
        assert BACKENDS == avail

    @pytest.mark.parametrize("name", ["cuda", "", "NumPy", 42])
    def test_unknown_name_is_typed_and_descriptive(self, name):
        with pytest.raises(UnknownBackendError, match="unknown backend"):
            set_backend(name)
        with pytest.raises(BackendError) as excinfo:
            resolve_backend(name)
        # the message names every selectable backend
        for valid in available_backends():
            assert valid in str(excinfo.value)
        assert isinstance(excinfo.value, ValueError)   # compat contract

    def test_none_means_global_default_only_per_call(self):
        # per-call None defers to the global choice; the global setter
        # insists on a concrete name
        previous = set_backend("numpy")
        try:
            assert resolve_backend(None) == "numpy"
        finally:
            set_backend(previous)
        with pytest.raises(UnknownBackendError):
            set_backend(None)

    def test_registry_rejects_unknown_backend_at_selection_time(self):
        with pytest.raises(UnknownBackendError, match="unknown backend"):
            get_distance("dtw", backend="cuda")

    def test_trajtree_ctor_rejects_unknown_backend(self):
        from repro.index import TrajTree
        db = [Trajectory([(0, 0, 0), (1, 1, 1)]),
              Trajectory([(2, 2, 0), (3, 3, 1)])]
        with pytest.raises(UnknownBackendError, match="unknown backend"):
            TrajTree(db, backend="cuda")

    def test_cli_reports_backend_error_cleanly(self, capsys):
        from repro.cli import main
        prev = native._AVAILABLE
        native._AVAILABLE = False
        try:
            code = main(["--backend", "native", "table1"])
        finally:
            native._AVAILABLE = prev
        assert code == 2
        err = capsys.readouterr().err
        assert "numba" in err and "native" in err


# --------------------------------------------------------------------- #
# fallback behavior (satellite: simulate numba absent)
# --------------------------------------------------------------------- #


class TestNativeFallback:
    def test_native_unavailable_is_typed_error(self, monkeypatch):
        monkeypatch.setattr(native, "_AVAILABLE", False)
        with pytest.raises(NativeBackendUnavailableError) as excinfo:
            set_backend("native")
        assert isinstance(excinfo.value, ValueError)
        assert "numba" in str(excinfo.value)
        assert "pip install .[native]" in str(excinfo.value)
        with pytest.raises(NativeBackendUnavailableError):
            resolve_backend("native")
        with pytest.raises(NativeBackendUnavailableError):
            edwp(Trajectory([(0, 0, 0), (1, 1, 1)]),
                 Trajectory([(0, 1, 0), (1, 2, 1)]), backend="native")

    def test_numpy_paths_untouched_without_numba(self, monkeypatch):
        monkeypatch.setattr(native, "_AVAILABLE", False)
        assert available_backends() == ("python", "numpy")
        t1 = Trajectory([(0, 0, 0), (3, 4, 1)])
        t2 = Trajectory([(1, 1, 0), (4, 5, 1), (7, 1, 2)])
        previous = set_backend("numpy")
        try:
            assert_matches(edwp(t1, t2, backend="python"), edwp(t1, t2))
        finally:
            set_backend(previous)

    def test_importing_repro_never_imports_numba(self):
        """The package must stay importable — and numba-free — by default;
        run in a fresh interpreter so this session's state can't mask an
        eager import."""
        code = (
            "import sys; import repro; import repro.baselines.registry; "
            "import repro.index; import repro.service; "
            "assert 'numba' not in sys.modules, 'numba imported eagerly'; "
            "print('ok')"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"

    def test_probe_is_memoized_and_monkeypatchable(self, monkeypatch):
        monkeypatch.setattr(native, "_AVAILABLE", None)
        first = native.numba_available()
        assert native._AVAILABLE is first is NUMBA_INSTALLED


# --------------------------------------------------------------------- #
# compiled-tier sanity (skipif numba absent)
# --------------------------------------------------------------------- #


@pytest.mark.skipif(not NUMBA_INSTALLED, reason="numba not installed")
class TestNativeCompiled:
    def test_kernels_are_actually_jitted(self):
        from repro._native import kernels
        assert kernels.NUMBA
        # a numba dispatcher, not a plain function
        assert hasattr(kernels.edwp_value, "signatures")

    def test_warmup_compiles_and_values_agree(self):
        native.warmup()
        t1 = Trajectory([(0, 0, 0), (3, 4, 1), (6, 0, 2)])
        t2 = Trajectory([(1, 1, 0), (4, 5, 1), (7, 1, 2)])
        assert_matches(edwp(t1, t2, backend="python"),
                       edwp(t1, t2, backend="native"))
