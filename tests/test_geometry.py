"""Unit tests for the planar geometry substrate."""

import math

import numpy as np
import pytest

from repro.core.geometry import (
    clamp,
    interpolate,
    point_distance,
    point_rect_distance,
    point_segment_distance,
    polyline_length,
    project_point_on_rect,
    project_point_on_segment,
    project_rect_on_segment,
    segment_length,
    segment_rect_distance,
    squared_point_distance,
)


class TestPointDistance:
    def test_pythagorean(self):
        assert point_distance((0, 0), (3, 4)) == 5.0

    def test_zero(self):
        assert point_distance((1.5, -2.5), (1.5, -2.5)) == 0.0

    def test_symmetric(self):
        assert point_distance((1, 2), (4, 6)) == point_distance((4, 6), (1, 2))

    def test_squared_matches(self):
        d = point_distance((1, 2), (-3, 5))
        assert squared_point_distance((1, 2), (-3, 5)) == pytest.approx(d * d)


class TestInterpolate:
    def test_endpoints(self):
        assert interpolate((0, 0), (10, 20), 0.0) == (0.0, 0.0)
        assert interpolate((0, 0), (10, 20), 1.0) == (10.0, 20.0)

    def test_midpoint(self):
        assert interpolate((0, 0), (10, 20), 0.5) == (5.0, 10.0)


class TestProjectPointOnSegment:
    def test_interior_projection(self):
        p, t = project_point_on_segment((0, 0), (10, 0), (4, 3))
        assert p == (4.0, 0.0)
        assert t == pytest.approx(0.4)

    def test_clamps_before_start(self):
        p, t = project_point_on_segment((0, 0), (10, 0), (-5, 2))
        assert p == (0.0, 0.0)
        assert t == 0.0

    def test_clamps_after_end(self):
        p, t = project_point_on_segment((0, 0), (10, 0), (15, 2))
        assert p == (10.0, 0.0)
        assert t == 1.0

    def test_degenerate_segment(self):
        p, t = project_point_on_segment((3, 3), (3, 3), (7, 7))
        assert p == (3.0, 3.0)
        assert t == 0.0

    def test_paper_example1_projection(self):
        """Projection of (2,7) onto the segment (0,0)-(0,10) is (0,7) —
        the insert point of the paper's Example 1."""
        p, t = project_point_on_segment((0, 0), (0, 10), (2, 7))
        assert p == (0.0, 7.0)
        assert t == pytest.approx(0.7)


class TestPointSegmentDistance:
    def test_perpendicular(self):
        assert point_segment_distance((0, 0), (10, 0), (5, 3)) == 3.0

    def test_beyond_endpoint(self):
        assert point_segment_distance((0, 0), (10, 0), (13, 4)) == 5.0


class TestClamp:
    def test_inside(self):
        assert clamp(5.0, 0.0, 10.0) == 5.0

    def test_low(self):
        assert clamp(-1.0, 0.0, 10.0) == 0.0

    def test_high(self):
        assert clamp(11.0, 0.0, 10.0) == 10.0


class TestPointRectDistance:
    def test_inside_is_zero(self):
        assert point_rect_distance((5, 5), 0, 0, 10, 10) == 0.0

    def test_border_is_zero(self):
        assert point_rect_distance((0, 5), 0, 0, 10, 10) == 0.0

    def test_axis_aligned_outside(self):
        assert point_rect_distance((15, 5), 0, 0, 10, 10) == 5.0
        assert point_rect_distance((5, -3), 0, 0, 10, 10) == 3.0

    def test_corner_distance(self):
        assert point_rect_distance((13, 14), 0, 0, 10, 10) == 5.0

    def test_projection_consistency(self):
        p = (17.0, -4.0)
        rect = (0.0, 0.0, 10.0, 10.0)
        proj = project_point_on_rect(p, *rect)
        assert point_distance(p, proj) == pytest.approx(
            point_rect_distance(p, *rect)
        )


class TestProjectRectOnSegment:
    def test_intersecting_segment_distance_zero(self):
        (px, py), t = project_rect_on_segment((-5, 5), (15, 5), 0, 0, 10, 10)
        assert point_rect_distance((px, py), 0, 0, 10, 10) == pytest.approx(0.0)

    def test_parallel_segment(self):
        (px, py), t = project_rect_on_segment((0, 20), (10, 20), 0, 0, 10, 10)
        assert py == pytest.approx(20.0)
        assert point_rect_distance((px, py), 0, 0, 10, 10) == pytest.approx(10.0)

    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        for _ in range(300):
            a = rng.uniform(-5, 5, 2)
            b = rng.uniform(-5, 5, 2)
            x0, y0 = rng.uniform(-5, 5, 2)
            w, h = rng.uniform(0.01, 4, 2)
            rect = (x0, y0, x0 + w, y0 + h)
            (px, py), _ = project_rect_on_segment(a, b, *rect)
            got = point_rect_distance((px, py), *rect)
            ts = np.linspace(0, 1, 501)
            pts = a[None, :] + ts[:, None] * (b - a)[None, :]
            dx = np.maximum(np.maximum(rect[0] - pts[:, 0],
                                       pts[:, 0] - rect[2]), 0)
            dy = np.maximum(np.maximum(rect[1] - pts[:, 1],
                                       pts[:, 1] - rect[3]), 0)
            brute = float(np.sqrt(dx ** 2 + dy ** 2).min())
            assert got <= brute + 1e-9

    def test_segment_rect_distance_wrapper(self):
        assert segment_rect_distance((0, 20), (10, 20), 0, 0, 10, 10) == (
            pytest.approx(10.0)
        )


class TestPolylineLength:
    def test_straight(self):
        assert polyline_length([(0, 0), (3, 4), (6, 8)]) == pytest.approx(10.0)

    def test_single_point(self):
        assert polyline_length([(1, 1)]) == 0.0

    def test_segment_length(self):
        assert segment_length((0, 0), (0, 7)) == 7.0
