"""Spearman correlation and the union-rank k-NN protocol."""

import numpy as np
import pytest

from repro.eval.spearman import knn_list_correlation, rank, spearman

scipy_stats = pytest.importorskip("scipy.stats")


class TestRank:
    def test_simple(self):
        assert list(rank([10.0, 30.0, 20.0])) == [1.0, 3.0, 2.0]

    def test_ties_get_average_rank(self):
        assert list(rank([5.0, 5.0, 1.0])) == [2.5, 2.5, 1.0]

    def test_matches_scipy(self, rng):
        for _ in range(20):
            x = rng.uniform(0, 1, 15)
            assert np.allclose(rank(x), scipy_stats.rankdata(x))


class TestSpearman:
    def test_perfect_agreement(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert spearman([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)

    def test_matches_scipy(self, rng):
        for _ in range(30):
            x = rng.uniform(0, 1, 12)
            y = rng.uniform(0, 1, 12)
            want = scipy_stats.spearmanr(x, y).statistic
            assert spearman(x, y) == pytest.approx(want, abs=1e-12)

    def test_with_ties_matches_scipy(self, rng):
        for _ in range(20):
            x = rng.integers(0, 4, 12).astype(float)
            y = rng.integers(0, 4, 12).astype(float)
            want = scipy_stats.spearmanr(x, y).statistic
            if np.isnan(want):
                continue
            assert spearman(x, y) == pytest.approx(want, abs=1e-12)

    def test_degenerate_lengths(self):
        assert spearman([1.0], [2.0]) == 1.0
        assert spearman([], []) == 1.0

    def test_constant_inputs(self):
        assert spearman([1, 1, 1], [1, 1, 1]) == 1.0
        assert spearman([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            spearman([1, 2], [1, 2, 3])


class TestKnnListCorrelation:
    def test_identical_tables(self):
        d = {i: float(i) for i in range(20)}
        assert knn_list_correlation(d, d, k=5) == pytest.approx(1.0)

    def test_reversed_neighbourhood(self):
        d1 = {i: float(i) for i in range(10)}
        d2 = {i: float(9 - i) for i in range(10)}
        assert knn_list_correlation(d1, d2, k=5) < 0.0

    def test_disjoint_topk_penalized(self):
        """When noise pushes the clean top-k far down the noisy ranking,
        the correlation must drop well below 1."""
        d1 = {i: float(i) for i in range(20)}
        d2 = dict(d1)
        for i in range(5):                # clean top-5 now rank last
            d2[i] = 100.0 + i
        assert knn_list_correlation(d1, d2, k=5) < 0.9

    def test_key_mismatch_raises(self):
        with pytest.raises(ValueError):
            knn_list_correlation({1: 0.0}, {2: 0.0}, k=1)

    def test_invalid_k(self):
        d = {1: 0.0, 2: 1.0}
        with pytest.raises(ValueError):
            knn_list_correlation(d, d, k=0)

    def test_small_perturbation_keeps_high_correlation(self, rng):
        d1 = {i: float(v) for i, v in enumerate(rng.uniform(0, 1, 30))}
        d2 = {i: v + float(rng.normal(0, 0.01)) for i, v in d1.items()}
        assert knn_list_correlation(d1, d2, k=10) > 0.8
