"""The numpy EDwP backend: equivalence with the reference DP + backend API.

DESIGN.md ("Dual-backend EDwP kernels") promises the vectorized kernel
matches the pure-Python reference to float tolerance on every input,
including degenerate ones.  These tests enforce the promise on the single
pair, sub-distance and batched entry points, and pin down the backend
selection API.
"""

import math

import numpy as np
import pytest

from repro.core import (
    BACKENDS,
    Trajectory,
    edwp,
    edwp_avg,
    edwp_many,
    get_backend,
    set_backend,
    use_backend,
)
from repro.core import edwp_fast
from repro.core.edwp_sub import edwp_sub, edwp_sub_fast, prefix_dist

TOL = 1e-9


def random_trajectory(rng, n, duplicate_point=False):
    """Random-walk trajectory; optionally with a zero-length segment."""
    xy = rng.normal(0, 1, (n, 2)).cumsum(axis=0)
    if duplicate_point and n > 2:
        xy[n // 2] = xy[n // 2 - 1]
    return Trajectory.from_xy(xy)


class TestKernelEquivalence:
    """Property: edwp_fast == reference DP on random trajectory pairs."""

    def test_random_pairs_match_reference(self, rng):
        for trial in range(60):
            a = random_trajectory(rng, int(rng.integers(2, 30)),
                                  duplicate_point=trial % 5 == 0)
            b = random_trajectory(rng, int(rng.integers(2, 30)),
                                  duplicate_point=trial % 7 == 0)
            assert edwp(a, b, backend="numpy") == pytest.approx(
                edwp(a, b, backend="python"), abs=TOL)

    def test_sub_distances_match_reference(self, rng):
        for trial in range(30):
            a = random_trajectory(rng, int(rng.integers(2, 15)),
                                  duplicate_point=trial % 4 == 0)
            b = random_trajectory(rng, int(rng.integers(2, 30)))
            for fn in (edwp_sub, edwp_sub_fast, prefix_dist):
                assert fn(a, b, backend="numpy") == pytest.approx(
                    fn(a, b, backend="python"), abs=TOL)

    def test_two_point_trajectories(self, rng):
        for _ in range(20):
            a = random_trajectory(rng, 2)
            b = random_trajectory(rng, 2)
            assert edwp(a, b, backend="numpy") == pytest.approx(
                edwp(a, b, backend="python"), abs=TOL)

    def test_all_duplicate_points(self):
        """Every segment zero-length: the projection guards must not NaN."""
        a = Trajectory.from_xy([(2.0, 2.0)] * 5)
        b = Trajectory.from_xy([(3.0, 3.0)] * 4)
        ref = edwp(a, b, backend="python")
        assert edwp(a, b, backend="numpy") == pytest.approx(ref, abs=TOL)
        assert math.isfinite(ref)

    def test_identity_is_zero(self, rng):
        t = random_trajectory(rng, 12)
        assert edwp(t, t, backend="numpy") == pytest.approx(0.0, abs=TOL)

    def test_trivial_base_cases(self):
        empty = Trajectory([])
        point = Trajectory([(5.0, 5.0, 0.0)])
        seg = Trajectory.from_xy([(0, 0), (1, 1)])
        for backend in BACKENDS:
            assert edwp(empty, empty, backend=backend) == 0.0
            assert edwp(point, point, backend=backend) == 0.0
            assert edwp(point, seg, backend=backend) == math.inf
            assert edwp(seg, empty, backend=backend) == math.inf

    def test_paper_appendix_anchors(self, paper_appendix_trajectories):
        """The numpy backend reproduces the paper's exact numbers too."""
        t1, t2, t3 = paper_appendix_trajectories
        assert edwp(t1, t2, backend="numpy") == pytest.approx(1.0)
        assert edwp(t2, t3, backend="numpy") == pytest.approx(1.0)
        assert edwp(t1, t3, backend="numpy") == pytest.approx(4.0)

    def test_edwp_avg_matches(self, fig2_trajectories):
        t1, t2 = fig2_trajectories
        assert edwp_avg(t1, t2, backend="numpy") == pytest.approx(
            edwp_avg(t1, t2, backend="python"), abs=TOL)


class TestEdwpMany:
    def test_matches_sequential_loop(self, rng):
        query = random_trajectory(rng, 15)
        targets = [
            random_trajectory(rng, int(rng.integers(2, 40)),
                              duplicate_point=i % 4 == 0)
            for i in range(30)
        ]
        reference = [edwp(query, t, backend="python") for t in targets]
        for backend in BACKENDS:
            batch = edwp_many(query, targets, backend=backend)
            assert batch == pytest.approx(reference, abs=TOL)

    def test_chunking_covers_large_batches(self, rng):
        """More targets than one lockstep chunk still come back in order."""
        query = random_trajectory(rng, 6)
        targets = [
            random_trajectory(rng, int(rng.integers(2, 10)))
            for _ in range(edwp_fast.BATCH_CHUNK + 7)
        ]
        reference = [edwp(query, t, backend="python") for t in targets]
        assert edwp_many(query, targets, backend="numpy") == pytest.approx(
            reference, abs=TOL)

    def test_segmentless_targets_get_inf(self, rng):
        query = random_trajectory(rng, 5)
        targets = [Trajectory([(1.0, 1.0, 0.0)]), random_trajectory(rng, 8),
                   Trajectory([])]
        for backend in BACKENDS:
            batch = edwp_many(query, targets, backend=backend)
            assert batch[0] == math.inf and batch[2] == math.inf
            assert math.isfinite(batch[1])

    def test_normalized(self, rng):
        query = random_trajectory(rng, 9)
        targets = [random_trajectory(rng, 7) for _ in range(5)]
        expected = [edwp_avg(query, t) for t in targets]
        for backend in BACKENDS:
            assert edwp_many(
                query, targets, normalized=True, backend=backend
            ) == pytest.approx(expected, abs=TOL)

    def test_workers_preserve_order_and_values(self, rng):
        query = random_trajectory(rng, 8)
        targets = [random_trajectory(rng, int(rng.integers(2, 12)))
                   for _ in range(23)]
        plain = edwp_many(query, targets, backend="numpy")
        threaded = edwp_many(query, targets, backend="numpy", workers=3)
        assert threaded == pytest.approx(plain, abs=TOL)

    def test_empty_batch(self, rng):
        assert edwp_many(random_trajectory(rng, 4), []) == []


class TestBackendSelection:
    def test_default_is_python(self):
        assert get_backend() == "python"

    def test_set_backend_roundtrip(self):
        previous = set_backend("numpy")
        try:
            assert previous == "python"
            assert get_backend() == "numpy"
        finally:
            set_backend(previous)

    def test_use_backend_restores_on_exit(self):
        with use_backend("numpy"):
            assert get_backend() == "numpy"
        assert get_backend() == "python"

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend("numpy"):
                raise RuntimeError("boom")
        assert get_backend() == "python"

    def test_global_backend_drives_dispatch(self, rng, monkeypatch):
        """With the global backend set, plain edwp() runs the fast kernel."""
        calls = []
        real = edwp_fast.edwp_numpy
        monkeypatch.setattr(edwp_fast, "edwp_numpy",
                            lambda a, b: calls.append(1) or real(a, b))
        a, b = random_trajectory(rng, 5), random_trajectory(rng, 6)
        with use_backend("numpy"):
            edwp(a, b)
        assert calls, "global numpy backend did not reach the fast kernel"

    def test_explicit_kwarg_overrides_global(self, rng, monkeypatch):
        calls = []
        real = edwp_fast.edwp_numpy
        monkeypatch.setattr(edwp_fast, "edwp_numpy",
                            lambda a, b: calls.append(1) or real(a, b))
        a, b = random_trajectory(rng, 5), random_trajectory(rng, 6)
        with use_backend("numpy"):
            edwp(a, b, backend="python")
        assert not calls
        edwp(a, b, backend="numpy")
        assert calls

    def test_unknown_backend_rejected(self, rng):
        a, b = random_trajectory(rng, 3), random_trajectory(rng, 3)
        with pytest.raises(ValueError, match="unknown backend"):
            edwp(a, b, backend="cuda")
        with pytest.raises(ValueError, match="unknown backend"):
            set_backend("cuda")


class TestCoordsCache:
    def test_coords_is_cached_and_contiguous(self, rng):
        t = random_trajectory(rng, 7)
        first = t.coords()
        assert first.flags["C_CONTIGUOUS"]
        assert first.shape == (7, 2)
        assert t.coords() is first
        np.testing.assert_array_equal(first, t.data[:, :2])

    def test_complex_view_matches_points(self, rng):
        t = random_trajectory(rng, 5)
        z = edwp_fast.trajectory_complex(t)
        assert z.dtype == np.complex128
        np.testing.assert_array_equal(z.real, t.data[:, 0])
        np.testing.assert_array_equal(z.imag, t.data[:, 1])

    def test_pickle_drops_cache_and_rebuilds(self, rng):
        """Index snapshots must not carry the cache, and a loaded
        trajectory must still serve the numpy backend."""
        import pickle

        t = random_trajectory(rng, 6)
        t.coords()                              # warm the cache
        clone = pickle.loads(pickle.dumps(t))
        assert clone._coords is None
        assert edwp(t, clone, backend="numpy") == pytest.approx(0.0, abs=TOL)

    def test_legacy_pickle_state_accepted(self, rng):
        """Pre coordinate-cache pickles used the default slots state; they
        must still decode (so old index snapshots reach the persistence
        version check instead of crashing inside pickle.load)."""
        t = random_trajectory(rng, 4)
        legacy = Trajectory.__new__(Trajectory)
        legacy.__setstate__(
            (None, {"data": t.data, "traj_id": 7, "label": "sign"}))
        assert legacy.traj_id == 7 and legacy.label == "sign"
        assert legacy._coords is None
        assert edwp(t, legacy, backend="numpy") == pytest.approx(0.0, abs=TOL)
