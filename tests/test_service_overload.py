"""Overload control (ISSUE 10): admission, breaker, degradation, wire.

Unit coverage for the three overload components with injected clocks
(deterministic — no wall-clock races), then integration over the real
TCP service: breaker trip + half-open recovery driven by an injected
``service.dispatch`` fault, client retry honoring the server's
``retry_after``, typed :class:`RetryExhausted` when the budget runs dry,
volunteered wire budgets surfacing in the response ``meta``, and the
cache-only-exact policy.
"""

import asyncio
import math

import pytest

from repro.datasets import generate_beijing
from repro.index import QueryBudget, TrajTree
from repro.service import (
    AdmissionController,
    CircuitBreaker,
    DegradationPolicy,
    QueryService,
    RetryPolicy,
    ServiceClient,
    ServiceConfig,
    ServiceOverloaded,
    ServiceUnavailable,
    serve,
)
from repro.service.protocol import QueryRequest
from repro.service.retry import RetryExhausted, is_transient
from repro.testing.faults import FaultPlan, injected


@pytest.fixture(scope="module")
def tree():
    db = generate_beijing(16, seed=7)
    return TrajTree(db, normalized=True, num_vps=4, seed=7,
                    backend="numpy")


@pytest.fixture(scope="module")
def queries():
    return generate_beijing(6, seed=1009)


async def _started(tree, config=None, **service_kwargs):
    service = QueryService(tree, config or ServiceConfig(), **service_kwargs)
    server = await serve(service, port=0)
    port = server.sockets[0].getsockname()[1]
    return service, server, port


async def _stop(service, server):
    server.close()
    await server.wait_closed()
    await service.aclose()


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


# ---------------------------------------------------------------------- #
# admission controller
# ---------------------------------------------------------------------- #


class TestAdmissionController:
    def test_tokens_bound_concurrency(self):
        async def run():
            adm = AdmissionController(max_inflight=2, reserved_control=0,
                                      max_waiting=8)
            held = []

            async def hold(cls):
                async with adm.admit(cls):
                    held.append(cls)
                    await asyncio.sleep(0.05)

            tasks = [asyncio.create_task(hold("query")) for _ in range(4)]
            await asyncio.sleep(0.01)
            assert adm.stats_dict()["inflight"] == 2
            assert adm.stats_dict()["waiting"]["query"] == 2
            await asyncio.gather(*tasks)
            assert adm.stats_dict()["inflight"] == 0
            assert len(held) == 4

        asyncio.run(run())

    def test_control_uses_reserved_tokens(self):
        async def run():
            adm = AdmissionController(max_inflight=2, reserved_control=1,
                                      max_waiting=8)
            release = asyncio.Event()

            async def hold_query():
                async with adm.admit("query"):
                    await release.wait()

            # query class caps at max_inflight - reserved = 1
            t1 = asyncio.create_task(hold_query())
            await asyncio.sleep(0.01)
            t2 = asyncio.create_task(hold_query())
            await asyncio.sleep(0.01)
            assert adm.stats_dict()["waiting"]["query"] == 1
            # ...but a control op takes the reserved token immediately
            async with adm.admit("control"):
                assert adm.stats_dict()["inflight"] == 2
            release.set()
            await asyncio.gather(t1, t2)

        asyncio.run(run())

    def test_full_queue_sheds_with_retry_after(self):
        async def run():
            adm = AdmissionController(max_inflight=1, reserved_control=0,
                                      max_waiting=1)
            release = asyncio.Event()

            async def hold():
                async with adm.admit("query"):
                    await release.wait()

            t1 = asyncio.create_task(hold())
            await asyncio.sleep(0.01)
            t2 = asyncio.create_task(hold())     # fills the wait queue
            await asyncio.sleep(0.01)
            with pytest.raises(ServiceOverloaded) as info:
                async with adm.admit("query"):
                    pass
            assert info.value.retry_after is not None
            assert adm.stats_dict()["shed"]["query"] == 1
            release.set()
            await asyncio.gather(t1, t2)

        asyncio.run(run())

    def test_cancelled_waiter_releases_nothing(self):
        async def run():
            adm = AdmissionController(max_inflight=1, reserved_control=0)
            release = asyncio.Event()

            async def hold():
                async with adm.admit("query"):
                    await release.wait()

            t1 = asyncio.create_task(hold())
            await asyncio.sleep(0.01)

            async def waiter():
                async with adm.admit("query"):
                    pass

            t2 = asyncio.create_task(waiter())
            await asyncio.sleep(0.01)
            t2.cancel()
            with pytest.raises(asyncio.CancelledError):
                await t2
            release.set()
            await t1
            assert adm.stats_dict()["inflight"] == 0
            assert adm.stats_dict()["waiting"]["query"] == 0

        asyncio.run(run())


# ---------------------------------------------------------------------- #
# circuit breaker
# ---------------------------------------------------------------------- #


class TestCircuitBreaker:
    def test_trips_on_sustained_failure_rate(self):
        clock = FakeClock()
        br = CircuitBreaker(window=8, threshold=0.5, min_samples=4,
                            cooldown=1.0, probes=2, clock=clock)
        for _ in range(3):
            br.record_success()
        br.check()
        br.record_failure()
        br.record_failure()
        assert br.state == "closed"       # 2/5 = 0.4 < threshold
        br.record_failure()               # 3/6 = 0.5 >= threshold: trip
        assert br.state == "open"
        assert br.trips == 1

    def test_open_refuses_with_retry_after_then_half_opens(self):
        clock = FakeClock()
        br = CircuitBreaker(window=8, threshold=0.5, min_samples=2,
                            cooldown=1.0, probes=2, clock=clock)
        br.record_failure()
        br.record_failure()
        assert br.state == "open"
        with pytest.raises(ServiceUnavailable) as info:
            br.check()
        assert 0.0 < info.value.retry_after <= 1.0
        clock.now += 1.5
        br.check()                        # cooldown over: half-open probe
        assert br.state == "half_open"

    def test_half_open_probes_close_or_reopen(self):
        clock = FakeClock()
        br = CircuitBreaker(window=8, threshold=0.5, min_samples=2,
                            cooldown=1.0, probes=2, clock=clock)
        br.record_failure(); br.record_failure()
        clock.now += 1.5
        br.check()
        br.record_success()
        assert br.state == "half_open"    # one probe is not enough
        br.record_success()
        assert br.state == "closed"       # both probes passed
        # re-trip, then a failed probe re-opens for a fresh cooldown
        br.record_failure(); br.record_failure()
        clock.now += 1.5
        br.check()
        br.record_failure()
        assert br.state == "open" and br.trips == 3


# ---------------------------------------------------------------------- #
# degradation policy
# ---------------------------------------------------------------------- #


class TestDegradationPolicy:
    def test_disabled_without_slo(self):
        pol = DegradationPolicy(slo_ms=None)
        pol.observe(10.0)
        assert not pol.enabled and pol.current_budget() is None

    def test_pressure_raises_level_and_tightens_budget(self):
        floor = QueryBudget(deadline=0.2, max_bounds=100, epsilon=1.0)
        pol = DegradationPolicy(slo_ms=100.0, floor=floor, window=8,
                                recompute_every=4)
        for _ in range(8):
            pol.observe(0.2)              # p99 = 200ms = 2x the SLO
        assert pol.level == 1.0
        b = pol.current_budget()
        assert b == floor                 # full pressure: the floor itself
        # recovery decays gradually, not instantly: once the window holds
        # only healthy latencies, the level steps down by `decay` per
        # recompute rather than snapping to zero
        for _ in range(8):
            pol.observe(0.001)
        assert 0.0 < pol.level < 1.0
        eased = pol.current_budget()
        assert eased.deadline > floor.deadline
        assert eased.epsilon < floor.epsilon

    def test_below_start_pressure_means_no_budget(self):
        pol = DegradationPolicy(slo_ms=100.0,
                                floor=QueryBudget(epsilon=1.0),
                                recompute_every=4)
        for _ in range(8):
            pol.observe(0.01)             # p99 well under the SLO
        assert pol.level == 0.0 and pol.current_budget() is None


# ---------------------------------------------------------------------- #
# integration over TCP
# ---------------------------------------------------------------------- #


def _overload_config(**overrides):
    base = dict(window=0.0, max_batch=1, cache_capacity=0,
                breaker_min_samples=4, breaker_window=8,
                breaker_threshold=0.5, breaker_cooldown=0.3)
    base.update(overrides)
    return ServiceConfig(**base)


class TestServiceOverloadIntegration:
    def test_breaker_trips_and_recovers_over_the_wire(self, tree, queries):
        async def run():
            service, server, port = await _started(
                tree, _overload_config()
            )
            client = await ServiceClient.connect("127.0.0.1", port)
            # four straight dispatch faults: enough samples to trip
            plan = FaultPlan().on("service.dispatch", "error", times=4)
            with injected(plan):
                for q in queries[:4]:
                    with pytest.raises(Exception):
                        await client.knn(q, 3)
            assert service.breaker.state == "open"
            trips = service.breaker.trips
            with pytest.raises(ServiceUnavailable) as info:
                await client.knn(queries[0], 3)
            assert info.value.retry_after is not None
            assert info.value.retry_after <= 0.3
            # cooldown passes; half-open probes succeed; service heals
            await asyncio.sleep(0.35)
            results, meta = await client.knn(queries[0], 3)
            assert results == tree.knn(queries[0], 3)
            results, _ = await client.knn(queries[1], 3)
            assert service.breaker.state == "closed"
            assert service.breaker.trips == trips
            stats = await client.stats()
            assert stats["overload"]["breaker"]["trips"] == trips
            await client.aclose()
            await _stop(service, server)

        asyncio.run(run())

    def test_client_retry_rides_out_the_cooldown(self, tree, queries):
        async def run():
            service, server, port = await _started(
                tree, _overload_config(breaker_cooldown=0.1)
            )
            client = await ServiceClient.connect(
                "127.0.0.1", port,
                retry=RetryPolicy(attempts=4, base=0.01, cap=0.05, seed=3),
            )
            plan = FaultPlan().on("service.dispatch", "error", times=4)
            with injected(plan):
                for q in queries[:4]:
                    with pytest.raises(Exception):
                        await client.knn(q, 3, timeout=5.0)
            assert service.breaker.state == "open"
            # retry sleeps >= the server-suggested retry_after, so this
            # single call waits out the cooldown and then succeeds
            results, _ = await client.knn(queries[0], 3)
            assert results == tree.knn(queries[0], 3)
            await client.aclose()
            await _stop(service, server)

        asyncio.run(run())

    def test_retry_exhausted_when_breaker_stays_open(self, tree, queries):
        async def run():
            service, server, port = await _started(
                tree, _overload_config(breaker_cooldown=0.05)
            )
            client = await ServiceClient.connect(
                "127.0.0.1", port,
                retry=RetryPolicy(attempts=3, base=0.0, cap=0.0, seed=3),
            )
            # trip the breaker, then freeze its clock at the trip instant
            # so the cooldown never elapses: every attempt sees "open"
            for _ in range(4):
                service.breaker.record_failure()
            assert service.breaker.state == "open"
            service.breaker._clock = (
                lambda at=service.breaker._opened_at: at
            )
            with pytest.raises(RetryExhausted) as info:
                await client.knn(queries[0], 3)
            assert isinstance(info.value.last_error, ServiceUnavailable)
            assert not is_transient(info.value)
            await client.aclose()
            await _stop(service, server)

        asyncio.run(run())

    def test_wire_budget_flags_anytime_meta(self, tree, queries):
        async def run():
            service, server, port = await _started(
                tree, ServiceConfig(window=0.0, max_batch=1)
            )
            client = await ServiceClient.connect("127.0.0.1", port)
            q = queries[0]
            # no budget: no anytime record
            results, meta = await client.knn(q, 4)
            assert meta["anytime"] is None
            # unlimited budget: flagged exact, bit-identical
            r2, m2 = await client.knn(q, 4, budget=QueryBudget())
            assert m2["anytime"]["exact"] is True
            assert r2 == results
            # starved budget: flagged approximate with a reason
            r3, m3 = await client.knn(q, 4,
                                      budget=QueryBudget(max_bounds=0))
            assert m3["anytime"]["exact"] is False
            assert m3["anytime"]["reason"] == "bounds"
            stats = await client.stats()
            assert stats["approximate"] >= 1
            await client.aclose()
            await _stop(service, server)

        asyncio.run(run())

    def test_only_exact_results_are_cached(self, tree, queries):
        async def run():
            service, server, port = await _started(
                tree, ServiceConfig(window=0.0, max_batch=1,
                                    cache_capacity=64)
            )
            client = await ServiceClient.connect("127.0.0.1", port)
            q = queries[0]
            budget = QueryBudget(max_bounds=0)
            _, m1 = await client.knn(q, 4, budget=budget)
            assert m1["anytime"]["exact"] is False
            _, m2 = await client.knn(q, 4, budget=budget)
            assert m2["cache_hit"] is False     # truncated: never cached
            _, m3 = await client.knn(q, 4, budget=QueryBudget())
            assert m3["anytime"]["exact"] is True
            _, m4 = await client.knn(q, 4, budget=QueryBudget())
            assert m4["cache_hit"] is True      # exact: cached
            await client.aclose()
            await _stop(service, server)

        asyncio.run(run())

    def test_degradation_tightens_under_measured_pressure(self, tree,
                                                          queries):
        async def run():
            config = ServiceConfig(window=0.0, max_batch=1,
                                   cache_capacity=0, slo_ms=0.0001,
                                   degradation_floor=QueryBudget(
                                       epsilon=1.0))
            service, server, port = await _started(tree, config)
            client = await ServiceClient.connect("127.0.0.1", port)
            # SLO is absurdly tight, so real latencies blow it instantly
            # and the degradation level must reach 1.0 within a window
            for q in queries:
                for _ in range(4):
                    await client.knn(q, 3)
            assert service.degradation.level == 1.0
            assert service.degradation.current_budget() == \
                QueryBudget(epsilon=1.0)
            # subsequent queries run under the tightened floor: flagged
            # approximate when epsilon actually truncates, but always
            # within the epsilon soundness bound — and the stats surface
            # shows degradation engaged
            stats = await client.stats()
            assert stats["overload"]["degradation"]["level"] == 1.0
            assert stats["overload"]["degradation"]["active_budget"] == \
                {"epsilon": 1.0}
            await client.aclose()
            await _stop(service, server)

        asyncio.run(run())


class TestControlPriority:
    def test_health_answers_while_queries_saturate(self, tree, queries):
        """With one query token, a slow in-flight query must not block
        health/stats (they use the reserved control tokens)."""
        async def run():
            config = ServiceConfig(window=0.0, max_batch=1,
                                   cache_capacity=0, max_inflight=3,
                                   reserved_control=2)
            service, server, port = await _started(tree, config)
            flood_clients = []
            for _ in range(3):
                flood_clients.append(
                    await ServiceClient.connect("127.0.0.1", port))
            probe = await ServiceClient.connect("127.0.0.1", port)
            # hold the sole query token with a slow dispatch
            plan = FaultPlan().on("service.dispatch", "delay", 0.3,
                                  times=None)
            with injected(plan):
                floods = [
                    asyncio.create_task(c.knn(queries[i % len(queries)], 3))
                    for i, c in enumerate(flood_clients)
                ]
                await asyncio.sleep(0.05)
                t0 = asyncio.get_running_loop().time()
                health = await probe.health()
                elapsed = asyncio.get_running_loop().time() - t0
                assert health["ready"]
                assert elapsed < 0.25      # did not wait for the flood
                await asyncio.gather(*floods)
            for c in flood_clients:
                await c.aclose()
            await probe.aclose()
            await _stop(service, server)

        asyncio.run(run())
