"""Property-based round-trip tests for the columnar store.

The store's contract (DESIGN.md, "Columnar store and sharded forest") is
that packing a ragged trajectory set into ``(points, offsets)`` arrays,
saving, and reloading — in-memory or memory-mapped — is *lossless*:
coordinates and ids come back bit-identical, and every EDwP kernel
produces exactly the same floats on store-backed trajectory views as on
the original object-backed trajectories.  Hypothesis drives the packing
over arbitrary ragged datasets (length-1/length-2 degenerates, duplicate
points, duplicated whole trajectories included); the fault half pins the
typed :class:`~repro.store.StoreError` surface.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Trajectory, edwp, edwp_many
from repro.store import ColumnarStore, StoreError


def _point():
    coord = st.floats(-100, 100, allow_nan=False, allow_infinity=False)
    return st.tuples(coord, coord, st.floats(0, 1000, allow_nan=False,
                                             allow_infinity=False))


def _make_trajectory(pts):
    """Timestamps must be non-decreasing; sorting the drawn t column keeps
    duplicate points (and duplicate timestamps) in the mix."""
    arr = np.asarray(pts, dtype=np.float64)
    arr[:, 2] = np.sort(arr[:, 2])
    return Trajectory(arr)


def _trajectory(min_points=1, max_points=8):
    """Points are drawn independently, so duplicate points occur naturally
    (hypothesis shrinks toward repeated simple values)."""
    return st.lists(_point(), min_size=min_points, max_size=max_points).map(
        _make_trajectory
    )


def _dataset(min_trajs=1, max_trajs=8):
    return st.lists(_trajectory(), min_size=min_trajs, max_size=max_trajs)


def _assert_store_matches(store, db):
    assert len(store) == len(db)
    assert store.num_points == sum(len(t) for t in db)
    for pos, original in enumerate(db):
        view = store.trajectory(pos)
        # bit-identical coordinates: == on the float64 arrays, not approx
        assert np.array_equal(view.data, original.data)
        assert view.data.dtype == np.float64
        assert len(view) == len(original)


# ---------------------------------------------------------------------- #
# round trips
# ---------------------------------------------------------------------- #


@settings(max_examples=60, deadline=None)
@given(_dataset())
def test_pack_roundtrip_in_memory(db):
    store = ColumnarStore.from_trajectories(db)
    _assert_store_matches(store, db)
    # offsets contract
    assert int(store.offsets[0]) == 0
    assert np.all(np.diff(store.offsets) >= 0)
    assert int(store.offsets[-1]) == store.points.shape[0]
    # positional ids (object-backed inputs carry no ids)
    assert np.array_equal(store.ids, np.arange(len(db)))


@settings(max_examples=25, deadline=None)
@given(db=_dataset())
def test_save_load_roundtrip_bit_identical(tmp_path_factory, db):
    store = ColumnarStore.from_trajectories(db)
    path = tmp_path_factory.mktemp("store") / "s"
    store.save(path)
    for mmap in (False, True):
        loaded = ColumnarStore.load(path, mmap=mmap)
        _assert_store_matches(loaded, db)
        assert np.array_equal(loaded.ids, store.ids)
        assert np.array_equal(loaded.offsets, store.offsets)
        assert np.array_equal(loaded.points, store.points)


def test_mmap_views_are_zero_copy(tmp_path):
    rng = np.random.default_rng(7)
    db = [Trajectory(rng.uniform(0, 10, (n, 3)).cumsum(axis=0))
          for n in (1, 2, 5, 9)]
    store = ColumnarStore.from_trajectories(db)
    store.save(tmp_path / "s")
    loaded = ColumnarStore.load(tmp_path / "s", mmap=True)
    # np.asarray in the constructor may downcast the memmap subclass to a
    # plain ndarray *view*; either way the buffer is the mapped file.
    mapped = loaded.points
    while mapped.base is not None and not isinstance(mapped, np.memmap):
        mapped = mapped.base
    assert isinstance(mapped, np.memmap)
    for pos in range(len(loaded)):
        view = loaded.trajectory(pos)
        # the view's buffer is the mapped file, not a copy
        assert view.data.base is not None
        assert not view.data.flags.writeable
    # in-memory trajectory views alias the points array too
    t0 = store.trajectory(2)
    assert t0.data.base is store.points


@settings(max_examples=20, deadline=None)
@given(db=_dataset(min_trajs=2, max_trajs=6))
def test_edwp_identical_on_store_views(tmp_path_factory, db):
    """edwp / edwp_many on store-backed views == object-backed, exactly."""
    path = tmp_path_factory.mktemp("store") / "s"
    ColumnarStore.from_trajectories(db).save(path)
    loaded = ColumnarStore.load(path, mmap=True)
    views = loaded.trajectories()
    query, qview = db[0], views[0]
    expected = [edwp(query, t) for t in db]
    got = [edwp(qview, v) for v in views]
    assert got == expected  # bit-identical, not approx
    long_enough = [i for i, t in enumerate(db) if len(t) >= 2]
    if len(query) >= 2 and long_enough:
        batch_db = [db[i] for i in long_enough]
        batch_views = [views[i] for i in long_enough]
        assert list(edwp_many(qview, batch_views)) == list(
            edwp_many(query, batch_db)
        )


def test_ids_and_labels_roundtrip(tmp_path):
    db = [
        Trajectory([(0, 0, 0), (1, 1, 1)], traj_id=11, label="bus"),
        Trajectory([(2, 2, 2), (3, 3, 3)], traj_id=7, label=None),
        Trajectory([(4, 4, 4)], traj_id=42, label="taxi"),
    ]
    store = ColumnarStore.from_trajectories(db)
    assert list(store.ids) == [11, 7, 42]
    store.save(tmp_path / "s")
    loaded = ColumnarStore.load(tmp_path / "s")
    assert list(loaded.ids) == [11, 7, 42]
    assert loaded.labels == ["bus", None, "taxi"]
    assert loaded.get(7).label is None
    assert loaded.get(42).label == "taxi"
    assert loaded.get(11).traj_id == 11
    assert 7 in loaded and 5 not in loaded
    with pytest.raises(KeyError):
        loaded.get(5)


def test_duplicate_ids_fall_back_to_positional():
    db = [
        Trajectory([(0, 0, 0)], traj_id=3),
        Trajectory([(1, 1, 1)], traj_id=3),
    ]
    store = ColumnarStore.from_trajectories(db)
    assert list(store.ids) == [0, 1]


# ---------------------------------------------------------------------- #
# faults: the typed StoreError surface
# ---------------------------------------------------------------------- #


def _valid_store(tmp_path):
    db = [Trajectory([(0, 0, 0), (1, 1, 1)]), Trajectory([(2, 2, 2)])]
    path = tmp_path / "s"
    ColumnarStore.from_trajectories(db).save(path)
    return path


def test_constructor_rejects_bad_offsets():
    pts = np.zeros((3, 3))
    with pytest.raises(StoreError, match="offsets\\[0\\]"):
        ColumnarStore(pts, np.array([1, 3]))
    with pytest.raises(StoreError, match="non-decreasing"):
        ColumnarStore(pts, np.array([0, 2, 1, 3]))
    with pytest.raises(StoreError, match="offsets\\[-1\\]"):
        ColumnarStore(pts, np.array([0, 2]))
    with pytest.raises(StoreError, match="unique"):
        ColumnarStore(pts, np.array([0, 1, 3]), ids=np.array([5, 5]))
    with pytest.raises(StoreError, match="\\(P, 3\\)"):
        ColumnarStore(np.zeros((3, 2)), np.array([0, 3]))


def test_load_missing_directory(tmp_path):
    with pytest.raises(StoreError, match="not a store directory"):
        ColumnarStore.load(tmp_path / "nope")


def test_load_missing_array_file(tmp_path):
    path = _valid_store(tmp_path)
    (path / "offsets.npy").unlink()
    with pytest.raises(StoreError, match="offsets.npy.*missing"):
        ColumnarStore.load(path)


def test_load_truncated_array_file(tmp_path):
    path = _valid_store(tmp_path)
    raw = (path / "points.npy").read_bytes()
    (path / "points.npy").write_bytes(raw[: len(raw) // 2])
    with pytest.raises(StoreError, match="points.npy"):
        ColumnarStore.load(path)


def test_load_rejects_wrong_magic_and_version(tmp_path):
    path = _valid_store(tmp_path)
    meta = json.loads((path / "meta.json").read_text())
    meta["magic"] = "something-else"
    (path / "meta.json").write_text(json.dumps(meta))
    with pytest.raises(StoreError, match="not a columnar trajectory store"):
        ColumnarStore.load(path)
    meta = json.loads((path / "meta.json").read_text())
    meta["magic"] = "repro-columnar-store"
    meta["version"] = "99.0.0"
    (path / "meta.json").write_text(json.dumps(meta))
    with pytest.raises(StoreError, match="99.0.0.*repack"):
        ColumnarStore.load(path)


def test_load_rejects_corrupt_meta_json(tmp_path):
    path = _valid_store(tmp_path)
    (path / "meta.json").write_text("{not json")
    with pytest.raises(StoreError, match="not valid JSON"):
        ColumnarStore.load(path)


def test_load_meta_count_mismatch(tmp_path):
    path = _valid_store(tmp_path)
    meta = json.loads((path / "meta.json").read_text())
    meta["trajectories"] = 99
    meta["labels"] = None
    (path / "meta.json").write_text(json.dumps(meta))
    with pytest.raises(StoreError, match="promises 99"):
        ColumnarStore.load(path)
