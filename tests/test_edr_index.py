"""EDR filter-and-refine index: bound validity and retrieval exactness."""

import numpy as np
import pytest

from repro.baselines import EDRIndex
from repro.baselines.edr import edr
from repro.core import Trajectory

from helpers import random_walk_trajectory


@pytest.fixture(scope="module")
def database():
    rng = np.random.default_rng(21)
    return [
        random_walk_trajectory(rng, int(rng.integers(4, 12)))
        for _ in range(50)
    ]


@pytest.fixture(scope="module")
def index(database):
    return EDRIndex(database, eps=2.0, num_references=6, seed=0)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EDRIndex([], eps=1.0)

    def test_rejects_bad_eps(self, database):
        with pytest.raises(ValueError):
            EDRIndex(database, eps=0.0)

    def test_len(self, index, database):
        assert len(index) == len(database)


class TestLowerBounds:
    def test_bounds_are_valid(self, index, database):
        """Every pruning bound must underestimate the true EDR."""
        rng = np.random.default_rng(3)
        for _ in range(10):
            q = random_walk_trajectory(rng, int(rng.integers(4, 12)))
            from repro.baselines.edr_index import _histogram

            qh = _histogram(q, index.eps)
            qrefs = [edr(q, index._db[r], index.eps) for r in index._ref_ids]
            for tid, t in index._db.items():
                lb = index.lower_bound(q, tid, qh, qrefs)
                assert lb <= edr(q, t, index.eps) + 1e-9

    def test_bound_nonnegative(self, index, database):
        rng = np.random.default_rng(4)
        q = random_walk_trajectory(rng, 8)
        for tid in index._db:
            assert index.lower_bound(q, tid) >= 0.0


class TestRetrieval:
    @pytest.mark.parametrize("k", [1, 5, 10])
    def test_matches_scan(self, index, k):
        rng = np.random.default_rng(5)
        for _ in range(6):
            q = random_walk_trajectory(rng, int(rng.integers(4, 12)))
            got = index.knn(q, k)
            want = index.knn_scan(q, k)
            assert [t for t, _ in got] == [t for t, _ in want]

    def test_prunes_something(self, index):
        """On separated data the bounds must actually skip candidates."""
        rng = np.random.default_rng(6)
        q = random_walk_trajectory(rng, 8,
                                   origin=np.array([500.0, 500.0]))
        stats = {}
        index.knn(q, 3, stats=stats)
        assert stats["pruned"] > 0

    def test_invalid_k(self, index):
        rng = np.random.default_rng(7)
        with pytest.raises(ValueError):
            index.knn(random_walk_trajectory(rng, 6), 0)

    def test_no_references_mode(self, database):
        idx = EDRIndex(database, eps=2.0, num_references=0)
        rng = np.random.default_rng(8)
        q = random_walk_trajectory(rng, 8)
        assert [t for t, _ in idx.knn(q, 5)] == [
            t for t, _ in idx.knn_scan(q, 5)
        ]
