"""CLI smoke tests (``python -m repro``)."""

import pytest

from repro.cli import main


class TestCLI:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "EDwP" in out
        assert "paper: 80" in out

    def test_fig5a_tiny(self, capsys):
        code = main(["fig5a", "--classes", "2", "3", "--instances", "3",
                     "--repeats", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 5(a)" in out
        assert "EDwP" in out

    def test_fig5b_tiny(self, capsys):
        code = main(["fig5b", "--db-size", "10", "--queries", "1",
                     "--no-edr-i"])
        assert code == 0
        out = capsys.readouterr().out
        assert "inter robustness" in out

    def test_fig6c_tiny(self, capsys):
        code = main(["fig6c", "--vps", "5", "--db-size", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "UB-factor" in out
        assert "Beijing Random" in out

    def test_serve_selftest(self, capsys):
        # --backend mutates the process-wide backend; restore it so later
        # test files still see the default
        from repro.core.edwp import get_backend, set_backend

        previous = get_backend()
        try:
            code = main(["--backend", "numpy", "serve", "--synthetic", "12",
                         "--port", "0", "--selftest"])
        finally:
            set_backend(previous)
        assert code == 0
        out = capsys.readouterr().out
        assert "selftest knn" in out
        assert "selftest stats" in out

    def test_serve_requires_an_index_source(self):
        with pytest.raises(SystemExit):
            main(["serve", "--port", "0"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
