"""CLI smoke tests (``python -m repro``)."""

import pytest

from repro.cli import main


class TestCLI:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "EDwP" in out
        assert "paper: 80" in out

    def test_fig5a_tiny(self, capsys):
        code = main(["fig5a", "--classes", "2", "3", "--instances", "3",
                     "--repeats", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 5(a)" in out
        assert "EDwP" in out

    def test_fig5b_tiny(self, capsys):
        code = main(["fig5b", "--db-size", "10", "--queries", "1",
                     "--no-edr-i"])
        assert code == 0
        out = capsys.readouterr().out
        assert "inter robustness" in out

    def test_fig6c_tiny(self, capsys):
        code = main(["fig6c", "--vps", "5", "--db-size", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "UB-factor" in out
        assert "Beijing Random" in out

    def test_serve_selftest(self, capsys):
        # --backend mutates the process-wide backend; restore it so later
        # test files still see the default
        from repro.core.edwp import get_backend, set_backend

        previous = get_backend()
        try:
            code = main(["--backend", "numpy", "serve", "--synthetic", "12",
                         "--port", "0", "--selftest"])
        finally:
            set_backend(previous)
        assert code == 0
        out = capsys.readouterr().out
        assert "selftest knn" in out
        assert "selftest stats" in out

    def test_serve_requires_an_index_source(self):
        with pytest.raises(SystemExit):
            main(["serve", "--port", "0"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["fig99"])


class TestStorePipeline:
    """The build-store → build-forest → serve --forest pipeline."""

    def test_build_store(self, capsys, tmp_path):
        out_dir = tmp_path / "store"
        assert main(["build-store", "--synthetic", "14", "--seed", "7",
                     "--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "14 trajectories" in out
        assert "mmap" in out
        from repro.store import ColumnarStore

        store = ColumnarStore.load(out_dir)
        assert len(store) == 14

    def test_build_store_requires_a_source(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["build-store", "--out", str(tmp_path / "s")])

    def test_build_forest_and_serve(self, capsys, tmp_path):
        store_dir, forest_dir = tmp_path / "store", tmp_path / "forest"
        assert main(["build-store", "--synthetic", "14", "--seed", "7",
                     "--out", str(store_dir)]) == 0
        assert main(["build-forest", "--store", str(store_dir),
                     "--out", str(forest_dir), "--shards", "3",
                     "--num-vps", "4", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "3-shard forest" in out
        assert "14 trajectories" in out
        from repro.index import load_forest

        forest = load_forest(forest_dir)
        assert forest.num_shards == 3
        assert len(forest) == 14

        from repro.core.edwp import get_backend, set_backend

        previous = get_backend()
        try:
            code = main(["--backend", "numpy", "serve", "--forest",
                         str(forest_dir), "--port", "0", "--selftest"])
        finally:
            set_backend(previous)
        assert code == 0
        out = capsys.readouterr().out
        assert "forest snapshot" in out
        assert "3 shards" in out
        assert "selftest knn" in out

    def test_build_forest_rejects_bad_store(self, capsys, tmp_path):
        code = main(["build-forest", "--store", str(tmp_path / "nope"),
                     "--out", str(tmp_path / "forest")])
        assert code != 0
        err = capsys.readouterr().err
        assert "store" in err

    def test_serve_rejects_tree_pickle_as_forest(self, capsys, tmp_path):
        """--forest on a single-tree pickle: clean error naming the fix."""
        import numpy as np

        from helpers import random_walk_trajectory
        from repro.index import TrajTree, save_tree

        rng = np.random.default_rng(5)
        db = [random_walk_trajectory(rng, 6) for _ in range(8)]
        path = tmp_path / "index.pkl"
        save_tree(TrajTree(db, num_vps=2, seed=1), path)
        code = main(["serve", "--forest", str(path), "--port", "0",
                     "--selftest"])
        assert code != 0
        err = capsys.readouterr().err
        assert "single-tree snapshot" in err
