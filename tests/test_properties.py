"""Property-based tests (hypothesis) for the core invariants.

These are the paper's structural claims turned into machine-checked
properties over arbitrary inputs: EDwP's symmetry/identity, the behaviour
of the edits, Theorem 2's lower-bound relation, and the vantage-distance
definition.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Trajectory, edwp, edwp_alignment, edwp_avg
from repro.core.edwp_sub import edwp_sub
from repro.eval.spearman import spearman, rank
from repro.index import TBoxSeq, edwp_sub_box
from repro.index.vantage import vantage_distance, vp_distance


def coords(min_points=2, max_points=8):
    """Strategy: a list of (x, y) pairs with bounded, finite coordinates."""
    pair = st.tuples(
        st.floats(-50, 50, allow_nan=False, allow_infinity=False),
        st.floats(-50, 50, allow_nan=False, allow_infinity=False),
    )
    return st.lists(pair, min_size=min_points, max_size=max_points)


def trajectory(min_points=2, max_points=8):
    return coords(min_points, max_points).map(Trajectory.from_xy)


@settings(max_examples=60, deadline=None)
@given(trajectory(), trajectory())
def test_edwp_symmetry(t1, t2):
    assert edwp(t1, t2) == pytest.approx(edwp(t2, t1), rel=1e-7, abs=1e-7)


@settings(max_examples=60, deadline=None)
@given(trajectory(), trajectory())
def test_edwp_non_negative(t1, t2):
    assert edwp(t1, t2) >= 0.0


@settings(max_examples=60, deadline=None)
@given(trajectory(), trajectory())
def test_edwp_alignment_consistent(t1, t2):
    result = edwp_alignment(t1, t2)
    assert result.distance == pytest.approx(edwp(t1, t2), rel=1e-9, abs=1e-9)
    assert sum(e.cost for e in result.edits) == pytest.approx(
        result.distance, rel=1e-7, abs=1e-7
    )


@settings(max_examples=60, deadline=None)
@given(trajectory(), trajectory())
def test_edwp_avg_normalization(t1, t2):
    raw = edwp(t1, t2)
    avg = edwp_avg(t1, t2)
    denom = t1.length + t2.length
    if denom > 0 and math.isfinite(raw):
        assert avg == pytest.approx(raw / denom, rel=1e-9)


@settings(max_examples=60, deadline=None)
@given(trajectory(), trajectory())
def test_edwp_sub_not_larger_than_full_much(t1, t2):
    """EDwPsub may only exceed EDwP by the documented DP slack."""
    sub = edwp_sub(t1, t2)
    full = edwp(t1, t2)
    if math.isfinite(full):
        assert sub <= full * 1.25 + 1e-6


@settings(max_examples=60, deadline=None)
@given(trajectory())
def test_edwp_identity(t):
    assert edwp(t, t) == pytest.approx(0.0, abs=1e-7)


@settings(max_examples=60, deadline=None)
@given(trajectory())
def test_edwp_translation_invariance(t):
    shifted = t.translated(13.0, -7.0)
    assert edwp(shifted, t.translated(13.0, -7.0)) == pytest.approx(
        0.0, abs=1e-7
    )


@settings(max_examples=60, deadline=None)
@given(trajectory())
def test_edwp_densification_invariance(t):
    """Splitting any segment leaves EDwP to the original ~0."""
    if t.num_segments == 0:
        return
    refined = t.with_point_inserted(0, 0.5)
    assert edwp(t, refined) == pytest.approx(0.0, abs=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(trajectory(2, 6), min_size=1, max_size=4),
    trajectory(2, 6),
)
def test_theorem2_lower_bound(group, query):
    """EDwPsub(Q, tBoxSeq(T)) <= EDwP(Q, T) for all T in the set."""
    seq = TBoxSeq.from_trajectories(group)
    lb = edwp_sub_box(query, seq)
    for t in group:
        assert lb <= edwp(query, t) + 1e-6


@settings(max_examples=40, deadline=None)
@given(
    st.lists(trajectory(2, 6), min_size=1, max_size=4),
)
def test_tboxseq_covers_all_members(group):
    """Every sampled point of every summarized trajectory lies in a box."""
    seq = TBoxSeq.from_trajectories(group)
    for t in group:
        for row in t.data:
            assert any(
                b.dist_point((row[0], row[1])) <= 1e-6 for b in seq.boxes
            )


@settings(max_examples=60, deadline=None)
@given(trajectory(2, 8),
       st.tuples(st.floats(-60, 60, allow_nan=False),
                 st.floats(-60, 60, allow_nan=False)))
def test_vp_distance_le_sample_distances(t, vp):
    """Definition 6: the polyline distance never exceeds the distance to
    any sampled point."""
    d = vp_distance(t, vp)
    for row in t.data:
        assert d <= math.hypot(row[0] - vp[0], row[1] - vp[1]) + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=10),
    st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=10),
)
def test_vantage_distance_bounds(a, b):
    n = min(len(a), len(b))
    va = np.asarray(a[:n])
    vb = np.asarray(b[:n])
    vd = vantage_distance(va, vb)
    assert 0.0 <= vd <= 1.0
    assert vd == pytest.approx(vantage_distance(vb, va))
    assert vantage_distance(va, va) == pytest.approx(0.0)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=2,
                max_size=20))
def test_spearman_self_correlation(xs):
    assert spearman(xs, xs) == pytest.approx(1.0)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=1,
                max_size=20))
def test_rank_is_permutation_when_unique(xs):
    r = rank(xs)
    if len(set(xs)) == len(xs):
        assert sorted(r) == list(range(1, len(xs) + 1))
    assert r.sum() == pytest.approx(len(xs) * (len(xs) + 1) / 2)
