"""TrajTree and TrajForest save/load round-trip and fault tests."""

import json
import pickle

import numpy as np
import pytest

from repro.index import TrajForest, TrajTree
from repro.index.persistence import (
    ShardLoadError,
    load_forest,
    load_tree,
    save_forest,
    save_tree,
)

from helpers import random_walk_trajectory


@pytest.fixture(scope="module")
def database():
    rng = np.random.default_rng(61)
    return [random_walk_trajectory(rng, int(rng.integers(4, 9)))
            for _ in range(30)]


@pytest.fixture(scope="module")
def tree(database):
    return TrajTree(database, num_vps=8, min_node_size=6, seed=4)


@pytest.fixture(scope="module")
def forest(database):
    return TrajForest(database, num_shards=3, num_vps=4, min_node_size=6,
                      seed=4)


class TestRoundTrip:
    def test_results_identical(self, tree, tmp_path):
        path = tmp_path / "index.pkl"
        save_tree(tree, path)
        loaded = load_tree(path)
        rng = np.random.default_rng(3)
        for _ in range(5):
            q = random_walk_trajectory(rng, 7)
            assert loaded.knn(q, 5) == tree.knn(q, 5)

    def test_structure_preserved(self, tree, tmp_path):
        path = tmp_path / "index.pkl"
        save_tree(tree, path)
        loaded = load_tree(path)
        assert loaded.height() == tree.height()
        assert loaded.node_count() == tree.node_count()
        assert sorted(loaded.ids()) == sorted(tree.ids())
        assert loaded.storage_summary() == tree.storage_summary()

    def test_loaded_tree_supports_updates(self, tree, tmp_path):
        path = tmp_path / "index.pkl"
        save_tree(tree, path)
        loaded = load_tree(path)
        rng = np.random.default_rng(5)
        tid = loaded.insert(random_walk_trajectory(rng, 6))
        assert tid in loaded
        q = random_walk_trajectory(rng, 7)
        assert [t for t, _ in loaded.knn(q, 5)] == [
            t for t, _ in loaded.knn_scan(q, 5)
        ]


class TestValidation:
    def test_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "junk.pkl"
        with open(path, "wb") as f:
            pickle.dump({"something": "else"}, f)
        with pytest.raises(ValueError, match="not a TrajTree snapshot"):
            load_tree(path)

    def test_rejects_version_mismatch(self, tree, tmp_path):
        path = tmp_path / "index.pkl"
        save_tree(tree, path)
        with open(path, "rb") as f:
            payload = pickle.load(f)
        payload["version"] = "0.0.1"
        with open(path, "wb") as f:
            pickle.dump(payload, f)
        with pytest.raises(ValueError, match="rebuild"):
            load_tree(path)

    def test_rejects_fingerprint_mismatch(self, tree, tmp_path):
        path = tmp_path / "index.pkl"
        save_tree(tree, path)
        with open(path, "rb") as f:
            payload = pickle.load(f)
        payload["fingerprint"]["count"] = 999
        with open(path, "wb") as f:
            pickle.dump(payload, f)
        with pytest.raises(ValueError, match="fingerprint"):
            load_tree(path)


class TestForestRoundTrip:
    def test_results_identical(self, forest, tmp_path):
        path = tmp_path / "forest"
        save_forest(forest, path)
        loaded = load_forest(path)
        assert loaded.num_shards == forest.num_shards
        assert loaded.scheme == forest.scheme
        assert loaded.seed == forest.seed
        assert loaded.ids() == forest.ids()
        rng = np.random.default_rng(3)
        for _ in range(4):
            q = random_walk_trajectory(rng, 7)
            assert loaded.knn(q, 5) == forest.knn(q, 5)
            radius = forest.knn(q, 4)[-1][1] * 1.1
            assert loaded.range_query(q, radius) == \
                forest.range_query(q, radius)

    def test_snapshot_layout(self, forest, tmp_path):
        """ForestSnapshot on disk: forest.json + one pickle per shard,
        each shard loadable by load_tree on its own."""
        path = tmp_path / "forest"
        save_forest(forest, path)
        manifest = json.loads((path / "forest.json").read_text())
        assert manifest["magic"] == "repro-trajforest"
        assert manifest["version"] == "1.1.0"
        assert manifest["scheme"] == forest.scheme
        assert manifest["trajectories"] == len(forest)
        assert len(manifest["shards"]) == forest.num_shards
        for i, entry in enumerate(manifest["shards"]):
            assert entry["file"] == f"shard_{i:04d}.pkl"
            # the manifest records each shard's sha256, and it matches
            # the bytes on disk (the crash-safety checksum contract)
            from repro.store import sha256_file
            assert entry["sha256"] == sha256_file(path / entry["file"])
            shard = load_tree(path / entry["file"])
            assert shard.ids() == forest.shards[i].ids()


class TestForestValidation:
    """The two snapshot formats must version-gate each other cleanly,
    and shard damage must name the shard (ISSUE 7 fault surface)."""

    def test_load_forest_rejects_single_tree_pickle(self, tree, tmp_path):
        """A current-format single-tree pickle pointed at load_forest:
        clean ValueError naming the right loader, not a manifest parse
        crash."""
        path = tmp_path / "index.pkl"
        save_tree(tree, path)
        with pytest.raises(ValueError, match="single-tree snapshot.*load_tree"):
            load_forest(path)

    def test_load_forest_rejects_legacy_tree_pickle(self, tree, tmp_path):
        """Same for a *legacy*-version single-tree file (the 1.2.0 format
        gate lives in load_tree; load_forest must not get that far)."""
        path = tmp_path / "legacy.pkl"
        save_tree(tree, path)
        with open(path, "rb") as f:
            payload = pickle.load(f)
        payload["version"] = "1.1.0"
        with open(path, "wb") as f:
            pickle.dump(payload, f)
        with pytest.raises(ValueError, match="single-tree snapshot"):
            load_forest(path)

    def test_load_tree_rejects_forest_directory(self, forest, tmp_path):
        path = tmp_path / "forest"
        save_forest(forest, path)
        with pytest.raises(ValueError, match="forest snapshot.*load_forest"):
            load_tree(path)
        with pytest.raises(ValueError, match="directory"):
            load_tree(tmp_path)

    def test_rejects_non_forest_paths(self, tmp_path):
        with pytest.raises(ValueError, match="not a forest snapshot"):
            load_forest(tmp_path / "nope")
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError, match="not a forest snapshot"):
            load_forest(empty)

    def test_rejects_manifest_version_mismatch(self, forest, tmp_path):
        path = tmp_path / "forest"
        save_forest(forest, path)
        manifest = json.loads((path / "forest.json").read_text())
        manifest["version"] = "9.0.0"
        (path / "forest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="9.0.0.*rebuild the forest"):
            load_forest(path)

    def test_rejects_corrupt_manifest(self, forest, tmp_path):
        path = tmp_path / "forest"
        save_forest(forest, path)
        (path / "forest.json").write_text("{broken")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_forest(path)

    def test_missing_shard_names_the_shard(self, forest, tmp_path):
        path = tmp_path / "forest"
        save_forest(forest, path)
        (path / "shard_0001.pkl").unlink()
        with pytest.raises(ShardLoadError, match="shard 1.*shard_0001.pkl") \
                as excinfo:
            load_forest(path)
        assert excinfo.value.shard == 1
        assert excinfo.value.filename == "shard_0001.pkl"
        assert "missing" in str(excinfo.value)

    def test_truncated_shard_names_the_shard(self, forest, tmp_path):
        path = tmp_path / "forest"
        save_forest(forest, path)
        raw = (path / "shard_0002.pkl").read_bytes()
        (path / "shard_0002.pkl").write_bytes(raw[: len(raw) // 3])
        # the checksum pass catches the truncation before unpickling
        with pytest.raises(ShardLoadError, match="shard 2.*integrity"):
            load_forest(path)
        # with verification off, the pickle loader itself must catch it
        with pytest.raises(ShardLoadError, match="shard 2.*failed to load"):
            load_forest(path, verify=False)

    def test_shard_fingerprint_mismatch_names_the_shard(self, forest,
                                                        tmp_path):
        path = tmp_path / "forest"
        save_forest(forest, path)
        manifest = json.loads((path / "forest.json").read_text())
        manifest["shards"][0]["fingerprint"]["count"] = 999
        (path / "forest.json").write_text(json.dumps(manifest))
        with pytest.raises(ShardLoadError, match="shard 0.*fingerprint"):
            load_forest(path)

    def test_manifest_count_mismatch(self, forest, tmp_path):
        path = tmp_path / "forest"
        save_forest(forest, path)
        manifest = json.loads((path / "forest.json").read_text())
        manifest["trajectories"] = 999
        (path / "forest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="promises 999"):
            load_forest(path)

    def test_shard_load_error_is_a_value_error(self):
        err = ShardLoadError(3, "shard_0003.pkl", "is missing")
        assert isinstance(err, ValueError)
        assert str(err) == "forest shard 3 (shard_0003.pkl) is missing"
