"""TrajTree and TrajForest save/load round-trip and fault tests."""

import json
import pickle

import numpy as np
import pytest

from repro.index import TrajForest, TrajTree
from repro.index.persistence import (
    ShardLoadError,
    load_forest,
    load_tree,
    save_forest,
    save_tree,
)

from helpers import random_walk_trajectory


@pytest.fixture(scope="module")
def database():
    rng = np.random.default_rng(61)
    return [random_walk_trajectory(rng, int(rng.integers(4, 9)))
            for _ in range(30)]


@pytest.fixture(scope="module")
def tree(database):
    return TrajTree(database, num_vps=8, min_node_size=6, seed=4)


@pytest.fixture(scope="module")
def forest(database):
    return TrajForest(database, num_shards=3, num_vps=4, min_node_size=6,
                      seed=4)


class TestRoundTrip:
    def test_results_identical(self, tree, tmp_path):
        path = tmp_path / "index.pkl"
        save_tree(tree, path)
        loaded = load_tree(path)
        rng = np.random.default_rng(3)
        for _ in range(5):
            q = random_walk_trajectory(rng, 7)
            assert loaded.knn(q, 5) == tree.knn(q, 5)

    def test_structure_preserved(self, tree, tmp_path):
        path = tmp_path / "index.pkl"
        save_tree(tree, path)
        loaded = load_tree(path)
        assert loaded.height() == tree.height()
        assert loaded.node_count() == tree.node_count()
        assert sorted(loaded.ids()) == sorted(tree.ids())
        assert loaded.storage_summary() == tree.storage_summary()

    def test_loaded_tree_supports_updates(self, tree, tmp_path):
        path = tmp_path / "index.pkl"
        save_tree(tree, path)
        loaded = load_tree(path)
        rng = np.random.default_rng(5)
        tid = loaded.insert(random_walk_trajectory(rng, 6))
        assert tid in loaded
        q = random_walk_trajectory(rng, 7)
        assert [t for t, _ in loaded.knn(q, 5)] == [
            t for t, _ in loaded.knn_scan(q, 5)
        ]


class TestValidation:
    def test_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "junk.pkl"
        with open(path, "wb") as f:
            pickle.dump({"something": "else"}, f)
        with pytest.raises(ValueError, match="not a TrajTree snapshot"):
            load_tree(path)

    def test_rejects_version_mismatch(self, tree, tmp_path):
        path = tmp_path / "index.pkl"
        save_tree(tree, path)
        with open(path, "rb") as f:
            payload = pickle.load(f)
        payload["version"] = "0.0.1"
        with open(path, "wb") as f:
            pickle.dump(payload, f)
        with pytest.raises(ValueError, match="rebuild"):
            load_tree(path)

    def test_rejects_fingerprint_mismatch(self, tree, tmp_path):
        path = tmp_path / "index.pkl"
        save_tree(tree, path)
        with open(path, "rb") as f:
            payload = pickle.load(f)
        payload["fingerprint"]["count"] = 999
        with open(path, "wb") as f:
            pickle.dump(payload, f)
        with pytest.raises(ValueError, match="fingerprint"):
            load_tree(path)


class TestForestRoundTrip:
    def test_results_identical(self, forest, tmp_path):
        path = tmp_path / "forest"
        save_forest(forest, path)
        loaded = load_forest(path)
        assert loaded.num_shards == forest.num_shards
        assert loaded.scheme == forest.scheme
        assert loaded.seed == forest.seed
        assert loaded.ids() == forest.ids()
        rng = np.random.default_rng(3)
        for _ in range(4):
            q = random_walk_trajectory(rng, 7)
            assert loaded.knn(q, 5) == forest.knn(q, 5)
            radius = forest.knn(q, 4)[-1][1] * 1.1
            assert loaded.range_query(q, radius) == \
                forest.range_query(q, radius)

    def test_snapshot_layout(self, forest, tmp_path):
        """ForestSnapshot on disk: forest.json + one pickle per shard,
        each shard loadable by load_tree on its own."""
        path = tmp_path / "forest"
        save_forest(forest, path)
        manifest = json.loads((path / "forest.json").read_text())
        assert manifest["magic"] == "repro-trajforest"
        assert manifest["version"] == "1.1.0"
        assert manifest["scheme"] == forest.scheme
        assert manifest["trajectories"] == len(forest)
        assert len(manifest["shards"]) == forest.num_shards
        for i, entry in enumerate(manifest["shards"]):
            assert entry["file"] == f"shard_{i:04d}.pkl"
            # the manifest records each shard's sha256, and it matches
            # the bytes on disk (the crash-safety checksum contract)
            from repro.store import sha256_file
            assert entry["sha256"] == sha256_file(path / entry["file"])
            shard = load_tree(path / entry["file"])
            assert shard.ids() == forest.shards[i].ids()


class TestCrossBackendRoundTrip:
    """Snapshots are backend-portable (ISSUE 9): a tree built under one
    backend loads and answers bit-identically under another, and a
    native-built snapshot still loads on a machine without numba — the
    typed unavailable error surfaces at first *query*, and flipping the
    loaded tree's ``backend`` recovers it without a rebuild.

    Bit-identity across built-under/queried-under pairs is exact, not
    toleranced: the un-jitted native kernels replay the reference DP
    operation-for-operation, so build structure and query distances agree
    to the last bit.
    """

    @staticmethod
    def _force_native(available):
        import repro._native as native
        prev = native._AVAILABLE
        native._AVAILABLE = available
        return lambda: setattr(native, "_AVAILABLE", prev)

    def _probes(self, n=4):
        rng = np.random.default_rng(17)
        return [random_walk_trajectory(rng, 7) for _ in range(n)]

    def test_native_built_tree_answers_under_python(self, database,
                                                    tmp_path):
        restore = self._force_native(True)
        try:
            built = TrajTree(database, num_vps=8, min_node_size=6, seed=4,
                             backend="native")
            save_tree(built, tmp_path / "native.pkl")
        finally:
            restore()
        loaded = load_tree(tmp_path / "native.pkl")
        assert loaded.backend == "native"
        loaded.backend = "python"
        oracle = TrajTree(database, num_vps=8, min_node_size=6, seed=4,
                          backend="python")
        for q in self._probes():
            assert loaded.knn(q, 5) == oracle.knn(q, 5)
            assert loaded.subtrajectory_knn(q, 3) == \
                oracle.subtrajectory_knn(q, 3)

    def test_python_built_tree_answers_under_native(self, tree, tmp_path):
        save_tree(tree, tmp_path / "python.pkl")
        loaded = load_tree(tmp_path / "python.pkl")
        restore = self._force_native(True)
        try:
            loaded.backend = "native"
            for q in self._probes():
                assert loaded.knn(q, 5) == tree.knn(q, 5)
                assert loaded.subtrajectory_knn(q, 3) == \
                    tree.subtrajectory_knn(q, 3)
        finally:
            restore()

    def test_native_snapshot_loads_without_numba(self, database, tmp_path):
        restore = self._force_native(True)
        try:
            built = TrajTree(database, num_vps=8, min_node_size=6, seed=4,
                             backend="native")
            save_tree(built, tmp_path / "native.pkl")
        finally:
            restore()
        restore = self._force_native(False)
        try:
            # loading must not need numba (pickle restores state, it does
            # not re-run constructor validation)...
            loaded = load_tree(tmp_path / "native.pkl")
            assert loaded.backend == "native"
            # ...the typed error surfaces at first query...
            from repro.core import NativeBackendUnavailableError
            q = self._probes(1)[0]
            with pytest.raises(NativeBackendUnavailableError):
                loaded.knn(q, 5)
            # ...and re-pointing the backend recovers without a rebuild
            loaded.backend = "python"
            oracle = TrajTree(database, num_vps=8, min_node_size=6, seed=4)
            for q in self._probes():
                assert loaded.knn(q, 5) == oracle.knn(q, 5)
        finally:
            restore()

    def test_forest_cross_backend_incl_degraded(self, database, tmp_path):
        restore = self._force_native(True)
        try:
            built = TrajForest(database, num_shards=3, num_vps=4,
                               min_node_size=6, seed=4, backend="native")
            save_forest(built, tmp_path / "forest")
        finally:
            restore()
        oracle = TrajForest(database, num_shards=3, num_vps=4,
                            min_node_size=6, seed=4, backend="python")
        # healthy load, queried under python
        loaded = load_forest(tmp_path / "forest")
        for shard in loaded.shards:
            assert shard.backend == "native"
            shard.backend = "python"
        for q in self._probes():
            assert loaded.knn(q, 5) == oracle.knn(q, 5)
        # degraded load (one shard gone) on a numba-less machine: the
        # forest assembles, and after the backend flip it matches the
        # same-shards python oracle exactly
        (tmp_path / "forest" / "shard_0001.pkl").unlink()
        restore = self._force_native(False)
        try:
            degraded = load_forest(tmp_path / "forest",
                                   on_shard_error="skip")
            assert degraded.degraded
            for shard in degraded.shards:
                shard.backend = "python"
            sub_oracle = TrajForest.from_shards(
                [oracle.shards[0], oracle.shards[2]],
                scheme=oracle.scheme, seed=oracle.seed,
            )
            for q in self._probes():
                assert degraded.knn(q, 5) == sub_oracle.knn(q, 5)
        finally:
            restore()


class TestForestValidation:
    """The two snapshot formats must version-gate each other cleanly,
    and shard damage must name the shard (ISSUE 7 fault surface)."""

    def test_load_forest_rejects_single_tree_pickle(self, tree, tmp_path):
        """A current-format single-tree pickle pointed at load_forest:
        clean ValueError naming the right loader, not a manifest parse
        crash."""
        path = tmp_path / "index.pkl"
        save_tree(tree, path)
        with pytest.raises(ValueError, match="single-tree snapshot.*load_tree"):
            load_forest(path)

    def test_load_forest_rejects_legacy_tree_pickle(self, tree, tmp_path):
        """Same for a *legacy*-version single-tree file (the 1.2.0 format
        gate lives in load_tree; load_forest must not get that far)."""
        path = tmp_path / "legacy.pkl"
        save_tree(tree, path)
        with open(path, "rb") as f:
            payload = pickle.load(f)
        payload["version"] = "1.1.0"
        with open(path, "wb") as f:
            pickle.dump(payload, f)
        with pytest.raises(ValueError, match="single-tree snapshot"):
            load_forest(path)

    def test_load_tree_rejects_forest_directory(self, forest, tmp_path):
        path = tmp_path / "forest"
        save_forest(forest, path)
        with pytest.raises(ValueError, match="forest snapshot.*load_forest"):
            load_tree(path)
        with pytest.raises(ValueError, match="directory"):
            load_tree(tmp_path)

    def test_rejects_non_forest_paths(self, tmp_path):
        with pytest.raises(ValueError, match="not a forest snapshot"):
            load_forest(tmp_path / "nope")
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError, match="not a forest snapshot"):
            load_forest(empty)

    def test_rejects_manifest_version_mismatch(self, forest, tmp_path):
        path = tmp_path / "forest"
        save_forest(forest, path)
        manifest = json.loads((path / "forest.json").read_text())
        manifest["version"] = "9.0.0"
        (path / "forest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="9.0.0.*rebuild the forest"):
            load_forest(path)

    def test_rejects_corrupt_manifest(self, forest, tmp_path):
        path = tmp_path / "forest"
        save_forest(forest, path)
        (path / "forest.json").write_text("{broken")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_forest(path)

    def test_missing_shard_names_the_shard(self, forest, tmp_path):
        path = tmp_path / "forest"
        save_forest(forest, path)
        (path / "shard_0001.pkl").unlink()
        with pytest.raises(ShardLoadError, match="shard 1.*shard_0001.pkl") \
                as excinfo:
            load_forest(path)
        assert excinfo.value.shard == 1
        assert excinfo.value.filename == "shard_0001.pkl"
        assert "missing" in str(excinfo.value)

    def test_truncated_shard_names_the_shard(self, forest, tmp_path):
        path = tmp_path / "forest"
        save_forest(forest, path)
        raw = (path / "shard_0002.pkl").read_bytes()
        (path / "shard_0002.pkl").write_bytes(raw[: len(raw) // 3])
        # the checksum pass catches the truncation before unpickling
        with pytest.raises(ShardLoadError, match="shard 2.*integrity"):
            load_forest(path)
        # with verification off, the pickle loader itself must catch it
        with pytest.raises(ShardLoadError, match="shard 2.*failed to load"):
            load_forest(path, verify=False)

    def test_shard_fingerprint_mismatch_names_the_shard(self, forest,
                                                        tmp_path):
        path = tmp_path / "forest"
        save_forest(forest, path)
        manifest = json.loads((path / "forest.json").read_text())
        manifest["shards"][0]["fingerprint"]["count"] = 999
        (path / "forest.json").write_text(json.dumps(manifest))
        with pytest.raises(ShardLoadError, match="shard 0.*fingerprint"):
            load_forest(path)

    def test_manifest_count_mismatch(self, forest, tmp_path):
        path = tmp_path / "forest"
        save_forest(forest, path)
        manifest = json.loads((path / "forest.json").read_text())
        manifest["trajectories"] = 999
        (path / "forest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="promises 999"):
            load_forest(path)

    def test_shard_load_error_is_a_value_error(self):
        err = ShardLoadError(3, "shard_0003.pkl", "is missing")
        assert isinstance(err, ValueError)
        assert str(err) == "forest shard 3 (shard_0003.pkl) is missing"
