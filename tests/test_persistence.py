"""TrajTree save/load round-trip tests."""

import pickle

import numpy as np
import pytest

from repro.index import TrajTree
from repro.index.persistence import load_tree, save_tree

from helpers import random_walk_trajectory


@pytest.fixture(scope="module")
def tree():
    rng = np.random.default_rng(61)
    db = [random_walk_trajectory(rng, int(rng.integers(4, 9)))
          for _ in range(30)]
    return TrajTree(db, num_vps=8, min_node_size=6, seed=4)


class TestRoundTrip:
    def test_results_identical(self, tree, tmp_path):
        path = tmp_path / "index.pkl"
        save_tree(tree, path)
        loaded = load_tree(path)
        rng = np.random.default_rng(3)
        for _ in range(5):
            q = random_walk_trajectory(rng, 7)
            assert loaded.knn(q, 5) == tree.knn(q, 5)

    def test_structure_preserved(self, tree, tmp_path):
        path = tmp_path / "index.pkl"
        save_tree(tree, path)
        loaded = load_tree(path)
        assert loaded.height() == tree.height()
        assert loaded.node_count() == tree.node_count()
        assert sorted(loaded.ids()) == sorted(tree.ids())
        assert loaded.storage_summary() == tree.storage_summary()

    def test_loaded_tree_supports_updates(self, tree, tmp_path):
        path = tmp_path / "index.pkl"
        save_tree(tree, path)
        loaded = load_tree(path)
        rng = np.random.default_rng(5)
        tid = loaded.insert(random_walk_trajectory(rng, 6))
        assert tid in loaded
        q = random_walk_trajectory(rng, 7)
        assert [t for t, _ in loaded.knn(q, 5)] == [
            t for t, _ in loaded.knn_scan(q, 5)
        ]


class TestValidation:
    def test_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "junk.pkl"
        with open(path, "wb") as f:
            pickle.dump({"something": "else"}, f)
        with pytest.raises(ValueError, match="not a TrajTree snapshot"):
            load_tree(path)

    def test_rejects_version_mismatch(self, tree, tmp_path):
        path = tmp_path / "index.pkl"
        save_tree(tree, path)
        with open(path, "rb") as f:
            payload = pickle.load(f)
        payload["version"] = "0.0.1"
        with open(path, "wb") as f:
            pickle.dump(payload, f)
        with pytest.raises(ValueError, match="rebuild"):
            load_tree(path)

    def test_rejects_fingerprint_mismatch(self, tree, tmp_path):
        path = tmp_path / "index.pkl"
        save_tree(tree, path)
        with open(path, "rb") as f:
            payload = pickle.load(f)
        payload["fingerprint"]["count"] = 999
        with open(path, "wb") as f:
            pickle.dump(payload, f)
        with pytest.raises(ValueError, match="fingerprint"):
            load_tree(path)
