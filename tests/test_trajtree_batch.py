"""TrajTree batched queries and per-index backend selection."""

import pytest

from repro.core import use_backend
from repro.index import TrajTree


@pytest.fixture(scope="module")
def database():
    from repro.datasets import generate_beijing

    return generate_beijing(50, seed=11)


@pytest.fixture(scope="module")
def queries():
    from repro.datasets import generate_beijing

    return generate_beijing(4, seed=1234)


@pytest.fixture(scope="module")
def tree(database):
    return TrajTree(database, num_vps=15, normalized=True, seed=0)


class TestKnnBatch:
    def test_matches_sequential_knn(self, tree, queries):
        batch = tree.knn_batch(queries, k=5)
        assert batch == [tree.knn(q, 5) for q in queries]

    def test_workers_match_sequential(self, tree, queries):
        assert tree.knn_batch(queries, k=5, workers=3) == tree.knn_batch(
            queries, k=5)

    def test_empty_batch(self, tree):
        assert tree.knn_batch([], k=3) == []

    def test_batch_results_are_exact(self, tree, queries):
        for q, result in zip(queries, tree.knn_batch(queries, k=4)):
            assert [tid for tid, _ in result] == [
                tid for tid, _ in tree.knn_scan(q, 4)]


class TestBackendParity:
    """The numpy-backed tree answers exactly like the reference tree."""

    def test_knn_matches_python_tree(self, database, queries, tree):
        fast_tree = TrajTree(database, num_vps=15, normalized=True, seed=0,
                             backend="numpy")
        for q in queries:
            ref = tree.knn(q, 5)
            fast = fast_tree.knn(q, 5)
            assert [tid for tid, _ in ref] == [tid for tid, _ in fast]
            for (_, d_ref), (_, d_fast) in zip(ref, fast):
                assert d_fast == pytest.approx(d_ref, abs=1e-9)

    def test_range_query_matches(self, database, queries):
        fast_tree = TrajTree(database, num_vps=15, normalized=True, seed=0,
                             backend="numpy")
        q = queries[0]
        radius = fast_tree.knn_scan(q, 5)[-1][1] * 1.01
        hits = fast_tree.range_query(q, radius)
        assert [tid for tid, _ in hits] == [
            tid for tid, _ in fast_tree.range_query_scan(q, radius)]

    def test_global_backend_applies_to_default_tree(self, database, queries,
                                                    tree):
        with use_backend("numpy"):
            fast_tree = TrajTree(database, num_vps=15, normalized=True,
                                 seed=0)
            result = fast_tree.knn(queries[0], 5)
        assert [tid for tid, _ in result] == [
            tid for tid, _ in tree.knn(queries[0], 5)]
