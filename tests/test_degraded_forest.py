"""Degraded-mode forest serving and worker-crash build recovery.

``load_forest(on_shard_error="skip")`` assembles a forest over the
healthy shards of a damaged snapshot; its answers must be bit-identical
to a forest built from those same shards alone (exact over what it
holds — the k-way merge does not care how many shards exist), the census
must name what is missing, and the service layer must flag every answer
computed over it.  Worker-process deaths during a parallel
``from_store`` build recover by serial rebuild, bit-identical to an
undisturbed build.
"""

import asyncio
import multiprocessing
import shutil

import numpy as np
import pytest

from repro.datasets import generate_beijing
from repro.index import TrajForest
from repro.index.persistence import load_forest, save_forest
from repro.service import QueryRequest, QueryService, ServiceConfig
from repro.store import ColumnarStore
from repro.testing.faults import FaultPlan, injected

from helpers import random_walk_trajectory


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(21)
    return [random_walk_trajectory(rng, int(rng.integers(4, 9)))
            for _ in range(32)]


@pytest.fixture(scope="module")
def forest(db):
    return TrajForest(db, num_shards=4, num_vps=4, min_node_size=5, seed=3)


@pytest.fixture()
def snapshot(forest, tmp_path):
    path = tmp_path / "forest"
    save_forest(forest, path)
    return path


def probes(n=4):
    rng = np.random.default_rng(77)
    return [random_walk_trajectory(rng, 7) for _ in range(n)]


def damage(path):
    """Delete shard 1, bit-flip shard 2."""
    (path / "shard_0001.pkl").unlink()
    raw = bytearray((path / "shard_0002.pkl").read_bytes())
    raw[len(raw) // 2] ^= 0x08
    (path / "shard_0002.pkl").write_bytes(bytes(raw))


class TestDegradedLoad:
    def test_skip_matches_healthy_shards_only_oracle(self, forest,
                                                     snapshot):
        damage(snapshot)
        degraded = load_forest(snapshot, on_shard_error="skip")
        assert degraded.degraded
        assert degraded.num_shards == 2
        assert degraded.total_shards == 4
        assert degraded.snapshot_path == str(snapshot)
        # the oracle: a forest of exactly the healthy shards
        oracle = TrajForest.from_shards(
            [forest.shards[0], forest.shards[3]],
            scheme=forest.scheme, seed=forest.seed,
        )
        assert degraded.ids() == oracle.ids()
        for q in probes():
            assert degraded.knn(q, 5) == oracle.knn(q, 5)
            assert degraded.subtrajectory_knn(q, 3) == \
                oracle.subtrajectory_knn(q, 3)
            radius = oracle.knn(q, 4)[-1][1] * 1.1
            assert degraded.range_query(q, radius) == \
                oracle.range_query(q, radius)

    def test_census_names_the_missing_shards(self, snapshot):
        damage(snapshot)
        degraded = load_forest(snapshot, on_shard_error="skip")
        census = degraded.shard_census()
        assert census["total"] == 4
        assert census["healthy"] == 2
        assert [m["shard"] for m in census["missing"]] == [1, 2]
        assert census["missing"][0]["file"] == "shard_0001.pkl"
        assert "missing" in census["missing"][0]["error"]
        assert "integrity" in census["missing"][1]["error"]

    def test_healthy_load_is_not_degraded(self, forest, snapshot):
        loaded = load_forest(snapshot, on_shard_error="skip")
        assert not loaded.degraded
        assert loaded.shard_census() == {"total": 4, "healthy": 4,
                                         "missing": []}
        assert loaded.ids() == forest.ids()

    def test_all_shards_damaged_raises(self, snapshot):
        for i in range(4):
            (snapshot / f"shard_{i:04d}.pkl").unlink()
        with pytest.raises(ValueError, match="all 4 shards failed"):
            load_forest(snapshot, on_shard_error="skip")

    def test_unknown_policy_rejected(self, snapshot):
        with pytest.raises(ValueError, match="on_shard_error"):
            load_forest(snapshot, on_shard_error="retry")

    def test_in_memory_forest_is_healthy(self, forest):
        assert not forest.degraded
        assert forest.shard_census()["missing"] == []
        assert forest.rebuilt_shards == []


class TestWorkerCrashRecovery:
    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="fault plans reach workers via fork inheritance",
    )
    def test_killed_worker_rebuilds_serially_bit_identical(self, tmp_path):
        store_dir = tmp_path / "db.store"
        trajs = generate_beijing(24, seed=5)
        ColumnarStore.from_trajectories(trajs).save(store_dir)
        kwargs = dict(num_shards=4, seed=3, num_vps=4, min_node_size=5)
        oracle = TrajForest.from_store(store_dir, **kwargs)

        # the environment kills the worker building shard 1 mid-build
        plan = FaultPlan().on("forest.build_shard:1", "exit", 17)
        with injected(plan):
            survived = TrajForest.from_store(store_dir, workers=2,
                                             **kwargs)
        assert 1 in survived.rebuilt_shards
        assert not survived.degraded       # recovered, not degraded
        assert survived.ids() == oracle.ids()
        for q in probes(3):
            assert survived.knn(q, 5) == oracle.knn(q, 5)
        for mine, ref in zip(survived.shards, oracle.shards):
            assert mine.ids() == ref.ids()
            assert mine.storage_summary() == ref.storage_summary()


class TestDegradedService:
    def test_query_meta_flags_degraded(self, snapshot):
        damage(snapshot)
        degraded = load_forest(snapshot, on_shard_error="skip")

        async def run():
            service = QueryService(degraded, ServiceConfig(window=0.0))
            answer = await service.submit(
                QueryRequest("knn", probes(1)[0], 3)
            )
            health = service.health_dict()
            await service.aclose()
            return answer, health

        answer, health = asyncio.run(run())
        assert answer.meta["degraded"] is True
        assert answer.meta["missing_shards"] == [1, 2]
        assert answer.results == degraded.knn(probes(1)[0], 3)
        assert health["status"] == "degraded"
        assert health["shards"]["healthy"] == 2

    def test_background_reload_heals_after_repair(self, forest, snapshot,
                                                  tmp_path):
        pristine = tmp_path / "pristine"
        save_forest(forest, pristine)
        damage(snapshot)

        def loader():
            return load_forest(snapshot, on_shard_error="skip")

        async def run():
            from repro.service import Backoff

            service = QueryService(loader(), ServiceConfig(window=0.0),
                                   loader=loader)
            assert service.degraded
            before = service.snapshot_id
            task = service.start_reload_retry(Backoff(base=0.02, cap=0.05))
            # a couple of retry rounds against the still-damaged snapshot
            await asyncio.sleep(0.08)
            assert service.degraded        # no progress, no swap
            # the operator restores the snapshot; the loop picks it up
            for name in ("shard_0001.pkl", "shard_0002.pkl"):
                shutil.copy2(pristine / name, snapshot / name)
            for _ in range(500):
                if not service.degraded:
                    break
                await asyncio.sleep(0.02)
            assert not service.degraded
            assert service.snapshot_id > before
            assert service.stats.reloads == 1
            await asyncio.wait_for(task, timeout=10.0)  # loop ends itself
            answer = await service.submit(
                QueryRequest("knn", probes(1)[0], 5)
            )
            await service.aclose()
            return answer

        answer = asyncio.run(run())
        assert answer.meta["degraded"] is False
        assert answer.results == forest.knn(probes(1)[0], 5)
