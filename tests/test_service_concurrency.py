"""Concurrency oracle for the query service (ISSUE 6).

The service's whole contract is that coalescing, caching, batching and
backpressure are *invisible* in the results: N concurrent clients issuing
random kNN / range / subtrajectory-kNN queries must receive bit-identical
answers to serial library calls on the same index.  These tests lift the
suite's reference-backend oracle pattern to the service layer — randomized
workloads (seeded, several draws) checked element-for-element against
``TrajTree.knn`` / ``range_query`` / ``subtrajectory_knn``.
"""

import asyncio
import random

import pytest

from repro.datasets import generate_beijing
from repro.index import TrajTree
from repro.service import (
    QueryRequest,
    QueryService,
    ServiceClient,
    ServiceConfig,
    serve,
)

DB_SIZE = 36
POOL = 10


# The service contract must hold over every kernel tier, so the whole
# module runs once per backend (ISSUE 9).  The comparison is always
# service-vs-serial on the *same* tree, so no cross-backend tolerance is
# involved; backend equivalence has its own oracle tests.  "native" is
# forced through the memoized availability probe for the lifetime of the
# fixture: with numba the service runs over compiled kernels, without it
# the same dispatch path runs the kernels un-jitted.
BACKENDS_UNDER_TEST = ["python", "numpy", "native"]


@pytest.fixture(scope="module", params=BACKENDS_UNDER_TEST)
def tree(request):
    db = generate_beijing(DB_SIZE, seed=7)
    if request.param == "native":
        import repro._native as native

        prev = native._AVAILABLE
        native._AVAILABLE = True
        try:
            yield TrajTree(db, normalized=True, num_vps=6, seed=7,
                           backend="native")
        finally:
            native._AVAILABLE = prev
    else:
        yield TrajTree(db, normalized=True, num_vps=6, seed=7,
                       backend=request.param)


@pytest.fixture(scope="module")
def query_pool(tree):
    """Distinct query trajectories, disjoint from the indexed db."""
    return generate_beijing(POOL, seed=1007)


def random_requests(tree, query_pool, rng, count):
    """Random (kind, query, param) triples over the pool.

    Range radii are drawn around each query's true 4-NN distance so range
    results are non-trivially populated.
    """
    out = []
    for _ in range(count):
        query = query_pool[rng.randrange(len(query_pool))]
        kind = rng.choice(("knn", "range", "subtrajectory_knn"))
        if kind == "knn":
            param = rng.randint(1, 6)
        elif kind == "subtrajectory_knn":
            param = rng.randint(1, 4)
        else:
            anchor = tree.knn(query, 4)[-1][1]
            param = anchor * rng.uniform(0.5, 1.5)
        out.append((kind, query, param))
    return out


def serial_oracle(tree, request):
    kind, query, param = request
    if kind == "knn":
        return tree.knn(query, int(param))
    if kind == "range":
        return tree.range_query(query, float(param))
    return tree.subtrajectory_knn(query, int(param))


class TestInProcessConcurrency:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_concurrent_clients_match_serial_oracle(self, tree, query_pool,
                                                    seed):
        """N async clients, coalescing on: every result equals the serial
        library call, and at least some requests actually shared a batch."""
        if tree.backend != "numpy" and seed != 0:
            pytest.skip("full seed sweep runs on the numpy tier only; the "
                        "python/native tiers cover the dispatch path with "
                        "one seed (un-jitted native is the slow worst case)")
        rng = random.Random(seed)
        clients = 12
        per_client = 4
        workloads = [
            random_requests(tree, query_pool, rng, per_client)
            for _ in range(clients)
        ]
        expected = [[serial_oracle(tree, r) for r in w] for w in workloads]

        async def run():
            service = QueryService(tree, ServiceConfig(
                window=0.02, max_batch=16, cache_capacity=64,
            ))

            async def client(requests):
                answers = []
                for kind, query, param in requests:
                    answers.append(
                        await service.submit(QueryRequest(kind, query, param))
                    )
                return answers

            got = await asyncio.gather(*(client(w) for w in workloads))
            await service.aclose()
            return got, service

        got, service = asyncio.run(run())

        for client_got, client_want in zip(got, expected):
            for answer, want in zip(client_got, client_want):
                assert answer.results == want

        # the workload is concurrent, so coalescing must have happened
        metas = [a.meta for answers in got for a in answers]
        assert max(m["batch_size"] for m in metas) >= 2
        stats = service.stats_dict()
        assert stats["completed"] == clients * per_client
        assert stats["errors"] == {}
        # every completed request is exactly one of: cache hit, computed,
        # or a coalesced duplicate sharing a computation
        shared = sum(
            1 for m in metas if not m["cache_hit"] and not m["computed"]
        )
        assert stats["cache_hits"] + stats["computed"] + shared == len(metas)

    def test_duplicate_heavy_workload_is_singleflighted(self, tree,
                                                        query_pool):
        """32 concurrent requests over 4 distinct queries: results exact,
        and far fewer computations than requests."""
        requests = [
            QueryRequest("knn", query_pool[i % 4], 3) for i in range(32)
        ]
        expected = [tree.knn(query_pool[i % 4], 3) for i in range(32)]

        async def run():
            service = QueryService(tree, ServiceConfig(
                window=0.02, max_batch=64, cache_capacity=64,
            ))
            answers = await asyncio.gather(
                *(service.submit(r) for r in requests)
            )
            await service.aclose()
            return answers, service

        answers, service = asyncio.run(run())
        assert [a.results for a in answers] == expected
        stats = service.stats_dict()
        # 4 distinct digests: at most a handful of computations (a dup can
        # land in a later batch before the cache fills, but never 32)
        assert stats["computed"] <= 8
        assert stats["tree"]["nodes_visited"] > 0

    def test_query_many_matches_and_shares_duplicates(self, tree,
                                                      query_pool):
        """The tree-level multi-query entry point: order-preserving,
        oracle-exact, duplicates share one computation."""
        rng = random.Random(3)
        requests = random_requests(tree, query_pool, rng, 10)
        requests = requests + [requests[2], requests[5]]   # exact dups
        out = tree.query_many(requests)
        assert len(out) == len(requests)
        for request, (results, stats) in zip(requests, out):
            assert results == serial_oracle(tree, request)
            assert stats.nodes_visited > 0
        assert out[10] is out[2]
        assert out[11] is out[5]


class TestTCPConcurrency:
    def test_tcp_clients_match_serial_oracle(self, tree, query_pool):
        """Concurrent TCP connections through the JSON-line protocol get
        oracle-exact results (floats survive the JSON roundtrip exactly)."""
        rng = random.Random(11)
        workloads = [
            random_requests(tree, query_pool, rng, 3) for _ in range(8)
        ]
        expected = [[serial_oracle(tree, r) for r in w] for w in workloads]

        async def run():
            service = QueryService(tree, ServiceConfig(
                window=0.01, max_batch=32, cache_capacity=64,
            ))
            server = await serve(service, port=0)
            port = server.sockets[0].getsockname()[1]

            async def client(requests):
                conn = await ServiceClient.connect(port=port)
                try:
                    answers = []
                    for kind, query, param in requests:
                        if kind == "knn":
                            got = await conn.knn(query, int(param))
                        elif kind == "range":
                            got = await conn.range_query(query, float(param))
                        else:
                            got = await conn.subtrajectory_knn(
                                query, int(param)
                            )
                        answers.append(got)
                    assert await conn.ping()
                    return answers
                finally:
                    await conn.aclose()

            got = await asyncio.gather(*(client(w) for w in workloads))
            probe = await ServiceClient.connect(port=port)
            stats = await probe.stats()
            await probe.aclose()
            server.close()
            await server.wait_closed()
            await service.aclose()
            return got, stats

        got, stats = asyncio.run(run())
        for client_got, client_want in zip(got, expected):
            for (results, meta), want in zip(client_got, client_want):
                assert results == want
                assert meta["latency_ms"] >= 0.0
                assert set(meta["tree_stats"]) >= {
                    "nodes_visited", "bound_computations",
                    "exact_computations",
                }
        assert stats["completed"] == sum(len(w) for w in workloads)
        assert stats["index"]["trajectories"] == DB_SIZE
