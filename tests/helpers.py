"""Importable test helpers (conftest.py itself cannot be imported)."""

from __future__ import annotations

import numpy as np

from repro.core import Trajectory


def random_walk_trajectory(rng, n, scale=10.0, origin=None):
    """Correlated-step random trajectory (more realistic than iid points)."""
    steps = rng.normal(0, 1, (n - 1, 2)).cumsum(axis=0)
    pts = np.vstack([[0.0, 0.0], steps]) * scale / max(1.0, n ** 0.5)
    if origin is None:
        origin = rng.uniform(0, scale, 2)
    return Trajectory.from_xy(pts + origin)
