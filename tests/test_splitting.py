"""Trip splitting tests — the paper's 15-minute preprocessing rule."""

import numpy as np
import pytest

from repro.core import Trajectory
from repro.datasets.splitting import split_trajectory, split_trips


def stream(points):
    return Trajectory(points, validate=False)


class TestTimeGapRule:
    def test_split_on_large_gap(self):
        t = stream([(0, 0, 0), (10, 0, 60), (20, 0, 60 + 16 * 60),
                    (30, 0, 60 + 17 * 60)])
        trips = split_trajectory(t)
        assert len(trips) == 2
        assert len(trips[0]) == 2
        assert len(trips[1]) == 2

    def test_no_split_under_threshold(self):
        t = stream([(0, 0, 0), (10, 0, 60), (20, 0, 60 + 14 * 60)])
        trips = split_trajectory(t)
        assert len(trips) == 1
        assert len(trips[0]) == 3

    def test_custom_gap(self):
        t = stream([(0, 0, 0), (10, 0, 120)])
        assert len(split_trajectory(t, max_gap=60.0, min_points=1)) == 2


class TestStationaryRule:
    def test_split_on_long_dwell(self):
        """A 20-minute dwell (parked cab) ends the trip; the dwell points
        themselves are dropped."""
        pts = [(0, 0, 0), (100, 0, 60), (200, 0, 120)]
        # parked at (200, 0) for 20 minutes, fixes every 60 s
        pts += [(200 + (i % 3), 0, 120 + 60 * (i + 1)) for i in range(20)]
        pts += [(300, 0, 120 + 21 * 60), (400, 0, 120 + 22 * 60)]
        trips = split_trajectory(stream(pts))
        assert len(trips) == 2
        assert len(trips[0]) == 3          # the driving prefix
        assert trips[1][0].x >= 200.0      # the next trip starts after

    def test_short_dwell_kept(self):
        pts = [(0, 0, 0), (100, 0, 60)]
        pts += [(100, 0, 60 + 60 * (i + 1)) for i in range(5)]  # 5 min dwell
        pts += [(200, 0, 60 + 6 * 60)]
        trips = split_trajectory(stream(pts))
        assert len(trips) == 1

    def test_slow_movement_is_not_dwell(self):
        """Continuous slow progress beyond the radius never triggers the
        stationary rule."""
        pts = [(i * 60.0, 0, i * 60.0) for i in range(40)]  # 1 m/s for 40 min
        trips = split_trajectory(stream(pts))
        assert len(trips) == 1


class TestEdgeCases:
    def test_empty(self):
        assert split_trajectory(Trajectory([])) == []

    def test_single_point_dropped(self):
        assert split_trajectory(stream([(0, 0, 0)])) == []

    def test_min_points_filter(self):
        t = stream([(0, 0, 0), (1, 0, 30), (2, 0, 16 * 60)])
        # gap splits into [2 points] + [1 point]; the singleton is dropped
        trips = split_trajectory(t)
        assert len(trips) == 1

    def test_split_trips_assigns_ids(self):
        s1 = stream([(0, 0, 0), (1, 0, 30), (2, 0, 16 * 60), (3, 0, 16 * 60 + 30)])
        s2 = stream([(5, 5, 0), (6, 5, 30)])
        trips = split_trips([s1, s2])
        assert [t.traj_id for t in trips] == list(range(len(trips)))
