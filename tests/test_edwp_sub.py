"""EDwPsub / PrefixDist unit tests (Eq. 5-6)."""

import math

import numpy as np
import pytest

from repro.core import Trajectory, edwp
from repro.core.edwp_sub import edwp_sub, edwp_sub_alignment, prefix_dist


class TestPaperAnchors:
    def test_example4_edwpsub(self, fig2_trajectories):
        """Example 4: EDwPsub(T2, T1) = 80 (edits 56 + 24, suffix skipped)."""
        t1, t2 = fig2_trajectories
        assert edwp_sub(t2, t1) == pytest.approx(80.0)

    def test_example4_edit_structure(self, fig2_trajectories):
        t1, t2 = fig2_trajectories
        result = edwp_sub_alignment(t2, t1)
        assert result.distance == pytest.approx(80.0)
        costs = sorted(e.cost for e in result.edits)
        assert costs == pytest.approx([24.0, 56.0])

    def test_asymmetry(self, fig2_trajectories):
        """EDwPsub is asymmetric (Sec. IV-B): the Example-4 pair differs."""
        t1, t2 = fig2_trajectories
        assert edwp_sub(t2, t1) != pytest.approx(edwp_sub(t1, t2))


class TestBaseCases:
    def test_empty_query_is_zero(self):
        s = Trajectory.from_xy([(0, 0), (1, 1)])
        assert edwp_sub(Trajectory([]), s) == 0.0
        assert prefix_dist(Trajectory([]), s) == 0.0

    def test_empty_target_is_inf(self):
        t = Trajectory.from_xy([(0, 0), (1, 1)])
        assert edwp_sub(t, Trajectory([])) == math.inf
        assert prefix_dist(t, Trajectory([])) == math.inf

    def test_both_empty(self):
        assert edwp_sub(Trajectory([]), Trajectory([])) == 0.0


class TestSkipping:
    def test_exact_subtrajectory_costs_zero(self):
        """A query that is literally a sub-trajectory of S matches free."""
        s = Trajectory.from_xy([(0, 0), (10, 0), (10, 10), (20, 10), (20, 20)])
        q = s.subtrajectory(1, 4)
        assert edwp_sub(q, s) == pytest.approx(0.0, abs=1e-9)

    def test_prefix_dist_skips_suffix_only(self):
        """PrefixDist anchors at the start: a mid-S query pays for the
        prefix, while EDwPsub does not."""
        s = Trajectory.from_xy([(0, 0), (10, 0), (10, 10), (20, 10)])
        q = s.subtrajectory(2, 4)  # a suffix portion
        assert edwp_sub(q, s) == pytest.approx(0.0, abs=1e-9)
        assert prefix_dist(q, s) > 1.0

    def test_prefix_of_s_is_free_under_prefix_dist(self):
        s = Trajectory.from_xy([(0, 0), (10, 0), (10, 10), (20, 10)])
        q = s.subtrajectory(0, 2)
        assert prefix_dist(q, s) == pytest.approx(0.0, abs=1e-9)


class TestBoundRelations:
    def test_sub_le_full(self, rng):
        """EDwPsub(T, S) <= EDwP(T, S): skipping is never worse (Lemma 2
        with Ts = S)."""
        violations = 0
        for _ in range(50):
            t = Trajectory.from_xy(rng.uniform(0, 10, (int(rng.integers(2, 7)), 2)))
            s = Trajectory.from_xy(rng.uniform(0, 10, (int(rng.integers(2, 9)), 2)))
            if edwp_sub(t, s) > edwp(t, s) + 1e-9:
                violations += 1
        # The Viterbi DP realization is documented (DESIGN.md) as a
        # heuristic: rare violations are tolerated, frequent ones are a bug.
        assert violations <= 2

    def test_sub_le_prefix_dist(self, rng):
        """EDwPsub adds prefix skipping on top of PrefixDist (Eq. 6)."""
        for _ in range(30):
            t = Trajectory.from_xy(rng.uniform(0, 10, (int(rng.integers(2, 6)), 2)))
            s = Trajectory.from_xy(rng.uniform(0, 10, (int(rng.integers(2, 8)), 2)))
            assert edwp_sub(t, s) <= prefix_dist(t, s) + 1e-9

    def test_nonnegative(self, rng):
        for _ in range(20):
            t = Trajectory.from_xy(rng.uniform(0, 10, (4, 2)))
            s = Trajectory.from_xy(rng.uniform(0, 10, (6, 2)))
            assert edwp_sub(t, s) >= 0.0


class TestAlignment:
    def test_costs_sum_to_distance(self, rng):
        for _ in range(15):
            t = Trajectory.from_xy(rng.uniform(0, 10, (int(rng.integers(2, 6)), 2)))
            s = Trajectory.from_xy(rng.uniform(0, 10, (int(rng.integers(2, 8)), 2)))
            result = edwp_sub_alignment(t, s)
            assert sum(e.cost for e in result.edits) == pytest.approx(
                result.distance, rel=1e-9, abs=1e-9
            )

    def test_alignment_covers_whole_query(self, rng):
        t = Trajectory.from_xy(rng.uniform(0, 10, (5, 2)))
        s = Trajectory.from_xy(rng.uniform(0, 10, (7, 2)))
        edits = edwp_sub_alignment(t, s).edits
        assert edits[0].piece1[0] == pytest.approx(tuple(t.data[0, :2]))
        assert edits[-1].piece1[1] == pytest.approx(tuple(t.data[-1, :2]))
