"""TrajTree integration tests: exactness (Alg. 2), structure, updates."""

import numpy as np
import pytest

from repro.core import Trajectory
from repro.index import TrajTree
from repro.index.trajtree import TrajTreeStats

from helpers import random_walk_trajectory


@pytest.fixture(scope="module")
def database():
    rng = np.random.default_rng(11)
    return [
        random_walk_trajectory(rng, int(rng.integers(4, 12)))
        for _ in range(80)
    ]


@pytest.fixture(scope="module")
def tree(database):
    return TrajTree(database, num_vps=12, min_node_size=6, seed=3)


class TestConstruction:
    def test_rejects_empty_db(self):
        with pytest.raises(ValueError):
            TrajTree([])

    def test_rejects_segmentless_trajectory(self):
        with pytest.raises(ValueError):
            TrajTree([Trajectory([(0, 0, 0)])])

    def test_len(self, tree, database):
        assert len(tree) == len(database)

    def test_structure_sane(self, tree):
        assert tree.height() >= 2
        assert tree.node_count() > 1
        for bf in tree.branching_factors():
            assert 2 <= bf <= tree.max_branching

    def test_ids_and_get(self, tree, database):
        ids = tree.ids()
        assert sorted(ids) == list(range(len(database)))
        assert tree.get(ids[0]) is not None

    def test_deterministic_builds(self, database):
        t1 = TrajTree(database[:30], num_vps=8, seed=5)
        t2 = TrajTree(database[:30], num_vps=8, seed=5)
        assert t1.branching_factors() == t2.branching_factors()

    def test_respects_traj_ids(self, database):
        relabelled = [
            Trajectory(t.data, traj_id=100 + i, validate=False)
            for i, t in enumerate(database[:15])
        ]
        tree = TrajTree(relabelled, num_vps=8, seed=0)
        assert sorted(tree.ids()) == list(range(100, 115))


class TestExactness:
    """The headline guarantee: index answers == sequential scan answers."""

    @pytest.mark.parametrize("k", [1, 5, 10])
    def test_knn_matches_scan(self, tree, k):
        rng = np.random.default_rng(77)
        for _ in range(8):
            q = random_walk_trajectory(rng, int(rng.integers(4, 12)))
            got = tree.knn(q, k)
            want = tree.knn_scan(q, k)
            assert [tid for tid, _ in got] == [tid for tid, _ in want]
            for (_, d1), (_, d2) in zip(got, want):
                assert d1 == pytest.approx(d2)

    def test_knn_distances_sorted(self, tree):
        rng = np.random.default_rng(5)
        q = random_walk_trajectory(rng, 8)
        result = tree.knn(q, 10)
        dists = [d for _, d in result]
        assert dists == sorted(dists)

    def test_normalized_mode_exact(self, database):
        tree = TrajTree(database[:40], num_vps=10, normalized=True, seed=1)
        rng = np.random.default_rng(9)
        for _ in range(5):
            q = random_walk_trajectory(rng, 8)
            got = [tid for tid, _ in tree.knn(q, 5)]
            want = [tid for tid, _ in tree.knn_scan(q, 5)]
            assert got == want

    def test_query_of_member_returns_itself_first(self, tree, database):
        got = tree.knn(database[7], 3)
        assert got[0][0] == 7
        assert got[0][1] == pytest.approx(0.0, abs=1e-9)

    def test_k_larger_than_db(self, database):
        tree = TrajTree(database[:12], num_vps=6, seed=2)
        rng = np.random.default_rng(1)
        q = random_walk_trajectory(rng, 6)
        assert len(tree.knn(q, 50)) == 12

    def test_invalid_queries(self, tree):
        rng = np.random.default_rng(2)
        q = random_walk_trajectory(rng, 6)
        with pytest.raises(ValueError):
            tree.knn(q, 0)
        with pytest.raises(ValueError):
            tree.knn(Trajectory([(0, 0, 0)]), 5)


class TestPruning:
    def test_stats_recorded(self, tree):
        rng = np.random.default_rng(3)
        q = random_walk_trajectory(rng, 8)
        stats = TrajTreeStats()
        tree.knn(q, 5, stats=stats)
        assert stats.nodes_visited > 0
        assert stats.exact_computations > 0

    def test_prunes_on_clustered_data(self):
        """With clearly clustered data the tree must avoid computing exact
        distances for most of the far clusters."""
        rng = np.random.default_rng(4)
        db = []
        for c in range(4):
            origin = np.array([c * 500.0, 0.0])
            for _ in range(20):
                db.append(random_walk_trajectory(rng, 8, origin=origin))
        tree = TrajTree(db, num_vps=10, min_node_size=6, seed=0)
        q = random_walk_trajectory(rng, 8, origin=np.array([0.0, 0.0]))
        stats = TrajTreeStats()
        got = tree.knn(q, 5, stats=stats)
        assert [t for t, _ in got] == [t for t, _ in tree.knn_scan(q, 5)]
        assert stats.exact_computations < len(db) * 0.7


class TestUpdates:
    def test_insert_then_query_finds_it(self, database):
        tree = TrajTree(database[:30], num_vps=8, seed=6)
        rng = np.random.default_rng(8)
        new = random_walk_trajectory(rng, 8)
        tid = tree.insert(new)
        assert tid in tree
        got = tree.knn(new, 1)
        assert got[0][0] == tid

    def test_insert_preserves_exactness(self, database):
        tree = TrajTree(database[:30], num_vps=8, seed=6)
        rng = np.random.default_rng(8)
        for _ in range(5):
            tree.insert(random_walk_trajectory(rng, int(rng.integers(4, 10))))
        for _ in range(5):
            q = random_walk_trajectory(rng, 8)
            assert [t for t, _ in tree.knn(q, 5)] == [
                t for t, _ in tree.knn_scan(q, 5)
            ]

    def test_insert_duplicate_id_raises(self, database):
        tree = TrajTree(database[:15], num_vps=8, seed=6)
        rng = np.random.default_rng(8)
        with pytest.raises(ValueError):
            tree.insert(random_walk_trajectory(rng, 6), traj_id=0)

    def test_delete_removes_from_answers(self, database):
        tree = TrajTree(database[:30], num_vps=8, seed=6)
        victim = tree.knn(database[0], 1)[0][0]
        tree.delete(victim)
        assert victim not in tree
        for tid, _ in tree.knn(database[0], 10):
            assert tid != victim

    def test_delete_missing_raises(self, database):
        tree = TrajTree(database[:15], num_vps=8, seed=6)
        with pytest.raises(KeyError):
            tree.delete(999)

    def test_delete_preserves_exactness(self, database):
        tree = TrajTree(database[:30], num_vps=8, seed=6)
        for victim in (3, 11, 19):
            tree.delete(victim)
        rng = np.random.default_rng(10)
        for _ in range(5):
            q = random_walk_trajectory(rng, 8)
            assert [t for t, _ in tree.knn(q, 5)] == [
                t for t, _ in tree.knn_scan(q, 5)
            ]

    def test_needs_rebuild_after_many_updates(self, database):
        tree = TrajTree(database[:20], num_vps=8, seed=6,
                        rebuild_ratio=0.2)
        assert not tree.needs_rebuild()
        rng = np.random.default_rng(12)
        for _ in range(6):
            tree.insert(random_walk_trajectory(rng, 6))
        assert tree.needs_rebuild()
        tree.rebuild()
        assert not tree.needs_rebuild()

    def test_rebuild_preserves_database(self, database):
        tree = TrajTree(database[:20], num_vps=8, seed=6)
        before = sorted(tree.ids())
        tree.rebuild()
        assert sorted(tree.ids()) == before
        rng = np.random.default_rng(13)
        q = random_walk_trajectory(rng, 8)
        assert [t for t, _ in tree.knn(q, 5)] == [
            t for t, _ in tree.knn_scan(q, 5)
        ]
