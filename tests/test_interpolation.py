"""Uniform-density interpolation tests (the EDR-I preprocessing)."""

import numpy as np
import pytest

from repro.core import Trajectory
from repro.datasets.interpolation import (
    corpus_target_spacing,
    densify_to_spacing,
    interpolate_dataset,
    min_sampling_interval,
    resample_time_uniform,
)

from helpers import random_walk_trajectory


class TestDensifyToSpacing:
    def test_gaps_bounded(self, rng):
        t = random_walk_trajectory(rng, 6, scale=100.0)
        dense = densify_to_spacing(t, 3.0)
        assert dense.segment_lengths().max() <= 3.0 + 1e-9

    def test_original_points_kept(self, rng):
        t = random_walk_trajectory(rng, 6, scale=100.0)
        dense = densify_to_spacing(t, 3.0)
        dense_set = {tuple(row) for row in dense.data}
        for row in t.data:
            assert tuple(row) in dense_set

    def test_shape_preserved(self, rng):
        t = random_walk_trajectory(rng, 6, scale=100.0)
        dense = densify_to_spacing(t, 3.0)
        assert dense.length == pytest.approx(t.length)

    def test_breakpoint_dependence(self):
        """The key EDR-I property: two samplings of the same path
        interpolate to *different* point sets."""
        sparse = Trajectory.from_xy([(0, 0), (10, 0)])
        shifted = Trajectory.from_xy([(0, 0), (3, 0), (10, 0)])
        a = densify_to_spacing(sparse, 4.0)
        b = densify_to_spacing(shifted, 4.0)
        assert {tuple(r[:2]) for r in a.data} != {tuple(r[:2]) for r in b.data}

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            densify_to_spacing(Trajectory.from_xy([(0, 0), (1, 0)]), 0.0)

    def test_short_trajectory_passthrough(self):
        t = Trajectory([(1, 1, 0)])
        assert densify_to_spacing(t, 1.0) is t


class TestCorpusTargetSpacing:
    def test_percentile(self, rng):
        trajs = [random_walk_trajectory(rng, 8) for _ in range(10)]
        spacing = corpus_target_spacing(trajs)
        all_lengths = np.concatenate([t.segment_lengths() for t in trajs])
        assert spacing <= np.median(all_lengths)
        assert spacing > 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            corpus_target_spacing([Trajectory([(0, 0, 0), (0, 0, 1)])])


class TestInterpolateDataset:
    def test_uniform_density(self, rng):
        trajs = [random_walk_trajectory(rng, int(rng.integers(4, 10)),
                                        scale=100.0) for _ in range(6)]
        out = interpolate_dataset(trajs)
        spacing = corpus_target_spacing(trajs)
        for t in out:
            if len(t) > 1:
                # budget cap may loosen the spacing; gaps are still uniform
                gaps = t.segment_lengths()
                assert gaps.max() <= max(spacing, t.length / 500) + 1e-6

    def test_max_points_cap(self, rng):
        trajs = [random_walk_trajectory(rng, 5, scale=1000.0)]
        out = interpolate_dataset(trajs, spacing=0.01, max_points=50)
        assert len(out[0]) <= 60


class TestTimeUniform:
    def test_resample_dt(self):
        t = Trajectory([(0, 0, 0), (10, 0, 10)])
        r = resample_time_uniform(t, 2.5)
        assert list(r.times()) == [0.0, 2.5, 5.0, 7.5, 10.0]

    def test_endpoint_kept(self):
        t = Trajectory([(0, 0, 0), (10, 0, 9)])
        r = resample_time_uniform(t, 2.0)
        assert r.times()[-1] == 9.0

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            resample_time_uniform(Trajectory([(0, 0, 0), (1, 0, 1)]), 0.0)

    def test_min_sampling_interval(self):
        a = Trajectory([(0, 0, 0), (1, 0, 5), (2, 0, 7)])
        b = Trajectory([(0, 0, 0), (1, 0, 3)])
        assert min_sampling_interval([a, b]) == 2.0

    def test_min_sampling_interval_empty_raises(self):
        with pytest.raises(ValueError):
            min_sampling_interval([Trajectory([(0, 0, 0)])])
