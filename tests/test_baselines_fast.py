"""Backend-equivalence properties for the baseline distance kernels.

The pure-Python implementations are the oracles (DESIGN.md, "Baseline
kernels"); every vectorized kernel must match them to float tolerance on
arbitrary inputs, including the degenerate shapes that historically break
DP vectorizations: single-point trajectories, duplicated points
(zero-length segments), empty sides, and — for DISSIM — trajectories whose
observation windows do not overlap at all.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    discrete_frechet,
    dissim,
    dtw,
    dtw_many,
    edr,
    edr_many,
    edr_normalized_many,
    erp,
    erp_many,
    frechet_many,
    hausdorff,
    lcss_distance,
    lcss_distance_many,
    lcss_length,
    lp_norm,
)
from repro.core import Trajectory, use_backend

TOL = 1e-9


def coords(min_points=0, max_points=12):
    pair = st.tuples(
        st.floats(-50, 50, allow_nan=False, allow_infinity=False),
        st.floats(-50, 50, allow_nan=False, allow_infinity=False),
    )
    return st.lists(pair, min_size=min_points, max_size=max_points)


def trajectory(min_points=0, max_points=12):
    return coords(min_points, max_points).map(Trajectory.from_xy)


def assert_backends_agree(fn, *args):
    ref = fn(*args, backend="python")
    fast = fn(*args, backend="numpy")
    if math.isinf(ref) or math.isinf(fast):
        assert ref == fast
    else:
        assert fast == pytest.approx(ref, abs=TOL, rel=TOL)


PAIRWISE = [
    ("dtw", lambda a, b, backend: dtw(a, b, backend=backend)),
    ("dtw_banded", lambda a, b, backend: dtw(a, b, window=2, backend=backend)),
    ("edr", lambda a, b, backend: edr(a, b, 3.0, backend=backend)),
    ("erp", lambda a, b, backend: erp(a, b, backend=backend)),
    ("erp_gap", lambda a, b, backend: erp(a, b, gap=(5.0, -3.0),
                                          backend=backend)),
    ("lcss_length", lambda a, b, backend: lcss_length(a, b, 3.0,
                                                      backend=backend)),
    ("lcss_distance", lambda a, b, backend: lcss_distance(a, b, 3.0,
                                                          backend=backend)),
    ("frechet", lambda a, b, backend: discrete_frechet(a, b, backend=backend)),
    ("hausdorff", lambda a, b, backend: hausdorff(a, b, backend=backend)),
    ("dissim", lambda a, b, backend: dissim(a, b, backend=backend)),
    ("lp", lambda a, b, backend: lp_norm(a, b, backend=backend)),
]


@pytest.mark.parametrize("name,fn", PAIRWISE, ids=[n for n, _ in PAIRWISE])
class TestBackendEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(a=trajectory(), b=trajectory())
    def test_random(self, name, fn, a, b):
        assert_backends_agree(fn, a, b)

    def test_single_point(self, name, fn):
        a = Trajectory.from_xy([(1.0, 2.0)])
        b = Trajectory.from_xy([(4.0, 6.0), (7.0, 8.0), (9.0, 1.0)])
        assert_backends_agree(fn, a, b)
        assert_backends_agree(fn, b, a)
        assert_backends_agree(fn, a, a)

    def test_duplicate_points(self, name, fn):
        a = Trajectory.from_xy([(0, 0), (0, 0), (1, 1), (1, 1), (2, 0)])
        b = Trajectory.from_xy([(0, 1), (0, 1), (0, 1), (2, 1)])
        assert_backends_agree(fn, a, b)
        assert_backends_agree(fn, a, a)

    def test_empty_sides(self, name, fn):
        empty = Trajectory([])
        full = Trajectory.from_xy([(0, 0), (3, 4)])
        assert_backends_agree(fn, empty, empty)
        assert_backends_agree(fn, empty, full)
        assert_backends_agree(fn, full, empty)


def test_dissim_disjoint_windows_match():
    """Empty-overlap time spans hit the clamped-endpoint base case."""
    a = Trajectory([(0, 0, 0.0), (1, 0, 10.0)])
    b = Trajectory([(5, 5, 100.0), (6, 5, 110.0)])
    assert_backends_agree(lambda x, y, backend: dissim(x, y, backend=backend),
                          a, b)


def test_dissim_duplicate_timestamps_match():
    a = Trajectory([(0, 0, 0.0), (1, 0, 5.0), (2, 0, 5.0), (3, 0, 10.0)])
    b = Trajectory([(0, 1, 0.0), (3, 1, 10.0)])
    assert_backends_agree(lambda x, y, backend: dissim(x, y, backend=backend),
                          a, b)


def test_edr_eps_conventions_inclusive():
    """EDR matches at exactly eps (<=); LCSS does not (strict <)."""
    a = Trajectory.from_xy([(0.0, 0.0)])
    b = Trajectory.from_xy([(2.0, 0.0)])
    for backend in ("python", "numpy"):
        assert edr(a, b, 2.0, backend=backend) == 0
        assert lcss_length(a, b, 2.0, backend=backend) == 0
        assert lcss_length(a, b, 2.0 + 1e-9, backend=backend) == 1


def test_lcss_banded_falls_back_to_reference():
    """delta > 0 is python-only; both backend names agree regardless."""
    rng = np.random.default_rng(5)
    a = Trajectory.from_xy(rng.normal(0, 3, (9, 2)).cumsum(axis=0))
    b = Trajectory.from_xy(rng.normal(0, 3, (11, 2)).cumsum(axis=0))
    ref = lcss_length(a, b, 4.0, delta=2, backend="python")
    assert lcss_length(a, b, 4.0, delta=2, backend="numpy") == ref


class TestManyKernels:
    """Lockstep batches must equal per-pair reference calls, including the
    variable-length padding, the empty-target base cases and the chunked
    length-sorted processing order."""

    @pytest.fixture(scope="class")
    def batch(self):
        rng = np.random.default_rng(11)
        query = Trajectory.from_xy(rng.normal(0, 4, (18, 2)).cumsum(axis=0))
        lengths = [1, 2, 5, 30, 9, 1, 70, 3, 12, 25]
        targets = [
            Trajectory.from_xy(rng.normal(0, 4, (n, 2)).cumsum(axis=0))
            for n in lengths
        ]
        targets.append(Trajectory([]))
        targets.append(Trajectory.from_xy([(0, 0), (0, 0), (1, 1)]))
        return query, targets

    @pytest.mark.parametrize("many_fn,pair_fn", [
        (lambda q, ts: dtw_many(q, ts, backend="numpy"),
         lambda q, t: dtw(q, t, backend="python")),
        (lambda q, ts: edr_many(q, ts, 3.0, backend="numpy"),
         lambda q, t: edr(q, t, 3.0, backend="python")),
        (lambda q, ts: edr_normalized_many(q, ts, 3.0, backend="numpy"),
         lambda q, t: edr(q, t, 3.0, backend="python") / max(len(q), len(t))),
        (lambda q, ts: erp_many(q, ts, backend="numpy"),
         lambda q, t: erp(q, t, backend="python")),
        (lambda q, ts: lcss_distance_many(q, ts, 3.0, backend="numpy"),
         lambda q, t: lcss_distance(q, t, 3.0, backend="python")),
        (lambda q, ts: frechet_many(q, ts, backend="numpy"),
         lambda q, t: discrete_frechet(q, t, backend="python")),
    ], ids=["dtw", "edr", "edr_norm", "erp", "lcss", "frechet"])
    def test_matches_reference(self, batch, many_fn, pair_fn):
        query, targets = batch
        fast = many_fn(query, targets)
        assert len(fast) == len(targets)
        for value, target in zip(fast, targets):
            ref = pair_fn(query, target)
            if math.isinf(ref):
                assert math.isinf(value)
            else:
                assert value == pytest.approx(ref, abs=TOL, rel=TOL)

    def test_empty_query(self, batch):
        _, targets = batch
        empty = Trajectory([])
        assert dtw_many(empty, targets[:3], backend="numpy") == [
            dtw(empty, t) for t in targets[:3]
        ]
        assert edr_many(empty, targets[:3], 3.0, backend="numpy") == [
            len(t) for t in targets[:3]
        ]

    def test_python_backend_loops(self, batch):
        query, targets = batch
        with use_backend("python"):
            loop = dtw_many(query, targets)
        assert loop == [dtw(query, t, backend="python") for t in targets]
