"""Unit tests for st-boxes (Definition 4)."""

import pytest

from repro.core import STPoint, Segment
from repro.index import STBox


def box(xmin=0.0, ymin=0.0, xmax=10.0, ymax=10.0, min_len=1.0):
    return STBox(xmin, ymin, xmax, ymax, min_len)


class TestConstruction:
    def test_from_segment_is_tight(self):
        seg = Segment(STPoint(3, 8, 0), STPoint(1, 2, 5))
        b = STBox.from_segment(seg)
        assert (b.xmin, b.ymin, b.xmax, b.ymax) == (1.0, 2.0, 3.0, 8.0)
        assert b.min_len == pytest.approx(seg.length)

    def test_from_points(self):
        b = STBox.from_points([(0, 0), (5, 2), (3, 7)], min_len=2.0)
        assert (b.xmin, b.ymin, b.xmax, b.ymax) == (0.0, 0.0, 5.0, 7.0)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            STBox.from_points([], min_len=0.0)

    def test_invalid_extent_raises(self):
        with pytest.raises(ValueError):
            STBox(5, 0, 0, 10, 1.0)

    def test_negative_min_len_raises(self):
        with pytest.raises(ValueError):
            STBox(0, 0, 1, 1, -1.0)


class TestGeometry:
    def test_area(self):
        assert box(0, 0, 4, 5).area == 20.0

    def test_center(self):
        assert box(0, 0, 10, 20).center == (5.0, 10.0)

    def test_contains_point(self):
        b = box()
        assert b.contains_point((5, 5))
        assert b.contains_point((0, 10))
        assert not b.contains_point((11, 5))

    def test_contains_segment(self):
        b = box()
        inside = Segment(STPoint(1, 1, 0), STPoint(9, 9, 1))
        escaping = Segment(STPoint(1, 1, 0), STPoint(9, 11, 1))
        assert b.contains_segment(inside)
        assert not b.contains_segment(escaping)

    def test_dist_point_definition(self):
        """dist(s, b) = min over the box (0 inside, rect distance outside)."""
        b = box()
        assert b.dist_point((5, 5)) == 0.0
        assert b.dist_point((13, 14)) == 5.0

    def test_project_point(self):
        b = box()
        assert b.project_point((15, 5)) == (10.0, 5.0)
        assert b.project_point((5, 5)) == (5.0, 5.0)

    def test_project_on_segment(self):
        b = box()
        (px, py), t = b.project_on_segment((20, 0), (20, 20))
        assert px == 20.0
        assert b.dist_point((px, py)) == pytest.approx(10.0)


class TestExpansion:
    def test_expanded_by_piece_grows(self):
        b = box().expanded_by_piece((12, 5), (12, 8))
        assert b.xmax == 12.0
        assert b.min_len == pytest.approx(1.0)  # piece len 3 > min_len 1

    def test_expanded_by_short_piece_lowers_min_len(self):
        b = box().expanded_by_piece((1, 1), (1.2, 1.0))
        assert b.min_len == pytest.approx(0.2)

    def test_expansion_is_monotone(self):
        b = box()
        grown = b.expanded_by_piece((-5, -5), (20, 25))
        assert grown.xmin <= b.xmin and grown.xmax >= b.xmax
        assert grown.area >= b.area

    def test_union(self):
        a = box(0, 0, 5, 5, min_len=2.0)
        b = box(3, 3, 10, 12, min_len=1.0)
        u = a.union(b)
        assert (u.xmin, u.ymin, u.xmax, u.ymax) == (0.0, 0.0, 10.0, 12.0)
        assert u.min_len == 1.0

    def test_union_area_increase(self):
        b = box(0, 0, 10, 10)
        assert b.union_area_increase((5, 5), (6, 6)) == 0.0
        assert b.union_area_increase((20, 0), (20, 10)) == pytest.approx(100.0)
