"""The vectorized index bound engine (``repro.index.fast_bounds``).

Covers the ISSUE-5 contract: the batched/padded box-DP matches the
reference ``_box_dp`` on random, single-segment, duplicate-point and
empty-ish inputs; the Theorem-2 invariant ``bound <= exact`` holds under
every backend; TrajTree ``knn``/``knn_scan`` results are identical
across backends; and the batch-first pivot-selection kernel matches its
per-pair form bit-for-bit.
"""

import numpy as np
import pytest

from repro.core import Trajectory, edwp, use_backend
from repro.core.edwp import BACKENDS
from repro.core.edwp_sub import edwp_sub, edwp_sub_fast, edwp_sub_fast_queries
from repro.index import TBoxSeq, TrajTree, edwp_sub_box, edwp_sub_box_many
from repro.index import fast_bounds
from repro.index.stbox import STBox

from helpers import random_walk_trajectory


def _random_seq(rng, num_trajs=3, points=8):
    trajs = [random_walk_trajectory(rng, points) for _ in range(num_trajs)]
    return TBoxSeq.from_trajectories(trajs), trajs


class TestGeometryCache:
    def test_geometry_matches_boxes(self, rng):
        seq, _ = _random_seq(rng)
        g = seq.geometry()
        assert np.allclose(g.xmin, [b.xmin for b in seq.boxes])
        assert np.allclose(g.ymax, [b.ymax for b in seq.boxes])
        assert np.allclose(g.min_len, [b.min_len for b in seq.boxes])

    def test_geometry_is_cached(self, rng):
        seq, _ = _random_seq(rng)
        assert seq.geometry() is seq.geometry()

    def test_construction_returns_fresh_cache(self, rng):
        """with_trajectory/compacted return new sequences whose cached
        arrays describe the *new* boxes — the invalidation contract."""
        seq, _ = _random_seq(rng)
        _ = seq.geometry()
        grown = seq.with_trajectory(random_walk_trajectory(rng, 6))
        assert grown is not seq
        g = grown.geometry()
        assert np.allclose(g.xmin, [b.xmin for b in grown.boxes])
        compact = TBoxSeq(list(grown.boxes) * 3).compacted(4)
        gc = compact.geometry()
        assert np.allclose(gc.xmax, [b.xmax for b in compact.boxes])

    def test_pickle_drops_cache_and_rebuilds(self, rng):
        import pickle

        seq, _ = _random_seq(rng)
        _ = seq.geometry()
        clone = pickle.loads(pickle.dumps(seq))
        assert clone._geom is None
        assert np.allclose(clone.geometry().xmin, seq.geometry().xmin)
        assert [b.xmin for b in clone.boxes] == [b.xmin for b in seq.boxes]

    def test_volume_matches_box_sum(self, rng):
        seq, _ = _random_seq(rng)
        assert seq.volume == pytest.approx(
            sum(b.area for b in seq.boxes), abs=1e-12
        )


class TestCompactionEquivalence:
    """The array compaction must mirror the scalar box formulation."""

    @staticmethod
    def _scalar_compact(boxes, max_boxes):
        import math

        boxes = list(boxes)
        while len(boxes) > max_boxes:
            best_i = 0
            best_growth = math.inf
            for i in range(len(boxes) - 1):
                union = boxes[i].union(boxes[i + 1])
                growth = union.area - boxes[i].area - boxes[i + 1].area
                if growth < best_growth:
                    best_growth = growth
                    best_i = i
            boxes[best_i: best_i + 2] = [
                boxes[best_i].union(boxes[best_i + 1])
            ]
        return boxes

    def test_matches_scalar_sweep(self, rng):
        for _ in range(10):
            t = random_walk_trajectory(rng, int(rng.integers(4, 30)))
            raw = [STBox.from_segment(seg) for seg in t.segments()]
            for budget in (2, 5, 12):
                want = self._scalar_compact(raw, budget)
                got = TBoxSeq(raw).compacted(budget).boxes
                assert len(got) == len(want)
                for a, b in zip(got, want):
                    assert a.xmin == b.xmin and a.xmax == b.xmax
                    assert a.ymin == b.ymin and a.ymax == b.ymax
                    assert a.min_len == b.min_len

    def test_from_trajectory_matches_box_path(self, rng):
        for _ in range(5):
            t = random_walk_trajectory(rng, int(rng.integers(3, 25)))
            via_boxes = TBoxSeq(
                [STBox.from_segment(seg) for seg in t.segments()]
            ).compacted(12)
            via_arrays = TBoxSeq.from_trajectory(t, max_boxes=12)
            assert len(via_boxes) == len(via_arrays)
            for a, b in zip(via_arrays.boxes, via_boxes.boxes):
                assert a.xmin == b.xmin and a.ymax == b.ymax
                assert a.min_len == b.min_len


class TestBoxDpEquivalence:
    """numpy box-DP == reference ``_box_dp`` on every input shape."""

    def _assert_matches(self, traj, seqs, thorough=False):
        ref = [
            edwp_sub_box(traj, s, thorough=thorough, backend="python")
            for s in seqs
        ]
        single = [
            edwp_sub_box(traj, s, thorough=thorough, backend="numpy")
            for s in seqs
        ]
        batched = edwp_sub_box_many(
            traj, seqs, thorough=thorough, backend="numpy"
        )
        for r, s, b in zip(ref, single, batched):
            scale = max(1.0, abs(r))
            assert abs(s - r) < 1e-9 * scale
            assert abs(b - r) < 1e-9 * scale

    def test_random(self, rng):
        for _ in range(8):
            q = random_walk_trajectory(rng, int(rng.integers(3, 20)))
            seqs = [
                _random_seq(rng, num_trajs=int(rng.integers(1, 4)),
                            points=int(rng.integers(2, 10)))[0]
                for _ in range(5)
            ]
            self._assert_matches(q, seqs)
            self._assert_matches(q, seqs, thorough=True)

    def test_single_segment_query(self, rng):
        q = Trajectory.from_xy([(0.0, 0.0), (1.0, 2.0)])
        seqs = [_random_seq(rng)[0] for _ in range(3)]
        self._assert_matches(q, seqs)

    def test_single_box_sequences(self, rng):
        q = random_walk_trajectory(rng, 7)
        seqs = [
            TBoxSeq([STBox(0.0, 0.0, 1.0, 1.0, 0.5)]),
            TBoxSeq([STBox(-3.0, 2.0, -1.0, 4.0, 1.0)]),
        ]
        self._assert_matches(q, seqs)

    def test_duplicate_point_query(self, rng):
        q = Trajectory.from_xy([(1.0, 1.0), (1.0, 1.0), (2.0, 3.0),
                                (2.0, 3.0)])
        seqs = [_random_seq(rng)[0] for _ in range(3)]
        self._assert_matches(q, seqs)

    def test_degenerate_point_boxes(self, rng):
        """Zero-area boxes (from zero-length segments) still match."""
        q = random_walk_trajectory(rng, 6)
        seqs = [TBoxSeq([STBox(1.0, 1.0, 1.0, 1.0, 0.0),
                         STBox(2.0, 2.0, 5.0, 5.0, 1.0)])]
        self._assert_matches(q, seqs)

    def test_empty_query_and_empty_batch(self, rng):
        empty = Trajectory([(1.0, 2.0, 0.0)])
        seq = _random_seq(rng)[0]
        for backend in BACKENDS:
            assert edwp_sub_box(empty, seq, backend=backend) == 0.0
            assert edwp_sub_box_many(empty, [seq], backend=backend) == [0.0]
            assert edwp_sub_box_many(
                random_walk_trajectory(rng, 5), [], backend=backend
            ) == []

    def test_variable_length_padding_exact(self, rng):
        """Mixed box counts in one batch: padding must not leak."""
        q = random_walk_trajectory(rng, 10)
        seqs = [
            TBoxSeq.from_trajectory(
                random_walk_trajectory(rng, int(rng.integers(2, 26))),
                max_boxes=int(rng.integers(1, 13)),
            )
            for _ in range(12)
        ]
        assert len({len(s) for s in seqs}) > 1  # genuinely mixed
        self._assert_matches(q, seqs)

    def test_batch_matches_single_bitwise(self, rng):
        q = random_walk_trajectory(rng, 9)
        seqs = [_random_seq(rng, points=int(rng.integers(2, 12)))[0]
                for _ in range(7)]
        singles = [
            fast_bounds.edwp_sub_box_numpy(q, s.geometry()) for s in seqs
        ]
        batched = fast_bounds.edwp_sub_box_many_numpy(
            q, [s.geometry() for s in seqs]
        )
        assert batched == singles


class TestTheorem2Invariant:
    """``bound <= exact`` under every backend (the soundness contract)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bound_below_edwp_and_edwp_sub(self, rng, backend):
        for _ in range(6):
            members = [
                random_walk_trajectory(rng, int(rng.integers(3, 14)))
                for _ in range(3)
            ]
            seq = TBoxSeq.from_trajectories(members)
            q = random_walk_trajectory(rng, int(rng.integers(3, 14)))
            lb = edwp_sub_box(q, seq, backend=backend)
            for t in members:
                assert lb <= edwp_sub(q, t, backend=backend) + 1e-6
                assert lb <= edwp(q, t, backend=backend) + 1e-6


class TestKnnBackendEquivalence:
    @pytest.fixture(scope="class")
    def database(self):
        rng = np.random.default_rng(5)
        return [
            random_walk_trajectory(rng, int(rng.integers(4, 16)))
            for _ in range(60)
        ]

    @pytest.fixture(scope="class")
    def queries(self):
        rng = np.random.default_rng(17)
        return [random_walk_trajectory(rng, 8) for _ in range(3)]

    def test_knn_identical_across_backends(self, database, queries):
        tree = TrajTree(database, theta=0.8, num_vps=8, normalized=True,
                        seed=3, backend="python")
        for q in queries:
            tree.backend = "python"
            ref = tree.knn(q, 5)
            scan = tree.knn_scan(q, 5)
            tree.backend = "numpy"
            fast = tree.knn(q, 5)
            assert [tid for tid, _ in ref] == [tid for tid, _ in fast]
            assert [tid for tid, _ in ref] == [tid for tid, _ in scan]
            for (_, a), (_, b) in zip(ref, fast):
                assert a == pytest.approx(b, abs=1e-9)

    def test_trees_built_per_backend_agree(self, database, queries):
        """Building under either backend gives the same neighbor sets."""
        trees = {
            be: TrajTree(database, theta=0.8, num_vps=8, normalized=True,
                         seed=3, backend=be)
            for be in BACKENDS
        }
        for q in queries:
            answers = {
                be: [tid for tid, _ in tree.knn(q, 5)]
                for be, tree in trees.items()
            }
            assert answers["python"] == answers["numpy"]

    def test_range_and_subtrajectory_equivalence(self, database, queries):
        tree = TrajTree(database, theta=0.8, num_vps=8, normalized=True,
                        seed=3)
        q = queries[0]
        tree.backend = "python"
        radius = tree.knn(q, 8)[-1][1] * 1.001
        r_ref = tree.range_query(q, radius)
        s_ref = tree.subtrajectory_knn(q, 5)
        oracle = tree.subtrajectory_knn_scan(q, 5)
        tree.backend = "numpy"
        r_fast = tree.range_query(q, radius)
        s_fast = tree.subtrajectory_knn(q, 5)
        assert [tid for tid, _ in r_ref] == [tid for tid, _ in r_fast]
        assert [tid for tid, _ in s_ref] == [tid for tid, _ in s_fast]
        assert [tid for tid, _ in s_ref] == [tid for tid, _ in oracle]


class TestBatchFirstPivotKernel:
    def test_matches_per_pair_bitwise(self, rng):
        trajs = [
            random_walk_trajectory(rng, int(rng.integers(2, 20)))
            for _ in range(20)
        ]
        pivot = trajs[3]
        batched = edwp_sub_fast_queries(trajs, pivot, backend="numpy")
        singles = [
            edwp_sub_fast(t, pivot, backend="numpy") for t in trajs
        ]
        assert batched == singles

    def test_matches_python_to_tolerance(self, rng):
        trajs = [
            random_walk_trajectory(rng, int(rng.integers(2, 14)))
            for _ in range(10)
        ]
        pivot = trajs[0]
        batched = edwp_sub_fast_queries(trajs, pivot, backend="numpy")
        ref = [edwp_sub_fast(t, pivot, backend="python") for t in trajs]
        for b, r in zip(batched, ref):
            assert b == pytest.approx(r, abs=1e-9 * max(1.0, r))

    def test_empty_query_and_empty_target(self, rng):
        import math

        empty = Trajectory([(0.0, 0.0, 0.0)])
        full = random_walk_trajectory(rng, 5)
        for backend in BACKENDS:
            with use_backend(backend):
                assert edwp_sub_fast_queries([empty, full], full)[0] == 0.0
                vals = edwp_sub_fast_queries([empty, full], empty)
                assert vals[0] == 0.0
                assert vals[1] == math.inf

    def test_build_identical_across_batched_and_loop(self, rng):
        """Pivot columns feed tree construction: the numpy tree must be
        built from bit-identical diversity distances whether or not the
        batched column evaluator is available (it is the same kernel)."""
        db = [
            random_walk_trajectory(rng, int(rng.integers(4, 12)))
            for _ in range(30)
        ]
        t1 = TrajTree(db, theta=0.8, num_vps=4, seed=11, backend="numpy")
        t2 = TrajTree(db, theta=0.8, num_vps=4, seed=11, backend="numpy")
        assert t1.root.subtree_ids == t2.root.subtree_ids
        assert [len(c.subtree_ids) for c in t1.root.children] == [
            len(c.subtree_ids) for c in t2.root.children
        ]
