"""Anytime query budgets (ISSUE 10).

The anytime contract, tested at every layer it crosses:

* **Unit**: ``QueryBudget`` validation and wire round-trip,
  ``BudgetTracker`` charging / sticky exhaustion / fan-out splitting
  (with an injectable fake clock, so deadline behavior is deterministic),
  ``combine_budgets`` tightening, ``bound_factor_for`` edge cases.
* **Bit-identity**: an *unlimited* budget returns an ``AnytimeResult``
  that compares equal to the plain no-budget answer — on all three
  distance backends (native forced through the memoized probe, so the
  logic is pinned even without numba).
* **Soundness**: for any finite budget that actually truncates, every
  returned distance is ≤ ``bound_factor`` × the true k-th distance
  (measured against the linear-scan oracle via
  :func:`repro.eval.ubfactor.anytime_factor`), on all three backends.
* **Hard ceiling**: ``max_bounds`` is never exceeded by
  ``stats.bound_computations``.
* **Forest census**: per-shard exactness matches per-shard truth when an
  injected ``delay`` fault blows one shard's deadline.
"""

import math

import pytest

import repro._native as native
from repro.datasets import generate_beijing
from repro.eval.ubfactor import anytime_factor
from repro.index import (
    AnytimeResult,
    BudgetTracker,
    QueryBudget,
    TrajForest,
    TrajTree,
    combine_budgets,
)
from repro.index.budget import as_tracker, bound_factor_for
from repro.index.trajtree import TrajTreeStats
from repro.testing.faults import FaultPlan, injected

BACKENDS = ("python", "numpy", "native")


@pytest.fixture(scope="module")
def db():
    return generate_beijing(40, seed=11)


@pytest.fixture(scope="module")
def queries(db):
    return generate_beijing(4, seed=23)


@pytest.fixture(scope="module")
def tree(db):
    return TrajTree(db, normalized=True, num_vps=6, seed=7)


def _forced(backend):
    """Context forcing native availability (see test_backend_matrix)."""
    import contextlib

    @contextlib.contextmanager
    def ctx():
        if backend == "native":
            prev = native._AVAILABLE
            native._AVAILABLE = True
            try:
                yield
            finally:
                native._AVAILABLE = prev
        else:
            yield

    return ctx()


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


# ---------------------------------------------------------------------- #
# unit: QueryBudget / BudgetTracker / helpers
# ---------------------------------------------------------------------- #


class TestQueryBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            QueryBudget(deadline=0.0)
        with pytest.raises(ValueError):
            QueryBudget(deadline=-1.0)
        with pytest.raises(ValueError):
            QueryBudget(max_bounds=-1)
        with pytest.raises(ValueError):
            QueryBudget(epsilon=-0.1)
        with pytest.raises(ValueError):
            QueryBudget(epsilon=float("nan"))
        assert QueryBudget().unlimited
        assert not QueryBudget(max_bounds=0).unlimited
        assert not QueryBudget(epsilon=0.5).unlimited

    def test_wire_round_trip(self):
        b = QueryBudget(deadline=0.25, max_bounds=100, epsilon=0.5)
        assert QueryBudget.from_dict(b.to_dict()) == b
        assert QueryBudget.from_dict({}) == QueryBudget()
        with pytest.raises(ValueError):
            QueryBudget.from_dict({"bogus": 1})
        with pytest.raises((TypeError, ValueError)):
            QueryBudget.from_dict({"max_bounds": 1.5})

    def test_budgets_are_hashable_by_value(self):
        a = QueryBudget(max_bounds=5)
        b = QueryBudget(max_bounds=5)
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_combine_takes_the_tighter_knob(self):
        a = QueryBudget(deadline=1.0, max_bounds=100, epsilon=0.1)
        b = QueryBudget(deadline=0.5, epsilon=0.4)
        c = combine_budgets(a, b)
        assert c.deadline == 0.5
        assert c.max_bounds == 100
        assert c.epsilon == 0.4
        assert combine_budgets(None, None) is None
        assert combine_budgets(a, None) == a
        assert combine_budgets(None, b) == b


class TestBudgetTracker:
    def test_bounds_charge_and_sticky_exhaustion(self):
        t = QueryBudget(max_bounds=10).tracker()
        assert t.exhausted() is None
        t.charge_bounds(6)
        assert t.remaining_bounds() == 4
        assert t.exhausted() is None
        t.charge_bounds(4)
        assert t.remaining_bounds() == 0
        assert t.exhausted() == "bounds"
        # sticky: once exhausted, stays exhausted
        assert t.exhausted() == "bounds"

    def test_deadline_with_fake_clock(self):
        clock = FakeClock()
        t = QueryBudget(deadline=0.5).tracker(clock=clock)
        assert t.exhausted() is None
        clock.now += 0.4
        assert t.exhausted() is None
        clock.now += 0.2
        assert t.exhausted() == "deadline"

    def test_split_shares_deadline_and_divides_bounds(self):
        clock = FakeClock()
        t = QueryBudget(deadline=1.0, max_bounds=10).tracker(clock=clock)
        kids = t.split(3)
        assert len(kids) == 3
        for kid in kids:
            assert kid.deadline_at == t.deadline_at
            assert kid.max_bounds == 4       # ceil(10 / 3)
        clock.now += 2.0
        assert all(k.exhausted() == "deadline" for k in kids)

    def test_as_tracker_normalizes(self):
        assert as_tracker(None) is None
        t = QueryBudget().tracker()
        assert as_tracker(t) is t
        assert isinstance(as_tracker(QueryBudget()), BudgetTracker)
        with pytest.raises(TypeError):
            as_tracker(42)


class TestBoundFactor:
    def test_edge_cases(self):
        pairs = [(1, 1.0), (2, 2.0)]
        assert bound_factor_for(pairs, 3, 0.5) == math.inf   # fewer than k
        assert bound_factor_for(pairs, 2, 4.0) == 1.0        # within residual
        assert bound_factor_for(pairs, 2, 0.0) == math.inf   # no information
        assert bound_factor_for(pairs, 2, 1.0) == 2.0

    def test_anytime_result_is_list_compatible(self):
        pairs = [(1, 1.0)]
        r = AnytimeResult(pairs, exact=False, reason="bounds",
                          residual_bound=0.5, bound_factor=2.0)
        assert r == pairs                     # list equality ignores flags
        assert not r.exact and r.reason == "bounds"
        meta = r.meta_dict()
        assert meta["exact"] is False
        assert meta["bound_factor"] == 2.0
        exact = AnytimeResult(pairs)
        assert exact.exact and exact.meta_dict()["residual_bound"] is None


# ---------------------------------------------------------------------- #
# tree-level contract, all three backends
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", BACKENDS)
class TestAnytimeContract:
    def test_unlimited_budget_is_bit_identical(self, db, queries, backend):
        with _forced(backend):
            t = TrajTree(db, normalized=True, num_vps=6, seed=7,
                         backend=backend)
            for q in queries:
                plain = t.knn(q, 5)
                budgeted = t.knn(q, 5, budget=QueryBudget())
                assert isinstance(budgeted, AnytimeResult)
                assert budgeted.exact and budgeted.reason is None
                assert budgeted == plain
                sub = t.subtrajectory_knn(q, 3, budget=QueryBudget())
                assert sub.exact and sub == t.subtrajectory_knn(q, 3)
                radius = plain[-1][1] * 1.1
                rng = t.range_query(q, radius, budget=QueryBudget())
                assert rng.exact and rng == t.range_query(q, radius)

    def test_truncated_answers_are_sound(self, db, queries, backend):
        with _forced(backend):
            t = TrajTree(db, normalized=True, num_vps=6, seed=7,
                         backend=backend)
            truncated = 0
            for q in queries:
                for max_bounds in (0, 1, 3, 8):
                    r = t.knn(q, 5, budget=QueryBudget(max_bounds=max_bounds))
                    if r.exact:
                        assert r == t.knn(q, 5)
                        continue
                    truncated += 1
                    assert r.reason == "bounds"
                    if math.isfinite(r.bound_factor):
                        realized = anytime_factor(r, q, db, 5)
                        assert realized <= r.bound_factor + 1e-9
            assert truncated > 0      # the budgets above do truncate

    def test_epsilon_bounds_the_error(self, db, queries, backend):
        with _forced(backend):
            t = TrajTree(db, normalized=True, num_vps=6, seed=7,
                         backend=backend)
            eps = 0.5
            saw_epsilon_stop = False
            for q in queries:
                r = t.knn(q, 5, budget=QueryBudget(epsilon=eps))
                realized = anytime_factor(r, q, db, 5)
                assert realized <= 1.0 + eps + 1e-9
                if not r.exact:
                    saw_epsilon_stop = True
                    assert r.reason == "epsilon"
                    assert r.bound_factor <= 1.0 + eps + 1e-12
            # epsilon may or may not trigger per query; the soundness
            # bound above holds either way.
            del saw_epsilon_stop


class TestBudgetMechanics:
    def test_max_bounds_is_a_hard_ceiling(self, tree, queries):
        for q in queries:
            for max_bounds in (0, 1, 5, 20):
                stats = TrajTreeStats()
                tree.knn(q, 5, stats=stats,
                         budget=QueryBudget(max_bounds=max_bounds))
                assert stats.bound_computations <= max_bounds

    def test_exhausted_deadline_truncates_immediately(self, tree, queries):
        clock = FakeClock()
        tracker = QueryBudget(deadline=0.5).tracker(clock=clock)
        clock.now += 1.0              # blown before the search starts
        r = tree.knn(queries[0], 5, budget=tracker)
        assert not r.exact and r.reason == "deadline"

    def test_range_truncation_is_a_subset(self, tree, queries):
        q = queries[0]
        radius = tree.knn(q, 8)[-1][1] * 1.2
        full = tree.range_query(q, radius)
        r = tree.range_query(q, radius, budget=QueryBudget(max_bounds=1))
        assert not r.exact
        assert set(r) <= set(full)

    def test_query_many_accepts_budgets(self, tree, queries):
        q = queries[0]
        budget = QueryBudget(max_bounds=1)
        out = tree.query_many([
            ("knn", q, 5),
            ("knn", q, 5, budget),
            ("knn", q, 5, budget),
            ("knn", q, 5, QueryBudget()),
        ])
        plain, _ = out[0]
        assert plain == tree.knn(q, 5)
        truncated, _ = out[1]
        assert not truncated.exact
        # same (query, budget) singleflights to one computation
        assert out[1][0] is out[2][0]
        # unlimited-budget result is distinct from, but equal to, plain
        assert out[3][0] == plain and out[3][0].exact


# ---------------------------------------------------------------------- #
# forest fan-out and the partial-exactness census
# ---------------------------------------------------------------------- #


class TestForestBudgets:
    @pytest.fixture(scope="class")
    def forest(self, db):
        return TrajForest(db, num_shards=3, normalized=True, num_vps=6,
                          seed=7)

    def test_unlimited_budget_merges_exact(self, forest, tree, queries):
        for q in queries:
            r = forest.knn(q, 5, budget=QueryBudget())
            assert r.exact and r.shard_exact == [True, True, True]
            assert r == tree.knn(q, 5)

    def test_census_matches_injected_shard_delay(self, forest, queries):
        q = queries[0]
        # shard 2's fault point sleeps past the whole deadline, so shards
        # 0 and 1 (queried before the delay fires) answer exactly and
        # shard 2 comes back deadline-truncated.
        plan = FaultPlan().on("forest.query_shard:2", "delay", 0.25)
        with injected(plan):
            r = forest.knn(q, 5, budget=QueryBudget(deadline=0.1))
        assert plan.fired() == 1
        assert r.shard_exact == [True, True, False]
        assert not r.exact and r.reason == "deadline"
        # partial answers stay sound: the merged list is a valid ranking
        # over whatever the healthy shards returned
        assert r == sorted(r, key=lambda p: (p[1], p[0]))

    def test_forest_bounds_split(self, forest, queries):
        q = queries[0]
        r = forest.knn(q, 5, budget=QueryBudget(max_bounds=0))
        assert not r.exact and r.reason == "bounds"
        assert r.shard_exact == [False, False, False]
