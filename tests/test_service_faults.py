"""Fault injection for the query service (ISSUE 6).

Covers the failure half of the service contract: per-request timeouts
surface as typed errors without poisoning the shared batcher, a cancelled
request never loses its batch-mates' results, the bounded queue sheds
load with ``ServiceOverloaded`` under a flooding client, the server
drains cleanly on shutdown mid-batch, and malformed input fails with
``InvalidRequest`` both in-process and over the wire.
"""

import asyncio
import json
import time

import pytest

from repro.datasets import generate_beijing
from repro.index import TrajTree
from repro.service import (
    InvalidRequest,
    QueryRequest,
    QueryService,
    RequestTimeout,
    ServiceClient,
    ServiceClosed,
    ServiceConfig,
    ServiceOverloaded,
    serve,
)
from repro.core import Trajectory


@pytest.fixture(scope="module")
def tree():
    db = generate_beijing(20, seed=7)
    return TrajTree(db, normalized=True, num_vps=4, seed=7, backend="numpy")


@pytest.fixture(scope="module")
def queries():
    return generate_beijing(8, seed=1007)


def slowed(service, delay):
    """A dispatch wrapper injecting latency before the real computation.

    The service's batcher calls ``self._execute_batch`` late-bound, so
    swapping the attribute on the instance is enough to inject the fault
    — and restoring it heals the service.
    """
    real = QueryService._execute_batch

    def slow_execute(requests):
        time.sleep(delay)
        return real(service, requests)

    return slow_execute


class TestTimeouts:
    def test_timeout_fires_typed_and_batcher_survives(self, tree, queries):
        async def run():
            service = QueryService(tree, ServiceConfig(window=0.0))
            service._execute_batch = slowed(service, 0.3)
            with pytest.raises(RequestTimeout):
                await service.submit(
                    QueryRequest("knn", queries[0], 3, timeout=0.05)
                )
            # heal the dispatch: the shared batcher must still work, and
            # the timed-out request must not have corrupted its queue
            del service._execute_batch
            answer = await service.submit(QueryRequest("knn", queries[1], 3))
            await service.aclose()
            return answer, service

        answer, service = asyncio.run(run())
        assert answer.results == tree.knn(queries[1], 3)
        assert service.stats_dict()["errors"] == {"timeout": 1}

    def test_timed_out_batchmate_does_not_block_others(self, tree, queries):
        """One request with a tiny deadline and one with none share a
        batch; the slow dispatch strands only the impatient one."""
        async def run():
            service = QueryService(tree, ServiceConfig(window=0.05))
            service._execute_batch = slowed(service, 0.2)
            impatient = asyncio.ensure_future(service.submit(
                QueryRequest("knn", queries[0], 3, timeout=0.1)
            ))
            patient = asyncio.ensure_future(service.submit(
                QueryRequest("knn", queries[1], 4)
            ))
            results = await asyncio.gather(impatient, patient,
                                           return_exceptions=True)
            await service.aclose()
            return results

        impatient, patient = asyncio.run(run())
        assert isinstance(impatient, RequestTimeout)
        assert patient.results == tree.knn(queries[1], 4)


class TestCancellation:
    def test_cancelled_request_keeps_batchmates_results(self, tree, queries):
        async def run():
            service = QueryService(tree, ServiceConfig(window=0.05))
            doomed = asyncio.ensure_future(service.submit(
                QueryRequest("knn", queries[2], 3)
            ))
            survivor = asyncio.ensure_future(service.submit(
                QueryRequest("range", queries[3], 100.0)
            ))
            await asyncio.sleep(0.01)      # both queued in the same window
            doomed.cancel()
            answer = await survivor
            assert doomed.cancelled()
            await service.aclose()
            return answer

        answer = asyncio.run(run())
        assert answer.results == tree.range_query(queries[3], 100.0)


class TestBackpressure:
    def test_flood_sheds_with_service_overloaded(self, tree, queries):
        async def run():
            service = QueryService(tree, ServiceConfig(
                window=0.0, max_batch=2, max_pending=4, cache_capacity=0,
            ))
            service._execute_batch = slowed(service, 0.05)
            flood = [
                asyncio.ensure_future(service.submit(
                    QueryRequest("knn", queries[i % len(queries)], 3)
                ))
                for i in range(16)
            ]
            settled = await asyncio.gather(*flood, return_exceptions=True)
            # the service recovers once the flood passes
            del service._execute_batch
            after = await service.submit(QueryRequest("knn", queries[0], 2))
            await service.aclose()
            return settled, after, service

        settled, after, service = asyncio.run(run())
        shed = [r for r in settled if isinstance(r, ServiceOverloaded)]
        served = [r for r in settled if not isinstance(r, Exception)]
        assert shed, "flood never hit the queue bound"
        assert served, "backpressure shed everything"
        for i, outcome in enumerate(settled):
            if not isinstance(outcome, Exception):
                assert outcome.results == tree.knn(
                    queries[i % len(queries)], 3
                )
        assert after.results == tree.knn(queries[0], 2)
        stats = service.stats_dict()
        assert stats["errors"]["overloaded"] == len(shed)
        # accepted requests were never silently dropped
        assert stats["completed"] == len(served) + 1

    def test_overload_error_is_immediate(self, tree, queries):
        """Shedding happens at submit time, not after waiting a window."""
        async def run():
            service = QueryService(tree, ServiceConfig(
                window=10.0, max_pending=1, cache_capacity=0,
            ))
            first = asyncio.ensure_future(service.submit(
                QueryRequest("knn", queries[0], 3)
            ))
            await asyncio.sleep(0)         # let it enqueue
            start = asyncio.get_running_loop().time()
            with pytest.raises(ServiceOverloaded):
                await service.submit(QueryRequest("knn", queries[1], 3))
            elapsed = asyncio.get_running_loop().time() - start
            first.cancel()
            await service.aclose()
            return elapsed

        assert asyncio.run(run()) < 1.0


class TestShutdown:
    def test_drain_delivers_in_flight_batch_then_refuses(self, tree,
                                                         queries):
        async def run():
            service = QueryService(tree, ServiceConfig(window=0.02))
            service._execute_batch = slowed(service, 0.1)
            inflight = [
                asyncio.ensure_future(service.submit(
                    QueryRequest("knn", queries[i], 3)
                ))
                for i in range(3)
            ]
            await asyncio.sleep(0.04)      # batch dispatched, still running
            await service.aclose()         # shutdown mid-batch
            answers = await asyncio.gather(*inflight)
            with pytest.raises(ServiceClosed):
                await service.submit(QueryRequest("knn", queries[0], 3))
            return answers

        answers = asyncio.run(run())
        for i, answer in enumerate(answers):
            assert answer.results == tree.knn(queries[i], 3)


class TestInvalidInput:
    def test_invalid_requests_raise_typed(self, tree, queries):
        async def run():
            service = QueryService(tree)
            for request in (
                QueryRequest("nope", queries[0], 3),
                QueryRequest("knn", queries[0], 0),
                QueryRequest("knn", queries[0], 2.5),
                QueryRequest("range", queries[0], -1.0),
                QueryRequest("knn", Trajectory([(0.0, 0.0, 0.0)]), 3),
            ):
                with pytest.raises(InvalidRequest):
                    await service.submit(request)
            await service.aclose()
            return service

        service = asyncio.run(run())
        assert service.stats_dict()["errors"]["invalid_request"] == 5

    def test_wire_errors_keep_connection_usable(self, tree, queries):
        async def run():
            service = QueryService(tree)
            server = await serve(service, port=0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            # not JSON at all
            writer.write(b"this is not json\n")
            await writer.drain()
            err = json.loads(await reader.readline())
            assert err["ok"] is False
            assert err["error"]["code"] == "invalid_request"
            # a bad op
            writer.write(json.dumps({"op": "knn", "k": 3}).encode() + b"\n")
            await writer.drain()
            err2 = json.loads(await reader.readline())
            assert err2["error"]["code"] == "invalid_request"
            # same connection still serves real queries afterwards
            client = ServiceClient(reader, writer)
            results, _ = await client.knn(queries[0], 3)
            await client.aclose()
            server.close()
            await server.wait_closed()
            await service.aclose()
            return results

        assert asyncio.run(run()) == tree.knn(queries[0], 3)
