"""Vantage point machinery tests (Definitions 6-8)."""

import random

import numpy as np
import pytest

from repro.core import Trajectory
from repro.index.vantage import (
    VantageIndex,
    select_vantage_points,
    vantage_distance,
    vp_distance,
    vp_distances,
)

from helpers import random_walk_trajectory


class TestVPDistance:
    def test_closest_point_not_sample(self):
        """Definition 6: the closest point may be interior to a segment."""
        t = Trajectory.from_xy([(0, 0), (10, 0)])
        assert vp_distance(t, (5, 3)) == pytest.approx(3.0)

    def test_at_sample(self):
        t = Trajectory.from_xy([(0, 0), (10, 0)])
        assert vp_distance(t, (0, 0)) == 0.0

    def test_single_point_trajectory(self):
        t = Trajectory([(2, 2, 0)])
        assert vp_distance(t, (5, 6)) == pytest.approx(5.0)

    def test_vectorized_matches_scalar(self, rng):
        t = random_walk_trajectory(rng, 8)
        vps = rng.uniform(0, 20, (10, 2))
        vec = vp_distances(t, vps)
        for i in range(10):
            assert vec[i] == pytest.approx(vp_distance(t, vps[i]))

    def test_empty_trajectory_raises(self):
        with pytest.raises(ValueError):
            vp_distance(Trajectory([]), (0, 0))

    def test_degenerate_segment(self):
        t = Trajectory([(1, 1, 0), (1, 1, 5)])
        assert vp_distance(t, (4, 5)) == pytest.approx(5.0)


class TestSelectVantagePoints:
    def test_count(self, rng):
        trajs = [random_walk_trajectory(rng, 6) for _ in range(5)]
        vps = select_vantage_points(trajs, 8, random.Random(0))
        assert vps.shape == (8, 2)

    def test_caps_at_available_points(self, rng):
        trajs = [random_walk_trajectory(rng, 3)]
        vps = select_vantage_points(trajs, 100, random.Random(0))
        assert vps.shape[0] == 3

    def test_spread(self, rng):
        """Max-min selection spreads VPs: no two coincide."""
        trajs = [random_walk_trajectory(rng, 8) for _ in range(5)]
        vps = select_vantage_points(trajs, 10, random.Random(0))
        dists = np.hypot(
            vps[:, None, 0] - vps[None, :, 0], vps[:, None, 1] - vps[None, :, 1]
        )
        np.fill_diagonal(dists, np.inf)
        assert dists.min() > 0.0


class TestVantageDistance:
    def test_identical_descriptors(self):
        d = np.array([1.0, 2.0, 3.0])
        assert vantage_distance(d, d) == 0.0

    def test_range(self, rng):
        for _ in range(20):
            a = rng.uniform(0, 10, 5)
            b = rng.uniform(0, 10, 5)
            vd = vantage_distance(a, b)
            assert 0.0 <= vd <= 1.0

    def test_symmetry(self, rng):
        a = rng.uniform(0, 10, 5)
        b = rng.uniform(0, 10, 5)
        assert vantage_distance(a, b) == pytest.approx(vantage_distance(b, a))

    def test_zero_dimensions_agree(self):
        assert vantage_distance(np.zeros(3), np.zeros(3)) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            vantage_distance(np.zeros(3), np.zeros(4))


class TestVantageIndex:
    def test_build_and_topk(self, rng):
        trajs = [random_walk_trajectory(rng, 6) for _ in range(10)]
        idx = VantageIndex.build(trajs, list(range(10)), 6, random.Random(0))
        q = trajs[3]
        top = idx.top_k(idx.describe(q), 3)
        assert len(top) == 3
        # the trajectory itself has VD 0 and must rank first
        assert top[0][0] == 3
        assert top[0][1] == pytest.approx(0.0)

    def test_topk_excludes(self, rng):
        trajs = [random_walk_trajectory(rng, 6) for _ in range(10)]
        idx = VantageIndex.build(trajs, list(range(10)), 6, random.Random(0))
        top = idx.top_k(idx.describe(trajs[3]), 3, exclude={3})
        assert all(tid != 3 for tid, _ in top)

    def test_vd_correlates_with_proximity(self, rng):
        """Trajectories through similar regions should have small VD —
        the Sec. IV-E design intuition."""
        base = random_walk_trajectory(rng, 8, origin=np.array([0.0, 0.0]))
        near = base.translated(1.0, 1.0)
        far = base.translated(300.0, 300.0)
        idx = VantageIndex.build([base, near, far], [0, 1, 2], 8,
                                 random.Random(0))
        qd = idx.describe(base)
        vd_near = idx.top_k(qd, 3)
        order = [tid for tid, _ in vd_near]
        assert order.index(1) < order.index(2)

    def test_mismatched_rows_raise(self, rng):
        trajs = [random_walk_trajectory(rng, 6) for _ in range(3)]
        idx = VantageIndex.build(trajs, [0, 1, 2], 4, random.Random(0))
        with pytest.raises(ValueError):
            VantageIndex(idx.vps, [0, 1], idx.descriptors)
