"""Property-based tests for the baseline distances.

Structural invariants every implementation must satisfy — symmetry,
identity, bounds, and the defining relationships between the measures.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    discrete_frechet,
    dissim,
    dtw,
    edr,
    erp,
    hausdorff,
    lcss,
    lcss_distance,
    lcss_length,
    lp_norm,
    ma,
)
from repro.core import Trajectory


def coords(min_points=1, max_points=7):
    pair = st.tuples(
        st.floats(-30, 30, allow_nan=False, allow_infinity=False),
        st.floats(-30, 30, allow_nan=False, allow_infinity=False),
    )
    return st.lists(pair, min_size=min_points, max_size=max_points)


def trajectory(min_points=1, max_points=7):
    return coords(min_points, max_points).map(Trajectory.from_xy)


@settings(max_examples=50, deadline=None)
@given(trajectory(), trajectory())
def test_dtw_symmetric_nonnegative(a, b):
    d = dtw(a, b)
    assert d >= 0.0
    assert d == pytest.approx(dtw(b, a), rel=1e-9, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(trajectory())
def test_dtw_identity(a):
    assert dtw(a, a) == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(trajectory(), trajectory(), st.floats(0.1, 10.0))
def test_edr_bounds(a, b, eps):
    d = edr(a, b, eps)
    assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))
    assert d == edr(b, a, eps)


@settings(max_examples=50, deadline=None)
@given(trajectory(), trajectory(), st.floats(0.1, 10.0))
def test_lcss_bounds(a, b, eps):
    l = lcss_length(a, b, eps)
    assert 0 <= l <= min(len(a), len(b))
    sim = lcss(a, b, eps)
    assert 0.0 <= sim <= 1.0
    assert 0.0 <= lcss_distance(a, b, eps) <= 1.0


@settings(max_examples=50, deadline=None)
@given(trajectory(), trajectory(), st.floats(0.1, 10.0))
def test_edr_lcss_duality(a, b, eps):
    """EDR can always delete-to-LCSS: edits <= n + m - 2*LCSS."""
    l = lcss_length(a, b, eps)
    assert edr(a, b, eps) <= len(a) + len(b) - 2 * l + 1e-9


@settings(max_examples=50, deadline=None)
@given(trajectory(), trajectory())
def test_erp_metric_properties(a, b):
    d = erp(a, b)
    assert d >= 0.0
    assert d == pytest.approx(erp(b, a), rel=1e-9, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(trajectory(2, 6), trajectory(2, 6), trajectory(2, 6))
def test_erp_triangle_inequality(a, b, c):
    assert erp(a, c) <= erp(a, b) + erp(b, c) + 1e-7


@settings(max_examples=50, deadline=None)
@given(trajectory(), trajectory())
def test_frechet_dominates_pointwise_hausdorff(a, b):
    f = discrete_frechet(a, b)
    assert f >= 0.0
    assert f == pytest.approx(discrete_frechet(b, a), rel=1e-9, abs=1e-9)
    if math.isfinite(f):
        assert f >= hausdorff(a, b) - 1e-7


@settings(max_examples=50, deadline=None)
@given(trajectory())
def test_hausdorff_identity_and_symmetry(a):
    assert hausdorff(a, a) == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(trajectory(2, 7), trajectory(2, 7))
def test_dissim_nonnegative_symmetric(a, b):
    d = dissim(a, b)
    assert d >= 0.0
    assert d == pytest.approx(dissim(b, a), rel=1e-7, abs=1e-7)


@settings(max_examples=50, deadline=None)
@given(trajectory(), trajectory())
def test_ma_nonnegative(a, b):
    assert ma(a, b) >= 0.0


@settings(max_examples=50, deadline=None)
@given(trajectory(), trajectory())
def test_lp_norm_nonnegative_symmetric(a, b):
    d = lp_norm(a, b)
    assert d >= 0.0
    if math.isfinite(d):
        assert d == pytest.approx(lp_norm(b, a), rel=1e-9, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(trajectory(), st.floats(0.5, 5.0))
def test_edr_monotone_in_eps_vs_self_densified(a, eps):
    """More tolerance never increases EDR."""
    if a.num_segments == 0:
        return
    b = a.with_point_inserted(0, 0.5)
    assert edr(a, b, eps * 2) <= edr(a, b, eps)
