"""Tests for corpus statistics and bootstrap utilities."""

import numpy as np
import pytest

from repro.core import Trajectory
from repro.datasets import generate_beijing
from repro.datasets.stats import corpus_stats, format_stats
from repro.eval.bootstrap import bootstrap_diff_ci, bootstrap_mean_ci


class TestCorpusStats:
    def test_basic_counts(self):
        trajs = [
            Trajectory([(0, 0, 0), (10, 0, 10)]),
            Trajectory([(0, 0, 0), (5, 0, 5), (10, 0, 20)]),
        ]
        stats = corpus_stats(trajs)
        assert stats.num_trajectories == 2
        assert stats.total_points == 5
        assert stats.points_min == 2
        assert stats.points_max == 3
        assert stats.length_mean == pytest.approx(10.0)

    def test_speed(self):
        t = Trajectory([(0, 0, 0), (100, 0, 10)])
        assert corpus_stats([t]).speed_mean == pytest.approx(10.0)

    def test_interval_structure_uniform(self):
        t = Trajectory([(0, 0, 0), (1, 0, 10), (2, 0, 20), (3, 0, 30)])
        stats = corpus_stats([t])
        assert stats.interval_mean == pytest.approx(10.0)
        assert stats.intra_traj_interval_cv == pytest.approx(0.0)

    def test_inter_variation_detected(self):
        fast = Trajectory([(0, 0, 0), (1, 0, 1), (2, 0, 2)])
        slow = Trajectory([(0, 0, 0), (1, 0, 100), (2, 0, 200)])
        stats = corpus_stats([fast, slow])
        assert stats.inter_traj_interval_cv > 0.5

    def test_beijing_has_heterogeneous_sampling(self):
        """The synthetic workload exhibits the paper's motivating nuisance."""
        stats = corpus_stats(generate_beijing(25, seed=1))
        assert stats.inter_traj_interval_cv > 0.3
        assert stats.intra_traj_interval_cv > 0.05

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            corpus_stats([])

    def test_format(self):
        text = format_stats(corpus_stats(generate_beijing(5, seed=1)))
        assert "trajectories" in text
        assert "interval CV" in text


class TestBootstrap:
    def test_mean_ci_contains_truth(self, rng):
        sample = rng.normal(5.0, 1.0, 200)
        ci = bootstrap_mean_ci(sample, seed=1)
        assert ci.low <= 5.0 <= ci.high
        assert ci.contains(float(np.mean(sample)))

    def test_ci_narrows_with_sample_size(self, rng):
        small = bootstrap_mean_ci(rng.normal(0, 1, 20), seed=1)
        large = bootstrap_mean_ci(rng.normal(0, 1, 2000), seed=1)
        assert (large.high - large.low) < (small.high - small.low)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], confidence=1.5)

    def test_diff_ci_detects_gap(self, rng):
        a = rng.normal(1.0, 0.1, 100)
        b = rng.normal(0.0, 0.1, 100)
        ci = bootstrap_diff_ci(a, b, seed=2)
        assert ci.low > 0.5

    def test_diff_ci_paired_lengths(self):
        with pytest.raises(ValueError):
            bootstrap_diff_ci([1, 2], [1, 2, 3])

    def test_str(self):
        ci = bootstrap_mean_ci([1.0, 2.0, 3.0], seed=0)
        assert "@95%" in str(ci)
