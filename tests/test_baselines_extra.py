"""Tests for the additional comparators: Fréchet, Hausdorff, DTW index."""

import math

import numpy as np
import pytest

from repro.baselines import (
    DTWIndex,
    directed_hausdorff,
    discrete_frechet,
    dtw,
    hausdorff,
    lb_keogh,
    lb_kim,
)
from repro.baselines.dtw_index import _envelope
from repro.core import Trajectory

from helpers import random_walk_trajectory


LINE = Trajectory.from_xy([(0, 0), (1, 0), (2, 0), (3, 0)])
SHIFTED = Trajectory.from_xy([(0, 5), (1, 5), (2, 5), (3, 5)])


class TestDiscreteFrechet:
    def test_identity(self):
        assert discrete_frechet(LINE, LINE) == 0.0

    def test_parallel_lines(self):
        assert discrete_frechet(LINE, SHIFTED) == pytest.approx(5.0)

    def test_empty(self):
        assert discrete_frechet(Trajectory([]), Trajectory([])) == 0.0
        assert discrete_frechet(LINE, Trajectory([])) == math.inf

    def test_symmetry(self, rng):
        a = random_walk_trajectory(rng, 6)
        b = random_walk_trajectory(rng, 9)
        assert discrete_frechet(a, b) == pytest.approx(discrete_frechet(b, a))

    def test_bottleneck_dominated_by_outlier(self):
        """One bad sample sets the whole distance (unlike EDwP)."""
        a = Trajectory.from_xy([(0, 0), (1, 0), (2, 0)])
        b = Trajectory.from_xy([(0, 0), (1, 50), (2, 0)])
        assert discrete_frechet(a, b) == pytest.approx(50.0)

    def test_lower_bounded_by_endpoint_distance(self, rng):
        for _ in range(20):
            a = random_walk_trajectory(rng, 5)
            b = random_walk_trajectory(rng, 7)
            endpoint = max(
                math.hypot(a.data[0, 0] - b.data[0, 0],
                           a.data[0, 1] - b.data[0, 1]),
                math.hypot(a.data[-1, 0] - b.data[-1, 0],
                           a.data[-1, 1] - b.data[-1, 1]),
            )
            assert discrete_frechet(a, b) >= endpoint - 1e-9

    def test_at_least_hausdorff(self, rng):
        """Fréchet (ordered) dominates Hausdorff over the sampled points."""
        for _ in range(10):
            a = random_walk_trajectory(rng, 6)
            b = random_walk_trajectory(rng, 6)
            assert discrete_frechet(a, b) >= hausdorff(a, b) - 1e-9


class TestHausdorff:
    def test_identity(self):
        assert hausdorff(LINE, LINE) == 0.0

    def test_parallel(self):
        assert hausdorff(LINE, SHIFTED) == pytest.approx(5.0)

    def test_uses_polyline_not_samples(self):
        sparse = Trajectory.from_xy([(0, 0), (10, 0)])
        dense = Trajectory.from_xy([(0, 0), (5, 0), (10, 0)])
        assert hausdorff(sparse, dense) == pytest.approx(0.0)

    def test_order_free(self):
        """Hausdorff cannot see traversal order — the control property."""
        fwd = Trajectory.from_xy([(0, 0), (5, 0), (10, 0)])
        scrambled = Trajectory.from_xy([(10, 0), (0, 0), (5, 0)])
        # same point set, same supporting line segmentation
        assert hausdorff(fwd, scrambled) == pytest.approx(0.0)

    def test_directed_asymmetry(self):
        short = Trajectory.from_xy([(0, 0), (1, 0)])
        long = Trajectory.from_xy([(0, 0), (1, 0), (50, 0)])
        assert directed_hausdorff(short, long) == pytest.approx(0.0)
        assert directed_hausdorff(long, short) == pytest.approx(49.0)

    def test_empty(self):
        assert hausdorff(Trajectory([]), Trajectory([])) == 0.0
        assert hausdorff(LINE, Trajectory([])) == math.inf


class TestDTWIndexBounds:
    def test_envelope_contains_data(self, rng):
        t = random_walk_trajectory(rng, 10)
        lower, upper = _envelope(t.spatial(), 2)
        assert np.all(lower <= t.spatial() + 1e-12)
        assert np.all(upper >= t.spatial() - 1e-12)

    def test_lb_kim_lower_bounds_dtw(self, rng):
        for _ in range(30):
            a = random_walk_trajectory(rng, int(rng.integers(2, 8)))
            b = random_walk_trajectory(rng, int(rng.integers(2, 8)))
            assert lb_kim(a, b) <= dtw(a, b) + 1e-9

    def test_lb_keogh_lower_bounds_banded_dtw(self, rng):
        for _ in range(30):
            n = int(rng.integers(4, 10))
            a = random_walk_trajectory(rng, n)
            b = random_walk_trajectory(rng, n)
            radius = 3
            lower, upper = _envelope(b.spatial(), radius)
            assert lb_keogh(a, lower, upper) <= dtw(a, b, window=radius) + 1e-9


class TestDTWIndex:
    @pytest.fixture(scope="class")
    def db(self):
        rng = np.random.default_rng(77)
        return [
            random_walk_trajectory(rng, int(rng.integers(5, 12)))
            for _ in range(40)
        ]

    def test_matches_scan(self, db):
        index = DTWIndex(db, band=0.15)
        rng = np.random.default_rng(5)
        for _ in range(6):
            q = random_walk_trajectory(rng, int(rng.integers(5, 12)))
            got = index.knn(q, 5)
            want = index.knn_scan(q, 5)
            assert [t for t, _ in got] == [t for t, _ in want]

    def test_bounds_valid_against_banded_dtw(self, db):
        index = DTWIndex(db, band=0.15)
        rng = np.random.default_rng(6)
        q = random_walk_trajectory(rng, 8)
        for tid, target in index._db.items():
            lb = index.lower_bound(q, tid)
            d = dtw(q, target, window=index._window(len(q), len(target)))
            assert lb <= d + 1e-9

    def test_prunes(self, db):
        index = DTWIndex(db, band=0.15)
        rng = np.random.default_rng(7)
        q = random_walk_trajectory(rng, 8, origin=np.array([500.0, 0.0]))
        stats = {}
        index.knn(q, 3, stats=stats)
        assert stats["pruned"] > 0

    def test_validation(self, db):
        with pytest.raises(ValueError):
            DTWIndex([])
        with pytest.raises(ValueError):
            DTWIndex(db, band=2.0)
        index = DTWIndex(db)
        rng = np.random.default_rng(8)
        with pytest.raises(ValueError):
            index.knn(random_walk_trajectory(rng, 5), 0)
