"""Smoke tests for the experiment drivers (tiny scales, deterministic)."""

import pytest

from repro.experiments import (
    beijing_database,
    robustness_sweep,
    run_fig5a,
    run_fig5j,
    run_fig6c,
    run_fig6d,
    run_scaling,
    run_table1,
    run_theta_sweep,
    scenario_anchors,
    suggest_eps,
)


class TestAnchors:
    def test_all_paper_numbers(self):
        anchors = scenario_anchors()
        assert anchors["appendixA_edwp_t1_t2"] == pytest.approx(1.0)
        assert anchors["appendixA_edwp_t2_t3"] == pytest.approx(1.0)
        assert anchors["appendixA_edwp_t1_t3"] == pytest.approx(4.0)
        assert anchors["example4_edwpsub_t2_t1"] == pytest.approx(80.0)
        assert anchors["fig1c_edr_eps2"] == 3.0
        assert anchors["fig1c_edr_eps3"] == 0.0


class TestTable1:
    def test_run(self):
        result = run_table1()
        assert result.probes["EDwP"]["inter"].handled
        assert "EDwP" in result.rendered
        assert result.anchors["fig1d_ma_ratio"] == pytest.approx(1.0, abs=0.1)
        assert result.anchors["fig1d_edwp_ratio"] > 1.2
        assert result.threshold_free["EDwP"] is True
        assert result.threshold_free["EDR"] is False


class TestCommon:
    def test_suggest_eps_positive(self):
        db = beijing_database(5, seed=1)
        assert suggest_eps(db) > 0

    def test_beijing_database_deterministic(self):
        a = beijing_database(5, seed=2)
        b = beijing_database(5, seed=2)
        assert a[0].data.tolist() == b[0].data.tolist()


class TestFig5a:
    def test_tiny_run(self):
        result = run_fig5a(class_counts=(2, 3), instances_per_class=3,
                           repeats=1, folds=2, seed=1)
        assert result.class_counts == [2, 3]
        for series in result.accuracy.values():
            assert len(series) == 2
            assert all(0.0 <= a <= 1.0 for a in series)


class TestRobustnessSweep:
    def test_tiny_sweep_vs_n(self):
        result = robustness_sweep(
            "inter", "n", db_size=10, noise_values=(0.5,), fixed_k=3,
            num_queries=2, include_edr_i=False, seed=1,
        )
        assert result.x_values == [50.0]
        assert "EDwP" in result.series
        for series in result.series.values():
            assert all(-1.0 <= v <= 1.0 for v in series)

    def test_tiny_sweep_vs_k(self):
        result = robustness_sweep(
            "phase", "k", db_size=10, k_values=(3,), fixed_noise=0.5,
            num_queries=2, include_edr_i=False, seed=1,
        )
        assert result.x_name == "k"
        assert len(result.series["EDwP"]) == 1

    def test_bad_vary_raises(self):
        with pytest.raises(ValueError):
            robustness_sweep("inter", "bogus", db_size=10)


class TestIndexExperiments:
    def test_fig5j_tiny(self):
        result = run_fig5j(db_size=25, k_values=(2,), num_queries=1,
                           seed=1, include_ma=False)
        assert set(result.series) == {"TrajTree", "EDwP-scan", "EDR"}
        for series in result.series.values():
            assert all(s >= 0 for s in series)

    def test_scaling_tiny(self):
        result = run_scaling(db_sizes=(15, 25), k=2, num_queries=1,
                             seed=1, include_ma=False)
        assert len(result.series["TrajTree"]) == 2
        assert len(result.build_seconds["TrajTree"]) == 2

    def test_theta_tiny(self):
        result = run_theta_sweep(thetas=(0.5,), db_size=15, k=2,
                                 num_queries=1, seed=1)
        assert len(result.series["TrajTree-query"]) == 1
        assert len(result.build_seconds["TrajTree"]) == 1


class TestUBExperiments:
    def test_fig6c_tiny(self):
        result = run_fig6c(vp_counts=(5,), db_size=15, k=3, num_queries=2,
                           seed=1)
        assert result.series["Beijing"][0] >= 1.0 - 1e-9
        assert result.series["Beijing Random"][0] >= 1.0 - 1e-9

    def test_fig6d_tiny(self):
        result = run_fig6d(k_values=(3,), db_size=15, num_vps=8,
                           num_queries=2, seed=1)
        assert len(result.series["Beijing"]) == 1
