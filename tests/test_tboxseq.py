"""tBoxSeq construction and the Theorem-2 lower bound."""

import numpy as np
import pytest

from repro.core import Trajectory, edwp
from repro.index import STBox, TBoxSeq, edwp_sub_box
from repro.index.tboxseq import edwp_sub_box_alignment

from helpers import random_walk_trajectory


class TestConstruction:
    def test_from_trajectory_one_box_per_segment(self):
        t = Trajectory.from_xy([(0, 0), (5, 0), (5, 5)])
        seq = TBoxSeq.from_trajectory(t)
        assert len(seq) == 2
        assert seq[0].min_len == pytest.approx(5.0)

    def test_from_trajectory_respects_max_boxes(self):
        t = Trajectory.from_xy([(i, (i % 2) * 3.0) for i in range(40)])
        seq = TBoxSeq.from_trajectory(t, max_boxes=8)
        assert len(seq) <= 8

    def test_empty_trajectory_raises(self):
        with pytest.raises(ValueError):
            TBoxSeq.from_trajectory(Trajectory([(1, 1, 0)]))

    def test_from_trajectories_empty_raises(self):
        with pytest.raises(ValueError):
            TBoxSeq.from_trajectories([])

    def test_volume_is_sum_of_areas(self):
        t = Trajectory.from_xy([(0, 0), (5, 1), (6, 4)])
        seq = TBoxSeq.from_trajectory(t)
        assert seq.volume == pytest.approx(sum(b.area for b in seq.boxes))

    def test_with_trajectory_only_grows_boxes(self, rng):
        base = random_walk_trajectory(rng, 8)
        other = random_walk_trajectory(rng, 6)
        seq = TBoxSeq.from_trajectory(base)
        grown = seq.with_trajectory(other)
        assert grown.volume >= seq.volume - 1e-9

    def test_with_trajectory_covers_added_points(self, rng):
        """Every point of an added trajectory ends up inside some box."""
        for _ in range(10):
            base = random_walk_trajectory(rng, 8)
            other = random_walk_trajectory(rng, 6)
            grown = TBoxSeq.from_trajectory(base).with_trajectory(other)
            for row in other.data:
                assert any(
                    b.dist_point((row[0], row[1])) < 1e-6 for b in grown.boxes
                )

    def test_volume_increase_matches(self, rng):
        base = random_walk_trajectory(rng, 8)
        other = random_walk_trajectory(rng, 6)
        seq = TBoxSeq.from_trajectory(base)
        assert seq.volume_increase(other) == pytest.approx(
            seq.with_trajectory(other).volume - seq.volume
        )

    def test_compacted_reduces_count(self):
        boxes = [STBox(i, 0, i + 1, 1, 1.0) for i in range(20)]
        seq = TBoxSeq(boxes).compacted(5)
        assert len(seq) == 5

    def test_compacted_noop_when_under_budget(self):
        boxes = [STBox(0, 0, 1, 1, 1.0)]
        seq = TBoxSeq(boxes)
        assert seq.compacted(5) is seq


class TestLowerBound:
    def test_theorem2_on_random_groups(self, rng):
        """EDwPsub(Q, tBoxSeq(T)) <= EDwP(Q, T) for every T in the group."""
        violations = 0
        total = 0
        for _ in range(60):
            group = [
                random_walk_trajectory(rng, int(rng.integers(3, 10)))
                for _ in range(int(rng.integers(1, 5)))
            ]
            seq = TBoxSeq.from_trajectories(group)
            query = random_walk_trajectory(rng, int(rng.integers(3, 10)))
            lb = edwp_sub_box(query, seq)
            for t in group:
                total += 1
                if lb > edwp(query, t) + 1e-9:
                    violations += 1
        assert violations == 0, f"{violations}/{total} Theorem-2 violations"

    def test_member_query_bound_is_zero_ish(self, rng):
        """A trajectory of the summarized set lies inside the boxes, so its
        own lower bound must be (near) zero."""
        group = [random_walk_trajectory(rng, 8) for _ in range(3)]
        seq = TBoxSeq.from_trajectories(group)
        for t in group:
            assert edwp_sub_box(t, seq) <= edwp(t, t) + 1e-9

    def test_empty_query_is_zero(self):
        seq = TBoxSeq.from_trajectory(Trajectory.from_xy([(0, 0), (1, 1)]))
        assert edwp_sub_box(Trajectory([(1, 1, 0)]), seq) == 0.0

    def test_far_query_has_positive_bound(self):
        seq = TBoxSeq.from_trajectory(Trajectory.from_xy([(0, 0), (1, 0)]))
        far = Trajectory.from_xy([(100, 100), (101, 100)])
        assert edwp_sub_box(far, seq) > 100.0

    def test_bound_scales_with_distance(self):
        seq = TBoxSeq.from_trajectory(Trajectory.from_xy([(0, 0), (10, 0)]))
        near = Trajectory.from_xy([(0, 5), (10, 5)])
        far = Trajectory.from_xy([(0, 50), (10, 50)])
        assert edwp_sub_box(far, seq) > edwp_sub_box(near, seq)


class TestAlignment:
    def test_alignment_costs_sum_to_value(self, rng):
        for _ in range(10):
            group = [random_walk_trajectory(rng, 7) for _ in range(2)]
            seq = TBoxSeq.from_trajectories(group)
            q = random_walk_trajectory(rng, 6)
            value, edits = edwp_sub_box_alignment(q, seq)
            assert value == pytest.approx(edwp_sub_box(q, seq))
            assert sum(e.cost for e in edits) <= value + 1e-6

    def test_alignment_box_indices_valid(self, rng):
        group = [random_walk_trajectory(rng, 7) for _ in range(2)]
        seq = TBoxSeq.from_trajectories(group)
        q = random_walk_trajectory(rng, 6)
        _, edits = edwp_sub_box_alignment(q, seq)
        for e in edits:
            assert 0 <= e.box_index < len(seq)

    def test_alignment_box_indices_monotone(self, rng):
        """Edits consume boxes in travel order."""
        group = [random_walk_trajectory(rng, 7) for _ in range(2)]
        seq = TBoxSeq.from_trajectories(group)
        q = random_walk_trajectory(rng, 6)
        _, edits = edwp_sub_box_alignment(q, seq)
        indices = [e.box_index for e in edits]
        assert indices == sorted(indices)
