"""CSV/JSON persistence round-trip tests."""

import numpy as np
import pytest

from repro.core import Trajectory
from repro.datasets import load_csv, load_json, save_csv, save_json

from helpers import random_walk_trajectory


@pytest.fixture
def corpus(rng):
    out = []
    for i in range(5):
        t = random_walk_trajectory(rng, int(rng.integers(2, 8)))
        t.traj_id = i
        t.label = f"class_{i % 2}"
        out.append(t)
    return out


class TestCSV:
    def test_roundtrip(self, corpus, tmp_path):
        path = tmp_path / "corpus.csv"
        save_csv(corpus, path)
        loaded = load_csv(path)
        assert len(loaded) == len(corpus)
        for a, b in zip(corpus, loaded):
            assert np.allclose(a.data, b.data)
            assert a.traj_id == b.traj_id
            assert a.label == b.label

    def test_exact_float_roundtrip(self, tmp_path):
        """repr-based serialization must preserve floats bit-exactly."""
        t = Trajectory([(0.1 + 0.2, 1e-17, 1234567.891011)])
        path = tmp_path / "one.csv"
        save_csv([t], path)
        loaded = load_csv(path)
        assert np.array_equal(loaded[0].data, t.data)

    def test_missing_columns_raise(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="columns"):
            load_csv(path)

    def test_empty_label_becomes_none(self, tmp_path, rng):
        t = random_walk_trajectory(rng, 3)
        t.traj_id = 0
        path = tmp_path / "nolabel.csv"
        save_csv([t], path)
        assert load_csv(path)[0].label is None


class TestJSON:
    def test_roundtrip(self, corpus, tmp_path):
        path = tmp_path / "corpus.json"
        save_json(corpus, path)
        loaded = load_json(path)
        assert len(loaded) == len(corpus)
        for a, b in zip(corpus, loaded):
            assert np.allclose(a.data, b.data)
            assert a.traj_id == b.traj_id
            assert a.label == b.label

    def test_positional_ids_assigned(self, tmp_path, rng):
        trajs = [random_walk_trajectory(rng, 3) for _ in range(3)]
        path = tmp_path / "noids.json"
        save_json(trajs, path)
        loaded = load_json(path)
        assert [t.traj_id for t in loaded] == [0, 1, 2]
