"""Service resilience: typed transport errors, client retry, health and
reload control ops, idempotent shutdown, graceful SIGTERM drain.

The client-facing half of the fault model (DESIGN.md, "Fault model and
degraded serving"): transport failures surface as
``ServiceConnectionError`` — never raw ``ConnectionResetError`` — and a
client armed with a ``RetryPolicy`` rides out injected connection drops
transparently, with full-jitter backoff bounded exactly as documented.
"""

import asyncio
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.datasets import generate_beijing
from repro.index import TrajTree
from repro.service import (
    Backoff,
    QueryRequest,
    QueryService,
    RetryPolicy,
    ServiceClient,
    ServiceConfig,
    ServiceConnectionError,
    ServiceError,
    serve,
)
from repro.service.retry import RetryExhausted, is_transient
from repro.service.protocol import ServiceOverloaded
from repro.testing.faults import FaultPlan, injected


@pytest.fixture(scope="module")
def tree():
    db = generate_beijing(16, seed=7)
    return TrajTree(db, normalized=True, num_vps=4, seed=7,
                    backend="numpy")


@pytest.fixture(scope="module")
def queries():
    return generate_beijing(6, seed=1009)


async def _started(tree, config=None, **service_kwargs):
    service = QueryService(tree, config or ServiceConfig(), **service_kwargs)
    server = await serve(service, port=0)
    port = server.sockets[0].getsockname()[1]
    return service, server, port


async def _stop(service, server):
    server.close()
    await server.wait_closed()
    await service.aclose()


class TestTypedConnectionErrors:
    def test_server_drop_raises_typed_not_raw(self):
        """A server that hangs up mid-request: the client must raise
        ServiceConnectionError, never a bare reset/empty-read."""
        async def run():
            async def hangup(reader, writer):
                await reader.readline()
                writer.close()

            server = await asyncio.start_server(hangup, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await ServiceClient.connect("127.0.0.1", port)
            with pytest.raises(ServiceConnectionError) as excinfo:
                await client.ping()
            await client.aclose()
            server.close()
            await server.wait_closed()
            return excinfo.value

        exc = asyncio.run(run())
        assert isinstance(exc, ServiceError)
        assert not isinstance(exc, ConnectionResetError)
        assert exc.code == "connection"

    def test_injected_drop_without_retry_is_typed(self, tree, queries):
        async def run():
            service, server, port = await _started(tree)
            client = await ServiceClient.connect("127.0.0.1", port)
            with injected(FaultPlan().on("client.send", "drop")):
                with pytest.raises(ServiceConnectionError):
                    await client.knn(queries[0], 3)
            await client.aclose()
            await _stop(service, server)

        asyncio.run(run())

    def test_connect_refused_is_typed(self):
        async def run():
            # grab a port and close it so nothing listens there
            server = await asyncio.start_server(lambda r, w: None,
                                                "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            with pytest.raises(ServiceConnectionError):
                await ServiceClient.connect("127.0.0.1", port)

        asyncio.run(run())


class TestClientRetry:
    def test_retry_rides_out_injected_drops(self, tree, queries):
        async def run():
            service, server, port = await _started(tree)
            client = await ServiceClient.connect(
                "127.0.0.1", port,
                retry=RetryPolicy(attempts=4, base=0.0, cap=0.0, seed=1),
            )
            plan = FaultPlan().on("client.send", "drop", times=2)
            with injected(plan):
                results, meta = await client.knn(queries[0], 4)
            fired = plan.fired("client.send")
            # and a drop mid-receive, after the request went out
            plan2 = FaultPlan().on("client.recv", "drop", times=1)
            with injected(plan2):
                results2, _ = await client.range_query(queries[1], 120.0)
            await client.aclose()
            await _stop(service, server)
            return results, fired, results2

        results, fired, results2 = asyncio.run(run())
        assert fired == 2
        assert results == tree.knn(queries[0], 4)
        assert results2 == tree.range_query(queries[1], 120.0)

    def test_retry_budget_exhausts_typed(self, tree, queries):
        async def run():
            service, server, port = await _started(tree)
            client = await ServiceClient.connect(
                "127.0.0.1", port,
                retry=RetryPolicy(attempts=3, base=0.0, cap=0.0, seed=1),
            )
            plan = FaultPlan().on("client.send", "drop", times=None)
            with injected(plan):
                with pytest.raises(RetryExhausted) as info:
                    await client.knn(queries[0], 3)
            # the typed exhaustion chains the final transient failure and
            # is itself non-retryable
            assert isinstance(info.value.last_error, ServiceConnectionError)
            assert not is_transient(info.value)
            fired = plan.fired()
            # the harness uninstalled: the same client heals
            results, _ = await client.knn(queries[0], 3)
            await client.aclose()
            await _stop(service, server)
            return fired, results

        fired, results = asyncio.run(run())
        assert fired == 3             # one per attempt, then typed failure
        assert results == tree.knn(queries[0], 3)

    def test_overload_is_transient_and_keeps_connection(self):
        assert is_transient(ServiceOverloaded("shed"))
        assert is_transient(ServiceConnectionError("reset"))
        assert is_transient(ConnectionResetError())
        assert not is_transient(ServiceError("fatal"))
        assert not is_transient(ValueError("nope"))


class TestBackoffSchedules:
    def test_full_jitter_bounds_and_determinism(self):
        policy = RetryPolicy(attempts=8, base=0.05, cap=0.4, seed=13)
        a, b = policy.rng(), policy.rng()
        for attempt in range(8):
            da, db_ = policy.delay(attempt, a), policy.delay(attempt, b)
            assert da == db_                      # seeded: reproducible
            assert 0.0 <= da <= min(0.4, 0.05 * (2 ** attempt))

    def test_backoff_caps_and_resets(self):
        backoff = Backoff(base=0.1, cap=0.4)
        assert [backoff.next_delay() for _ in range(5)] == \
            [0.1, 0.2, 0.4, 0.4, 0.4]
        backoff.reset()
        assert backoff.next_delay() == 0.1

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base=-1.0)
        with pytest.raises(ValueError):
            Backoff(base=-0.1)


class TestIdempotentClose:
    def test_aclose_twice_and_concurrently(self, tree, queries):
        async def run():
            service = QueryService(tree, ServiceConfig(window=0.05))
            inflight = [
                asyncio.ensure_future(service.submit(
                    QueryRequest("knn", queries[i], 3)
                ))
                for i in range(3)
            ]
            await asyncio.sleep(0.01)
            # two concurrent closers plus a late repeat: one drain
            await asyncio.gather(service.aclose(), service.aclose())
            await service.aclose()
            answers = await asyncio.gather(*inflight)
            return answers

        answers = asyncio.run(run())
        for i, answer in enumerate(answers):
            assert answer.results == tree.knn(queries[i], 3)


class TestHealthOp:
    def test_health_over_the_wire(self, tree):
        async def run():
            service, server, port = await _started(tree)
            client = await ServiceClient.connect("127.0.0.1", port)
            health = await client.health()
            await client.aclose()
            await _stop(service, server)
            return health

        health = asyncio.run(run())
        assert health["status"] == "ready"
        assert health["ready"] is True
        assert health["degraded"] is False
        # a single tree reports a one-shard census
        assert health["shards"] == {"total": 1, "healthy": 1,
                                    "missing": []}
        assert health["reloads"] == 0

    def test_draining_status(self, tree):
        async def run():
            service = QueryService(tree)
            await service.aclose()
            return service.health_dict()

        health = asyncio.run(run())
        assert health["status"] == "draining"
        assert health["ready"] is False


class TestReloadOp:
    def test_reload_swaps_snapshot_and_answers_match(self, tree, queries):
        db = generate_beijing(20, seed=8)
        fresh = TrajTree(db, normalized=True, num_vps=4, seed=8,
                         backend="numpy")

        async def run():
            service, server, port = await _started(tree, loader=lambda: fresh)
            client = await ServiceClient.connect("127.0.0.1", port)
            before, _ = await client.knn(queries[0], 3)
            summary = await client.reload()
            after, meta = await client.knn(queries[0], 3)
            stats = await client.stats()
            await client.aclose()
            await _stop(service, server)
            return before, summary, after, meta, stats

        before, summary, after, meta, stats = asyncio.run(run())
        assert before == tree.knn(queries[0], 3)
        assert summary["snapshot_id"] == 1
        assert after == fresh.knn(queries[0], 3)
        assert meta["snapshot_id"] == 1       # cache invalidated with swap
        assert stats["reloads"] == 1

    def test_reload_without_loader_is_typed(self, tree):
        async def run():
            service, server, port = await _started(tree)
            client = await ServiceClient.connect("127.0.0.1", port)
            with pytest.raises(ServiceError, match="no snapshot loader"):
                await client.reload()
            # the failure poisoned nothing
            assert await client.ping()
            await client.aclose()
            await _stop(service, server)

        asyncio.run(run())

    def test_failed_reload_keeps_current_index(self, tree, queries):
        def broken_loader():
            raise OSError("snapshot directory unreadable")

        async def run():
            service = QueryService(tree, loader=broken_loader)
            with pytest.raises(ServiceError,
                               match="keeping the current index"):
                await service.reload()
            answer = await service.submit(
                QueryRequest("knn", queries[0], 3)
            )
            await service.aclose()
            return answer, service.snapshot_id

        answer, snapshot = asyncio.run(run())
        assert answer.results == tree.knn(queries[0], 3)
        assert snapshot == 0                  # no swap happened


class TestGracefulSigterm:
    @pytest.mark.skipif(sys.platform == "win32",
                        reason="POSIX signals only")
    def test_sigterm_drains_and_exits_zero(self):
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--synthetic", "8",
             "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))),
        )
        try:
            # wait for the listening banner, then deliver SIGTERM
            deadline = time.time() + 60
            for line in proc.stdout:
                if line.startswith("serving "):
                    break
                assert time.time() < deadline, "server never came up"
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "draining" in out
