"""Concurrent first-access on lazy caches (ISSUE 6, satellite).

The service dispatches batches on an executor thread, so a tree's lazy
per-object caches — ``Trajectory.coords()`` / ``Trajectory.length`` and
``TBoxSeq.geometry()`` — can see their *first* access from several
threads at once.  The fills are written to be idempotent (read the slot
once into a local, compute from immutable data, publish with a single
assignment), which makes racing fills harmless under the GIL.  These are
the regression tests pinning that contract, plus coverage for
:meth:`TrajTree.warm_caches`, the eager pre-population the service runs
before serving.
"""

import threading

import numpy as np
import pytest

from repro.core import Trajectory
from repro.datasets import generate_beijing
from repro.index import TrajTree
from repro.index.tboxseq import TBoxSeq

THREADS = 8
ROUNDS = 25


def hammer(make_target):
    """Run ``fn`` from THREADS threads released by a barrier, ROUNDS times.

    ``make_target`` returns a fresh ``fn`` per round (so every round is a
    genuine cold first access).  Returns the per-thread results of every
    round for equality checks.
    """
    all_rounds = []
    for _ in range(ROUNDS):
        fn = make_target()
        barrier = threading.Barrier(THREADS)
        results = [None] * THREADS
        errors = []

        def worker(slot):
            try:
                barrier.wait()
                results[slot] = fn()
            except Exception as exc:            # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        all_rounds.append(results)
    return all_rounds


@pytest.fixture(scope="module")
def points():
    return [(float(i), float(i % 7), float(i)) for i in range(40)]


class TestTrajectoryLazyFills:
    def test_concurrent_first_coords_access(self, points):
        expected = Trajectory(points).coords()
        trajs = []

        def make_target():
            traj = Trajectory(points)
            assert traj._coords is None          # genuinely cold
            trajs.append(traj)
            return traj.coords

        for results in hammer(make_target):
            for got in results:
                np.testing.assert_array_equal(got, expected)
        # the slots ended up populated and stable
        assert all(t._coords is not None for t in trajs)

    def test_concurrent_first_length_access(self, points):
        expected = Trajectory(points).length

        def make_target():
            traj = Trajectory(points)
            assert traj._length is None
            return lambda: traj.length

        for results in hammer(make_target):
            assert all(got == expected for got in results)

    def test_concurrent_first_geometry_access(self, points):
        reference = TBoxSeq.from_trajectory(Trajectory(points), 4)
        expected = reference.geometry()

        def make_target():
            boxseq = TBoxSeq.from_trajectory(Trajectory(points), 4)
            assert boxseq._geom is None
            return boxseq.geometry

        for results in hammer(make_target):
            for got in results:
                np.testing.assert_array_equal(got.xmin, expected.xmin)
                np.testing.assert_array_equal(got.ymax, expected.ymax)
                np.testing.assert_array_equal(got.min_len, expected.min_len)


class TestColdTreeFromThreads:
    def test_concurrent_knn_on_cold_tree_matches_serial(self):
        """Threaded kNN on a tree whose lazy caches are all cold agrees
        with the serial oracle — the path the service's executor dispatch
        exercises when ``warm=False``."""
        db = generate_beijing(20, seed=7)
        queries = generate_beijing(THREADS, seed=1007)
        oracle_tree = TrajTree(db, normalized=True, num_vps=4, seed=7,
                               backend="numpy")
        expected = [oracle_tree.knn(q, 3) for q in queries]

        cold_tree = TrajTree(generate_beijing(20, seed=7), normalized=True,
                             num_vps=4, seed=7, backend="numpy")
        barrier = threading.Barrier(THREADS)
        results = [None] * THREADS

        def worker(i):
            barrier.wait()
            results[i] = cold_tree.knn(queries[i], 3)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == expected


class TestWarmCaches:
    def test_warm_caches_populates_every_lazy_slot(self):
        tree = TrajTree(generate_beijing(12, seed=7), normalized=True,
                        num_vps=4, seed=7, backend="numpy")
        tree.warm_caches()
        for traj in tree._db.values():
            assert traj._coords is not None
            assert traj._length is not None

        nodes = [tree.root]
        while nodes:
            node = nodes.pop()
            assert node.boxseq._geom is not None
            nodes.extend(node.children)
