"""Ablations of TrajTree's design choices (DESIGN.md call-outs).

Not paper figures: these quantify the contribution of each pruning
mechanism — the VP upper bound, the cheap rectangle pre-filter, and the box
budget — by toggling one at a time and counting exact EDwP evaluations per
query (the machine-independent cost unit).
"""

import time

import pytest

from conftest import emit

from repro.datasets import generate_beijing
from repro.index import TrajTree
from repro.index.trajtree import TrajTreeStats

DB_SIZE = 120
K = 10
NUM_QUERIES = 3


@pytest.fixture(scope="module")
def db():
    return generate_beijing(DB_SIZE, seed=7)


@pytest.fixture(scope="module")
def queries():
    return generate_beijing(NUM_QUERIES, seed=1007)


def _evals_per_query(tree, queries, k=K):
    total = 0
    for q in queries:
        stats = TrajTreeStats()
        tree.knn(q, k, stats=stats)
        total += stats.exact_computations
    return total / len(queries)


def test_ablation_pruning_mechanisms(benchmark, results_dir, db, queries):
    """Toggle VP refinement and the quick rectangle bound."""

    def run():
        rows = {}
        for label, kwargs in [
            ("full", dict(vp_levels=1, use_quick_bound=True)),
            ("no-VPs", dict(vp_levels=0, use_quick_bound=True)),
            ("no-quick-bound", dict(vp_levels=1, use_quick_bound=False)),
            ("bounds-only", dict(vp_levels=0, use_quick_bound=False)),
        ]:
            tree = TrajTree(db, num_vps=40, normalized=True, seed=0,
                            **kwargs)
            start = time.perf_counter()
            evals = _evals_per_query(tree, queries)
            secs = time.perf_counter() - start
            rows[label] = (evals, secs)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    body = "\n".join(
        f"  {label:<16} exact-evals/query {evals:7.1f}   "
        f"query secs {secs:6.2f}"
        for label, (evals, secs) in rows.items()
    )
    emit(results_dir, "ablation_pruning",
         f"Pruning ablation (Beijing-like n={DB_SIZE}, k={K}; scan = "
         f"{DB_SIZE} evals/query)",
         body)

    # every configuration must stay exact AND below a full scan
    for label, (evals, _) in rows.items():
        assert evals <= DB_SIZE, label


def test_ablation_box_budget(benchmark, results_dir, db, queries):
    """Box budget: pruning power vs bound cost."""

    def run():
        rows = {}
        for max_boxes in (4, 8, 12, 24):
            tree = TrajTree(db, num_vps=40, normalized=True, seed=0,
                            max_boxes=max_boxes)
            start = time.perf_counter()
            evals = _evals_per_query(tree, queries)
            secs = time.perf_counter() - start
            rows[max_boxes] = (evals, secs)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    body = "\n".join(
        f"  max_boxes={mb:<4d} exact-evals/query {evals:7.1f}   "
        f"query secs {secs:6.2f}"
        for mb, (evals, secs) in rows.items()
    )
    emit(results_dir, "ablation_boxes",
         f"Box-budget ablation (Beijing-like n={DB_SIZE}, k={K})",
         body)
    for mb, (evals, _) in rows.items():
        assert evals <= DB_SIZE


def test_ablation_exactness_all_configs(db, queries):
    """Whatever the configuration, answers must equal the scan oracle."""
    for kwargs in (
        dict(vp_levels=0, use_quick_bound=False),
        dict(vp_levels=2, use_quick_bound=True, max_boxes=6),
        dict(max_branching=4),
    ):
        tree = TrajTree(db[:60], num_vps=15, normalized=True, seed=0,
                        **kwargs)
        for q in queries:
            got = [t for t, _ in tree.knn(q, 5)]
            want = [t for t, _ in tree.knn_scan(q, 5)]
            assert got == want, kwargs
