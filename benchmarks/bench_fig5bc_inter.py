"""Figs. 5(b)/(c): robustness to inter-trajectory sampling variance."""

from conftest import emit

from repro.eval.timing import format_series_table
from repro.experiments import robustness_sweep

DB_SIZE = 40
QUERIES = 3


def test_fig5b_vs_k(benchmark, results_dir):
    result = benchmark.pedantic(
        robustness_sweep,
        kwargs=dict(protocol="inter", vary="k", db_size=DB_SIZE,
                    k_values=(5, 10, 20, 30), fixed_noise=0.05,
                    num_queries=QUERIES, seed=7),
        rounds=1, iterations=1,
    )
    emit(results_dir, "fig5b",
         "Fig. 5(b): inter-trajectory sampling robustness vs k "
         f"(Beijing-like n={DB_SIZE}, noise 5%)",
         format_series_table("k", result.x_values, result.series))
    _check_shape(result)


def test_fig5c_vs_noise(benchmark, results_dir):
    result = benchmark.pedantic(
        robustness_sweep,
        kwargs=dict(protocol="inter", vary="n", db_size=DB_SIZE,
                    noise_values=(0.05, 0.25, 0.5, 0.75, 1.0), fixed_k=10,
                    num_queries=QUERIES, seed=7),
        rounds=1, iterations=1,
    )
    emit(results_dir, "fig5c",
         "Fig. 5(c): inter-trajectory sampling robustness vs noise % "
         f"(Beijing-like n={DB_SIZE}, k=10)",
         format_series_table("noise %", result.x_values, result.series))
    _check_shape(result)

    # paper shape against n: EDwP stays above 0.75 even at 100% noise
    assert result.series["EDwP"][-1] > 0.75


def _check_shape(result):
    """The paper's headline for this protocol: EDwP beats every comparator
    on (mean) correlation."""
    import numpy as np

    edwp_mean = np.mean(result.series["EDwP"])
    for name, series in result.series.items():
        if name != "EDwP":
            assert edwp_mean >= np.mean(series) - 0.02, name
