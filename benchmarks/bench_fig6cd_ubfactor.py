"""Figs. 6(c)/(d): tightness of the VP-based upper bound (UB-factor)."""

from conftest import emit

from repro.eval.timing import format_series_table
from repro.experiments import run_fig6c, run_fig6d

DB_SIZE = 100
QUERIES = 3


def test_fig6c_ubfactor_vs_vps(benchmark, results_dir):
    result = benchmark.pedantic(
        run_fig6c,
        kwargs=dict(vp_counts=(10, 20, 40, 80), db_size=DB_SIZE, k=10,
                    num_queries=QUERIES, seed=7),
        rounds=1, iterations=1,
    )
    emit(results_dir, "fig6c",
         f"Fig. 6(c): UB-factor vs #VPs (Beijing-like n={DB_SIZE}, k=10; "
         "optimal = 1)",
         format_series_table("#VPs", result.x_values, result.series))

    # paper shape: the VP bound is tighter than random at every VP count
    for vp, rand in zip(result.series["Beijing"],
                        result.series["Beijing Random"]):
        assert vp <= rand + 1e-9
    # and every UB-factor is >= 1 (it upper-bounds the optimal k-th dist)
    assert all(v >= 1.0 - 1e-9 for v in result.series["Beijing"])


def test_fig6d_ubfactor_vs_k(benchmark, results_dir):
    result = benchmark.pedantic(
        run_fig6d,
        kwargs=dict(k_values=(5, 10, 25, 50), db_size=DB_SIZE, num_vps=80,
                    num_queries=QUERIES, seed=7),
        rounds=1, iterations=1,
    )
    emit(results_dir, "fig6d",
         f"Fig. 6(d): UB-factor vs k (Beijing-like n={DB_SIZE}, 80 VPs; "
         "optimal = 1)",
         format_series_table("k", result.x_values, result.series))

    for vp, rand in zip(result.series["Beijing"],
                        result.series["Beijing Random"]):
        assert vp <= rand + 1e-9
    # Sec. V-D claim: VP ranking correlates substantially with the true
    # ranking (the paper reports 0.78-0.83 across k)
    assert all(c > 0.5 for c in result.series["VP-kNN corr"])
