"""Query service throughput: coalesced dispatch vs naive serial (ISSUE 6).

32 concurrent clients draw from a small hot query pool against the same
warm index under two service configurations:

* **coalesced** — the production defaults in miniature: a coalescing
  window, in-batch singleflight, and an LRU result cache;
* **naive** — ``window=0.0, max_batch=1, cache_capacity=0``: every
  request is its own dispatch, nothing is shared.

Both must return results identical to the serial oracle; the coalesced
configuration must clear **2x** the naive throughput (the classic
coalescing win: each distinct hot query is computed ~once instead of
once per request).  The regenerated table lands in
``benchmarks/results/service_gate.txt`` and is uploaded as a CI
artifact.
"""

import asyncio
import time

import pytest

from repro.datasets import generate_beijing
from repro.index import TrajTree
from repro.service import QueryRequest, QueryService, ServiceConfig

from conftest import emit

DB_SIZE = 120
POOL = 12           # distinct hot queries
CLIENTS = 32
ROUNDS = 4          # requests per client

SPEEDUP_FLOOR = 2.0


@pytest.fixture(scope="module")
def tree():
    db = generate_beijing(DB_SIZE, seed=7)
    t = TrajTree(db, normalized=True, num_vps=8, seed=7, backend="numpy")
    t.warm_caches()
    return t


@pytest.fixture(scope="module")
def workloads(tree):
    """Per-client request lists over the hot pool (seeded, knn-heavy).

    Each pool entry is one *fixed* (kind, query, param) triple — the
    digest keys on all three, so varying the param per draw would explode
    the distinct-computation count and the pool would not be hot at all.
    """
    import random

    pool_queries = generate_beijing(POOL, seed=1007)
    pool = [
        QueryRequest("range", q, 250.0) if i % 4 == 3
        else QueryRequest("knn", q, 2 + (i % 4))
        for i, q in enumerate(pool_queries)
    ]
    rng = random.Random(0)
    return [
        [pool[rng.randrange(POOL)] for _ in range(ROUNDS)]
        for _ in range(CLIENTS)
    ]


def serial_oracle(tree, request):
    if request.kind == "knn":
        return tree.knn(request.query, int(request.param))
    return tree.range_query(request.query, float(request.param))


def run_clients(tree, config, workloads):
    """Drive the concurrent client fleet; returns (wall_s, answers, stats)."""

    async def run():
        service = QueryService(tree, config, warm=False)   # already warm

        async def client(requests):
            answers = []
            for request in requests:
                answers.append(await service.submit(request))
            return answers

        start = time.perf_counter()
        got = await asyncio.gather(*(client(w) for w in workloads))
        wall = time.perf_counter() - start
        await service.aclose()
        return wall, got, service.stats_dict()

    return asyncio.run(run())


def test_service_coalescing_throughput_gate(tree, workloads, results_dir):
    expected = [[serial_oracle(tree, r) for r in w] for w in workloads]
    total = CLIENTS * ROUNDS

    naive = ServiceConfig(window=0.0, max_batch=1, cache_capacity=0)
    coalesced = ServiceConfig(window=0.005, max_batch=64, cache_capacity=256)

    wall_naive, got_naive, stats_naive = run_clients(tree, naive, workloads)
    wall_coal, got_coal, stats_coal = run_clients(tree, coalesced, workloads)

    # correctness first: both modes are oracle-exact
    for got in (got_naive, got_coal):
        for client_got, client_want in zip(got, expected):
            for answer, want in zip(client_got, client_want):
                assert answer.results == want

    speedup = wall_naive / wall_coal
    rows = []
    for label, wall, stats in (
        ("naive", wall_naive, stats_naive),
        ("coalesced", wall_coal, stats_coal),
    ):
        latency = stats["latency"]
        rows.append(
            f"{label:<10} {total / wall:>8.1f} qps"
            f"  p50 {latency['p50_ms']:>7.2f} ms"
            f"  p99 {latency['p99_ms']:>7.2f} ms"
            f"  computed {stats['computed']:>3d}/{total}"
            f"  cache hits {stats['cache_hits']:>3d}"
            f"  max batch {stats['batches']['max_size']:>2d}"
        )
    body = "\n".join(rows + [
        f"speedup    {speedup:.2f}x (gate: >= {SPEEDUP_FLOOR:.1f}x)",
    ])
    emit(results_dir, "service_gate",
         f"Query service throughput — {CLIENTS} clients x {ROUNDS} requests, "
         f"{POOL} distinct hot queries, db={DB_SIZE}", body)

    # the coalesced mode must actually have shared work...
    assert stats_coal["computed"] < total
    assert stats_coal["cache_hits"] + stats_coal["coalesced"] > 0
    # ...and convert it into throughput
    assert speedup >= SPEEDUP_FLOOR, (
        f"coalesced dispatch only {speedup:.2f}x over naive serial "
        f"(floor {SPEEDUP_FLOOR:.1f}x)"
    )
