"""Figs. 5(f)/(g): robustness to sampling phase variations."""

from conftest import emit

from repro.eval.timing import format_series_table
from repro.experiments import robustness_sweep

DB_SIZE = 40
QUERIES = 3


def test_fig5f_vs_k(benchmark, results_dir):
    result = benchmark.pedantic(
        robustness_sweep,
        kwargs=dict(protocol="phase", vary="k", db_size=DB_SIZE,
                    k_values=(5, 10, 20, 30), fixed_noise=0.05,
                    num_queries=QUERIES, seed=7),
        rounds=1, iterations=1,
    )
    emit(results_dir, "fig5f",
         "Fig. 5(f): phase-variation robustness vs k "
         f"(Beijing-like n={DB_SIZE}, noise 5%)",
         format_series_table("k", result.x_values, result.series))
    _check_shape(result)


def test_fig5g_vs_noise(benchmark, results_dir):
    result = benchmark.pedantic(
        robustness_sweep,
        kwargs=dict(protocol="phase", vary="n", db_size=DB_SIZE,
                    noise_values=(0.05, 0.25, 0.5, 0.75, 1.0), fixed_k=10,
                    num_queries=QUERIES, seed=7),
        rounds=1, iterations=1,
    )
    emit(results_dir, "fig5g",
         "Fig. 5(g): phase-variation robustness vs noise % "
         f"(Beijing-like n={DB_SIZE}, k=10)",
         format_series_table("noise %", result.x_values, result.series))
    _check_shape(result)


def _check_shape(result):
    """Paper shape: EDwP best; existing metrics do better here than under
    the sampling-variance protocols (phase keeps counts identical)."""
    import numpy as np

    edwp_mean = np.mean(result.series["EDwP"])
    for name, series in result.series.items():
        if name != "EDwP":
            assert edwp_mean >= np.mean(series) - 0.02, name
