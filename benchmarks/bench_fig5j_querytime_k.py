"""Fig. 5(j): query-time growth with k for the four retrieval methods."""

from conftest import emit

from repro.eval.timing import format_series_table
from repro.experiments import run_fig5j

DB_SIZE = 150
K_VALUES = (5, 10, 20, 30)
QUERIES = 2


def test_fig5j_query_time_vs_k(benchmark, results_dir):
    result = benchmark.pedantic(
        run_fig5j,
        kwargs=dict(db_size=DB_SIZE, k_values=K_VALUES,
                    num_queries=QUERIES, seed=7),
        rounds=1, iterations=1,
    )
    emit(results_dir, "fig5j",
         f"Fig. 5(j): total query seconds vs k (Beijing-like n={DB_SIZE}, "
         f"{QUERIES} queries)",
         format_series_table("k", result.x_values, result.series))

    # paper shape: TrajTree beats the EDwP sequential scan on average.
    # NOT asserted: the paper's "MA slowest by 10x" — our MA
    # re-implementation deliberately omits the original's five auxiliary
    # kinematic-model passes (DESIGN.md substitution table), so its
    # constant factor is small; the relative cost of the *reproduced*
    # methods is the meaningful comparison here.
    import numpy as np

    assert np.mean(result.series["TrajTree"]) <= np.mean(
        result.series["EDwP-scan"]
    ) * 1.1
    for series in result.series.values():
        assert all(s > 0 for s in series)
