"""Figs. 5(h)/(i): threshold dependency under location perturbation."""

from conftest import emit

from repro.eval.timing import format_series_table
from repro.experiments import robustness_sweep

DB_SIZE = 40
QUERIES = 3


def test_fig5h_vs_k(benchmark, results_dir):
    result = benchmark.pedantic(
        robustness_sweep,
        kwargs=dict(protocol="perturb", vary="k", db_size=DB_SIZE,
                    k_values=(5, 10, 20, 30), fixed_noise=0.10,
                    num_queries=QUERIES, seed=7),
        rounds=1, iterations=1,
    )
    emit(results_dir, "fig5h",
         "Fig. 5(h): perturbation robustness vs k "
         f"(Beijing-like n={DB_SIZE}, noise 10%)",
         format_series_table("k", result.x_values, result.series))
    _check_shape(result)


def test_fig5i_vs_noise(benchmark, results_dir):
    result = benchmark.pedantic(
        robustness_sweep,
        kwargs=dict(protocol="perturb", vary="n", db_size=DB_SIZE,
                    noise_values=(0.05, 0.25, 0.5, 0.75, 1.0), fixed_k=10,
                    num_queries=QUERIES, seed=7),
        rounds=1, iterations=1,
    )
    emit(results_dir, "fig5i",
         "Fig. 5(i): perturbation robustness vs noise % "
         f"(Beijing-like n={DB_SIZE}, k=10)",
         format_series_table("noise %", result.x_values, result.series))
    _check_shape(result)


def _check_shape(result):
    """Reproduction note: with the paper's own radius rule
    (30 s at average speed ~ 235 m) and the EDR-paper's eps rule (~ 416 m),
    the perturbation stays *below* the matching threshold, so the threshold
    metrics barely move at this scale — the threshold-dependency behaviour
    itself is pinned by the Fig. 1(c) anchor test instead.  Here we assert
    the robustness floor: every metric, including EDwP, keeps correlation
    high under sub-threshold perturbation."""
    import numpy as np

    assert np.mean(result.series["EDwP"]) >= 0.85
    for name, series in result.series.items():
        assert np.mean(series) >= 0.5, name
