"""Microbenchmarks of the core operations (complexity sanity checks).

Not a paper figure: these keep the building blocks honest — EDwP and
EDwPsub are quadratic DPs, the box bound is linear in the box budget, and
a TrajTree query should cost a fraction of a sequential scan.

The backend-comparison tests measure the vectorized numpy kernel against
the pure-Python reference on the same 100-point trajectory pairs and
*assert* the headline contract of the dual-backend design: >= 5x faster in
its batched (lockstep) form with max abs deviation < 1e-9 (DESIGN.md,
"Dual-backend EDwP kernels").

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_core_ops.py -q
"""

import math
import time

import numpy as np
import pytest

from repro.core import Trajectory, edwp, edwp_avg, edwp_many
from repro.core.edwp_sub import edwp_sub
from repro.datasets import generate_beijing
from repro.index import TBoxSeq, TrajTree, edwp_sub_box


def _pair(n1, n2, seed=0):
    rng = np.random.default_rng(seed)
    mk = lambda n: Trajectory.from_xy(
        rng.normal(0, 1, (n, 2)).cumsum(axis=0)
    )
    return mk(n1), mk(n2)


@pytest.mark.parametrize("size", [10, 20, 40])
def test_bench_edwp(benchmark, size):
    a, b = _pair(size, size)
    benchmark(edwp, a, b)


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_bench_edwp_backend(benchmark, backend):
    """Single-pair EDwP at 100 points, per backend."""
    a, b = _pair(100, 100)
    benchmark(edwp, a, b, backend=backend)


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_bench_edwp_many_backend(benchmark, backend):
    """Batched EDwP (one query vs 32 targets) at 100 points, per backend."""
    rng = np.random.default_rng(3)
    mk = lambda: Trajectory.from_xy(rng.normal(0, 1, (100, 2)).cumsum(axis=0))
    query = mk()
    targets = [mk() for _ in range(32)]
    edwp_many(query, targets, backend=backend)     # warm coordinate caches
    benchmark(edwp_many, query, targets, backend=backend)


def test_backend_speedup_and_accuracy_100pt():
    """Acceptance gate: the vectorized kernel vs the pure-Python backend on
    100-point trajectory pairs — >= 5x faster batched, deviation < 1e-9."""
    rng = np.random.default_rng(7)
    mk = lambda: Trajectory.from_xy(rng.normal(0, 1, (100, 2)).cumsum(axis=0))
    query = mk()
    targets = [mk() for _ in range(32)]

    def best_of(fn, repeats=3):
        """Min-of-N wall clock: robust to noisy-neighbor CI runners."""
        best = math.inf
        for _ in range(repeats):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        return best, result

    edwp_many(query, targets, backend="numpy")     # warm coordinate caches
    numpy_secs, fast = best_of(
        lambda: edwp_many(query, targets, backend="numpy"))
    python_secs, reference = best_of(
        lambda: [edwp(query, t, backend="python") for t in targets])

    deviation = max(abs(r - f) for r, f in zip(reference, fast))
    speedup = python_secs / numpy_secs
    per_pair_py = python_secs / len(targets) * 1000
    per_pair_np = numpy_secs / len(targets) * 1000
    print(
        f"\n100-point pairs, batch of {len(targets)}: "
        f"python {per_pair_py:.2f} ms/pair, numpy {per_pair_np:.3f} ms/pair "
        f"-> {speedup:.1f}x, max abs deviation {deviation:.2e}"
    )
    assert deviation < 1e-9
    assert speedup >= 5.0, (
        f"vectorized kernel only {speedup:.1f}x faster than pure Python"
    )


def test_bench_edwp_avg(benchmark):
    a, b = _pair(25, 25)
    benchmark(edwp_avg, a, b)


def test_bench_edwp_sub(benchmark):
    a, b = _pair(15, 40)
    benchmark(edwp_sub, a, b)


def test_bench_box_lower_bound(benchmark):
    rng = np.random.default_rng(1)
    group = [
        Trajectory.from_xy(rng.normal(0, 1, (12, 2)).cumsum(axis=0))
        for _ in range(5)
    ]
    seq = TBoxSeq.from_trajectories(group)
    q, _ = _pair(20, 2, seed=2)
    benchmark(edwp_sub_box, q, seq)


@pytest.fixture(scope="module")
def small_tree():
    db = generate_beijing(80, seed=7)
    return TrajTree(db, num_vps=20, normalized=True, seed=0)


def test_bench_trajtree_query(benchmark, small_tree):
    q = generate_beijing(1, seed=555)[0]
    benchmark(small_tree.knn, q, 10)


def test_bench_sequential_scan(benchmark, small_tree):
    q = generate_beijing(1, seed=555)[0]
    benchmark(small_tree.knn_scan, q, 10)
