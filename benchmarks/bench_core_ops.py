"""Microbenchmarks of the core operations (complexity sanity checks).

Not a paper figure: these keep the building blocks honest — EDwP and
EDwPsub are quadratic DPs, the box bound is linear in the box budget, and
a TrajTree query should cost a fraction of a sequential scan.
"""

import numpy as np
import pytest

from repro.core import Trajectory, edwp, edwp_avg
from repro.core.edwp_sub import edwp_sub
from repro.datasets import generate_beijing
from repro.index import TBoxSeq, TrajTree, edwp_sub_box


def _pair(n1, n2, seed=0):
    rng = np.random.default_rng(seed)
    mk = lambda n: Trajectory.from_xy(
        rng.normal(0, 1, (n, 2)).cumsum(axis=0)
    )
    return mk(n1), mk(n2)


@pytest.mark.parametrize("size", [10, 20, 40])
def test_bench_edwp(benchmark, size):
    a, b = _pair(size, size)
    benchmark(edwp, a, b)


def test_bench_edwp_avg(benchmark):
    a, b = _pair(25, 25)
    benchmark(edwp_avg, a, b)


def test_bench_edwp_sub(benchmark):
    a, b = _pair(15, 40)
    benchmark(edwp_sub, a, b)


def test_bench_box_lower_bound(benchmark):
    rng = np.random.default_rng(1)
    group = [
        Trajectory.from_xy(rng.normal(0, 1, (12, 2)).cumsum(axis=0))
        for _ in range(5)
    ]
    seq = TBoxSeq.from_trajectories(group)
    q, _ = _pair(20, 2, seed=2)
    benchmark(edwp_sub_box, q, seq)


@pytest.fixture(scope="module")
def small_tree():
    db = generate_beijing(80, seed=7)
    return TrajTree(db, num_vps=20, normalized=True, seed=0)


def test_bench_trajtree_query(benchmark, small_tree):
    q = generate_beijing(1, seed=555)[0]
    benchmark(small_tree.knn, q, 10)


def test_bench_sequential_scan(benchmark, small_tree):
    q = generate_beijing(1, seed=555)[0]
    benchmark(small_tree.knn_scan, q, 10)
