"""Microbenchmarks of the core operations (complexity sanity checks).

Not a paper figure: these keep the building blocks honest — EDwP and
EDwPsub are quadratic DPs, the box bound is linear in the box budget, and
a TrajTree query should cost a fraction of a sequential scan.

The backend-comparison tests measure the vectorized numpy kernel against
the pure-Python reference on the same 100-point trajectory pairs and
*assert* the headline contract of the dual-backend design: >= 5x faster in
its batched (lockstep) form with max abs deviation < 1e-9 (DESIGN.md,
"Dual-backend EDwP kernels").  When numba is installed the native rows
run too, and the ISSUE-9 gate asserts the compiled single-pair kernel is
>= 5x faster than the numpy one (DESIGN.md, "Native kernel tier").

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_core_ops.py -q
"""

import math
import time

import numpy as np
import pytest

from conftest import emit

from repro import _native
from repro.core import Trajectory, edwp, edwp_avg, edwp_many
from repro.core.edwp_sub import edwp_sub
from repro.datasets import generate_beijing
from repro.index import TBoxSeq, TrajTree, edwp_sub_box

NUMBA_INSTALLED = _native.numba_available()

#: "native" benchmark rows exist only where the compiled tier exists —
#: timing the un-jitted fallback would gate nothing meaningful.
NATIVE_ROW = pytest.param(
    "native",
    marks=pytest.mark.skipif(not NUMBA_INSTALLED,
                             reason="numba not installed"),
)

NATIVE_GATE_MIN_SPEEDUP = 5.0


def _warm(backend):
    """JIT-compile (or load the on-disk cache) outside the timed region."""
    if backend == "native":
        _native.warmup()


def _pair(n1, n2, seed=0):
    rng = np.random.default_rng(seed)
    mk = lambda n: Trajectory.from_xy(
        rng.normal(0, 1, (n, 2)).cumsum(axis=0)
    )
    return mk(n1), mk(n2)


@pytest.mark.parametrize("size", [10, 20, 40])
def test_bench_edwp(benchmark, size):
    a, b = _pair(size, size)
    benchmark(edwp, a, b)


@pytest.mark.parametrize("backend", ["python", "numpy", NATIVE_ROW])
def test_bench_edwp_backend(benchmark, backend):
    """Single-pair EDwP at 100 points, per backend."""
    a, b = _pair(100, 100)
    _warm(backend)
    benchmark(edwp, a, b, backend=backend)


@pytest.mark.parametrize("backend", ["python", "numpy", NATIVE_ROW])
def test_bench_edwp_many_backend(benchmark, backend):
    """Batched EDwP (one query vs 32 targets) at 100 points, per backend."""
    rng = np.random.default_rng(3)
    mk = lambda: Trajectory.from_xy(rng.normal(0, 1, (100, 2)).cumsum(axis=0))
    query = mk()
    targets = [mk() for _ in range(32)]
    _warm(backend)
    edwp_many(query, targets, backend=backend)     # warm coordinate caches
    benchmark(edwp_many, query, targets, backend=backend)


def test_backend_speedup_and_accuracy_100pt():
    """Acceptance gate: the vectorized kernel vs the pure-Python backend on
    100-point trajectory pairs — >= 5x faster batched, deviation < 1e-9."""
    rng = np.random.default_rng(7)
    mk = lambda: Trajectory.from_xy(rng.normal(0, 1, (100, 2)).cumsum(axis=0))
    query = mk()
    targets = [mk() for _ in range(32)]

    def best_of(fn, repeats=3):
        """Min-of-N wall clock: robust to noisy-neighbor CI runners."""
        best = math.inf
        for _ in range(repeats):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        return best, result

    edwp_many(query, targets, backend="numpy")     # warm coordinate caches
    numpy_secs, fast = best_of(
        lambda: edwp_many(query, targets, backend="numpy"))
    python_secs, reference = best_of(
        lambda: [edwp(query, t, backend="python") for t in targets])

    deviation = max(abs(r - f) for r, f in zip(reference, fast))
    speedup = python_secs / numpy_secs
    per_pair_py = python_secs / len(targets) * 1000
    per_pair_np = numpy_secs / len(targets) * 1000
    print(
        f"\n100-point pairs, batch of {len(targets)}: "
        f"python {per_pair_py:.2f} ms/pair, numpy {per_pair_np:.3f} ms/pair "
        f"-> {speedup:.1f}x, max abs deviation {deviation:.2e}"
    )
    assert deviation < 1e-9
    assert speedup >= 5.0, (
        f"vectorized kernel only {speedup:.1f}x faster than pure Python"
    )


@pytest.mark.skipif(not NUMBA_INSTALLED, reason="numba not installed")
def test_native_speedup_and_accuracy_100pt(results_dir):
    """ISSUE-9 acceptance gate: the compiled single-pair EDwP kernel vs
    the numpy kernel on 100-point pairs — >= 5x faster, and within 1e-9
    relative of the pure-Python reference.  ``warmup()`` runs first so
    JIT compilation (or loading numba's on-disk cache) is never inside
    the timed region; timings are min-of-3 in one process, so the ratio
    is robust to noisy-neighbor CI runners."""
    _native.warmup()
    rng = np.random.default_rng(7)
    mk = lambda: Trajectory.from_xy(rng.normal(0, 1, (100, 2)).cumsum(axis=0))
    pairs = [(mk(), mk()) for _ in range(8)]
    for a, b in pairs:
        a.coords(), b.coords()                     # warm coordinate caches

    def best_of(fn, repeats=3):
        best = math.inf
        for _ in range(repeats):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        return best, result

    native_secs, native_vals = best_of(
        lambda: [edwp(a, b, backend="native") for a, b in pairs])
    numpy_secs, _ = best_of(
        lambda: [edwp(a, b, backend="numpy") for a, b in pairs])
    reference = [edwp(a, b, backend="python") for a, b in pairs]

    deviation = max(
        abs(n - r) / max(abs(r), 1.0)
        for n, r in zip(native_vals, reference)
    )
    speedup = numpy_secs / native_secs
    per_pair_np = numpy_secs / len(pairs) * 1000
    per_pair_nat = native_secs / len(pairs) * 1000

    body = (
        f"100-point single pairs      {len(pairs)}\n"
        f"edwp numpy backend          {per_pair_np:.3f} ms/pair\n"
        f"edwp native backend         {per_pair_nat:.3f} ms/pair\n"
        f"speedup                     {speedup:.1f}x (gate: >= "
        f"{NATIVE_GATE_MIN_SPEEDUP:.1f}x)\n"
        f"max relative deviation      {deviation:.2e} vs python reference\n"
    )
    emit(results_dir, "core_ops_native_gate",
         "ISSUE-9 gate: native EDwP kernel vs numpy, single pair",
         body)

    assert deviation <= 1e-9
    assert speedup >= NATIVE_GATE_MIN_SPEEDUP, (
        f"native kernel only {speedup:.1f}x faster than numpy "
        f"(gate requires >= {NATIVE_GATE_MIN_SPEEDUP:.1f}x)"
    )


def test_bench_edwp_avg(benchmark):
    a, b = _pair(25, 25)
    benchmark(edwp_avg, a, b)


def test_bench_edwp_sub(benchmark):
    a, b = _pair(15, 40)
    benchmark(edwp_sub, a, b)


def test_bench_box_lower_bound(benchmark):
    rng = np.random.default_rng(1)
    group = [
        Trajectory.from_xy(rng.normal(0, 1, (12, 2)).cumsum(axis=0))
        for _ in range(5)
    ]
    seq = TBoxSeq.from_trajectories(group)
    q, _ = _pair(20, 2, seed=2)
    benchmark(edwp_sub_box, q, seq)


@pytest.fixture(scope="module")
def small_tree():
    db = generate_beijing(80, seed=7)
    return TrajTree(db, num_vps=20, normalized=True, seed=0)


def test_bench_trajtree_query(benchmark, small_tree):
    q = generate_beijing(1, seed=555)[0]
    benchmark(small_tree.knn, q, 10)


def test_bench_sequential_scan(benchmark, small_tree):
    q = generate_beijing(1, seed=555)[0]
    benchmark(small_tree.knn_scan, q, 10)
