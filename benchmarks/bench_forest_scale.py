"""Forest scale gate: 50k trajectories built, stored, and queried (ISSUE 7).

The columnar store + sharded forest exist so the pipeline scales past the
single-tree comfort zone (ROADMAP item 2).  This gate packs **50,000**
synthetic trajectories into a :class:`~repro.store.ColumnarStore` without
ever materializing 50k Python objects (the arrays are built vectorized),
reloads it memory-mapped, builds a 100-shard :class:`TrajForest` from the
store, and checks three things:

* **scale** — the whole build+query run stays under a stated peak-RSS
  cap (``ru_maxrss``), i.e. memory stays arrays-plus-trees, with no
  hidden O(dataset) blowup per query;
* **exactness at scale** — forest kNN answers on sampled queries equal a
  chunked brute-force ``edwp_many`` scan of the *entire* store (the same
  batched kernel TrajTree leaf refinement uses; the tier-1 exactness
  suite pins tree == scan, so scan == single-tree oracle here);
* **exactness vs a literal tree** — on a 2,000-trajectory subsample a
  real single TrajTree is built and the forest answers must match it
  bit-for-bit (the ``tests/test_forest_oracle.py`` contract, re-checked
  at gate scale).

The regenerated table lands in ``benchmarks/results/forest_gate.txt``
and is uploaded as a CI artifact.
"""

import heapq
import resource
import time

import numpy as np
import pytest

from repro.core.edwp import edwp_many
from repro.index import TrajForest, TrajTree
from repro.store import ColumnarStore

from conftest import emit

N = 50_000
SHARDS = 100
QUERIES = 3            # sampled query positions, brute-force checked
K = 10
SUBSAMPLE = 2_000      # literal single-tree oracle size
RSS_CAP_MB = 600       # peak RSS cap for the whole build+query run

# Build parameters tuned for tiny (3-6 point) trajectories: shallow
# shard trees, few boxes/VPs — the gate exercises scale, not pruning.
TREE_KWARGS = dict(
    normalized=True, num_vps=2, vp_levels=1, min_node_size=400,
    max_branching=2, max_boxes=3, backend="numpy",
)


def synthetic_store(n, seed=7):
    """n random-walk trajectories straight into columnar arrays — no
    per-trajectory Python objects, so generation is O(points) numpy."""
    rng = np.random.default_rng(seed)
    lengths = rng.integers(3, 7, n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    total = int(offsets[-1])
    points = np.empty((total, 3))
    points[:, :2] = rng.normal(0, 1, (total, 2)).cumsum(axis=0) * 5.0
    # per-trajectory clocks: cumulative gaps, restarted at each offset
    gaps = np.cumsum(rng.uniform(1.0, 30.0, total))
    points[:, 2] = gaps - np.repeat(gaps[offsets[:-1]], lengths)
    return ColumnarStore(points, offsets)


def brute_force_knn(query, store, k, chunk=5_000):
    """Top-k by chunked edwp_many scan of the whole store, under the
    library-wide ascending (distance, traj_id) tie order."""
    best = []
    for lo in range(0, len(store), chunk):
        trajs = [store.trajectory(p) for p in range(lo, min(lo + chunk,
                                                            len(store)))]
        dists = edwp_many(query, trajs, normalized=True, backend="numpy")
        for t, d in zip(trajs, dists):
            best.append((d, t.traj_id))
    best.sort()
    return [(tid, d) for d, tid in best[:k]]


def rss_mb():
    """Peak RSS of this process in MB (ru_maxrss is KB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


@pytest.mark.benchmark(group="forest-scale")
def test_forest_scale_gate(benchmark, results_dir, tmp_path):
    store_dir = tmp_path / "store"

    t0 = time.perf_counter()
    synthetic_store(N).save(store_dir)
    pack_s = time.perf_counter() - t0

    store = ColumnarStore.load(store_dir, mmap=True)
    assert len(store) == N

    def build():
        return TrajForest.from_store(store, num_shards=SHARDS, seed=7,
                                     **TREE_KWARGS)

    t0 = time.perf_counter()
    forest = benchmark.pedantic(build, rounds=1, iterations=1)
    build_s = time.perf_counter() - t0
    assert len(forest) == N
    assert forest.num_shards == SHARDS

    # exactness at scale: sampled forest answers vs full brute-force scan
    rng = np.random.default_rng(99)
    query_positions = rng.choice(N, QUERIES, replace=False)
    t0 = time.perf_counter()
    query_s_total = 0.0
    for pos in query_positions:
        query = store.trajectory(int(pos))
        t1 = time.perf_counter()
        got = forest.knn(query, K)
        query_s_total += time.perf_counter() - t1
        assert got == brute_force_knn(query, store, K), int(pos)
    check_s = time.perf_counter() - t0

    # exactness vs a literal single tree, on a subsample
    sub = [store.trajectory(p) for p in range(SUBSAMPLE)]
    tree = TrajTree(sub, seed=7, **TREE_KWARGS)
    sub_forest = TrajForest(sub, num_shards=7, seed=7, **TREE_KWARGS)
    for pos in (0, 123, SUBSAMPLE - 1):
        assert sub_forest.knn(sub[pos], K) == tree.knn(sub[pos], K)

    peak_mb = rss_mb()
    assert peak_mb < RSS_CAP_MB, (
        f"peak RSS {peak_mb:.0f} MB exceeds the {RSS_CAP_MB} MB gate"
    )

    rows = [
        f"{'trajectories':<28}{N:>12,}",
        f"{'points':<28}{store.num_points:>12,}",
        f"{'store size (MB)':<28}{store.nbytes / 1e6:>12.1f}",
        f"{'shards':<28}{SHARDS:>12}",
        f"{'pack+save (s)':<28}{pack_s:>12.1f}",
        f"{'forest build (s)':<28}{build_s:>12.1f}",
        f"{'build rate (traj/s)':<28}{N / build_s:>12,.0f}",
        f"{'knn query, k=10 (ms)':<28}"
        f"{query_s_total / QUERIES * 1000:>12.1f}",
        f"{'oracle check (s)':<28}{check_s:>12.1f}",
        f"{'peak RSS (MB)':<28}{peak_mb:>12.0f}",
        f"{'RSS gate (MB)':<28}{RSS_CAP_MB:>12}",
        "",
        f"gate: {QUERIES} sampled queries == brute-force edwp_many scan "
        f"of all {N:,}; subsample forest == single TrajTree; "
        f"peak RSS under {RSS_CAP_MB} MB",
    ]
    emit(results_dir, "forest_gate",
         f"Forest scale gate — {N:,} trajectories, {SHARDS} shards "
         f"(mmap'd columnar store)", "\n".join(rows))
