"""Figs. 6(a)/6(e): query time and index build time vs database size."""

import pytest

from conftest import emit

from repro.eval.timing import format_series_table
from repro.experiments import run_scaling

DB_SIZES = (40, 80, 160)
QUERIES = 2


@pytest.fixture(scope="module")
def scaling_result():
    return run_scaling(db_sizes=DB_SIZES, k=10, num_queries=QUERIES, seed=7)


def test_fig6a_query_time_vs_dbsize(benchmark, results_dir, scaling_result):
    result = benchmark.pedantic(lambda: scaling_result, rounds=1, iterations=1)
    emit(results_dir, "fig6a",
         f"Fig. 6(a): total query seconds vs database size ({QUERIES} queries, k=10)",
         format_series_table("db size", result.x_values, result.series))

    # paper shape: every method's cost grows with database size, and the
    # index methods grow sublinearly relative to the scans
    for name, series in result.series.items():
        assert series[-1] >= series[0] * 0.8, name
    growth_tree = result.series["TrajTree"][-1] / result.series["TrajTree"][0]
    growth_scan = result.series["EDwP-scan"][-1] / result.series["EDwP-scan"][0]
    assert growth_tree <= growth_scan * 1.3


def test_fig6e_build_time_vs_dbsize(benchmark, results_dir, scaling_result):
    result = benchmark.pedantic(lambda: scaling_result, rounds=1, iterations=1)
    emit(results_dir, "fig6e",
         "Fig. 6(e): index construction seconds vs database size",
         format_series_table("db size", result.x_values,
                             result.build_seconds))

    # paper shape (Sec. IV-F analysis): superlinear but subquadratic growth
    builds = result.build_seconds["TrajTree"]
    size_ratio = DB_SIZES[-1] / DB_SIZES[0]
    growth = builds[-1] / max(builds[0], 1e-9)
    assert growth >= 1.0
    assert growth <= size_ratio ** 2 * 1.5
