"""Figs. 6(a)/6(e): query time and index build time vs database size.

Also hosts the ISSUE-5 acceptance gate for the vectorized index bound
engine: TrajTree ``knn`` with the numpy bound backend must return
identical neighbor sets to the reference backend and be >= 4x faster on
a >= 500-trajectory index (see DESIGN.md, "Index bound kernels") — and,
when numba is installed, the ISSUE-9 gate: the native backend must answer
the same queries >= 1.5x faster than the numpy backend end-to-end.
"""

import math
import time

import pytest

from conftest import emit

from repro import _native
from repro.datasets import generate_beijing
from repro.eval.timing import format_series_table
from repro.experiments import run_scaling
from repro.index import TrajTree

DB_SIZES = (40, 80, 160)
QUERIES = 2

#: Gate workload: the smallest scale the acceptance criterion names.
GATE_DB_SIZE = 500
GATE_QUERIES = 5
GATE_K = 10
GATE_MIN_SPEEDUP = 4.0
NATIVE_GATE_MIN_SPEEDUP = 1.5


@pytest.fixture(scope="module")
def scaling_result():
    return run_scaling(db_sizes=DB_SIZES, k=10, num_queries=QUERIES, seed=7)


def test_fig6a_query_time_vs_dbsize(benchmark, results_dir, scaling_result):
    result = benchmark.pedantic(lambda: scaling_result, rounds=1, iterations=1)
    emit(results_dir, "fig6a",
         f"Fig. 6(a): total query seconds vs database size ({QUERIES} queries, k=10)",
         format_series_table("db size", result.x_values, result.series))

    # paper shape: every method's cost grows with database size, and the
    # index methods grow sublinearly relative to the scans
    for name, series in result.series.items():
        assert series[-1] >= series[0] * 0.8, name
    growth_tree = result.series["TrajTree"][-1] / result.series["TrajTree"][0]
    growth_scan = result.series["EDwP-scan"][-1] / result.series["EDwP-scan"][0]
    assert growth_tree <= growth_scan * 1.3


def test_fig6e_build_time_vs_dbsize(benchmark, results_dir, scaling_result):
    result = benchmark.pedantic(lambda: scaling_result, rounds=1, iterations=1)
    emit(results_dir, "fig6e",
         "Fig. 6(e): index construction seconds vs database size",
         format_series_table("db size", result.x_values,
                             result.build_seconds))

    # paper shape (Sec. IV-F analysis): superlinear but subquadratic growth
    builds = result.build_seconds["TrajTree"]
    size_ratio = DB_SIZES[-1] / DB_SIZES[0]
    growth = builds[-1] / max(builds[0], 1e-9)
    assert growth >= 1.0
    assert growth <= size_ratio ** 2 * 1.5


def test_batched_bound_knn_speedup_and_equivalence(results_dir):
    """Acceptance gate: numpy-bound ``knn`` vs the python-bound path.

    One tree (built once, with the batched build path), the same queries
    under both backends: neighbor id lists must be identical, distances
    must agree to < 1e-9, and the batched bound engine must be >=
    ``GATE_MIN_SPEEDUP``x faster end-to-end.  Timings are min-of-3 per
    backend — both backends run in the same process back-to-back, so the
    ratio is robust to noisy-neighbor CI runners.
    """
    db = generate_beijing(GATE_DB_SIZE, seed=7)
    queries = generate_beijing(GATE_QUERIES, seed=1007)

    build_start = time.perf_counter()
    tree = TrajTree(db, theta=0.8, num_vps=8, normalized=True, seed=7,
                    backend="numpy")
    build_secs = time.perf_counter() - build_start

    def run_all():
        return [tree.knn(q, GATE_K) for q in queries]

    timings = {}
    answers = {}
    for backend in ("numpy", "python"):
        tree.backend = backend
        run_all()                          # warm caches, page in the tree
        best = math.inf
        for _ in range(3):
            start = time.perf_counter()
            answers[backend] = run_all()
            best = min(best, time.perf_counter() - start)
        timings[backend] = best

    ids_numpy = [[tid for tid, _ in a] for a in answers["numpy"]]
    ids_python = [[tid for tid, _ in a] for a in answers["python"]]
    deviation = max(
        abs(da - db_)
        for a, b in zip(answers["numpy"], answers["python"])
        for (_, da), (_, db_) in zip(a, b)
    )
    speedup = timings["python"] / timings["numpy"]

    body = (
        f"index size          {GATE_DB_SIZE} trajectories\n"
        f"queries x k         {GATE_QUERIES} x {GATE_K}\n"
        f"build (numpy path)  {build_secs:.2f} s\n"
        f"knn python bounds   {timings['python']:.3f} s\n"
        f"knn numpy bounds    {timings['numpy']:.3f} s\n"
        f"speedup             {speedup:.2f}x (gate: >= "
        f"{GATE_MIN_SPEEDUP:.1f}x)\n"
        f"neighbor sets       {'identical' if ids_numpy == ids_python else 'DIFFER'}\n"
        f"max abs deviation   {deviation:.2e}\n"
    )
    emit(results_dir, "fig6a_bound_gate",
         "ISSUE-5 gate: batched TrajTree bound engine vs python bounds",
         body)

    assert ids_numpy == ids_python, "neighbor sets differ across backends"
    assert deviation < 1e-9
    assert speedup >= GATE_MIN_SPEEDUP, (
        f"batched bound engine only {speedup:.2f}x faster "
        f"(gate requires >= {GATE_MIN_SPEEDUP:.1f}x)"
    )


@pytest.mark.skipif(not _native.numba_available(),
                    reason="numba not installed")
def test_native_knn_speedup_and_equivalence(results_dir):
    """ISSUE-9 acceptance gate: native-backend ``knn`` vs the numpy path.

    Same tree, same queries, the backend flipped between runs: neighbor
    id lists must be identical, distances within 1e-9, and the compiled
    tier >= ``NATIVE_GATE_MIN_SPEEDUP``x faster end-to-end.  The bar is
    deliberately lower than the raw-kernel gate: index queries spend
    much of their time in tree traversal and bound bookkeeping that no
    kernel tier touches (Amdahl), so 1.5x end-to-end is a real kernel
    win.  ``warmup()`` runs before any timing so JIT compilation stays
    outside the measured region.
    """
    _native.warmup()
    db = generate_beijing(GATE_DB_SIZE, seed=7)
    queries = generate_beijing(GATE_QUERIES, seed=1007)

    tree = TrajTree(db, theta=0.8, num_vps=8, normalized=True, seed=7,
                    backend="numpy")

    def run_all():
        return [tree.knn(q, GATE_K) for q in queries]

    timings = {}
    answers = {}
    for backend in ("numpy", "native"):
        tree.backend = backend
        run_all()                          # warm caches, page in the tree
        best = math.inf
        for _ in range(3):
            start = time.perf_counter()
            answers[backend] = run_all()
            best = min(best, time.perf_counter() - start)
        timings[backend] = best

    ids_native = [[tid for tid, _ in a] for a in answers["native"]]
    ids_numpy = [[tid for tid, _ in a] for a in answers["numpy"]]
    deviation = max(
        abs(da - db_)
        for a, b in zip(answers["native"], answers["numpy"])
        for (_, da), (_, db_) in zip(a, b)
    )
    speedup = timings["numpy"] / timings["native"]

    body = (
        f"index size          {GATE_DB_SIZE} trajectories\n"
        f"queries x k         {GATE_QUERIES} x {GATE_K}\n"
        f"knn numpy backend   {timings['numpy']:.3f} s\n"
        f"knn native backend  {timings['native']:.3f} s\n"
        f"speedup             {speedup:.2f}x (gate: >= "
        f"{NATIVE_GATE_MIN_SPEEDUP:.1f}x)\n"
        f"neighbor sets       {'identical' if ids_native == ids_numpy else 'DIFFER'}\n"
        f"max abs deviation   {deviation:.2e}\n"
    )
    emit(results_dir, "fig6a_native_gate",
         "ISSUE-9 gate: native TrajTree queries vs numpy bounds",
         body)

    assert ids_native == ids_numpy, "neighbor sets differ across backends"
    assert deviation < 1e-9
    assert speedup >= NATIVE_GATE_MIN_SPEEDUP, (
        f"native tier only {speedup:.2f}x faster "
        f"(gate requires >= {NATIVE_GATE_MIN_SPEEDUP:.1f}x)"
    )
