"""Fig. 5(a): 1-NN classification accuracy vs number of sign classes."""

from conftest import emit

from repro.eval.timing import format_series_table
from repro.experiments import run_fig5a

#: Reduced scale: the paper uses 98 classes, 10-fold CV, 100 repeats.
CLASS_COUNTS = (5, 10, 15, 20, 25)
INSTANCES = 6
REPEATS = 1
FOLDS = 4


def test_fig5a_accuracy_vs_classes(benchmark, results_dir):
    result = benchmark.pedantic(
        run_fig5a,
        kwargs=dict(class_counts=CLASS_COUNTS,
                    instances_per_class=INSTANCES,
                    repeats=REPEATS, folds=FOLDS, seed=7),
        rounds=1, iterations=1,
    )
    emit(
        results_dir,
        "fig5a",
        "Fig. 5(a): classification accuracy vs #classes "
        f"(ASL-like, {INSTANCES} instances/class, {FOLDS}-fold CV)",
        format_series_table("#classes", result.class_counts, result.accuracy),
    )

    # paper shape: EDwP is the most accurate metric overall, its advantage
    # is clearest at the hardest (largest) class counts, and accuracy
    # degrades as classes grow
    import numpy as np

    edwp_mean = np.mean(result.accuracy["EDwP"])
    for name, series in result.accuracy.items():
        if name != "EDwP":
            assert edwp_mean >= np.mean(series) - 0.03, name
    hardest = -1
    best_at_hardest = max(result.accuracy,
                          key=lambda m: result.accuracy[m][hardest])
    assert result.accuracy["EDwP"][hardest] >= (
        result.accuracy[best_at_hardest][hardest] - 0.05
    )
    for name, series in result.accuracy.items():
        assert series[-1] <= series[0] + 0.1, name
