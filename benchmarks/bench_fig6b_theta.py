"""Figs. 6(b)/6(f): TrajTree query time and build time vs θ."""

import pytest

from conftest import emit

from repro.eval.timing import format_series_table
from repro.experiments import run_theta_sweep

THETAS = (0.2, 0.5, 0.8, 0.95)
DB_SIZE = 100


@pytest.fixture(scope="module")
def theta_result():
    return run_theta_sweep(thetas=THETAS, db_size=DB_SIZE, k=10,
                           num_queries=2, seed=7)


def test_fig6b_query_time_vs_theta(benchmark, results_dir, theta_result):
    result = benchmark.pedantic(lambda: theta_result, rounds=1, iterations=1)
    emit(results_dir, "fig6b",
         f"Fig. 6(b): query seconds vs theta (Beijing-like n={DB_SIZE})",
         format_series_table("theta", result.x_values, result.series))
    # sanity: every sweep point produced a positive timing
    assert all(t > 0 for t in result.series["TrajTree-query"])


def test_fig6f_build_time_vs_theta(benchmark, results_dir, theta_result):
    result = benchmark.pedantic(lambda: theta_result, rounds=1, iterations=1)
    emit(results_dir, "fig6f",
         f"Fig. 6(f): build seconds vs theta (Beijing-like n={DB_SIZE})",
         format_series_table("theta", result.x_values,
                             result.build_seconds))
    # paper shape: construction cost rises with theta (more pivots per
    # level); tolerate plateaus from the branching cap
    builds = result.build_seconds["TrajTree"]
    assert builds[-1] >= builds[0] * 0.8
