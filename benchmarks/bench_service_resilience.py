"""Service resilience chaos gate (ISSUE 8).

One end-to-end pass over the fault model of DESIGN.md ("Fault model and
degraded serving"), every fault injected deterministically through
:mod:`repro.testing.faults`:

* a 16-shard ForestSnapshot is **damaged** — one shard truncated, one
  bit-flipped — and must load degraded (``on_shard_error="skip"``) with
  both failures named in the shard census;
* one **worker process is killed** mid-way through a parallel
  ``TrajForest.from_store`` build; the recovered forest must be
  bit-identical to an undisturbed serial build;
* the degraded forest is served over TCP while clients suffer **10%
  injected connection drops** (seeded, so the drop pattern is identical
  every run); retrying clients must get every answer, and every answer
  must be bit-identical to a healthy-shards-only oracle forest;
* the snapshot is **repaired** and the admin ``reload`` op swaps it in
  atomically; post-reload answers must match the full-forest oracle.

The service staying up is not a soft goal: any dropped query, any
mismatched answer, or a dead health endpoint fails the gate.  The
regenerated table lands in ``benchmarks/results/resilience_gate.txt``
and is uploaded as a CI artifact.
"""

import asyncio
import multiprocessing
import shutil
import time

import numpy as np
import pytest

from repro.index import TrajForest
from repro.index.persistence import load_forest, save_forest
from repro.service import (
    QueryService,
    RetryPolicy,
    ServiceClient,
    ServiceConfig,
    serve,
)
from repro.store import ColumnarStore
from repro.testing.faults import FaultPlan, injected

from conftest import emit

N = 160                 # trajectories
SHARDS = 16
DAMAGED = (3, 8)        # shard_0003 truncated, shard_0008 bit-flipped
KILLED_SHARD = 5        # worker building this shard is killed
QUERIES = 24            # client queries under injected drops
DROP_RATE = 0.1
K = 5

TREE_KWARGS = dict(
    normalized=True, num_vps=2, vp_levels=1, min_node_size=5,
    max_branching=2, max_boxes=3, backend="numpy",
)


def synthetic_store(n, seed=7):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(4, 8, n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    total = int(offsets[-1])
    points = np.empty((total, 3))
    points[:, :2] = rng.normal(0, 1, (total, 2)).cumsum(axis=0) * 5.0
    gaps = np.cumsum(rng.uniform(1.0, 30.0, total))
    points[:, 2] = gaps - np.repeat(gaps[offsets[:-1]], lengths)
    return ColumnarStore(points, offsets)


def damage_snapshot(root):
    """Truncate one shard, bit-flip another — two distinct failure
    modes, both of which the loader must catch and name."""
    truncated = root / f"shard_{DAMAGED[0]:04d}.pkl"
    truncated.write_bytes(truncated.read_bytes()[:100])
    flipped = root / f"shard_{DAMAGED[1]:04d}.pkl"
    raw = bytearray(flipped.read_bytes())
    raw[len(raw) // 2] ^= 0x20
    flipped.write_bytes(bytes(raw))


@pytest.mark.benchmark(group="service-resilience")
def test_service_resilience_gate(benchmark, results_dir, tmp_path):
    store_dir = tmp_path / "db.store"
    snap = tmp_path / "forest"
    pristine = tmp_path / "forest.pristine"

    synthetic_store(N).save(store_dir)
    store = ColumnarStore.load(store_dir, mmap=True)
    probes = [store.trajectory(int(p)) for p in
              np.random.default_rng(99).choice(N, QUERIES)]

    # ---- phase 1: worker kill during parallel build ------------------- #
    t0 = time.perf_counter()
    oracle = TrajForest.from_store(store_dir, num_shards=SHARDS, seed=7,
                                   **TREE_KWARGS)
    serial_s = time.perf_counter() - t0
    fork = multiprocessing.get_start_method() == "fork"
    if fork:
        kill_plan = FaultPlan().on(
            f"forest.build_shard:{KILLED_SHARD}", "exit", 17
        )
        t0 = time.perf_counter()
        with injected(kill_plan):
            forest = TrajForest.from_store(store_dir, num_shards=SHARDS,
                                           seed=7, workers=2, **TREE_KWARGS)
        killed_s = time.perf_counter() - t0
        assert KILLED_SHARD in forest.rebuilt_shards
        assert forest.ids() == oracle.ids()
        for q in probes[:4]:
            assert forest.knn(q, K) == oracle.knn(q, K)
    else:                               # pragma: no cover - non-fork hosts
        forest, killed_s = oracle, 0.0
    save_forest(forest, snap)
    shutil.copytree(snap, pristine)

    # ---- phase 2: damaged snapshot loads degraded --------------------- #
    damage_snapshot(snap)
    degraded = load_forest(snap, on_shard_error="skip")
    census = degraded.shard_census()
    assert census == {
        "total": SHARDS, "healthy": SHARDS - 2,
        "missing": census["missing"],
    }
    assert sorted(m["shard"] for m in census["missing"]) == list(DAMAGED)
    healthy_oracle = TrajForest.from_shards(
        [t for i, t in enumerate(oracle.shards) if i not in DAMAGED],
        scheme=oracle.scheme, seed=oracle.seed,
    )
    assert degraded.ids() == healthy_oracle.ids()

    # ---- phase 3: serve degraded under client connection drops -------- #
    async def drive():
        service = QueryService(
            degraded, ServiceConfig(window=0.001),
            loader=lambda: load_forest(snap, on_shard_error="skip"),
        )
        server = await serve(service, port=0)
        port = server.sockets[0].getsockname()[1]
        retry = RetryPolicy(attempts=8, base=0.001, cap=0.01, seed=11)
        drop_plan = FaultPlan(seed=5).on(
            "client.*", "drop", times=None, probability=DROP_RATE
        )

        async def one_client(cid, mine):
            client = await ServiceClient.connect("127.0.0.1", port,
                                                 retry=retry)
            answers = []
            for q in mine:
                results, meta = await client.knn(q, K)
                answers.append((results, meta["degraded"],
                                tuple(meta["missing_shards"])))
            await client.aclose()
            return answers

        t0 = time.perf_counter()
        with injected(drop_plan):
            per_client = await asyncio.gather(*(
                one_client(c, probes[c::4]) for c in range(4)
            ))
        degraded_s = time.perf_counter() - t0
        drops = drop_plan.fired()
        checker = await ServiceClient.connect("127.0.0.1", port)
        health = await checker.health()
        await checker.aclose()
        assert health["status"] == "degraded"
        assert health["shards"]["healthy"] == SHARDS - 2

        # every client query answered, every answer == healthy-only oracle
        answered = 0
        for c, answers in enumerate(per_client):
            for q, (results, flag, missing) in zip(probes[c::4], answers):
                assert results == healthy_oracle.knn(q, K)
                assert flag is True
                assert missing == DAMAGED
                answered += 1
        assert answered == QUERIES

        # ---- phase 4: repair + atomic reload -> full oracle ----------- #
        for i in DAMAGED:
            shutil.copy2(pristine / f"shard_{i:04d}.pkl",
                         snap / f"shard_{i:04d}.pkl")
        admin = await ServiceClient.connect("127.0.0.1", port)
        summary = await admin.reload()
        assert summary["degraded"] is False
        assert summary["shards"]["healthy"] == SHARDS
        for q in probes[:6]:
            results, meta = await admin.knn(q, K)
            assert results == oracle.knn(q, K)
            assert meta["degraded"] is False
        healed = await admin.health()
        assert healed["status"] == "ready"
        await admin.aclose()

        server.close()
        await server.wait_closed()
        await service.aclose()
        return drops, degraded_s

    drops, degraded_s = benchmark.pedantic(
        lambda: asyncio.run(drive()), rounds=1, iterations=1
    )
    assert drops > 0, "the seeded drop plan never fired"

    rows = [
        f"{'trajectories':<32}{N:>10,}",
        f"{'shards':<32}{SHARDS:>10}",
        f"{'damaged shards':<32}{str(DAMAGED):>10}",
        f"{'serial build (s)':<32}{serial_s:>10.1f}",
        f"{'build with worker kill (s)':<32}{killed_s:>10.1f}"
        + ("" if fork else "  (skipped: no fork)"),
        f"{'client queries':<32}{QUERIES:>10}",
        f"{'injected connection drops':<32}{drops:>10}",
        f"{'degraded serving (s)':<32}{degraded_s:>10.2f}",
        "",
        "gate: worker-killed build == serial build; degraded answers == "
        f"healthy-{SHARDS - 2}-shard oracle with degraded flag + missing "
        "shards on every answer; post-repair reload == full "
        f"{SHARDS}-shard oracle; zero queries lost to "
        f"{DROP_RATE:.0%} connection drops",
    ]
    emit(results_dir, "resilience_gate",
         f"Service resilience gate — {SHARDS}-shard forest, 2 damaged "
         f"shards, {DROP_RATE:.0%} client drops, 1 worker kill",
         "\n".join(rows))
