"""Service overload gate (ISSUE 10).

One end-to-end pass over the overload-control surface of DESIGN.md
("Overload control and anytime queries"), driven against a live TCP
service:

* a **flood** at several times the admitted concurrency (16 client
  connections against 2 concurrently admitted queries) must shed or
  serve every request through typed errors only — zero unhandled
  exceptions, at least 95% of answers delivered after client retries,
  and a server-side p99 under the 250 ms SLO;
* a **health prober** runs throughout the flood on the reserved control
  tokens; its p99 must stay under 50 ms — overload on the query class
  must never starve observability;
* under sustained measured pressure the degradation policy tightens to
  its **epsilon floor**: answers come back flagged approximate with a
  reported ``bound_factor`` that the measured error never exceeds, and
  both stay at or under the floor's 1 + epsilon = 2.0 guarantee;
* once the pressure stops, the policy **decays back to exact**: answers
  become bit-identical to the no-budget oracle with no anytime flags;
* a burst of injected dispatch errors **trips the circuit breaker**
  (typed ``ServiceUnavailable`` with a ``retry_after`` hint) and the
  half-open probes close it again after the cooldown.

Any unhandled error, SLO miss, unflagged approximation, or factor above
the epsilon guarantee fails the gate.  The regenerated table lands in
``benchmarks/results/overload_gate.txt`` and is uploaded as a CI
artifact.
"""

import asyncio
import random
import time

import pytest

from repro.datasets import generate_beijing
from repro.datasets.beijing import BeijingConfig
from repro.index import QueryBudget, TrajTree
from repro.service import (
    QueryService,
    RetryPolicy,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceUnavailable,
    serve,
)
from repro.testing.faults import FaultPlan, injected

from conftest import emit

N = 48                    # trajectories served
K = 4
PROBES = 8                # distinct probe queries (coalescing feeds on reuse)
FLOOD_CLIENTS = 16        # 8x the 2 concurrently admitted queries
REQUESTS_PER_CLIENT = 20
SLO_MS = 250.0
HEALTH_SLO_MS = 50.0
FACTOR_CAP = 2.0          # 1 + floor epsilon
DRAIN_CAP = 600           # max queries to decay the policy back to exact

#: Short trips keep a single EDwP k-NN at a few milliseconds, so the
#: flood stresses admission and queueing, not the distance kernels.
SHORT_TRIPS = BeijingConfig(min_hops=4, max_hops=8,
                            sample_low=60.0, sample_high=120.0)

CONFIG = ServiceConfig(
    window=0.001, max_batch=8, cache_capacity=0,
    max_inflight=4, reserved_control=2, admission_max_waiting=12,
    breaker_window=8, breaker_min_samples=4, breaker_threshold=0.5,
    breaker_cooldown=0.3, breaker_probes=2,
    slo_ms=SLO_MS, degradation_floor=QueryBudget(epsilon=1.0),
)


def check_answer(qid, results, meta, oracle):
    """Every delivered answer is either exact and bit-identical to the
    oracle, or flagged approximate with a sound factor under the epsilon
    guarantee.  Returns the (measured, reported) factor pair for flagged
    answers, else ``None``."""
    anytime = meta.get("anytime")
    if anytime is None or anytime["exact"]:
        assert results == oracle[qid], f"unflagged wrong answer for {qid}"
        return None
    assert anytime["reason"] == "epsilon"
    reported = anytime["bound_factor"]
    true_kth = oracle[qid][-1][1]
    measured = max(d for _, d in results) / true_kth
    assert measured <= reported + 1e-9, "reported factor violated"
    assert reported <= FACTOR_CAP + 1e-9, "epsilon guarantee violated"
    return measured, reported


@pytest.mark.benchmark(group="service-overload")
def test_service_overload_gate(benchmark, results_dir):
    db = generate_beijing(N, seed=7, config=SHORT_TRIPS)
    tree = TrajTree(db, normalized=True, num_vps=4, seed=7,
                    backend="numpy")
    probes = generate_beijing(PROBES, seed=1009, config=SHORT_TRIPS)
    oracle = {q.traj_id: tree.knn(q, K) for q in probes}

    async def drive():
        service = QueryService(tree, CONFIG)
        server = await serve(service, port=0)
        port = server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()

        # ---- phase 1: flood at 8x admitted concurrency --------------- #
        async def flood_client(cid):
            client = await ServiceClient.connect(
                "127.0.0.1", port,
                retry=RetryPolicy(attempts=10, base=0.005, cap=0.05,
                                  seed=100 + cid),
            )
            rng = random.Random(cid)
            delivered, typed_failures, unhandled = [], [], 0
            for _ in range(REQUESTS_PER_CLIENT):
                q = probes[rng.randrange(PROBES)]
                try:
                    results, meta = await client.knn(q, K)
                    delivered.append((q.traj_id, results, meta))
                except ServiceError as exc:
                    typed_failures.append(exc.code)
                except Exception:           # the gate: nothing untyped
                    unhandled += 1
            await client.aclose()
            return delivered, typed_failures, unhandled

        flood_done = asyncio.Event()

        async def health_prober():
            probe = await ServiceClient.connect("127.0.0.1", port)
            samples = []
            while not flood_done.is_set():
                t0 = loop.time()
                health = await probe.health()
                samples.append((loop.time() - t0) * 1000.0)
                assert health["ready"] is True
                await asyncio.sleep(0.01)
            await probe.aclose()
            return samples

        prober = asyncio.ensure_future(health_prober())
        t0 = time.perf_counter()
        per_client = await asyncio.gather(*(
            flood_client(c) for c in range(FLOOD_CLIENTS)
        ))
        flood_s = time.perf_counter() - t0
        flood_done.set()
        health_ms = sorted(await prober)

        flood_p99 = service.stats.latency_summary()["p99_ms"]
        sheds = sum(service.admission.shed.values())
        delivered = [a for answers, _, _ in per_client for a in answers]
        typed = [c for _, codes, _ in per_client for c in codes]
        unhandled = sum(u for _, _, u in per_client)
        total = FLOOD_CLIENTS * REQUESTS_PER_CLIENT

        assert unhandled == 0, "untyped exception escaped to a client"
        assert len(delivered) >= 0.95 * total, \
            f"only {len(delivered)}/{total} answers delivered: {typed}"
        assert flood_p99 < SLO_MS, f"flood p99 {flood_p99:.1f}ms over SLO"
        health_p99 = health_ms[int(0.99 * (len(health_ms) - 1))]
        assert health_p99 < HEALTH_SLO_MS, \
            f"health p99 {health_p99:.1f}ms — control class starved"

        factors = [f for qid, results, meta in delivered
                   for f in [check_answer(qid, results, meta, oracle)]
                   if f is not None]
        flood_approx = len(factors)

        # ---- phase 2: sustained pressure -> epsilon-floor answers ---- #
        for _ in range(32):
            service.degradation.observe(2 * SLO_MS / 1000.0)
        assert service.degradation.current_budget() == \
            CONFIG.degradation_floor
        client = await ServiceClient.connect("127.0.0.1", port)
        for q in probes:
            results, meta = await client.knn(q, K)
            f = check_answer(q.traj_id, results, meta, oracle)
            if f is not None:
                factors.append(f)
        degraded_approx = len(factors) - flood_approx
        assert degraded_approx >= 1, \
            "epsilon floor never produced an approximate answer"

        # ---- phase 3: pressure gone -> decays back to exact ---------- #
        drain = 0
        while (service.degradation.current_budget() is not None
               and drain < DRAIN_CAP):
            await client.knn(probes[drain % PROBES], K)
            drain += 1
        assert service.degradation.current_budget() is None, \
            f"degradation never decayed within {DRAIN_CAP} queries"
        for q in probes:
            results, meta = await client.knn(q, K)
            assert results == oracle[q.traj_id]
            assert meta["anytime"] is None

        # ---- phase 4: dispatch errors trip the breaker, then heal ---- #
        plan = FaultPlan().on("service.dispatch", "error", times=4)
        tripped_errors = 0
        with injected(plan):
            for q in probes:
                if service.breaker.state == "open":
                    break
                try:
                    await client.knn(q, K)
                except ServiceError:
                    tripped_errors += 1
        assert service.breaker.state == "open"
        with pytest.raises(ServiceUnavailable) as refusal:
            await client.knn(probes[0], K)
        assert refusal.value.retry_after is not None
        assert refusal.value.retry_after > 0
        await asyncio.sleep(CONFIG.breaker_cooldown + 0.05)
        for q in probes[:CONFIG.breaker_probes]:   # half-open probes
            results, _ = await client.knn(q, K)
            assert results == oracle[q.traj_id]
        assert service.breaker.state == "closed"
        assert service.breaker.trips == 1

        await client.aclose()
        server.close()
        await server.wait_closed()
        await service.aclose()
        return dict(
            flood_s=flood_s, flood_p99=flood_p99, health_p99=health_p99,
            health_n=len(health_ms), delivered=len(delivered),
            total=total, sheds=sheds, typed=len(typed),
            flood_approx=flood_approx, degraded_approx=degraded_approx,
            factors=factors, drain=drain, tripped_errors=tripped_errors,
        )

    m = benchmark.pedantic(lambda: asyncio.run(drive()),
                           rounds=1, iterations=1)
    worst_measured = max((f[0] for f in m["factors"]), default=1.0)
    worst_reported = max((f[1] for f in m["factors"]), default=1.0)

    rows = [
        f"{'trajectories':<36}{N:>10,}",
        f"{'flood clients':<36}{FLOOD_CLIENTS:>10}",
        f"{'admitted query concurrency':<36}"
        f"{CONFIG.max_inflight - CONFIG.reserved_control:>10}",
        f"{'flood requests':<36}{m['total']:>10}",
        f"{'delivered after retries':<36}{m['delivered']:>10}",
        f"{'admission sheds (client-retried)':<36}{m['sheds']:>10}",
        f"{'typed client failures':<36}{m['typed']:>10}",
        f"{'flood wall time (s)':<36}{m['flood_s']:>10.2f}",
        f"{'flood p99 (ms, SLO 250)':<36}{m['flood_p99']:>10.1f}",
        f"{'health p99 during flood (ms)':<36}{m['health_p99']:>10.1f}",
        f"{'health samples':<36}{m['health_n']:>10}",
        f"{'approximate answers (flood)':<36}{m['flood_approx']:>10}",
        f"{'approximate answers (degraded)':<36}{m['degraded_approx']:>10}",
        f"{'worst measured factor':<36}{worst_measured:>10.3f}",
        f"{'worst reported factor':<36}{worst_reported:>10.3f}",
        f"{'queries to decay back to exact':<36}{m['drain']:>10}",
        f"{'dispatch errors to trip breaker':<36}{m['tripped_errors']:>10}",
        "",
        f"gate: zero unhandled errors; >=95% delivered; p99 < {SLO_MS:g}ms "
        f"under {FLOOD_CLIENTS} clients vs "
        f"{CONFIG.max_inflight - CONFIG.reserved_control} admitted; "
        f"health p99 < {HEALTH_SLO_MS:g}ms on reserved control tokens; "
        f"approximate answers flagged with measured <= reported <= "
        f"{FACTOR_CAP:g}; exact answers bit-identical to the no-budget "
        "oracle after decay; breaker trips on injected dispatch errors "
        "and closes after half-open probes",
    ]
    emit(results_dir, "overload_gate",
         f"Service overload gate — {FLOOD_CLIENTS}-client flood, "
         f"{SLO_MS:g}ms SLO, epsilon-1.0 degradation floor, "
         "breaker trip + recovery",
         "\n".join(rows))
