"""Tables I/II + Fig. 1 scenarios — empirical feature matrix and anchors.

Also hosts the acceptance gate of the batched baseline distance-matrix
engine: the Table-1/Fig-5 harnesses are pairwise-matrix workloads, so the
contract (>= 5x batched numpy vs the per-pair pure-Python reference,
deviation < 1e-9 — DESIGN.md, "Baseline kernels") is asserted here on the
matrix they actually build.
"""

import math
import time

import numpy as np

from conftest import emit

from repro.baselines import dtw, pairwise_matrix
from repro.core import Trajectory
from repro.experiments import run_table1


def test_table1_feature_matrix(benchmark, results_dir):
    """Regenerate Table I (probe ratios) and the scenario anchor numbers."""
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    anchor_lines = "\n".join(
        f"  {key:<28} {value:.4f}"
        for key, value in sorted(result.anchors.items())
    )
    emit(
        results_dir,
        "table1",
        "Table I (empirical probes) + paper scenario anchors",
        result.rendered + "\n\nAnchors:\n" + anchor_lines,
    )

    # the anchors gate the benchmark: a reproduction that breaks the
    # paper's printed numbers must fail loudly here
    assert abs(result.anchors["appendixA_edwp_t1_t2"] - 1.0) < 1e-9
    assert abs(result.anchors["example4_edwpsub_t2_t1"] - 80.0) < 1e-9
    assert result.probes["EDwP"]["inter"].handled
    assert result.probes["EDwP"]["phase"].handled


def test_pairwise_matrix_speedup_and_accuracy(results_dir):
    """Acceptance gate of the batched matrix engine: ``pairwise_matrix``
    over 200 trajectories with ``metric="dtw", backend="numpy"`` must be
    >= 5x faster than the per-pair pure-Python reference loop, with max
    deviation < 1e-9."""
    rng = np.random.default_rng(42)
    trajs = [
        Trajectory.from_xy(
            rng.normal(0, 5, (int(rng.integers(15, 26)), 2)).cumsum(axis=0)
        )
        for _ in range(200)
    ]
    for t in trajs:
        t.coords()                  # warm the coordinate caches for both

    def best_of(fn, repeats):
        """Min-of-N wall clock: robust to noisy-neighbor CI runners."""
        best = math.inf
        result = None
        for _ in range(repeats):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        return best, result

    pairwise_matrix(trajs[:8], "dtw", backend="numpy")      # warm numpy
    numpy_secs, mat = best_of(
        lambda: pairwise_matrix(trajs, "dtw", backend="numpy"), repeats=3)

    def reference():
        n = len(trajs)
        out = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                out[i, j] = out[j, i] = dtw(trajs[i], trajs[j],
                                            backend="python")
        return out

    # a single reference pass: ~20k pure-Python DPs is seconds-scale
    python_secs, ref = best_of(reference, repeats=1)

    deviation = float(np.abs(mat - ref).max())
    speedup = python_secs / numpy_secs
    emit(
        results_dir,
        "pairwise_matrix_gate",
        "Batched DTW matrix engine vs per-pair reference (200 trajectories)",
        f"python {python_secs:.2f}s, numpy {numpy_secs:.3f}s "
        f"-> {speedup:.1f}x, max abs deviation {deviation:.2e}",
    )
    assert deviation < 1e-9
    assert speedup >= 5.0, (
        f"batched matrix engine only {speedup:.1f}x faster than the "
        f"per-pair reference loop"
    )
