"""Tables I/II + Fig. 1 scenarios — empirical feature matrix and anchors."""

from conftest import emit

from repro.experiments import run_table1


def test_table1_feature_matrix(benchmark, results_dir):
    """Regenerate Table I (probe ratios) and the scenario anchor numbers."""
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    anchor_lines = "\n".join(
        f"  {key:<28} {value:.4f}"
        for key, value in sorted(result.anchors.items())
    )
    emit(
        results_dir,
        "table1",
        "Table I (empirical probes) + paper scenario anchors",
        result.rendered + "\n\nAnchors:\n" + anchor_lines,
    )

    # the anchors gate the benchmark: a reproduction that breaks the
    # paper's printed numbers must fail loudly here
    assert abs(result.anchors["appendixA_edwp_t1_t2"] - 1.0) < 1e-9
    assert abs(result.anchors["example4_edwpsub_t2_t1"] - 80.0) < 1e-9
    assert result.probes["EDwP"]["inter"].handled
    assert result.probes["EDwP"]["phase"].handled
