"""Shared plumbing for the figure-regenerating benchmarks.

Every benchmark module drives one experiment from
:mod:`repro.experiments`, times it through pytest-benchmark (single round:
these are minutes-scale sweeps, not microbenchmarks), prints the resulting
table, and writes it to ``benchmarks/results/<name>.txt`` so the regenerated
figures survive output capturing.

Scales are reduced relative to the paper (pure-Python DP vs the authors'
Java testbed); README.md's benchmark matrix records the scales and the
shape comparison against the paper's figures.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, title: str, body: str) -> str:
    """Print and persist one regenerated table."""
    text = f"{title}\n{body}\n"
    print(f"\n=== {name} ===\n{text}")
    (results_dir / f"{name}.txt").write_text(text)
    return text
