"""Command-line experiment runner: ``python -m repro <experiment> [options]``.

Every table and figure of the paper can be regenerated from the shell:

    python -m repro table1
    python -m repro fig5a --classes 5 10 15 --instances 6
    python -m repro fig5b            # robustness vs k (inter protocol)
    python -m repro fig5c            # robustness vs n
    python -m repro fig5j --db-size 150
    python -m repro fig6a --db-sizes 50 100 200
    python -m repro fig6b
    python -m repro fig6c
    python -m repro fig6d
    python -m repro fig6e            # build time (same sweep as fig6a)
    python -m repro fig6f            # build time vs theta

Output is the textual equivalent of the figure: the x-axis sweep with one
column per technique.

Beyond the figures, ``python -m repro serve`` runs the concurrent query
service (``repro.service``): a warm index behind an asyncio TCP server
with request coalescing, an LRU result cache, bounded-queue backpressure
and a ``/stats`` endpoint — see DESIGN.md, "Query service", and the
README quickstart:

    python -m repro --backend numpy serve --synthetic 200 --port 8765

The storage/scale pipeline (DESIGN.md, "Columnar store and sharded
forest") has its own subcommands: ``build-store`` packs a dataset (CSV,
JSON, or synthetic) into a columnar, memory-mappable ``repro.store``
directory; ``build-forest`` builds a sharded TrajTree forest from a
store — optionally in parallel worker processes — and writes a
ForestSnapshot; ``serve --forest`` serves that snapshot exactly like a
single-tree ``--index``:

    python -m repro build-store --synthetic 5000 --out data.store
    python -m repro --backend numpy build-forest --store data.store \\
        --shards 8 --workers 4 --out forest.idx
    python -m repro serve --forest forest.idx --port 8765

``--backend numpy`` (before the experiment name) runs **every** distance —
the EDwP family and all baseline comparators (DTW, EDR, ERP, LCSS,
Fréchet, Hausdorff, DISSIM) — through the vectorized kernels instead of
the pure-Python reference DPs, and the harnesses batch each
query-vs-database sweep through the lockstep kernels: same numbers, an
order of magnitude less waiting on the larger sweeps (see DESIGN.md,
"Baseline kernels").  The index experiments (fig5j, fig6a-f) additionally
route TrajTree's Theorem-2 box bounds, frontier pruning and build-time
pivot selection through the batched bound engine (DESIGN.md, "Index bound
kernels") — identical trees and neighbor sets, several times faster
queries and builds.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core import BackendError, set_backend
from .eval.timing import format_series_table
from .experiments import (
    PAPER_PROTOCOL_FIGURES,
    robustness_sweep,
    run_fig5a,
    run_fig5j,
    run_fig6c,
    run_fig6d,
    run_scaling,
    run_table1,
    run_theta_sweep,
)

__all__ = ["main"]

_ROBUST_FIGS = {
    "fig5b": ("inter", "k"), "fig5c": ("inter", "n"),
    "fig5d": ("intra", "k"), "fig5e": ("intra", "n"),
    "fig5f": ("phase", "k"), "fig5g": ("phase", "n"),
    "fig5h": ("perturb", "k"), "fig5i": ("perturb", "n"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the tables and figures of the EDwP/TrajTree "
                    "paper (ICDE 2015) at laptop scale.",
    )
    parser.add_argument(
        "--backend", choices=["python", "numpy", "native"], default=None,
        help="distance backend for every metric (EDwP and all baseline "
             "comparators): the pure-Python reference DPs (default), the "
             "vectorized numpy kernels, or the numba-compiled native tier "
             "(requires the optional numba dependency; same results, "
             "faster sweeps)",
    )
    sub = parser.add_subparsers(dest="experiment", required=True)

    sub.add_parser("table1", help="Tables I/II + Fig. 1 scenario anchors")

    p5a = sub.add_parser("fig5a", help="classification accuracy vs #classes")
    p5a.add_argument("--classes", type=int, nargs="+", default=[5, 10, 15, 20, 25])
    p5a.add_argument("--instances", type=int, default=8)
    p5a.add_argument("--repeats", type=int, default=2)
    p5a.add_argument("--seed", type=int, default=7)

    for name, (protocol, vary) in _ROBUST_FIGS.items():
        p = sub.add_parser(
            name,
            help=f"robustness: {protocol} protocol vs {vary}",
        )
        p.add_argument("--db-size", type=int, default=60)
        p.add_argument("--queries", type=int, default=3)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--no-edr-i", action="store_true",
                       help="skip the expensive EDR-I comparator")

    p5j = sub.add_parser("fig5j", help="query time vs k")
    p5j.add_argument("--db-size", type=int, default=200)
    p5j.add_argument("--k-values", type=int, nargs="+", default=[5, 10, 20, 30, 50])
    p5j.add_argument("--queries", type=int, default=3)
    p5j.add_argument("--seed", type=int, default=7)

    for name in ("fig6a", "fig6e"):
        p = sub.add_parser(
            name,
            help="query time vs db size" if name == "fig6a"
            else "index build time vs db size",
        )
        p.add_argument("--db-sizes", type=int, nargs="+",
                       default=[50, 100, 200, 400])
        p.add_argument("--queries", type=int, default=3)
        p.add_argument("--seed", type=int, default=7)

    for name in ("fig6b", "fig6f"):
        p = sub.add_parser(
            name,
            help="query time vs theta" if name == "fig6b"
            else "build time vs theta",
        )
        p.add_argument("--thetas", type=float, nargs="+",
                       default=[0.2, 0.4, 0.6, 0.8, 0.95])
        p.add_argument("--db-size", type=int, default=150)
        p.add_argument("--seed", type=int, default=7)

    p6c = sub.add_parser("fig6c", help="UB-factor vs #VPs")
    p6c.add_argument("--vps", type=int, nargs="+", default=[10, 20, 40, 80, 160])
    p6c.add_argument("--db-size", type=int, default=120)
    p6c.add_argument("--seed", type=int, default=7)

    p6d = sub.add_parser("fig6d", help="UB-factor vs k")
    p6d.add_argument("--k-values", type=int, nargs="+", default=[5, 10, 25, 50, 100])
    p6d.add_argument("--db-size", type=int, default=120)
    p6d.add_argument("--seed", type=int, default=7)

    pbs = sub.add_parser(
        "build-store",
        help="pack a dataset into a columnar, memory-mappable store "
             "directory (repro.store; see DESIGN.md, 'Columnar store and "
             "sharded forest')",
    )
    bs_source = pbs.add_mutually_exclusive_group(required=True)
    bs_source.add_argument(
        "--synthetic", type=int, metavar="N",
        help="pack N synthetic Beijing-taxi trajectories",
    )
    bs_source.add_argument(
        "--csv", metavar="PATH",
        help="pack a flat CSV corpus (repro.datasets.io.load_csv schema)",
    )
    bs_source.add_argument(
        "--json", metavar="PATH",
        help="pack a JSON corpus (repro.datasets.io.load_json schema)",
    )
    pbs.add_argument("--out", required=True, metavar="DIR",
                     help="store directory to write")
    pbs.add_argument("--seed", type=int, default=7,
                     help="seed for the --synthetic generator")

    pbf = sub.add_parser(
        "build-forest",
        help="build a sharded TrajTree forest from a columnar store and "
             "write a ForestSnapshot directory",
    )
    pbf.add_argument("--store", required=True, metavar="DIR",
                     help="columnar store directory (see build-store)")
    pbf.add_argument("--out", required=True, metavar="DIR",
                     help="forest snapshot directory to write")
    pbf.add_argument("--shards", type=int, default=4,
                     help="shard count (clamped to the dataset size)")
    pbf.add_argument("--scheme", choices=["round_robin", "hash"],
                     default="round_robin",
                     help="shard assignment scheme (results are identical "
                          "either way; see DESIGN.md)")
    pbf.add_argument("--workers", type=int, default=None,
                     help="build shards in this many worker processes, "
                          "each memory-mapping the store")
    pbf.add_argument("--seed", type=int, default=7,
                     help="base build seed (per-shard seeds derive from it)")
    pbf.add_argument("--num-vps", type=int, default=8,
                     help="vantage points per node")
    pbf.add_argument("--min-node-size", type=int, default=10,
                     help="maximum leaf size per shard tree")
    pbf.add_argument("--raw", action="store_true",
                     help="index raw EDwP instead of the default "
                          "length-normalized EDwPavg")

    ps = sub.add_parser(
        "serve",
        help="run the concurrent query service (coalescing + cache + "
             "/stats; see DESIGN.md, 'Query service')",
    )
    source = ps.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--index", metavar="PATH",
        help="serve a TrajTree snapshot written by "
             "repro.index.persistence.save_tree",
    )
    source.add_argument(
        "--forest", metavar="PATH",
        help="serve a ForestSnapshot directory written by "
             "repro.index.persistence.save_forest (or build-forest)",
    )
    source.add_argument(
        "--synthetic", type=int, metavar="N",
        help="build and serve an in-memory index over N synthetic "
             "Beijing-taxi trajectories (EDwPavg-normalized)",
    )
    ps.add_argument(
        "--on-shard-error", choices=["fail", "skip"], default="fail",
        help="with --forest: refuse to start on a damaged shard (fail, "
             "default) or serve degraded over the healthy shards and "
             "retry the snapshot in the background (skip); see DESIGN.md, "
             "'Fault model and degraded serving'",
    )
    ps.add_argument(
        "--reload-base", type=float, default=1.0,
        help="base delay in seconds of the background snapshot reload "
             "retry when serving degraded (capped exponential backoff)",
    )
    ps.add_argument("--host", default="127.0.0.1")
    ps.add_argument("--port", type=int, default=8765,
                    help="TCP port (0 binds an ephemeral port)")
    ps.add_argument("--seed", type=int, default=7,
                    help="seed for the --synthetic build")
    ps.add_argument("--window-ms", type=float, default=2.0,
                    help="request-coalescing window in milliseconds")
    ps.add_argument("--max-batch", type=int, default=64,
                    help="dispatch as soon as this many requests wait")
    ps.add_argument("--max-pending", type=int, default=256,
                    help="bounded queue: shed (ServiceOverloaded) above this")
    ps.add_argument("--cache-size", type=int, default=1024,
                    help="LRU result-cache entries (0 disables caching)")
    ps.add_argument("--timeout", type=float, default=30.0,
                    help="default per-request deadline in seconds")
    ps.add_argument("--slo-ms", type=float, default=None,
                    help="latency SLO in milliseconds: as the measured "
                         "p99 approaches it, query budgets tighten and "
                         "answers degrade to flagged anytime results "
                         "(see DESIGN.md, 'Overload control and anytime "
                         "queries'); unset disables degradation")
    ps.add_argument("--max-inflight", type=int, default=64,
                    help="admission-control concurrency tokens; control "
                         "ops (stats/health) keep 2 reserved tokens so "
                         "they never starve behind query floods")
    ps.add_argument("--breaker-cooldown", type=float, default=0.5,
                    help="seconds the dispatch circuit breaker stays "
                         "open after tripping before probing again")
    ps.add_argument("--breaker-threshold", type=float, default=0.5,
                    help="dispatch failure rate (0..1] that trips the "
                         "circuit breaker")
    ps.add_argument("--selftest", action="store_true",
                    help="serve on the chosen port, run one client "
                         "query + /stats roundtrip, then exit")

    return parser


def _run_build_store(args) -> int:
    """The ``build-store`` subcommand: dataset -> columnar store dir."""
    from .store import ColumnarStore

    if args.synthetic is not None:
        from .datasets import generate_beijing

        trajs = generate_beijing(args.synthetic, seed=args.seed)
        origin = f"{args.synthetic} synthetic Beijing trajectories"
    elif args.csv is not None:
        from .datasets.io import load_csv

        trajs = load_csv(args.csv)
        origin = f"CSV corpus {args.csv}"
    else:
        from .datasets.io import load_json

        trajs = load_json(args.json)
        origin = f"JSON corpus {args.json}"

    store = ColumnarStore.from_trajectories(trajs)
    store.save(args.out)
    print(f"packed {origin} into {args.out}: "
          f"{len(store)} trajectories, {store.num_points} points, "
          f"{store.nbytes / 1e6:.1f} MB of arrays "
          f"(load with ColumnarStore.load(..., mmap=True))")
    return 0


def _run_build_forest(args) -> int:
    """The ``build-forest`` subcommand: store dir -> ForestSnapshot dir."""
    import time

    from .index.forest import TrajForest
    from .index.persistence import save_forest
    from .store import ColumnarStore, StoreError

    try:
        store = ColumnarStore.load(args.store, mmap=True)
    except StoreError as exc:
        print(f"cannot load store: {exc}", file=sys.stderr)
        return 2
    start = time.perf_counter()
    forest = TrajForest.from_store(
        args.store,
        num_shards=args.shards,
        scheme=args.scheme,
        seed=args.seed,
        workers=args.workers,
        normalized=not args.raw,
        num_vps=args.num_vps,
        min_node_size=args.min_node_size,
        backend=args.backend,
    )
    elapsed = time.perf_counter() - start
    save_forest(forest, args.out)
    summary = forest.storage_summary()
    print(f"built {forest.num_shards}-shard forest over {len(store)} "
          f"trajectories in {elapsed:.1f}s "
          f"({summary['nodes']} nodes, {summary['leaves']} leaves; "
          f"scheme {forest.scheme}, workers {args.workers or 1})")
    print(f"snapshot written to {args.out} "
          f"(serve with: python -m repro serve --forest {args.out})")
    return 0


def _run_serve(args) -> int:
    """The ``serve`` subcommand (pulled out of :func:`main` for clarity)."""
    import asyncio
    import signal

    from .index.persistence import load_forest, load_tree
    from .service import Backoff, QueryService, ServiceClient, ServiceConfig, serve
    from .store.atomic import cleanup_stale_temps

    loader = None
    try:
        if args.index is not None:
            # Reap temp debris a crashed snapshot writer left next to the
            # tree file (forest loads sweep their own directory).
            parent = Path(args.index).parent
            if parent.is_dir():
                cleanup_stale_temps(parent)
            loader = lambda: load_tree(args.index)  # noqa: E731
            tree = loader()
            origin = f"snapshot {args.index}"
        elif args.forest is not None:
            loader = lambda: load_forest(  # noqa: E731
                args.forest, on_shard_error=args.on_shard_error
            )
            tree = loader()
            origin = (f"forest snapshot {args.forest} "
                      f"({tree.num_shards} shards)")
            if tree.degraded:
                census = tree.shard_census()
                origin += (f", DEGRADED: {census['healthy']}/"
                           f"{census['total']} shards healthy")
    except ValueError as exc:   # snapshot gates, incl. ShardLoadError
        print(f"cannot load index: {exc}", file=sys.stderr)
        return 2
    if args.index is None and args.forest is None:
        from .datasets import generate_beijing
        from .index import TrajTree

        db = generate_beijing(args.synthetic, seed=args.seed)
        tree = TrajTree(db, normalized=True, num_vps=8, seed=args.seed,
                        backend=args.backend)
        origin = f"synthetic Beijing db of {args.synthetic}"

    config = ServiceConfig(
        window=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        cache_capacity=args.cache_size,
        default_timeout=args.timeout,
        max_inflight=args.max_inflight,
        breaker_cooldown=args.breaker_cooldown,
        breaker_threshold=args.breaker_threshold,
        slo_ms=args.slo_ms,
    )
    service = QueryService(tree, config, loader=loader)

    async def run() -> int:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass    # platform without loop signal handlers
        server = await serve(service, host=args.host, port=args.port)
        host, port = server.sockets[0].getsockname()[:2]
        print(f"serving {origin} ({len(tree)} trajectories) "
              f"on {host}:{port}", flush=True)
        print(f"coalescing window {args.window_ms:g} ms, "
              f"max batch {args.max_batch}, queue bound {args.max_pending}, "
              f"cache {args.cache_size} entries", flush=True)
        if service.degraded and loader is not None:
            print(f"serving degraded; retrying snapshot reload in the "
                  f"background (base delay {args.reload_base:g}s)",
                  flush=True)
            service.start_reload_retry(Backoff(base=args.reload_base))
        try:
            if args.selftest:
                client = await ServiceClient.connect(host, port)
                try:
                    probe = tree.get(tree.ids()[0])
                    results, meta = await client.knn(probe, k=3)
                    stats = await client.stats()
                    health = await client.health()
                finally:
                    await client.aclose()
                print(f"selftest knn: {len(results)} neighbours, "
                      f"nearest id {results[0][0]} at {results[0][1]:.4f}, "
                      f"{meta['latency_ms']:.2f} ms")
                print(f"selftest stats: {stats['requests']} requests, "
                      f"{stats['batches']['dispatched']} batches, "
                      f"cache {stats['cache']['hits']}/"
                      f"{stats['cache']['misses']} hit/miss")
                print(f"selftest health: {health['status']}, "
                      f"{health['shards']['healthy']}/"
                      f"{health['shards']['total']} shards")
                return 0
            await stop.wait()
            print("signal received; draining in-flight requests",
                  flush=True)
            return 0
        finally:
            server.close()
            await server.wait_closed()
            await service.aclose()

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        # fallback for platforms where the signal handler didn't install
        print("shutting down")
        return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.backend is not None:
        try:
            set_backend(args.backend)
        except BackendError as exc:
            # e.g. --backend native without numba installed: argparse
            # accepts the name, selection rejects it with the typed error
            print(str(exc), file=sys.stderr)
            return 2
    name = args.experiment

    if name == "serve":
        return _run_serve(args)
    if name == "build-store":
        return _run_build_store(args)
    if name == "build-forest":
        return _run_build_forest(args)

    if name == "table1":
        result = run_table1()
        print("Empirical Table I (probe ratios; paper's claims in "
              "PAPER_TABLE_I):")
        print(result.rendered)
        print("\nScenario anchors (paper value in parentheses):")
        expected = {
            "appendixA_edwp_t1_t2": 1.0, "appendixA_edwp_t2_t3": 1.0,
            "appendixA_edwp_t1_t3": 4.0, "example4_edwpsub_t2_t1": 80.0,
            "fig1c_edr_eps2": 3.0, "fig1c_edr_eps3": 0.0,
        }
        for key, value in result.anchors.items():
            want = expected.get(key)
            suffix = f"  (paper: {want:g})" if want is not None else ""
            print(f"  {key:<28} {value:.4f}{suffix}")
        return 0

    if name == "fig5a":
        result = run_fig5a(class_counts=args.classes,
                           instances_per_class=args.instances,
                           repeats=args.repeats, seed=args.seed)
        print("Fig. 5(a): 1-NN classification accuracy vs #classes")
        print(format_series_table("#classes", result.class_counts,
                                  result.accuracy))
        return 0

    if name in _ROBUST_FIGS:
        protocol, vary = _ROBUST_FIGS[name]
        figure = PAPER_PROTOCOL_FIGURES[protocol][0 if vary == "k" else 1]
        result = robustness_sweep(
            protocol, vary, db_size=args.db_size, num_queries=args.queries,
            include_edr_i=not args.no_edr_i, seed=args.seed,
        )
        print(f"Fig. {figure}: {protocol} robustness vs {result.x_name} "
              f"(Spearman correlation, higher is better)")
        print(format_series_table(result.x_name, result.x_values,
                                  result.series))
        return 0

    if name == "fig5j":
        result = run_fig5j(db_size=args.db_size, k_values=args.k_values,
                           num_queries=args.queries, seed=args.seed,
                           backend=args.backend)
        print("Fig. 5(j): total query seconds vs k")
        print(format_series_table("k", result.x_values, result.series))
        return 0

    if name in ("fig6a", "fig6e"):
        result = run_scaling(db_sizes=args.db_sizes,
                             num_queries=args.queries, seed=args.seed,
                             backend=args.backend)
        if name == "fig6a":
            print("Fig. 6(a): total query seconds vs database size")
            print(format_series_table("db size", result.x_values,
                                      result.series))
        else:
            print("Fig. 6(e): index build seconds vs database size")
            print(format_series_table("db size", result.x_values,
                                      result.build_seconds))
        return 0

    if name in ("fig6b", "fig6f"):
        result = run_theta_sweep(thetas=args.thetas, db_size=args.db_size,
                                 seed=args.seed, backend=args.backend)
        if name == "fig6b":
            print("Fig. 6(b): query seconds vs theta")
            print(format_series_table("theta", result.x_values,
                                      result.series))
        else:
            print("Fig. 6(f): build seconds vs theta")
            print(format_series_table("theta", result.x_values,
                                      result.build_seconds))
        return 0

    if name == "fig6c":
        result = run_fig6c(vp_counts=args.vps, db_size=args.db_size,
                           seed=args.seed, backend=args.backend)
        print("Fig. 6(c): UB-factor vs #VPs (lower is tighter; optimal = 1)")
        print(format_series_table("#VPs", result.x_values, result.series))
        return 0

    if name == "fig6d":
        result = run_fig6d(k_values=args.k_values, db_size=args.db_size,
                           seed=args.seed, backend=args.backend)
        print("Fig. 6(d): UB-factor vs k (lower is tighter; optimal = 1)")
        print(format_series_table("k", result.x_values, result.series))
        return 0

    print(f"unknown experiment: {name}", file=sys.stderr)
    return 2
