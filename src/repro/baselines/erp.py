"""Edit distance with Real Penalty (Chen & Ng, VLDB 2004; paper ref [4]).

ERP marries Lp-norms with edit distance: a matched pair costs their real
Euclidean distance, and a gap costs the distance to a fixed *gap point*
``g``.  Unlike DTW it is a metric (triangle inequality holds), but like all
point-based measures it assumes consistent sampling.

Complexity ``O(|T1| * |T2|)``.  Dual-backend: the cell DP below is the
``"python"`` reference and test oracle; the ``"numpy"`` backend runs the
anti-diagonal lockstep kernel (:mod:`repro.baselines.fast`) with the gap
prefix sums accumulated in the reference's order.  :func:`erp_many`
batches one query against many targets (see DESIGN.md, "Baseline
kernels").
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .. import _native
from ..core.edwp import resolve_backend
from ..core.geometry import point_distance
from ..core.trajectory import Trajectory
from . import fast

__all__ = ["erp", "erp_many"]


def erp(
    t1: Trajectory,
    t2: Trajectory,
    gap: Optional[Sequence[float]] = None,
    backend: Optional[str] = None,
) -> float:
    """ERP distance over sampled points.

    ``gap`` is the reference gap point ``g``; the original paper uses the
    origin, which is the default.  Empty-vs-empty is 0; a single empty side
    costs the sum of gap distances of the other side (the ERP base case).
    ``backend`` overrides the global :func:`repro.core.set_backend` choice.
    """
    n, m = len(t1), len(t2)
    g: Tuple[float, float] = (0.0, 0.0) if gap is None else (gap[0], gap[1])
    if n == 0 and m == 0:
        return 0.0
    if n > 0 and m > 0:
        resolved = resolve_backend(backend)
        if resolved == "numpy":
            return fast.erp_numpy(t1, t2, g)
        if resolved == "native":
            return _native.load().erp_native(t1, t2, g)

    p1 = [(row[0], row[1]) for row in t1.data]
    p2 = [(row[0], row[1]) for row in t2.data]
    gap1 = [point_distance(p, g) for p in p1]
    gap2 = [point_distance(p, g) for p in p2]

    if n == 0:
        return float(sum(gap2))
    if m == 0:
        return float(sum(gap1))

    prev: List[float] = [0.0] * (m + 1)
    for j in range(1, m + 1):
        prev[j] = prev[j - 1] + gap2[j - 1]
    for i in range(1, n + 1):
        cur = [0.0] * (m + 1)
        cur[0] = prev[0] + gap1[i - 1]
        a = p1[i - 1]
        ga = gap1[i - 1]
        for j in range(1, m + 1):
            match = prev[j - 1] + point_distance(a, p2[j - 1])
            gap_t1 = prev[j] + ga
            gap_t2 = cur[j - 1] + gap2[j - 1]
            best = match
            if gap_t1 < best:
                best = gap_t1
            if gap_t2 < best:
                best = gap_t2
            cur[j] = best
        prev = cur
    return prev[m]


def erp_many(query: Trajectory, trajectories: Sequence[Trajectory],
             gap: Optional[Sequence[float]] = None,
             backend: Optional[str] = None) -> List[float]:
    """ERP of one query against many trajectories, batched on the
    ``"numpy"`` backend through the lockstep kernel."""
    resolved = resolve_backend(backend)
    trajectories = list(trajectories)
    g: Tuple[float, float] = (0.0, 0.0) if gap is None else (gap[0], gap[1])
    if resolved == "numpy" and len(query) > 0 and trajectories:
        return fast.erp_many_numpy(query, trajectories, g)
    if resolved == "native" and len(query) > 0 and trajectories:
        return _native.load().erp_many_native(query, trajectories, g)
    return [erp(query, t, gap=gap, backend=resolved) for t in trajectories]
