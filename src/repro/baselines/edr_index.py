"""Filter-and-refine k-NN retrieval for EDR (Chen, Özsu & Oria, SIGMOD 2005).

The reproduced paper benchmarks TrajTree against "the index structure for
EDR [5]" (Figs. 5j, 6a).  Chen et al. prune with three sound lower bounds;
this module implements the same filter-and-refine architecture with two of
them plus the classic length bound:

* **Length bound** — every insert/delete changes the length by one, so
  ``EDR(Q, S) >= | |Q| - |S| |``.
* **Histogram bound** — points match only within ``eps`` per coordinate, so
  a point falling in an ``eps``-grid cell can only match points of the 3x3
  neighbouring cells.  If ``M`` caps the number of matchable pairs, the DP
  path argument gives ``EDR(Q, S) >= max(|Q|, |S|) - M``.
* **Near-triangle inequality** — Chen et al. prove
  ``EDR(Q, S) + EDR(S, R) + |S| >= EDR(Q, R)`` for any reference ``R``;
  with precomputed reference distances this yields
  ``EDR(Q, S) >= max_R (EDR(Q, R) - EDR(S, R) - |S|)``.

Queries sort candidates by their best lower bound and compute exact EDR only
while a candidate's bound beats the current k-th distance, so results are
identical to a sequential scan.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.trajectory import Trajectory
from .edr import edr

__all__ = ["EDRIndex"]

Cell = Tuple[int, int]


def _histogram(traj: Trajectory, eps: float) -> Counter:
    """Count of sampled points per ``eps``-grid cell."""
    counts: Counter = Counter()
    inv = 1.0 / eps
    for row in traj.data:
        counts[(int(math.floor(row[0] * inv)), int(math.floor(row[1] * inv)))] += 1
    return counts


def _match_capacity(h1: Counter, h2: Counter) -> int:
    """Upper bound on pairs matchable within ``eps`` (3x3 cell adjacency)."""
    total = 0
    for (cx, cy), count in h1.items():
        neighbourhood = 0
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                neighbourhood += h2.get((cx + dx, cy + dy), 0)
        total += min(count, neighbourhood)
    return total


class EDRIndex:
    """Pruned k-NN retrieval under EDR.

    Parameters
    ----------
    trajectories:
        Database to index (ids are positional, or ``traj_id`` when all set
        and unique).
    eps:
        The EDR matching threshold; also the histogram grid pitch.
    num_references:
        Reference trajectories for the near-triangle-inequality bound
        (0 disables it).
    seed:
        Seeds the reference selection.
    """

    def __init__(
        self,
        trajectories: Sequence[Trajectory],
        eps: float,
        num_references: int = 8,
        seed: int = 0,
    ):
        if not trajectories:
            raise ValueError("cannot index an empty database")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.eps = eps
        self._db: Dict[int, Trajectory] = {}
        provided = [t.traj_id for t in trajectories]
        use_provided = all(p is not None for p in provided) and len(
            set(provided)
        ) == len(provided)
        for pos, t in enumerate(trajectories):
            self._db[int(t.traj_id) if use_provided else pos] = t

        self._hist: Dict[int, Counter] = {
            tid: _histogram(t, eps) for tid, t in self._db.items()
        }
        self._len: Dict[int, int] = {tid: len(t) for tid, t in self._db.items()}

        rng = random.Random(seed)
        ids = list(self._db)
        num_references = min(num_references, len(ids))
        self._ref_ids = rng.sample(ids, num_references) if num_references else []
        # ref_dist[tid][r] = EDR(T_tid, R_r)
        self._ref_dist: Dict[int, List[int]] = {}
        for tid, t in self._db.items():
            self._ref_dist[tid] = [
                edr(t, self._db[r], eps) for r in self._ref_ids
            ]

    def __len__(self) -> int:
        return len(self._db)

    # ------------------------------------------------------------------ #
    # bounds
    # ------------------------------------------------------------------ #

    def lower_bound(
        self, query: Trajectory, tid: int, query_hist: Optional[Counter] = None,
        query_refs: Optional[List[int]] = None,
    ) -> float:
        """Best available lower bound on ``EDR(query, T_tid)``."""
        if query_hist is None:
            query_hist = _histogram(query, self.eps)
        qn = len(query)
        tn = self._len[tid]
        lb = abs(qn - tn)

        cap = min(
            _match_capacity(query_hist, self._hist[tid]),
            _match_capacity(self._hist[tid], query_hist),
        )
        lb = max(lb, max(qn, tn) - cap)

        if query_refs is not None:
            for qr, tr in zip(query_refs, self._ref_dist[tid]):
                lb = max(lb, qr - tr - tn)
        return float(lb)

    # ------------------------------------------------------------------ #
    # retrieval
    # ------------------------------------------------------------------ #

    def knn(
        self, query: Trajectory, k: int,
        stats: Optional[dict] = None,
    ) -> List[Tuple[int, float]]:
        """Exact EDR k-NN via filter-and-refine.

        ``stats`` (optional dict) receives ``exact_computations`` and
        ``pruned`` counters.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        query_hist = _histogram(query, self.eps)
        query_refs = [edr(query, self._db[r], self.eps) for r in self._ref_ids]

        order = sorted(
            self._db,
            key=lambda tid: self.lower_bound(query, tid, query_hist, query_refs),
        )
        ans: List[Tuple[float, int]] = []  # (dist, tid), kept sorted
        exact = 0
        pruned = 0
        for tid in order:
            lb = self.lower_bound(query, tid, query_hist, query_refs)
            # Strict comparison: equal-distance candidates are still
            # computed so ties resolve deterministically by (dist, id),
            # matching the sequential-scan oracle.
            if len(ans) >= k and lb > ans[-1][0]:
                pruned += 1
                continue
            exact += 1
            d = float(edr(query, self._db[tid], self.eps))
            if len(ans) < k:
                ans.append((d, tid))
                ans.sort()
            elif (d, tid) < ans[-1]:
                ans[-1] = (d, tid)
                ans.sort()
        if stats is not None:
            stats["exact_computations"] = exact + len(query_refs)
            stats["pruned"] = pruned
        return [(tid, d) for d, tid in ans]

    def knn_scan(self, query: Trajectory, k: int) -> List[Tuple[int, float]]:
        """Brute-force oracle for the tests."""
        dists = [
            (tid, float(edr(query, t, self.eps))) for tid, t in self._db.items()
        ]
        dists.sort(key=lambda x: (x[1], x[0]))
        return dists[:k]
