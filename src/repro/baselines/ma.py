"""Model-driven Assignment (Sankararaman et al., SIGSPATIAL 2013; ref [8]).

MA aligns the *sampled points* of one trajectory to points of the other that
may be **non-sampled**: while aligning a point ``p1`` of T1 toward a sampled
point ``p2`` of T2, MA also considers interpolated points on the line
connecting ``p2`` to the previously aligned position on T2 (the paper's
Sec. II description and Fig. 1(d)).  Unmatched points become *gap points*
with a fixed penalty.  The model carries four parameters (Sec. II-4 calls
this out): the gap penalty, a match distance threshold, and the two score
weights for matches and gaps.

This is a faithful re-implementation of the *behaviour the reproduced paper
evaluates* — semi-continuous interpolated matching with gap/match trade-offs
(the original system additionally fits kinematic models we do not need):
the Fig. 1(d) pathology (assignments moving backward in time) is reproduced
because the interpolated target is chosen per cell by spatial proximity.

The value returned is a *distance* (lower = more similar): the assignment
cost of the optimal alignment, averaged over the aligned points.

Complexity ``O(|T1| * |T2|)``.  MA is the one comparator with a single
(pure-Python) implementation — its per-cell projection-and-threshold logic
is not worth a vectorized twin — and the one *asymmetric* registry metric
(T1's samples align onto T2's interpolations, not vice versa; the batched
matrix engine consults ``DistanceSpec.symmetric`` accordingly).  See
DESIGN.md, "Baseline kernels".
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..core.geometry import point_distance, project_point_on_segment
from ..core.trajectory import Trajectory

__all__ = ["ma", "MAParams"]


class MAParams:
    """The four MA parameters (defaults follow the reproduction's tuning).

    Attributes
    ----------
    gap_penalty:
        Cost of declaring a point of either trajectory a gap point.
    match_threshold:
        Distances above this count as poor matches and are additionally
        penalized (distance is doubled beyond the threshold).
    w_match / w_gap:
        Relative weights of match cost and gap cost in the objective.
    """

    __slots__ = ("gap_penalty", "match_threshold", "w_match", "w_gap")

    def __init__(
        self,
        gap_penalty: float = 1.0,
        match_threshold: float = 5.0,
        w_match: float = 1.0,
        w_gap: float = 1.0,
    ):
        self.gap_penalty = gap_penalty
        self.match_threshold = match_threshold
        self.w_match = w_match
        self.w_gap = w_gap


def _interp_match_cost(
    p: Tuple[float, float],
    seg_start: Tuple[float, float],
    seg_end: Tuple[float, float],
    params: MAParams,
) -> float:
    """Cost of matching ``p`` to the best interpolated point on a segment."""
    q, _ = project_point_on_segment(seg_start, seg_end, p)
    d = point_distance(p, q)
    if d > params.match_threshold:
        d = params.match_threshold + 2.0 * (d - params.match_threshold)
    return params.w_match * d


def ma(t1: Trajectory, t2: Trajectory, params: MAParams | None = None) -> float:
    """MA distance between two trajectories.

    DP over sampled point indices ``(i, j)``; transitions: match ``p1_i``
    to an interpolated point near ``p2_j`` (diagonal), or declare either
    point a gap (the paper's 'gap points').  The result is normalized by the
    total number of aligned points so that it behaves as an average
    assignment cost.
    """
    if params is None:
        params = MAParams()
    n, m = len(t1), len(t2)
    if n == 0 and m == 0:
        return 0.0
    if n == 0 or m == 0:
        return params.w_gap * params.gap_penalty

    p1 = [(row[0], row[1]) for row in t1.data]
    p2 = [(row[0], row[1]) for row in t2.data]
    gap = params.w_gap * params.gap_penalty

    prev: List[float] = [j * gap for j in range(m + 1)]
    for i in range(1, n + 1):
        cur = [i * gap] + [0.0] * m
        a = p1[i - 1]
        for j in range(1, m + 1):
            # semi-continuous match: p1_i against the line from the previous
            # T2 sample to p2_j (interpolated target, Fig. 1(d) behaviour)
            seg_start = p2[j - 2] if j >= 2 else p2[j - 1]
            match = prev[j - 1] + _interp_match_cost(a, seg_start, p2[j - 1],
                                                     params)
            gap1 = prev[j] + gap
            gap2 = cur[j - 1] + gap
            best = match
            if gap1 < best:
                best = gap1
            if gap2 < best:
                best = gap2
            cur[j] = best
        prev = cur
    return prev[m] / (n + m)
