"""Lp-norm distance — the basic one-to-one model the paper's intro critiques.

Points are paired index-by-index (the shorter trajectory is padded by
repeating its last point).  Fast and simple, but local time shifts and any
sampling-rate difference corrupt it — the motivating failure of Sec. I.

Complexity ``O(max(|T1|, |T2|))``.  The implementation is a single numpy
expression, so both backends share it: ``backend=`` is accepted (and
validated) for registry uniformity but selects nothing (see DESIGN.md,
"Baseline kernels").
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..core.edwp import resolve_backend
from ..core.trajectory import Trajectory

__all__ = ["lp_norm"]


def lp_norm(t1: Trajectory, t2: Trajectory, p: float = 2.0,
            backend: Optional[str] = None) -> float:
    """One-to-one Lp distance over sampled points.

    ``p`` is the norm order (2 = Euclidean aggregation).  Empty-vs-empty is
    0; one empty side is ``inf``.  Already vectorized — ``backend`` is
    validated but both names run the same code.
    """
    resolve_backend(backend)        # validate the name; one implementation
    n, m = len(t1), len(t2)
    if n == 0 and m == 0:
        return 0.0
    if n == 0 or m == 0:
        return math.inf
    k = max(n, m)
    a = t1.spatial()
    b = t2.spatial()
    if n < k:
        a = np.vstack([a, np.repeat(a[-1:], k - n, axis=0)])
    if m < k:
        b = np.vstack([b, np.repeat(b[-1:], k - m, axis=0)])
    per_point = np.sqrt(((a - b) ** 2).sum(axis=1))
    if math.isinf(p):
        return float(per_point.max())
    return float((per_point ** p).sum() ** (1.0 / p))
