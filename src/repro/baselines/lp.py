"""Lp-norm distance — the basic one-to-one model the paper's intro critiques.

Points are paired index-by-index (the shorter trajectory is padded by
repeating its last point).  Fast and simple, but local time shifts and any
sampling-rate difference corrupt it — the motivating failure of Sec. I.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.trajectory import Trajectory

__all__ = ["lp_norm"]


def lp_norm(t1: Trajectory, t2: Trajectory, p: float = 2.0) -> float:
    """One-to-one Lp distance over sampled points.

    ``p`` is the norm order (2 = Euclidean aggregation).  Empty-vs-empty is
    0; one empty side is ``inf``.
    """
    n, m = len(t1), len(t2)
    if n == 0 and m == 0:
        return 0.0
    if n == 0 or m == 0:
        return math.inf
    k = max(n, m)
    a = t1.spatial()
    b = t2.spatial()
    if n < k:
        a = np.vstack([a, np.repeat(a[-1:], k - n, axis=0)])
    if m < k:
        b = np.vstack([b, np.repeat(b[-1:], k - m, axis=0)])
    per_point = np.sqrt(((a - b) ** 2).sum(axis=1))
    if math.isinf(p):
        return float(per_point.max())
    return float((per_point ** p).sum() ** (1.0 / p))
