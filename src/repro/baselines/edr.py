"""Edit Distance on Real sequence (Chen, Özsu & Oria, SIGMOD 2005; ref [5]).

EDR counts the minimum number of point insertions, deletions and
substitutions needed to make the two point sequences *match*, where two
points match when each spatial coordinate differs by at most ``eps``
(**inclusive** — ``<= eps``, the SIGMOD paper's convention; contrast LCSS's
strict ``< eps``).  It is the paper's primary accuracy comparator (Figs. 1
and 5) and — applied after uniform re-interpolation — the "EDR-I" variant.

Complexity ``O(|T1| * |T2|)``.  Dual-backend: the integer cell DP below is
the ``"python"`` reference and test oracle; the ``"numpy"`` backend runs
the anti-diagonal lockstep kernel (:mod:`repro.baselines.fast`), exact for
edit counts.  :func:`edr_many` batches one query against many targets (see
DESIGN.md, "Baseline kernels").
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .. import _native
from ..core.edwp import resolve_backend
from ..core.trajectory import Trajectory
from . import fast

__all__ = ["edr", "edr_normalized", "edr_many", "edr_normalized_many",
           "points_match"]


def points_match(x1: float, y1: float, x2: float, y2: float, eps: float) -> bool:
    """EDR match predicate: both coordinate deltas within ``eps``."""
    return abs(x1 - x2) <= eps and abs(y1 - y2) <= eps


def edr(t1: Trajectory, t2: Trajectory, eps: float,
        backend: Optional[str] = None) -> int:
    """EDR distance (integer edit count) under tolerance ``eps``.

    Reproduces the paper's Fig. 1 workings: e.g. the Fig. 1(c) phase-shift
    scenario yields the maximum distance at ``eps = 2`` but 0 at ``eps = 3``.
    ``backend`` overrides the global :func:`repro.core.set_backend` choice.
    """
    n, m = len(t1), len(t2)
    if n == 0:
        return m
    if m == 0:
        return n
    resolved = resolve_backend(backend)
    if resolved == "numpy":
        return fast.edr_numpy(t1, t2, eps)
    if resolved == "native":
        return _native.load().edr_native(t1, t2, eps)
    d1 = t1.data
    d2 = t2.data
    prev: List[int] = list(range(m + 1))
    for i in range(1, n + 1):
        cur = [i] + [0] * m
        x1 = d1[i - 1, 0]
        y1 = d1[i - 1, 1]
        for j in range(1, m + 1):
            sub = 0 if points_match(x1, y1, d2[j - 1, 0], d2[j - 1, 1], eps) else 1
            best = prev[j - 1] + sub
            if prev[j] + 1 < best:
                best = prev[j] + 1
            if cur[j - 1] + 1 < best:
                best = cur[j - 1] + 1
            cur[j] = best
        prev = cur
    return prev[m]


def edr_normalized(t1: Trajectory, t2: Trajectory, eps: float,
                   backend: Optional[str] = None) -> float:
    """EDR normalized by the longer length — in [0, 1], rank-equivalent for
    same-length comparisons, better behaved across lengths."""
    n, m = len(t1), len(t2)
    if n == 0 and m == 0:
        return 0.0
    return edr(t1, t2, eps, backend=backend) / max(n, m)


def edr_many(query: Trajectory, trajectories: Sequence[Trajectory],
             eps: float, backend: Optional[str] = None) -> List[int]:
    """EDR edit counts of one query against many trajectories, batched on
    the ``"numpy"`` backend through the lockstep kernel."""
    resolved = resolve_backend(backend)
    trajectories = list(trajectories)
    if resolved == "numpy" and len(query) > 0 and trajectories:
        return fast.edr_many_numpy(query, trajectories, eps)
    if resolved == "native" and len(query) > 0 and trajectories:
        return _native.load().edr_many_native(query, trajectories, eps)
    return [edr(query, t, eps, backend=resolved) for t in trajectories]


def edr_normalized_many(query: Trajectory, trajectories: Sequence[Trajectory],
                        eps: float,
                        backend: Optional[str] = None) -> List[float]:
    """Length-normalized :func:`edr_many` (the registry's batched form)."""
    trajectories = list(trajectories)
    counts = edr_many(query, trajectories, eps, backend=backend)
    n = len(query)
    return [
        0.0 if n == 0 and len(t) == 0 else c / max(n, len(t))
        for c, t in zip(counts, trajectories)
    ]
