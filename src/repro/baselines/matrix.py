"""Unified batched distance-matrix engine.

The paper's headline experiments (the Table-1 feature comparison, the
Fig. 5 classification and robustness sweeps) all reduce to O(N²) pairwise
distance matrices over one metric at a time.  This module computes those
matrices through each metric's batched capability
(:attr:`repro.baselines.registry.DistanceSpec.many` — one query against a
whole target batch in lockstep), instead of dispatching N² individual
python calls:

* :func:`cross_matrix` — a ``(len(queries), len(targets))`` matrix, one
  batched row per query.
* :func:`pairwise_matrix` — the square self-matrix; for symmetric metrics
  only the upper triangle is computed (row ``i`` against ``trajs[i:]``)
  and mirrored.

Both accept a registry name (plus its parameters) or a prebuilt
:class:`~repro.baselines.registry.DistanceSpec`, follow the global
:func:`repro.core.set_backend` choice unless ``backend=`` pins one, and
fan rows out over ``workers`` threads on request (numpy releases the GIL
inside the kernels, so multi-query sweeps scale).  Metrics without a
lockstep kernel (MA, Hausdorff, DISSIM, Lp) fall back to a per-pair loop
over ``spec.fn`` — same contract, no batching speedup.

Batched rows reuse each trajectory's cached
:meth:`~repro.core.trajectory.Trajectory.coords` matrix and pack
variable-length targets with lockstep padding, which is exact (answers
are read at each pair's own corner cell — see DESIGN.md, "Baseline
kernels", for the contract this engine guarantees).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Union

import numpy as np

from ..core.trajectory import Trajectory
from .ma import MAParams
from .registry import DistanceSpec, get_distance

__all__ = ["pairwise_matrix", "cross_matrix"]

MetricArg = Union[str, DistanceSpec]


def _resolve_spec(
    metric: MetricArg,
    eps: Optional[float],
    ma_params: Optional[MAParams],
    backend: Optional[str],
) -> DistanceSpec:
    if isinstance(metric, DistanceSpec):
        if eps is not None or ma_params is not None or backend is not None:
            raise TypeError(
                "pass eps/ma_params/backend to get_distance, not alongside "
                "a prebuilt DistanceSpec"
            )
        return metric
    return get_distance(metric, eps=eps, ma_params=ma_params, backend=backend)


def _row(spec: DistanceSpec, query: Trajectory,
         targets: Sequence[Trajectory]) -> List[float]:
    if spec.many is not None:
        return spec.many(query, targets)
    return [spec.fn(query, t) for t in targets]


def _map_rows(fill, count: int, workers: Optional[int]) -> None:
    """Run ``fill(i)`` for every row, threaded when ``workers`` asks."""
    if workers is not None and workers > 1 and count > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(fill, range(count)))
    else:
        for i in range(count):
            fill(i)


def cross_matrix(
    queries: Sequence[Trajectory],
    targets: Sequence[Trajectory],
    metric: MetricArg = "edwp",
    *,
    eps: Optional[float] = None,
    ma_params: Optional[MAParams] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> np.ndarray:
    """Distance matrix of every query against every target.

    ``metric`` is a registry name (``eps``/``ma_params``/``backend`` are
    forwarded to :func:`~repro.baselines.registry.get_distance`) or a
    prebuilt spec.  Returns a ``(len(queries), len(targets))`` float
    array; entry ``[i, j]`` equals ``metric(queries[i], targets[j])`` with
    the metric's own base-case semantics (``inf`` entries included).
    """
    spec = _resolve_spec(metric, eps, ma_params, backend)
    queries = list(queries)
    targets = list(targets)
    out = np.empty((len(queries), len(targets)), dtype=np.float64)

    def fill(i: int) -> None:
        out[i, :] = _row(spec, queries[i], targets)

    _map_rows(fill, len(queries), workers)
    return out


def pairwise_matrix(
    trajs: Sequence[Trajectory],
    metric: MetricArg = "edwp",
    *,
    eps: Optional[float] = None,
    ma_params: Optional[MAParams] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    symmetric: Optional[bool] = None,
) -> np.ndarray:
    """Square self-distance matrix over one trajectory set.

    ``symmetric`` defaults to the spec's own
    :attr:`~repro.baselines.registry.DistanceSpec.symmetric` flag: when
    true, row ``i`` is computed against ``trajs[i:]`` only and mirrored
    (halving the work); pass ``symmetric=False`` to force the full
    ``cross_matrix(trajs, trajs)`` — required for MA, whose alignment is
    directional.
    """
    spec = _resolve_spec(metric, eps, ma_params, backend)
    if symmetric is None:
        symmetric = spec.symmetric
    trajs = list(trajs)
    if not symmetric:
        return cross_matrix(trajs, trajs, spec, workers=workers)

    n = len(trajs)
    out = np.empty((n, n), dtype=np.float64)

    def fill(i: int) -> None:
        row = _row(spec, trajs[i], trajs[i:])
        out[i, i:] = row
        out[i:, i] = row

    _map_rows(fill, n, workers)
    return out
