"""Discrete Fréchet distance.

Not one of the paper's Table-I comparators, but the standard "dog-leash"
trajectory measure that much follow-on work (and any practitioner
evaluating EDwP) reaches for.  The discrete variant couples the two sampled
point sequences with monotone traversals and reports the smallest possible
*maximum* pair distance — a bottleneck measure, so a single outlier sample
dominates it (in contrast to EDwP's cumulative, coverage-weighted cost).
"""

from __future__ import annotations

import math
from typing import List

from ..core.geometry import point_distance
from ..core.trajectory import Trajectory

__all__ = ["discrete_frechet"]


def discrete_frechet(t1: Trajectory, t2: Trajectory) -> float:
    """Discrete Fréchet distance over sampled st-points.

    0 when both are empty, ``inf`` when exactly one is.  Classic quadratic
    DP: ``c(i, j) = max(d(p_i, q_j), min(c(i-1, j), c(i, j-1),
    c(i-1, j-1)))``.
    """
    n, m = len(t1), len(t2)
    if n == 0 and m == 0:
        return 0.0
    if n == 0 or m == 0:
        return math.inf

    p1 = [(row[0], row[1]) for row in t1.data]
    p2 = [(row[0], row[1]) for row in t2.data]
    inf = math.inf
    prev: List[float] = [inf] * m
    for i in range(n):
        cur = [inf] * m
        a = p1[i]
        for j in range(m):
            d = point_distance(a, p2[j])
            if i == 0 and j == 0:
                best = d
            elif i == 0:
                best = max(cur[j - 1], d)
            elif j == 0:
                best = max(prev[j], d)
            else:
                reach = prev[j - 1]
                if prev[j] < reach:
                    reach = prev[j]
                if cur[j - 1] < reach:
                    reach = cur[j - 1]
                best = max(reach, d)
            cur[j] = best
        prev = cur
    return prev[m - 1]
