"""Discrete Fréchet distance (Eiter & Mannila, TR 1994 formulation).

Not one of the paper's Table-I comparators, but the standard "dog-leash"
trajectory measure that much follow-on work (and any practitioner
evaluating EDwP) reaches for.  The discrete variant couples the two sampled
point sequences with monotone traversals and reports the smallest possible
*maximum* pair distance — a bottleneck measure, so a single outlier sample
dominates it (in contrast to EDwP's cumulative, coverage-weighted cost).

Complexity ``O(|T1| * |T2|)``.  Dual-backend: the cell DP below is the
``"python"`` reference and test oracle; the ``"numpy"`` backend runs the
anti-diagonal lockstep kernel (:mod:`repro.baselines.fast`) — the max/min
recurrence vectorizes on anti-diagonals exactly like the edit DPs.
:func:`frechet_many` batches one query against many targets (see
DESIGN.md, "Baseline kernels").
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from .. import _native
from ..core.edwp import resolve_backend
from ..core.geometry import point_distance
from ..core.trajectory import Trajectory
from . import fast

__all__ = ["discrete_frechet", "frechet_many"]


def discrete_frechet(t1: Trajectory, t2: Trajectory,
                     backend: Optional[str] = None) -> float:
    """Discrete Fréchet distance over sampled st-points.

    0 when both are empty, ``inf`` when exactly one is.  Classic quadratic
    DP: ``c(i, j) = max(d(p_i, q_j), min(c(i-1, j), c(i, j-1),
    c(i-1, j-1)))``.  ``backend`` overrides the global
    :func:`repro.core.set_backend` choice.
    """
    n, m = len(t1), len(t2)
    if n == 0 and m == 0:
        return 0.0
    if n == 0 or m == 0:
        return math.inf
    resolved = resolve_backend(backend)
    if resolved == "numpy":
        return fast.frechet_numpy(t1, t2)
    if resolved == "native":
        return _native.load().frechet_native(t1, t2)

    p1 = [(row[0], row[1]) for row in t1.data]
    p2 = [(row[0], row[1]) for row in t2.data]
    inf = math.inf
    prev: List[float] = [inf] * m
    for i in range(n):
        cur = [inf] * m
        a = p1[i]
        for j in range(m):
            d = point_distance(a, p2[j])
            if i == 0 and j == 0:
                best = d
            elif i == 0:
                best = max(cur[j - 1], d)
            elif j == 0:
                best = max(prev[j], d)
            else:
                reach = prev[j - 1]
                if prev[j] < reach:
                    reach = prev[j]
                if cur[j - 1] < reach:
                    reach = cur[j - 1]
                best = max(reach, d)
            cur[j] = best
        prev = cur
    return prev[m - 1]


def frechet_many(query: Trajectory, trajectories: Sequence[Trajectory],
                 backend: Optional[str] = None) -> List[float]:
    """Discrete Fréchet of one query against many trajectories, batched on
    the ``"numpy"`` backend through the lockstep kernel."""
    resolved = resolve_backend(backend)
    trajectories = list(trajectories)
    if resolved == "numpy" and len(query) > 0 and trajectories:
        return fast.frechet_many_numpy(query, trajectories)
    if resolved == "native" and len(query) > 0 and trajectories:
        return _native.load().frechet_many_native(query, trajectories)
    return [discrete_frechet(query, t, backend=resolved)
            for t in trajectories]
