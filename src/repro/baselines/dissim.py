"""DISSIM (Frentzos, Gratsias & Theodoridis, ICDE 2007; paper ref [7]).

DISSIM integrates the Euclidean distance between the two *time-synchronized*
interpolated positions over the common time interval:

    DISSIM(T1, T2) = ∫ dist(T1(t), T2(t)) dt

It therefore compares non-sampled regions (unlike point-based measures) but
cannot absorb local time shifts: trajectories must move at similar speeds to
appear similar — exactly the weakness Table I records.

The integral is evaluated with the trapezoidal rule over the union of both
timestamp sets (the distance is piecewise smooth between those breakpoints),
optionally refined with extra midpoints.

Complexity ``O((|T1| + |T2|) * refine)``.  Dual-backend: the per-breakpoint
:meth:`~repro.core.trajectory.Trajectory.point_at_time` loop below is the
``"python"`` reference and test oracle; the ``"numpy"`` backend evaluates
every breakpoint position in one vectorized interpolation pass
(:mod:`repro.baselines.fast`) — a closed form, no DP (see DESIGN.md,
"Baseline kernels").
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..core.edwp import resolve_backend
from ..core.geometry import point_distance
from ..core.trajectory import Trajectory
from . import fast

__all__ = ["dissim"]


def dissim(t1: Trajectory, t2: Trajectory, refine: int = 1,
           backend: Optional[str] = None) -> float:
    """DISSIM distance over the common time span of the trajectories.

    ``refine`` adds that many evenly spaced evaluation points inside every
    breakpoint interval (1 by default: the interval midpoint), improving the
    trapezoid accuracy where the distance curve bends.  ``backend``
    overrides the global :func:`repro.core.set_backend` choice.

    Returns ``inf`` if either trajectory is empty; 0 if the common time span
    is a single instant and the positions coincide.
    """
    if len(t1) == 0 or len(t2) == 0:
        return math.inf

    start = max(float(t1.data[0, 2]), float(t2.data[0, 2]))
    end = min(float(t1.data[-1, 2]), float(t2.data[-1, 2]))
    if end < start:
        # Disjoint observation windows: compare at clamped endpoints over
        # the gap-free span (degenerate but well-defined).
        p1 = t1.point_at_time(start)
        p2 = t2.point_at_time(start)
        return point_distance(p1.xy, p2.xy)

    if resolve_backend(backend) in ("numpy", "native"):
        # already vectorized; the native tier compiles only the DP kernels,
        # so "native" routes through the numpy implementation here
        return fast.dissim_numpy(t1, t2, refine)

    breaks = np.union1d(t1.times(), t2.times())
    breaks = breaks[(breaks >= start) & (breaks <= end)]
    if breaks.size == 0 or breaks[0] > start:
        breaks = np.insert(breaks, 0, start)
    if breaks[-1] < end:
        breaks = np.append(breaks, end)

    if refine > 0 and breaks.size >= 2:
        extra: List[float] = []
        for a, b in zip(breaks[:-1], breaks[1:]):
            for r in range(1, refine + 1):
                extra.append(a + (b - a) * r / (refine + 1))
        breaks = np.union1d(breaks, np.asarray(extra))

    if breaks.size == 1:
        p1 = t1.point_at_time(float(breaks[0]))
        p2 = t2.point_at_time(float(breaks[0]))
        return point_distance(p1.xy, p2.xy)

    dists = np.empty(breaks.size)
    for i, t in enumerate(breaks):
        p1 = t1.point_at_time(float(t))
        p2 = t2.point_at_time(float(t))
        dists[i] = point_distance(p1.xy, p2.xy)
    return float(np.trapezoid(dists, breaks))
