"""Hausdorff distance between trajectories as planar polylines.

A purely spatial, order-free measure: the largest distance from any point
of one polyline to the other polyline.  Included as the classical shape
comparator — it ignores travel direction and time entirely, which makes it
a useful control in experiments about what EDwP's *sequencing* buys (e.g.
the Fig. 1(d) out-of-order scenario, which Hausdorff cannot distinguish at
all).

Complexity ``O(|T1| * |T2|)`` (every point against every segment).
Dual-backend: the segment loop below is the ``"python"`` reference and
test oracle; the ``"numpy"`` backend computes the whole point-to-segment
distance matrix in one broadcast pass (:mod:`repro.baselines.fast`) — a
closed form, no DP needed (see DESIGN.md, "Baseline kernels").
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..core.edwp import resolve_backend
from ..core.geometry import point_segment_distance
from ..core.trajectory import Trajectory
from . import fast

__all__ = ["hausdorff", "directed_hausdorff"]


def _point_to_polyline(p: Tuple[float, float], pts: np.ndarray) -> float:
    if pts.shape[0] == 1:
        return math.hypot(p[0] - pts[0, 0], p[1] - pts[0, 1])
    best = math.inf
    for i in range(pts.shape[0] - 1):
        d = point_segment_distance(pts[i], pts[i + 1], p)
        if d < best:
            best = d
    return best


def directed_hausdorff(t1: Trajectory, t2: Trajectory,
                       backend: Optional[str] = None) -> float:
    """``max over sampled points of T1 of dist(point, polyline(T2))``.

    Sampled points of T1 against the *continuous* polyline of T2 — exact
    for the polyline-to-polyline directed Hausdorff, because on each
    segment of T1 the distance-to-polyline function attains its maximum at
    a vertex or at a crossing of Voronoi boundaries; using the sampled
    vertices is the standard tight surrogate.  ``backend`` overrides the
    global :func:`repro.core.set_backend` choice.
    """
    if len(t1) == 0 or len(t2) == 0:
        return math.inf if len(t1) != len(t2) else 0.0
    if resolve_backend(backend) in ("numpy", "native"):
        # already vectorized; the native tier compiles only the DP kernels,
        # so "native" routes through the numpy implementation here
        return fast.directed_hausdorff_numpy(t1, t2)
    pts2 = t2.spatial()
    best = 0.0
    for row in t1.data:
        d = _point_to_polyline((row[0], row[1]), pts2)
        if d > best:
            best = d
    return best


def hausdorff(t1: Trajectory, t2: Trajectory,
              backend: Optional[str] = None) -> float:
    """Symmetric Hausdorff distance ``max(h(T1, T2), h(T2, T1))``."""
    if len(t1) == 0 and len(t2) == 0:
        return 0.0
    if len(t1) == 0 or len(t2) == 0:
        return math.inf
    return max(directed_hausdorff(t1, t2, backend=backend),
               directed_hausdorff(t2, t1, backend=backend))
