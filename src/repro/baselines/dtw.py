"""Dynamic Time Warping (Yi, Jagadish & Faloutsos, ICDE 1998; paper ref [6]).

DTW aligns the sampled points of two trajectories with a many-to-one,
monotone mapping and sums the Euclidean distances of matched pairs.  It
handles local time shifts (Table I) but is threshold-free only in the sense
of having no matching tolerance: every point must be matched, so it is
sensitive to sampling-rate variation — the weakness the paper's EDwP fixes.

Complexity ``O(|T1| * |T2|)`` (``O(window * max(|T1|, |T2|))`` banded).
Dual-backend: the cell loop below is the ``"python"`` reference and test
oracle; the ``"numpy"`` backend runs the anti-diagonal lockstep kernel
(:mod:`repro.baselines.fast`), identical to float tolerance.  Use
:func:`dtw_many` for one-query-vs-many batches — that is where the
vectorized backend pays off (see DESIGN.md, "Baseline kernels").
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from .. import _native
from ..core.edwp import resolve_backend
from ..core.geometry import point_distance
from ..core.trajectory import Trajectory
from . import fast

__all__ = ["dtw", "dtw_many"]


def dtw(t1: Trajectory, t2: Trajectory, window: int = 0,
        backend: Optional[str] = None) -> float:
    """DTW distance over the sampled st-points.

    Parameters
    ----------
    window:
        Sakoe-Chiba band half-width; 0 (default) means unconstrained.
    backend:
        ``"python"`` / ``"numpy"`` override of the global
        :func:`repro.core.set_backend` choice.

    Returns ``inf`` when exactly one trajectory is empty and 0 when both are.
    """
    n, m = len(t1), len(t2)
    if n == 0 and m == 0:
        return 0.0
    if n == 0 or m == 0:
        return math.inf
    resolved = resolve_backend(backend)
    if resolved == "numpy":
        return fast.dtw_numpy(t1, t2, window)
    if resolved == "native":
        return _native.load().dtw_native(t1, t2, window)

    p1 = [(row[0], row[1]) for row in t1.data]
    p2 = [(row[0], row[1]) for row in t2.data]
    inf = math.inf
    prev: List[float] = [inf] * (m + 1)
    prev[0] = 0.0
    for i in range(1, n + 1):
        cur = [inf] * (m + 1)
        lo, hi = 1, m
        if window > 0:
            lo = max(1, i - window)
            hi = min(m, i + window)
        a = p1[i - 1]
        for j in range(lo, hi + 1):
            d = point_distance(a, p2[j - 1])
            best = prev[j - 1]
            if prev[j] < best:
                best = prev[j]
            if cur[j - 1] < best:
                best = cur[j - 1]
            cur[j] = d + best
        prev = cur
    return prev[m]


def dtw_many(query: Trajectory, trajectories: Sequence[Trajectory],
             window: int = 0, backend: Optional[str] = None) -> List[float]:
    """DTW of one query against many trajectories.

    On the ``"numpy"`` backend the whole batch runs through the lockstep
    anti-diagonal kernel (targets chunked length-sorted, answers read at
    each pair's own corner cell); on ``"python"`` it is a plain loop.
    Feeds the batched matrix engine (:mod:`repro.baselines.matrix`).
    """
    resolved = resolve_backend(backend)
    trajectories = list(trajectories)
    if resolved == "numpy" and len(query) > 0 and trajectories:
        return fast.dtw_many_numpy(query, trajectories, window)
    if resolved == "native" and len(query) > 0 and trajectories:
        return _native.load().dtw_many_native(query, trajectories, window)
    return [dtw(query, t, window=window, backend=resolved)
            for t in trajectories]
