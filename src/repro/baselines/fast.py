"""NumPy-vectorized baseline distance kernels — the ``"numpy"`` backend.

This module extends the dual-backend architecture of
:mod:`repro.core.edwp_fast` to the whole Table-I comparator family (see
DESIGN.md, "Baseline kernels").  The same two ideas apply:

Anti-diagonal vectorization
    Every quadratic baseline DP (DTW, EDR, ERP, LCSS, discrete Fréchet)
    reads only ``(i-1, j-1)``, ``(i-1, j)`` and ``(i, j-1)``, so cells on
    one anti-diagonal ``i + j = d`` are mutually independent and are
    computed in a single vectorized step from the two preceding diagonals.

Lockstep batching
    One query is matched against ``B`` targets simultaneously: every
    diagonal buffer carries a leading batch axis, amortizing the fixed
    numpy dispatch cost per diagonal over the batch.  This is where the
    order-of-magnitude speedup of the batched distance-matrix engine
    (:mod:`repro.baselines.matrix`) comes from.

Variable-length batches are exact.  Shorter targets are padded by
repeating their final point and each pair's answer is read off at its own
corner cell ``(n, m_b)``.  Unlike EDwP — whose padding exactness needs an
edit-grammar invariant — the argument here is purely structural: every
transition of these DPs reads cells with indices ``<=`` its own, so the
garbage cells beyond a pair's extent are never read by any cell inside it.

Closed-form measures need no DP: Hausdorff reduces to a broadcast
point-to-segment distance matrix, DISSIM to a vectorized time-synchronized
interpolation, and the Lp norm was already a single numpy expression.

Numerical contract
------------------
Each kernel mirrors its pure-Python reference operation-for-operation —
``np.abs`` on complex128 (``hypot``) for point distances, identical
boundary prefix sums (``np.cumsum`` accumulates in the reference's order),
the reference's exact match predicates (EDR matches with ``<= eps``, LCSS
with strict ``< eps`` — the conventions of the source papers), and exact
clamp-to-endpoint projections.  Observed deviation is at float tolerance
(typically 0 — the DPs perform literally the same additions); the test
suite and the benchmark gate assert ``< 1e-9``.  The pure-Python
implementations remain the defaults and the test oracles.

Spatial points are packed as complex numbers (``x + yj``) via
:func:`repro.core.edwp_fast.trajectory_complex`, which piggybacks on the
per-instance :meth:`~repro.core.trajectory.Trajectory.coords` cache.

Scope: the LCSS temporal-index band (``delta > 0``) and the MA model are
not vectorized — callers fall back to the pure-Python reference for those
(see DESIGN.md, "Baseline kernels").
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.edwp_fast import trajectory_complex

__all__ = [
    "BATCH_CHUNK",
    "dtw_many_numpy",
    "dtw_numpy",
    "edr_many_numpy",
    "edr_numpy",
    "erp_many_numpy",
    "erp_numpy",
    "lcss_length_many_numpy",
    "lcss_length_numpy",
    "frechet_many_numpy",
    "frechet_numpy",
    "hausdorff_numpy",
    "directed_hausdorff_numpy",
    "dissim_numpy",
]

_INF = math.inf

#: Lockstep batch width, matching :data:`repro.core.edwp_fast.BATCH_CHUNK`:
#: large enough to amortize per-diagonal dispatch, small enough that the
#: diagonal buffers stay cache-resident and length skew inside one chunk
#: (targets are processed length-sorted) is bounded.
BATCH_CHUNK = 64


# --------------------------------------------------------------------- #
# shared lockstep scaffolding
# --------------------------------------------------------------------- #

def _pack(zs: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Pack complex point arrays into a padded ``(B, m)`` matrix.

    Rows shorter than ``m`` repeat their final point; per-pair point
    counts come back alongside so callers read each pair's answer at its
    own corner column.
    """
    counts = np.array([z.shape[0] for z in zs])
    m = int(counts.max())
    Z2 = np.empty((len(zs), m), dtype=np.complex128)
    for row, z in enumerate(zs):
        Z2[row, : z.shape[0]] = z
        Z2[row, z.shape[0]:] = z[-1]
    return Z2, counts


def _lockstep_many(query, targets, kernel, col_offset: int = 0) -> List[float]:
    """Run a lockstep last-row kernel over length-sorted target chunks.

    ``kernel(z1, Z2) -> (B, cols)`` returns the DP's last row per pair;
    pair ``b``'s answer sits at column ``counts[b] + col_offset``.  Empty
    targets never enter the kernel and keep the ``inf`` placeholder
    (callers override where their metric's base case differs).
    """
    out = [_INF] * len(targets)
    z1 = trajectory_complex(query)
    live = [i for i, t in enumerate(targets) if len(t) > 0]
    live.sort(key=lambda i: len(targets[i]))
    for start in range(0, len(live), BATCH_CHUNK):
        chunk = live[start:start + BATCH_CHUNK]
        Z2, counts = _pack([trajectory_complex(targets[i]) for i in chunk])
        rows = kernel(z1, Z2)
        vals = rows[np.arange(len(chunk)), counts + col_offset]
        for i, value in zip(chunk, vals):
            out[i] = float(value)
    return out


def _recur_range(d: int, rows: int, cols: int) -> Tuple[int, int]:
    """Recurrence cells ``(i, d - i)`` of diagonal ``d`` with i, j >= 1."""
    return max(1, d - cols), min(rows, d - 1)


# --------------------------------------------------------------------- #
# DTW
# --------------------------------------------------------------------- #

def _dtw_last_rows(z1: np.ndarray, Z2: np.ndarray, window: int = 0) -> np.ndarray:
    """Lockstep DTW DP; returns the last row ``cost[n][0..m]`` per pair.

    Table ``(n + 1) x (m + 1)`` over point indices; ``cost[0][0] = 0``,
    first row/column ``inf``.  Cell ``i`` of a diagonal lives at padded
    column ``i + 1``; sentinel columns stay ``inf`` so invalid transitions
    never win a minimum.
    """
    n = z1.shape[0]
    batch, m = Z2.shape
    width = n + 3
    cost_p2 = np.full((batch, width), _INF)
    cost_p1 = np.full((batch, width), _INF)
    cost_d = np.full((batch, width), _INF)
    cost_p1[:, 1] = 0.0                      # cell (0, 0) on diagonal 0
    last_rows = np.full((batch, m + 1), _INF)

    for d in range(1, n + m + 1):
        lo, hi = _recur_range(d, n, m)
        cost_d.fill(_INF)
        if lo <= hi:
            cells = slice(lo + 1, hi + 2)
            preds = slice(lo, hi + 1)
            a = z1[lo - 1:hi][None, :]                   # P1[i-1]
            b = Z2[:, d - hi - 1:d - lo][:, ::-1]        # P2[j-1] per pair
            best = np.minimum(cost_p2[:, preds], cost_p1[:, preds])
            np.minimum(best, cost_p1[:, cells], out=best)
            total = np.abs(a - b) + best
            if window > 0:
                off_band = np.abs(2 * np.arange(lo, hi + 1) - d) > window
                total[:, off_band] = _INF
            cost_d[:, cells] = total
        if d >= n:
            last_rows[:, d - n] = cost_d[:, n + 1]
        cost_p2, cost_p1, cost_d = cost_p1, cost_d, cost_p2
    return last_rows


def dtw_numpy(t1, t2, window: int = 0) -> float:
    """Single-pair DTW via the lockstep kernel (batch of one)."""
    z1 = trajectory_complex(t1)
    z2 = trajectory_complex(t2)
    return float(_dtw_last_rows(z1, z2[None, :], window)[0, -1])


def dtw_many_numpy(query, targets, window: int = 0) -> List[float]:
    """DTW of one non-empty query against many targets, lockstep-batched.

    Empty targets get ``inf`` (the DTW base case for one empty side).
    """
    return _lockstep_many(
        query, targets, lambda z1, Z2: _dtw_last_rows(z1, Z2, window)
    )


# --------------------------------------------------------------------- #
# EDR
# --------------------------------------------------------------------- #

def _edr_last_rows(z1: np.ndarray, Z2: np.ndarray, eps: float) -> np.ndarray:
    """Lockstep EDR DP (edit counts as float64 — exact for small integers)."""
    n = z1.shape[0]
    batch, m = Z2.shape
    width = n + 3
    cost_p2 = np.full((batch, width), _INF)
    cost_p1 = np.full((batch, width), _INF)
    cost_d = np.full((batch, width), _INF)
    cost_p1[:, 1] = 0.0
    last_rows = np.full((batch, m + 1), _INF)

    for d in range(1, n + m + 1):
        lo, hi = _recur_range(d, n, m)
        cost_d.fill(_INF)
        if lo <= hi:
            cells = slice(lo + 1, hi + 2)
            preds = slice(lo, hi + 1)
            diff = z1[lo - 1:hi][None, :] - Z2[:, d - hi - 1:d - lo][:, ::-1]
            # the EDR convention: both coordinate deltas within eps, inclusive
            sub = (
                (np.abs(diff.real) > eps) | (np.abs(diff.imag) > eps)
            ).astype(np.float64)
            best = np.minimum(
                cost_p2[:, preds] + sub, cost_p1[:, preds] + 1.0
            )
            np.minimum(best, cost_p1[:, cells] + 1.0, out=best)
            cost_d[:, cells] = best
        if d <= m:
            cost_d[:, 1] = float(d)          # cell (0, d): delete d points
        if d <= n:
            cost_d[:, d + 1] = float(d)      # cell (d, 0)
        if d >= n:
            last_rows[:, d - n] = cost_d[:, n + 1]
        cost_p2, cost_p1, cost_d = cost_p1, cost_d, cost_p2
    return last_rows


def edr_numpy(t1, t2, eps: float) -> int:
    """Single-pair EDR via the lockstep kernel."""
    z1 = trajectory_complex(t1)
    z2 = trajectory_complex(t2)
    return int(_edr_last_rows(z1, z2[None, :], eps)[0, -1])


def edr_many_numpy(query, targets, eps: float) -> List[int]:
    """EDR of one non-empty query against many targets, lockstep-batched."""
    n = len(query)
    values = _lockstep_many(
        query, targets, lambda z1, Z2: _edr_last_rows(z1, Z2, eps)
    )
    return [n if len(t) == 0 else int(v) for v, t in zip(values, targets)]


# --------------------------------------------------------------------- #
# ERP
# --------------------------------------------------------------------- #

def _erp_last_rows(z1: np.ndarray, Z2: np.ndarray, g: complex) -> np.ndarray:
    """Lockstep ERP DP with gap-point boundary prefix sums."""
    n = z1.shape[0]
    batch, m = Z2.shape
    gap1 = np.abs(z1 - g)                    # (n,)
    gap2 = np.abs(Z2 - g)                    # (B, m)
    cg1 = np.cumsum(gap1)                    # cost[i][0] = cg1[i-1]
    cg2 = np.cumsum(gap2, axis=1)            # cost[0][j] = cg2[:, j-1]

    width = n + 3
    cost_p2 = np.full((batch, width), _INF)
    cost_p1 = np.full((batch, width), _INF)
    cost_d = np.full((batch, width), _INF)
    cost_p1[:, 1] = 0.0
    last_rows = np.full((batch, m + 1), _INF)

    for d in range(1, n + m + 1):
        lo, hi = _recur_range(d, n, m)
        cost_d.fill(_INF)
        if lo <= hi:
            cells = slice(lo + 1, hi + 2)
            preds = slice(lo, hi + 1)
            a = z1[lo - 1:hi][None, :]
            b = Z2[:, d - hi - 1:d - lo][:, ::-1]
            ga = gap1[lo - 1:hi][None, :]                # gap cost of P1[i-1]
            gb = gap2[:, d - hi - 1:d - lo][:, ::-1]     # gap cost of P2[j-1]
            best = np.minimum(
                cost_p2[:, preds] + np.abs(a - b),       # match
                cost_p1[:, preds] + ga,                  # gap on T1's point
            )
            np.minimum(best, cost_p1[:, cells] + gb, out=best)
            cost_d[:, cells] = best
        if d <= m:
            cost_d[:, 1] = cg2[:, d - 1]
        if d <= n:
            cost_d[:, d + 1] = cg1[d - 1]
        if d >= n:
            last_rows[:, d - n] = cost_d[:, n + 1]
        cost_p2, cost_p1, cost_d = cost_p1, cost_d, cost_p2
    return last_rows


def erp_numpy(t1, t2, g: Tuple[float, float]) -> float:
    """Single-pair ERP via the lockstep kernel."""
    z1 = trajectory_complex(t1)
    z2 = trajectory_complex(t2)
    gz = complex(g[0], g[1])
    return float(_erp_last_rows(z1, z2[None, :], gz)[0, -1])


def erp_many_numpy(query, targets, g: Tuple[float, float]) -> List[float]:
    """ERP of one non-empty query against many targets, lockstep-batched.

    An empty target costs the query's total gap distance (the ERP base
    case), computed directly.
    """
    gz = complex(g[0], g[1])
    values = _lockstep_many(
        query, targets, lambda z1, Z2: _erp_last_rows(z1, Z2, gz)
    )
    gap_total: Optional[float] = None
    for i, t in enumerate(targets):
        if len(t) == 0:
            if gap_total is None:
                gap_total = float(np.abs(trajectory_complex(query) - gz).sum())
            values[i] = gap_total
    return values


# --------------------------------------------------------------------- #
# LCSS
# --------------------------------------------------------------------- #

def _lcss_last_rows(z1: np.ndarray, Z2: np.ndarray, eps: float) -> np.ndarray:
    """Lockstep LCSS-length DP.  Boundary cells are 0, so (unlike the
    min-DPs) the buffers fill with the boundary value itself."""
    n = z1.shape[0]
    batch, m = Z2.shape
    width = n + 3
    cost_p2 = np.zeros((batch, width))
    cost_p1 = np.zeros((batch, width))
    cost_d = np.zeros((batch, width))
    last_rows = np.zeros((batch, m + 1))

    for d in range(1, n + m + 1):
        lo, hi = _recur_range(d, n, m)
        cost_d.fill(0.0)
        if lo <= hi:
            cells = slice(lo + 1, hi + 2)
            preds = slice(lo, hi + 1)
            diff = z1[lo - 1:hi][None, :] - Z2[:, d - hi - 1:d - lo][:, ::-1]
            # the LCSS convention: strictly within eps per coordinate
            match = (np.abs(diff.real) < eps) & (np.abs(diff.imag) < eps)
            skip = np.maximum(cost_p1[:, preds], cost_p1[:, cells])
            cost_d[:, cells] = np.where(match, cost_p2[:, preds] + 1.0, skip)
        if d >= n:
            last_rows[:, d - n] = cost_d[:, n + 1]
        cost_p2, cost_p1, cost_d = cost_p1, cost_d, cost_p2
    return last_rows


def lcss_length_numpy(t1, t2, eps: float) -> int:
    """Single-pair LCSS length via the lockstep kernel (``delta = 0``)."""
    z1 = trajectory_complex(t1)
    z2 = trajectory_complex(t2)
    return int(_lcss_last_rows(z1, z2[None, :], eps)[0, -1])


def lcss_length_many_numpy(query, targets, eps: float) -> List[int]:
    """LCSS length of one non-empty query against many targets."""
    values = _lockstep_many(
        query, targets, lambda z1, Z2: _lcss_last_rows(z1, Z2, eps)
    )
    return [0 if len(t) == 0 else int(v) for v, t in zip(values, targets)]


# --------------------------------------------------------------------- #
# discrete Fréchet
# --------------------------------------------------------------------- #

def _frechet_last_rows(z1: np.ndarray, Z2: np.ndarray) -> np.ndarray:
    """Lockstep discrete-Fréchet DP over 0-indexed point cells ``(i, j)``.

    ``c(i, j) = max(d(i, j), min(c(i-1, j), c(i, j-1), c(i-1, j-1)))``
    with the first row/column degenerating to running maxima — which the
    ``inf``-sentinel minimum reproduces without special cases, except for
    the seed cell ``(0, 0) = d(0, 0)``.
    """
    n = z1.shape[0]
    batch, m = Z2.shape
    width = n + 2
    cost_p2 = np.full((batch, width), _INF)
    cost_p1 = np.full((batch, width), _INF)
    cost_d = np.full((batch, width), _INF)
    cost_p1[:, 1] = np.abs(z1[0] - Z2[:, 0])     # cell (0, 0) on diagonal 0
    last_rows = np.full((batch, m), _INF)
    if n == 1:
        last_rows[:, 0] = cost_p1[:, 1]

    for d in range(1, n + m - 1):
        lo = max(0, d - (m - 1))
        hi = min(n - 1, d)
        cells = slice(lo + 1, hi + 2)
        preds = slice(lo, hi + 1)
        a = z1[lo:hi + 1][None, :]
        b = Z2[:, d - hi:d - lo + 1][:, ::-1]
        reach = np.minimum(cost_p2[:, preds], cost_p1[:, preds])
        np.minimum(reach, cost_p1[:, cells], out=reach)
        cost_d.fill(_INF)
        cost_d[:, cells] = np.maximum(np.abs(a - b), reach)
        if d >= n - 1:
            last_rows[:, d - (n - 1)] = cost_d[:, n]
        cost_p2, cost_p1, cost_d = cost_p1, cost_d, cost_p2
    return last_rows


def frechet_numpy(t1, t2) -> float:
    """Single-pair discrete Fréchet via the lockstep kernel."""
    z1 = trajectory_complex(t1)
    z2 = trajectory_complex(t2)
    return float(_frechet_last_rows(z1, z2[None, :])[0, -1])


def frechet_many_numpy(query, targets) -> List[float]:
    """Discrete Fréchet of one non-empty query against many targets."""
    return _lockstep_many(query, targets, _frechet_last_rows, col_offset=-1)


# --------------------------------------------------------------------- #
# Hausdorff (closed form — broadcast point-to-segment distances)
# --------------------------------------------------------------------- #

def directed_hausdorff_numpy(t1, t2) -> float:
    """Directed Hausdorff ``h(T1, T2)`` — all point-to-segment distances in
    one broadcast pass (``(n, m-1)``), then min over segments, max over
    points.  Mirrors the reference's exact clamp-to-endpoint projection."""
    P = t1.coords()
    Q = t2.coords()
    if Q.shape[0] == 1:
        return float(np.hypot(P[:, 0] - Q[0, 0], P[:, 1] - Q[0, 1]).max())
    A = Q[:-1]
    D = Q[1:] - A                                        # (m-1, 2)
    nsq = (D * D).sum(axis=1)
    safe = np.where(nsq > 0.0, nsq, 1.0)
    px = P[:, 0, None]
    py = P[:, 1, None]
    t = ((px - A[None, :, 0]) * D[None, :, 0]
         + (py - A[None, :, 1]) * D[None, :, 1]) / safe  # (n, m-1)
    t[:, nsq <= 0.0] = 0.0
    t_hi = t >= 1.0
    np.clip(t, 0.0, 1.0, out=t)
    cx = A[None, :, 0] + t * D[None, :, 0]
    cy = A[None, :, 1] + t * D[None, :, 1]
    # exact endpoint substitution, matching the reference's clamp rule
    cx = np.where(t_hi, Q[None, 1:, 0], cx)
    cy = np.where(t_hi, Q[None, 1:, 1], cy)
    return float(np.hypot(px - cx, py - cy).min(axis=1).max())


def hausdorff_numpy(t1, t2) -> float:
    """Symmetric Hausdorff via two broadcast directed passes."""
    return max(directed_hausdorff_numpy(t1, t2),
               directed_hausdorff_numpy(t2, t1))


# --------------------------------------------------------------------- #
# DISSIM (closed form — vectorized time-synchronized interpolation)
# --------------------------------------------------------------------- #

def _positions_at(traj, ts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Positions at absolute times ``ts`` under linear interpolation —
    the vectorized mirror of :meth:`Trajectory.point_at_time` (same
    segment lookup, same blend formula, exact endpoint clamping)."""
    data = traj.data
    times = data[:, 2]
    n = data.shape[0]
    if n == 1:
        return (np.full(ts.shape, data[0, 0]), np.full(ts.shape, data[0, 1]))
    idx = np.searchsorted(times, ts, side="right") - 1
    np.clip(idx, 0, n - 2, out=idx)
    t0 = times[idx]
    dt = times[idx + 1] - t0
    frac = np.where(dt > 0.0, (ts - t0) / np.where(dt > 0.0, dt, 1.0), 0.0)
    x = data[idx, 0] + (data[idx + 1, 0] - data[idx, 0]) * frac
    y = data[idx, 1] + (data[idx + 1, 1] - data[idx, 1]) * frac
    low = ts <= times[0]
    high = ts >= times[-1]
    x = np.where(low, data[0, 0], np.where(high, data[-1, 0], x))
    y = np.where(low, data[0, 1], np.where(high, data[-1, 1], y))
    return x, y


def dissim_numpy(t1, t2, refine: int = 1) -> float:
    """DISSIM over the common time span, fully vectorized.

    Breakpoint construction, refinement midpoints (same float expression
    order as the reference loop, so ``np.union1d`` deduplicates the same
    values) and the trapezoid integral all run as array operations;
    callers handle the empty/disjoint-window base cases.
    """
    start = max(float(t1.data[0, 2]), float(t2.data[0, 2]))
    end = min(float(t1.data[-1, 2]), float(t2.data[-1, 2]))

    breaks = np.union1d(t1.times(), t2.times())
    breaks = breaks[(breaks >= start) & (breaks <= end)]
    if breaks.size == 0 or breaks[0] > start:
        breaks = np.insert(breaks, 0, start)
    if breaks[-1] < end:
        breaks = np.append(breaks, end)

    if refine > 0 and breaks.size >= 2:
        r = np.arange(1, refine + 1, dtype=np.float64)
        span = breaks[1:] - breaks[:-1]
        extra = breaks[:-1, None] + span[:, None] * r[None, :] / (refine + 1)
        breaks = np.union1d(breaks, extra.ravel())

    x1, y1 = _positions_at(t1, breaks)
    x2, y2 = _positions_at(t2, breaks)
    dists = np.hypot(x1 - x2, y1 - y2)
    if breaks.size == 1:
        return float(dists[0])
    return float(np.trapezoid(dists, breaks))
