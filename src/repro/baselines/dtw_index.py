"""Filter-and-refine k-NN retrieval for DTW (Keogh's exact indexing).

The reproduced paper's related work (Sec. VI) notes that "initial efforts
on indexing trajectory retrieval were primarily directed towards indexing
DTW [6], [20]"; [20] is Keogh & Ratanamahatana's exact DTW indexing.  This
module implements that lineage for 2-D trajectories:

* **LB_Kim-style bound** — distances between the first/last points of the
  two trajectories lower-bound any warping path's cost (each is matched in
  every path).
* **LB_Keogh** — envelope bound: for a Sakoe-Chiba band of width ``r``,
  each query point must match some candidate point within ``r`` positions;
  its distance to the *envelope* (per-coordinate min/max over that window)
  lower-bounds its matched distance.  Summed over query points this
  lower-bounds band-constrained DTW.

Retrieval is exact for *band-constrained* DTW (the band is a parameter of
the distance, as in Keogh's setting): candidates are visited in
lower-bound order and refined only while their bound beats the current
k-th distance.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.geometry import point_distance
from ..core.trajectory import Trajectory
from .dtw import dtw

__all__ = ["DTWIndex", "lb_keogh", "lb_kim"]


def _envelope(data: np.ndarray, radius: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-coordinate running min/max envelope of half-width ``radius``."""
    n = data.shape[0]
    lower = np.empty_like(data)
    upper = np.empty_like(data)
    for i in range(n):
        lo = max(0, i - radius)
        hi = min(n, i + radius + 1)
        window = data[lo:hi]
        lower[i] = window.min(axis=0)
        upper[i] = window.max(axis=0)
    return lower, upper


def lb_kim(query: Trajectory, target: Trajectory) -> float:
    """First/last-point bound: both pairs appear in every warping path."""
    if len(query) == 0 or len(target) == 0:
        return 0.0
    q = query.data
    t = target.data
    return point_distance((q[0, 0], q[0, 1]), (t[0, 0], t[0, 1])) + (
        point_distance((q[-1, 0], q[-1, 1]), (t[-1, 0], t[-1, 1]))
        if len(query) > 1 or len(target) > 1 else 0.0
    )


def lb_keogh(query: Trajectory, lower: np.ndarray, upper: np.ndarray) -> float:
    """Envelope bound of ``query`` against a precomputed target envelope.

    The envelope must be index-aligned with the query (same length); the
    caller resamples one side when lengths differ — resampling the envelope
    conservatively (min of neighbours / max of neighbours) keeps the bound
    valid.
    """
    q = query.spatial()
    n = min(q.shape[0], lower.shape[0])
    dx = np.maximum(np.maximum(lower[:n, 0] - q[:n, 0],
                               q[:n, 0] - upper[:n, 0]), 0.0)
    dy = np.maximum(np.maximum(lower[:n, 1] - q[:n, 1],
                               q[:n, 1] - upper[:n, 1]), 0.0)
    return float(np.sqrt(dx * dx + dy * dy).sum())


class DTWIndex:
    """Exact k-NN retrieval under band-constrained DTW.

    Parameters
    ----------
    trajectories:
        Database to index.
    band:
        Sakoe-Chiba half-width, as a fraction of the longer sequence
        (default 0.1, Keogh's standard setting).  The band also widens the
        envelopes so LB_Keogh stays a lower bound across length mismatch.
    """

    def __init__(self, trajectories: Sequence[Trajectory], band: float = 0.1):
        if not trajectories:
            raise ValueError("cannot index an empty database")
        if not 0.0 <= band <= 1.0:
            raise ValueError("band must be a fraction in [0, 1]")
        self.band = band
        self._db: Dict[int, Trajectory] = {}
        provided = [t.traj_id for t in trajectories]
        use_provided = all(p is not None for p in provided) and len(
            set(provided)
        ) == len(provided)
        for pos, t in enumerate(trajectories):
            self._db[int(t.traj_id) if use_provided else pos] = t
        self._env: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        for tid, t in self._db.items():
            radius = self._radius(len(t), len(t))
            self._env[tid] = _envelope(t.spatial(), radius)

    def _radius(self, n: int, m: int) -> int:
        return max(1, int(math.ceil(self.band * max(n, m))) + abs(n - m))

    def __len__(self) -> int:
        return len(self._db)

    def _window(self, n: int, m: int) -> int:
        """DTW band window in index units for a pair of lengths."""
        return self._radius(n, m)

    def lower_bound(self, query: Trajectory, tid: int) -> float:
        """max(LB_Kim, LB_Keogh) for one candidate."""
        target = self._db[tid]
        lower, upper = self._env[tid]
        lb = lb_kim(query, target)
        # widen the envelope when the query is longer than the target: the
        # tail beyond the envelope carries no information, so it is simply
        # not counted (still a lower bound)
        lb2 = lb_keogh(query, lower, upper)
        return max(lb, lb2)

    def knn(self, query: Trajectory, k: int,
            stats: Optional[dict] = None) -> List[Tuple[int, float]]:
        """Exact band-constrained DTW k-NN via filter-and-refine."""
        if k <= 0:
            raise ValueError("k must be positive")
        order = sorted(self._db, key=lambda tid: self.lower_bound(query, tid))
        ans: List[Tuple[float, int]] = []
        exact = 0
        pruned = 0
        for tid in order:
            lb = self.lower_bound(query, tid)
            if len(ans) >= k and lb > ans[-1][0]:
                pruned += 1
                continue
            exact += 1
            target = self._db[tid]
            d = dtw(query, target,
                    window=self._window(len(query), len(target)))
            if len(ans) < k:
                ans.append((d, tid))
                ans.sort()
            elif (d, tid) < ans[-1]:
                ans[-1] = (d, tid)
                ans.sort()
        if stats is not None:
            stats["exact_computations"] = exact
            stats["pruned"] = pruned
        return [(tid, d) for d, tid in ans]

    def knn_scan(self, query: Trajectory, k: int) -> List[Tuple[int, float]]:
        """Brute-force oracle under the same band-constrained DTW."""
        out = []
        for tid, target in self._db.items():
            d = dtw(query, target,
                    window=self._window(len(query), len(target)))
            out.append((tid, d))
        out.sort(key=lambda x: (x[1], x[0]))
        return out[:k]
