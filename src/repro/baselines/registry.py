"""Distance-function registry used by the evaluation harnesses.

The classification and robustness experiments sweep over several distance
functions (EDwP plus the Table-I comparators).  The registry gives each a
stable name, a default parameterization and a uniform
``(Trajectory, Trajectory) -> float`` callable, so harness code never
special-cases individual metrics.

Threshold-dependent metrics (EDR, LCSS) need a dataset-dependent ``eps``;
:func:`get_distance` accepts overrides, and the harnesses derive ``eps``
from the data scale the way the source papers suggest (a fraction of the
coordinate standard deviation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.edwp import edwp, edwp_avg
from ..core.trajectory import Trajectory
from .dissim import dissim
from .dtw import dtw
from .edr import edr_normalized
from .erp import erp
from .frechet import discrete_frechet
from .hausdorff import hausdorff
from .lcss import lcss_distance
from .lp import lp_norm
from .ma import MAParams, ma

__all__ = ["DistanceSpec", "get_distance", "list_distances"]

DistanceFn = Callable[[Trajectory, Trajectory], float]


@dataclass(frozen=True)
class DistanceSpec:
    """A named, ready-to-call distance function."""

    name: str
    fn: DistanceFn
    threshold_free: bool
    description: str

    def __call__(self, t1: Trajectory, t2: Trajectory) -> float:
        return self.fn(t1, t2)


def get_distance(
    name: str,
    eps: Optional[float] = None,
    ma_params: Optional[MAParams] = None,
    backend: Optional[str] = None,
) -> DistanceSpec:
    """Build a distance spec by name.

    Names (case-insensitive): ``edwp``, ``edwp_raw``, ``edr``, ``lcss``,
    ``dtw``, ``erp``, ``dissim``, ``ma``, ``lp``.

    ``eps`` parameterizes EDR/LCSS (required for those two); ``ma_params``
    overrides the MA model parameters.  ``backend`` pins the EDwP variants
    to one DP backend (``"python"`` / ``"numpy"``); by default they follow
    the global :func:`repro.core.set_backend` choice.
    """
    key = name.lower()
    if key in ("edwp", "edwp_avg"):
        return DistanceSpec(
            "EDwP", lambda a, b: edwp_avg(a, b, backend=backend), True,
            "Edit Distance with Projections, length-normalized (Eq. 4)")
    if key == "edwp_raw":
        return DistanceSpec(
            "EDwP-raw", lambda a, b: edwp(a, b, backend=backend), True,
            "Edit Distance with Projections, cumulative")
    if key == "edr":
        if eps is None:
            raise ValueError("EDR requires eps")
        return DistanceSpec(
            "EDR", lambda a, b: edr_normalized(a, b, eps), False,
            f"Edit Distance on Real sequence, eps={eps:g}")
    if key == "lcss":
        if eps is None:
            raise ValueError("LCSS requires eps")
        return DistanceSpec(
            "LCSS", lambda a, b: lcss_distance(a, b, eps), False,
            f"LCSS distance, eps={eps:g}")
    if key == "dtw":
        return DistanceSpec("DTW", dtw, True, "Dynamic Time Warping")
    if key == "erp":
        return DistanceSpec("ERP", erp, True,
                            "Edit distance with Real Penalty (gap at origin)")
    if key == "dissim":
        return DistanceSpec("DISSIM", dissim, True,
                            "Time-synchronized integral distance")
    if key == "ma":
        params = ma_params or MAParams()
        return DistanceSpec("MA", lambda a, b: ma(a, b, params), False,
                            "Model-driven assignment (4 parameters)")
    if key in ("lp", "lp_norm", "l2"):
        return DistanceSpec("Lp", lp_norm, True, "One-to-one Lp norm")
    if key == "frechet":
        return DistanceSpec("Frechet", discrete_frechet, True,
                            "Discrete Frechet (bottleneck) distance")
    if key == "hausdorff":
        return DistanceSpec("Hausdorff", hausdorff, True,
                            "Symmetric Hausdorff distance (order-free)")
    raise KeyError(f"unknown distance: {name!r}")


def list_distances() -> List[str]:
    """All registry names."""
    return ["edwp", "edwp_raw", "edr", "lcss", "dtw", "erp", "dissim", "ma",
            "lp", "frechet", "hausdorff"]
