"""Distance-function registry used by the evaluation harnesses.

The classification and robustness experiments sweep over several distance
functions (EDwP plus the Table-I comparators).  The registry gives each a
stable name, a default parameterization and a uniform
``(Trajectory, Trajectory) -> float`` callable, so harness code never
special-cases individual metrics.

Threshold-dependent metrics (EDR, LCSS) need a dataset-dependent ``eps``;
:func:`get_distance` accepts overrides, and the harnesses derive ``eps``
from the data scale the way the source papers suggest (a fraction of the
coordinate standard deviation).  Parameters that a metric does not accept
raise ``TypeError`` (listing the valid names) instead of being silently
ignored.

Every spec also records its *batched capability*: metrics with a lockstep
one-query-vs-many kernel expose it as :attr:`DistanceSpec.many`, which the
batched matrix engine (:mod:`repro.baselines.matrix`) and the k-NN
harnesses (:mod:`repro.eval.knn`) use to amortize numpy dispatch across a
whole batch.  ``backend`` pins any spec to one DP backend; the default
(``None``) follows the global :func:`repro.core.set_backend` choice at
call time, which is how the CLI's ``--backend`` reaches every metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.edwp import edwp, edwp_avg, edwp_many, resolve_backend
from ..core.trajectory import Trajectory
from .dissim import dissim
from .dtw import dtw, dtw_many
from .edr import edr_normalized, edr_normalized_many
from .erp import erp, erp_many
from .frechet import discrete_frechet, frechet_many
from .hausdorff import hausdorff
from .lcss import lcss_distance, lcss_distance_many
from .lp import lp_norm
from .ma import MAParams, ma

__all__ = ["DistanceSpec", "get_distance", "list_distances"]

DistanceFn = Callable[[Trajectory, Trajectory], float]
ManyFn = Callable[[Trajectory, Sequence[Trajectory]], List[float]]


@dataclass(frozen=True)
class DistanceSpec:
    """A named, ready-to-call distance function.

    Attributes
    ----------
    fn:
        The pairwise ``(Trajectory, Trajectory) -> float`` callable, with
        any ``eps``/parameter overrides and the ``backend`` pin bound in.
    many:
        Batched form — one query against a sequence of targets, returning
        one distance per target.  ``None`` for metrics without a lockstep
        kernel (the matrix engine falls back to a ``fn`` loop).
    symmetric:
        Whether ``fn(a, b) == fn(b, a)``; MA is the one asymmetric
        registry metric.  :func:`repro.baselines.matrix.pairwise_matrix`
        mirrors the upper triangle only when this holds.
    """

    name: str
    fn: DistanceFn
    threshold_free: bool
    description: str
    many: Optional[ManyFn] = None
    symmetric: bool = True

    @property
    def batched(self) -> bool:
        """Whether the spec carries a lockstep one-vs-many kernel."""
        return self.many is not None

    def __call__(self, t1: Trajectory, t2: Trajectory) -> float:
        return self.fn(t1, t2)


#: Which optional parameters each registry name consumes (``backend`` is
#: universal).  ``get_distance`` rejects anything else with ``TypeError``.
_VALID_PARAMS = {
    "edwp": ("backend",),
    "edwp_avg": ("backend",),
    "edwp_raw": ("backend",),
    "edr": ("eps", "backend"),
    "lcss": ("eps", "backend"),
    "dtw": ("backend",),
    "erp": ("backend",),
    "dissim": ("backend",),
    "ma": ("ma_params", "backend"),
    "lp": ("backend",),
    "lp_norm": ("backend",),
    "l2": ("backend",),
    "frechet": ("backend",),
    "hausdorff": ("backend",),
}


def _reject_unused(key: str, name: str, **supplied) -> None:
    """Raise ``TypeError`` for parameters the metric does not consume."""
    valid = _VALID_PARAMS[key]
    unused = [p for p, v in supplied.items() if v is not None and p not in valid]
    if unused:
        raise TypeError(
            f"distance {name!r} does not accept {', '.join(sorted(unused))}; "
            f"valid parameters for {name!r}: {', '.join(valid)}"
        )


def get_distance(
    name: str,
    eps: Optional[float] = None,
    ma_params: Optional[MAParams] = None,
    backend: Optional[str] = None,
) -> DistanceSpec:
    """Build a distance spec by name.

    Names (case-insensitive): ``edwp``, ``edwp_raw``, ``edr``, ``lcss``,
    ``dtw``, ``erp``, ``dissim``, ``ma``, ``lp``, ``frechet``,
    ``hausdorff``.

    ``eps`` parameterizes EDR/LCSS (required for those two, rejected with
    ``TypeError`` elsewhere); ``ma_params`` overrides the MA model
    parameters (MA only).  ``backend`` pins the spec — pairwise *and*
    batched forms — to one DP backend (``"python"`` / ``"numpy"``); by
    default both follow the global :func:`repro.core.set_backend` choice
    at call time.  Exception: MA and Lp have a single implementation, so
    for them the name is validated (uniform pinning across a metric set
    stays legal) but selects nothing — MA always runs the pure-Python DP
    (see DESIGN.md, "Baseline kernels").
    """
    key = name.lower()
    if key not in _VALID_PARAMS:
        raise KeyError(f"unknown distance: {name!r}")
    _reject_unused(key, name, eps=eps, ma_params=ma_params)
    if backend is not None:
        resolve_backend(backend)        # fail fast on a bad backend name

    if key in ("edwp", "edwp_avg"):
        return DistanceSpec(
            "EDwP", lambda a, b: edwp_avg(a, b, backend=backend), True,
            "Edit Distance with Projections, length-normalized (Eq. 4)",
            many=lambda q, ts: edwp_many(q, ts, normalized=True,
                                         backend=backend))
    if key == "edwp_raw":
        return DistanceSpec(
            "EDwP-raw", lambda a, b: edwp(a, b, backend=backend), True,
            "Edit Distance with Projections, cumulative",
            many=lambda q, ts: edwp_many(q, ts, backend=backend))
    if key == "edr":
        if eps is None:
            raise ValueError("EDR requires eps")
        return DistanceSpec(
            "EDR", lambda a, b: edr_normalized(a, b, eps, backend=backend),
            False, f"Edit Distance on Real sequence, eps={eps:g}",
            many=lambda q, ts: edr_normalized_many(q, ts, eps,
                                                   backend=backend))
    if key == "lcss":
        if eps is None:
            raise ValueError("LCSS requires eps")
        return DistanceSpec(
            "LCSS", lambda a, b: lcss_distance(a, b, eps, backend=backend),
            False, f"LCSS distance, eps={eps:g}",
            many=lambda q, ts: lcss_distance_many(q, ts, eps,
                                                  backend=backend))
    if key == "dtw":
        return DistanceSpec(
            "DTW", lambda a, b: dtw(a, b, backend=backend), True,
            "Dynamic Time Warping",
            many=lambda q, ts: dtw_many(q, ts, backend=backend))
    if key == "erp":
        return DistanceSpec(
            "ERP", lambda a, b: erp(a, b, backend=backend), True,
            "Edit distance with Real Penalty (gap at origin)",
            many=lambda q, ts: erp_many(q, ts, backend=backend))
    if key == "dissim":
        return DistanceSpec(
            "DISSIM", lambda a, b: dissim(a, b, backend=backend), True,
            "Time-synchronized integral distance")
    if key == "ma":
        params = ma_params or MAParams()
        return DistanceSpec(
            "MA", lambda a, b: ma(a, b, params), False,
            "Model-driven assignment (4 parameters)",
            symmetric=False)
    if key in ("lp", "lp_norm", "l2"):
        return DistanceSpec(
            "Lp", lambda a, b: lp_norm(a, b, backend=backend), True,
            "One-to-one Lp norm")
    if key == "frechet":
        return DistanceSpec(
            "Frechet",
            lambda a, b: discrete_frechet(a, b, backend=backend), True,
            "Discrete Frechet (bottleneck) distance",
            many=lambda q, ts: frechet_many(q, ts, backend=backend))
    if key == "hausdorff":
        return DistanceSpec(
            "Hausdorff", lambda a, b: hausdorff(a, b, backend=backend),
            True, "Symmetric Hausdorff distance (order-free)")
    raise KeyError(f"unknown distance: {name!r}")   # unreachable


def list_distances() -> List[str]:
    """All registry names."""
    return ["edwp", "edwp_raw", "edr", "lcss", "dtw", "erp", "dissim", "ma",
            "lp", "frechet", "hausdorff"]
