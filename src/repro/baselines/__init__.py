"""Baseline trajectory distance functions the paper compares against.

All six comparators of Table I plus the basic Lp model and the EDR
filter-and-refine index used in the retrieval benchmarks (Figs. 5j, 6a).
"""

from .dtw import dtw
from .lcss import lcss, lcss_distance, lcss_length
from .erp import erp
from .edr import edr, edr_normalized
from .dissim import dissim
from .ma import ma, MAParams
from .lp import lp_norm
from .frechet import discrete_frechet
from .hausdorff import directed_hausdorff, hausdorff
from .edr_index import EDRIndex
from .dtw_index import DTWIndex, lb_keogh, lb_kim
from .registry import DistanceSpec, get_distance, list_distances

__all__ = [
    "dtw",
    "lcss",
    "lcss_distance",
    "lcss_length",
    "erp",
    "edr",
    "edr_normalized",
    "dissim",
    "ma",
    "MAParams",
    "lp_norm",
    "discrete_frechet",
    "directed_hausdorff",
    "hausdorff",
    "EDRIndex",
    "DTWIndex",
    "lb_keogh",
    "lb_kim",
    "DistanceSpec",
    "get_distance",
    "list_distances",
]
