"""Baseline trajectory distance functions the paper compares against.

All six comparators of Table I plus the basic Lp model, the discrete
Fréchet and Hausdorff shape measures, the EDR filter-and-refine index used
in the retrieval benchmarks (Figs. 5j, 6a) — and, since the family went
dual-backend, the batched plumbing: per-metric ``*_many`` entry points,
the vectorized kernels (:mod:`repro.baselines.fast`) and the distance-
matrix engine (:func:`pairwise_matrix` / :func:`cross_matrix`).  See
DESIGN.md, "Baseline kernels".
"""

from .dtw import dtw, dtw_many
from .lcss import lcss, lcss_distance, lcss_distance_many, lcss_length
from .erp import erp, erp_many
from .edr import edr, edr_many, edr_normalized, edr_normalized_many
from .dissim import dissim
from .ma import ma, MAParams
from .lp import lp_norm
from .frechet import discrete_frechet, frechet_many
from .hausdorff import directed_hausdorff, hausdorff
from .edr_index import EDRIndex
from .dtw_index import DTWIndex, lb_keogh, lb_kim
from .registry import DistanceSpec, get_distance, list_distances
from .matrix import cross_matrix, pairwise_matrix

__all__ = [
    "dtw",
    "dtw_many",
    "lcss",
    "lcss_distance",
    "lcss_distance_many",
    "lcss_length",
    "erp",
    "erp_many",
    "edr",
    "edr_many",
    "edr_normalized",
    "edr_normalized_many",
    "dissim",
    "ma",
    "MAParams",
    "lp_norm",
    "discrete_frechet",
    "frechet_many",
    "directed_hausdorff",
    "hausdorff",
    "EDRIndex",
    "DTWIndex",
    "lb_keogh",
    "lb_kim",
    "DistanceSpec",
    "get_distance",
    "list_distances",
    "cross_matrix",
    "pairwise_matrix",
]
