"""Longest Common SubSequence similarity (Vlachos et al., ICDE 2002; ref [3]).

Two sampled points *match* when each spatial coordinate differs by
**strictly less than** ``eps`` (the ICDE paper's per-dimension threshold;
contrast EDR's inclusive ``<= eps``) and, optionally, their sample indices
differ by at most ``delta``.  The LCSS length counts the best monotone
chain of matches; the associated distance normalizes it away from 1.
LCSS tolerates noise and local time shifts but is threshold-dependent —
the sensitivity the paper's Sec. II-4 demonstrates.

Complexity ``O(|T1| * |T2|)``.  Dual-backend: the cell DP below is the
``"python"`` reference and test oracle; the ``"numpy"`` backend runs the
anti-diagonal lockstep kernel (:mod:`repro.baselines.fast`), exact for
match counts.  The temporal band ``delta > 0`` is python-only — the
vectorized kernel covers the unconstrained form every harness uses, and
banded calls fall back to the reference (see DESIGN.md, "Baseline
kernels").
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .. import _native
from ..core.edwp import resolve_backend
from ..core.trajectory import Trajectory
from . import fast

__all__ = ["lcss_length", "lcss", "lcss_distance", "lcss_distance_many"]


def lcss_length(t1: Trajectory, t2: Trajectory, eps: float,
                delta: int = 0, backend: Optional[str] = None) -> int:
    """Length of the longest common subsequence under tolerance ``eps``.

    ``delta = 0`` (default) disables the temporal-index constraint (and is
    the only form the ``"numpy"`` backend vectorizes; ``delta > 0`` always
    runs the reference DP).  ``backend`` overrides the global
    :func:`repro.core.set_backend` choice.
    """
    n, m = len(t1), len(t2)
    if n == 0 or m == 0:
        return 0
    if delta == 0:
        resolved = resolve_backend(backend)
        if resolved == "numpy":
            return fast.lcss_length_numpy(t1, t2, eps)
        if resolved == "native":
            return _native.load().lcss_length_native(t1, t2, eps)
    d1 = t1.data
    d2 = t2.data
    prev: List[int] = [0] * (m + 1)
    for i in range(1, n + 1):
        cur = [0] * (m + 1)
        x1 = d1[i - 1, 0]
        y1 = d1[i - 1, 1]
        lo, hi = 1, m
        if delta > 0:
            lo = max(1, i - delta)
            hi = min(m, i + delta)
        for j in range(lo, hi + 1):
            if abs(x1 - d2[j - 1, 0]) < eps and abs(y1 - d2[j - 1, 1]) < eps:
                cur[j] = prev[j - 1] + 1
            else:
                cur[j] = prev[j] if prev[j] >= cur[j - 1] else cur[j - 1]
        if delta > 0:
            # outside the band, carry the running best forward
            for j in range(1, lo):
                cur[j] = max(cur[j], cur[j - 1], prev[j])
            for j in range(hi + 1, m + 1):
                cur[j] = max(cur[j], cur[j - 1], prev[j])
        prev = cur
    return prev[m]


def lcss(t1: Trajectory, t2: Trajectory, eps: float, delta: int = 0,
         backend: Optional[str] = None) -> float:
    """LCSS *similarity* in [0, 1]: ``LCSS / min(|T1|, |T2|)``."""
    n, m = len(t1), len(t2)
    if n == 0 or m == 0:
        return 0.0
    return lcss_length(t1, t2, eps, delta, backend=backend) / min(n, m)


def lcss_distance(t1: Trajectory, t2: Trajectory, eps: float,
                  delta: int = 0, backend: Optional[str] = None) -> float:
    """LCSS distance ``1 - similarity`` (used for ranking/k-NN)."""
    n, m = len(t1), len(t2)
    if n == 0 and m == 0:
        return 0.0
    if n == 0 or m == 0:
        return 1.0
    return 1.0 - lcss(t1, t2, eps, delta, backend=backend)


def lcss_distance_many(query: Trajectory, trajectories: Sequence[Trajectory],
                       eps: float,
                       backend: Optional[str] = None) -> List[float]:
    """LCSS distance of one query against many trajectories (``delta = 0``),
    batched on the ``"numpy"`` backend through the lockstep kernel."""
    resolved = resolve_backend(backend)
    trajectories = list(trajectories)
    n = len(query)
    if resolved in ("numpy", "native") and n > 0 and trajectories:
        if resolved == "numpy":
            lengths = fast.lcss_length_many_numpy(query, trajectories, eps)
        else:
            lengths = _native.load().lcss_length_many_native(
                query, trajectories, eps
            )
        out = []
        for length, t in zip(lengths, trajectories):
            m = len(t)
            out.append(1.0 if m == 0 else 1.0 - length / min(n, m))
        return out
    return [lcss_distance(query, t, eps, backend=resolved)
            for t in trajectories]
