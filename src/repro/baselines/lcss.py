"""Longest Common SubSequence similarity (Vlachos et al., ICDE 2002; ref [3]).

Two sampled points *match* when each spatial coordinate differs by less than
``eps`` (the original paper's per-dimension threshold) and, optionally, their
sample indices differ by at most ``delta``.  The LCSS length counts the best
monotone chain of matches; the associated distance normalizes it away from 1.
LCSS tolerates noise and local time shifts but is threshold-dependent —
the sensitivity the paper's Sec. II-4 demonstrates.
"""

from __future__ import annotations

import math
from typing import List

from ..core.trajectory import Trajectory

__all__ = ["lcss_length", "lcss", "lcss_distance"]


def lcss_length(t1: Trajectory, t2: Trajectory, eps: float,
                delta: int = 0) -> int:
    """Length of the longest common subsequence under tolerance ``eps``.

    ``delta = 0`` (default) disables the temporal-index constraint.
    """
    n, m = len(t1), len(t2)
    if n == 0 or m == 0:
        return 0
    d1 = t1.data
    d2 = t2.data
    prev: List[int] = [0] * (m + 1)
    for i in range(1, n + 1):
        cur = [0] * (m + 1)
        x1 = d1[i - 1, 0]
        y1 = d1[i - 1, 1]
        lo, hi = 1, m
        if delta > 0:
            lo = max(1, i - delta)
            hi = min(m, i + delta)
        for j in range(lo, hi + 1):
            if abs(x1 - d2[j - 1, 0]) < eps and abs(y1 - d2[j - 1, 1]) < eps:
                cur[j] = prev[j - 1] + 1
            else:
                cur[j] = prev[j] if prev[j] >= cur[j - 1] else cur[j - 1]
        if delta > 0:
            # outside the band, carry the running best forward
            for j in range(1, lo):
                cur[j] = max(cur[j], cur[j - 1], prev[j])
            for j in range(hi + 1, m + 1):
                cur[j] = max(cur[j], cur[j - 1], prev[j])
        prev = cur
    return prev[m]


def lcss(t1: Trajectory, t2: Trajectory, eps: float, delta: int = 0) -> float:
    """LCSS *similarity* in [0, 1]: ``LCSS / min(|T1|, |T2|)``."""
    n, m = len(t1), len(t2)
    if n == 0 or m == 0:
        return 0.0
    return lcss_length(t1, t2, eps, delta) / min(n, m)


def lcss_distance(t1: Trajectory, t2: Trajectory, eps: float,
                  delta: int = 0) -> float:
    """LCSS distance ``1 - similarity`` (used for ranking/k-NN)."""
    n, m = len(t1), len(t2)
    if n == 0 and m == 0:
        return 0.0
    if n == 0 or m == 0:
        return 1.0
    return 1.0 - lcss(t1, t2, eps, delta)
