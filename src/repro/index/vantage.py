"""Vantage points, descriptors and the VP upper bound (paper Sec. IV-E).

A vantage point (VP) is a spatial point; the distance between a trajectory
and a VP is the distance from the VP to the *closest point of the
trajectory's polyline* — not merely the closest sample (Definition 6).  A
node of TrajTree distributes ``d`` VPs and stores, for every trajectory in
its subtree, the ``d``-dimensional *vantage descriptor* of VP distances
(Definition 7).  At query time the descriptor-space *vantage distance*
(Definition 8, a normalized ratio dissimilarity) ranks the subtree cheaply;
computing the true EDwP of the top-k so ranked yields the upper bound
``UB`` of Eq. 14 that drives pruning.

VP selection reuses the max-min diversity mechanism of pivot selection
(Sec. IV-E "chosen using the same mechanism used for selecting pivots"),
applied to sampled trajectory points.

Descriptor computation is vectorized: for one trajectory all segment-to-VP
distances are evaluated with numpy broadcasting.  At query time the
VP-ranked candidates feed TrajTree's deferred refinement buffer, so their
exact distances run as one lockstep kernel batch rather than per pair
(DESIGN.md, "Batched leaf refinement").
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.trajectory import Trajectory

__all__ = [
    "vp_distance",
    "vp_distances",
    "select_vantage_points",
    "vantage_distance",
    "VantageIndex",
]


def vp_distances(traj: Trajectory, vps: np.ndarray) -> np.ndarray:
    """``VP-dist(T, v)`` for every VP at once (Eq. 12), vectorized.

    ``vps`` is a ``(d, 2)`` array.  Returns a ``(d,)`` array of minimum
    distances from each VP to the trajectory polyline (closest point on any
    segment, not just sampled points).
    """
    pts = traj.spatial()
    if pts.shape[0] == 0:
        raise ValueError("empty trajectory has no VP distance")
    if pts.shape[0] == 1:
        return np.hypot(vps[:, 0] - pts[0, 0], vps[:, 1] - pts[0, 1])

    a = pts[:-1]                      # (n, 2) segment starts
    b = pts[1:]                       # (n, 2) segment ends
    ab = b - a                        # (n, 2)
    norm_sq = (ab * ab).sum(axis=1)   # (n,)
    safe = np.where(norm_sq > 0.0, norm_sq, 1.0)

    # broadcast: VPs (d, 1, 2) against segments (n, 2)
    ap = vps[:, None, :] - a[None, :, :]          # (d, n, 2)
    t = (ap * ab[None, :, :]).sum(axis=2) / safe  # (d, n)
    t = np.clip(t, 0.0, 1.0)
    t = np.where(norm_sq[None, :] > 0.0, t, 0.0)
    closest = a[None, :, :] + t[:, :, None] * ab[None, :, :]  # (d, n, 2)
    diff = vps[:, None, :] - closest
    dist = np.sqrt((diff * diff).sum(axis=2))     # (d, n)
    return dist.min(axis=1)


def vp_distance(traj: Trajectory, vp: Sequence[float]) -> float:
    """``VP-dist(T, v)`` for a single vantage point (Eq. 12)."""
    arr = np.asarray([vp], dtype=np.float64)
    return float(vp_distances(traj, arr)[0])


def select_vantage_points(
    trajectories: Sequence[Trajectory],
    num_vps: int,
    rng: random.Random,
    candidate_cap: int = 2000,
) -> np.ndarray:
    """Max-min greedy selection of ``num_vps`` diverse spatial points.

    Candidates are the sampled st-points of the node's trajectories (capped
    for large nodes).  The same farthest-first mechanism as pivot selection
    spreads the VPs over the region the node covers, which is what makes the
    descriptors informative.
    """
    pools = [t.spatial() for t in trajectories if len(t) > 0]
    if not pools:
        raise ValueError("no points available for vantage point selection")
    candidates = np.vstack(pools)
    if candidates.shape[0] > candidate_cap:
        idx = rng.sample(range(candidates.shape[0]), candidate_cap)
        candidates = candidates[idx]

    num_vps = min(num_vps, candidates.shape[0])
    chosen = np.empty((num_vps, 2), dtype=np.float64)
    seed = rng.randrange(candidates.shape[0])
    chosen[0] = candidates[seed]
    min_d = np.hypot(
        candidates[:, 0] - chosen[0, 0], candidates[:, 1] - chosen[0, 1]
    )
    for i in range(1, num_vps):
        pick = int(np.argmax(min_d))
        chosen[i] = candidates[pick]
        d = np.hypot(candidates[:, 0] - chosen[i, 0],
                     candidates[:, 1] - chosen[i, 1])
        np.minimum(min_d, d, out=min_d)
    return chosen


def vantage_distance(desc1: np.ndarray, desc2: np.ndarray) -> float:
    """Vantage distance ``VD`` between two descriptors (Eq. 13).

    ``VD = mean_i (1 - min(a_i, b_i) / max(a_i, b_i))`` — 0 when the two
    trajectories are equidistant from every VP.  Dimensions where both
    distances are 0 agree perfectly and contribute 0.
    """
    a = np.asarray(desc1, dtype=np.float64)
    b = np.asarray(desc2, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"descriptor shapes differ: {a.shape} vs {b.shape}")
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    ratio = np.where(hi > 0.0, lo / np.where(hi > 0.0, hi, 1.0), 1.0)
    return float(np.mean(1.0 - ratio))


class VantageIndex:
    """Per-node VP set plus the descriptors of every subtree trajectory.

    Supports the two query-time operations Alg. 2 needs: computing the query
    descriptor, and ranking the subtree's trajectories by vantage distance
    to return the approximate top-k (``getVPtopk``).
    """

    def __init__(
        self,
        vps: np.ndarray,
        keys: Sequence[Hashable],
        descriptors: np.ndarray,
    ):
        if descriptors.shape[0] != len(keys):
            raise ValueError("one descriptor row per trajectory key required")
        if descriptors.shape[1] != vps.shape[0]:
            raise ValueError("descriptor width must equal the number of VPs")
        self.vps = vps
        self.keys = list(keys)
        self.descriptors = descriptors

    @staticmethod
    def build(
        trajectories: Sequence[Trajectory],
        keys: Sequence[Hashable],
        num_vps: int,
        rng: random.Random,
    ) -> "VantageIndex":
        """Select VPs over ``trajectories`` and store all descriptors."""
        vps = select_vantage_points(trajectories, num_vps, rng)
        rows = [vp_distances(t, vps) for t in trajectories]
        return VantageIndex(vps, keys, np.vstack(rows))

    def describe(self, traj: Trajectory) -> np.ndarray:
        """Vantage descriptor of an arbitrary trajectory (Definition 7)."""
        return vp_distances(traj, self.vps)

    def top_k(
        self,
        query_descriptor: np.ndarray,
        k: int,
        exclude: Optional[set] = None,
    ) -> List[Tuple[Hashable, float]]:
        """``getVPtopk``: the subtree's k trajectories nearest in VD.

        Vectorized Eq. 13 across all stored descriptors.  ``exclude`` skips
        already-processed trajectories (Alg. 2's ``processed`` set).
        """
        q = np.asarray(query_descriptor, dtype=np.float64)
        lo = np.minimum(self.descriptors, q)
        hi = np.maximum(self.descriptors, q)
        ratio = np.where(hi > 0.0, lo / np.where(hi > 0.0, hi, 1.0), 1.0)
        vd = 1.0 - ratio.mean(axis=1)
        order = np.argsort(vd, kind="stable")
        out: List[Tuple[Hashable, float]] = []
        for idx in order:
            key = self.keys[idx]
            if exclude is not None and key in exclude:
                continue
            out.append((key, float(vd[idx])))
            if len(out) >= k:
                break
        return out

    def __len__(self) -> int:
        return len(self.keys)
