"""Pivot-based node partitioning — paper Algorithm 1.

A TrajTree node splits its trajectories into groups by (1) greedily growing a
set of mutually diverse *pivot* trajectories until the marginal fractional
drop in diversity exceeds θ, then (2) assigning every remaining trajectory to
the pivot tBoxSeq whose volume grows the least by absorbing it.  θ therefore
controls the branching factor indirectly, adapting it to the data (Sec. IV-D).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.edwp_sub import edwp_sub_fast
from ..core.trajectory import Trajectory
from .tboxseq import DEFAULT_MAX_BOXES, TBoxSeq

__all__ = ["PartitionResult", "partition", "select_pivots"]

DistanceFn = Callable[[Trajectory, Trajectory], float]

#: Batched column of the diversity distance: ``rows(ts, s)`` returns
#: ``[distance(t, s) for t in ts]`` in one call.  Alg. 1 only ever needs
#: whole columns against one pivot, which is exactly the batch-first
#: lockstep shape of :func:`repro.core.edwp_sub.edwp_sub_fast_queries`.
DistanceRowsFn = Callable[[Sequence[Trajectory], Trajectory], List[float]]


@dataclass
class PartitionResult:
    """Outcome of Algorithm 1 on one node.

    Attributes
    ----------
    pivots:
        Indices (into the input list) of the selected pivot trajectories.
    groups:
        One list of input indices per pivot — every trajectory of the node,
        including the pivot itself, assigned to exactly one group.
    boxseqs:
        The tBoxSeq grown over each group (reused as the child summaries).
    """

    pivots: List[int]
    groups: List[List[int]]
    boxseqs: List[TBoxSeq] = field(default_factory=list)


def _rows_fallback(
    distance: DistanceFn, distance_rows: Optional[DistanceRowsFn]
) -> DistanceRowsFn:
    """The column evaluator: batched hook when given, else a plain loop."""
    if distance_rows is not None:
        return distance_rows
    return lambda ts, s: [distance(t, s) for t in ts]


def select_pivots(
    trajectories: Sequence[Trajectory],
    theta: float,
    rng: random.Random,
    distance: DistanceFn = edwp_sub_fast,
    max_pivots: Optional[int] = None,
    distance_rows: Optional[DistanceRowsFn] = None,
) -> List[int]:
    """Greedy max-min diverse pivot selection (Alg. 1, lines 3-8).

    Starting from a random seed trajectory, repeatedly add the trajectory
    farthest (in min-distance) from the current pivot set, while the marginal
    fractional *drop* in set diversity stays at or below ``theta``.  The drop
    for a candidate is ``1 - min_dist(candidate, P) / min_pairwise(P)``
    (line 6): once new pivots stop being meaningfully different from the
    existing ones, growth stops.

    ``distance_rows`` (optional) evaluates a whole distance column against
    one pivot in a single call; every new pivot needs exactly one such
    column, so a batched evaluator turns the k-center sweep's hot loop
    into lockstep kernel calls without changing any selection decision.
    """
    n = len(trajectories)
    if n == 0:
        return []
    if n == 1:
        return [0]
    if max_pivots is None:
        max_pivots = n
    rows = _rows_fallback(distance, distance_rows)

    seed = rng.randrange(n)
    pivots = [seed]
    # min distance from every trajectory to the pivot set, maintained
    # incrementally (the classic k-center sweep).
    min_dist = [math.inf] * n
    min_pairwise = math.inf

    def update_with(pivot: int) -> None:
        nonlocal min_pairwise
        col = rows(trajectories, trajectories[pivot])
        for i in range(n):
            if i == pivot:
                min_dist[i] = 0.0
                continue
            if col[i] < min_dist[i]:
                min_dist[i] = col[i]
        for p in pivots:
            if p != pivot and col[p] < min_pairwise:
                min_pairwise = col[p]

    update_with(seed)

    while len(pivots) < min(n, max_pivots):
        candidate = max(
            (i for i in range(n) if i not in pivots),
            key=lambda i: min_dist[i],
            default=None,
        )
        if candidate is None:
            break
        if len(pivots) >= 2:
            if min_pairwise <= 0:
                break
            drop = 1.0 - min_dist[candidate] / min_pairwise
            if drop > theta:
                break
        pivots.append(candidate)
        update_with(candidate)

    return pivots


def partition(
    trajectories: Sequence[Trajectory],
    theta: float = 0.8,
    min_node_size: int = 10,
    rng: Optional[random.Random] = None,
    distance: DistanceFn = edwp_sub_fast,
    max_boxes: int = DEFAULT_MAX_BOXES,
    max_pivots: Optional[int] = None,
    distance_rows: Optional[DistanceRowsFn] = None,
) -> Optional[PartitionResult]:
    """Algorithm 1: split a node's trajectories into diverse groups.

    Returns ``None`` when the node is already small enough (``|D| <= n`` in
    the paper, line 1) or when the pivots cannot split it into at least two
    groups.

    Parameters mirror the paper: ``theta`` is the diversity-drop threshold
    (default 0.8, the paper's tuned value — Fig. 6b), ``min_node_size`` the
    minimum node size ``n`` (default 10, Sec. V-A).  ``distance_rows``
    (optional) batches whole distance columns against one trajectory — see
    :func:`select_pivots`; all grouping decisions are unchanged.
    """
    if rng is None:
        rng = random.Random(0)
    n = len(trajectories)
    if n <= min_node_size:
        return None

    pivots = select_pivots(trajectories, theta, rng, distance, max_pivots,
                           distance_rows=distance_rows)
    if len(pivots) < 2:
        # A degenerate pivot set cannot split the node; fall back to two
        # pivots (seed + farthest) so the tree always makes progress.
        pivots = _forced_two_pivots(trajectories, rng, distance,
                                    distance_rows=distance_rows)
        if len(pivots) < 2:
            return None

    boxseqs = [
        TBoxSeq.from_trajectory(trajectories[p], max_boxes=max_boxes)
        for p in pivots
    ]
    groups: List[List[int]] = [[p] for p in pivots]
    pivot_set = set(pivots)

    for i in range(n):
        if i in pivot_set:
            continue
        traj = trajectories[i]
        best_g = 0
        best_growth = math.inf
        best_candidate: Optional[TBoxSeq] = None
        for g, seq in enumerate(boxseqs):
            candidate = seq.with_trajectory(traj, max_boxes=max_boxes)
            growth = candidate.volume - seq.volume
            if growth < best_growth:
                best_growth = growth
                best_g = g
                best_candidate = candidate
        assert best_candidate is not None
        boxseqs[best_g] = best_candidate
        groups[best_g].append(i)

    # Balance guard (implementation addition, documented in DESIGN.md):
    # when one pivot's tBoxSeq already covers most of the space, every
    # trajectory grows it by ~zero volume and the minimum-growth rule dumps
    # the whole node into that group, degenerating the tree.  Fall back to
    # nearest-pivot assignment in that case.
    if len(groups) > 1 and max(len(g) for g in groups) > 0.8 * n:
        rows = _rows_fallback(distance, distance_rows)
        # One batched column per pivot; selection (first strict minimum
        # over pivots) matches the per-pair min(range, key=...) exactly.
        cols = [rows(trajectories, trajectories[p]) for p in pivots]
        groups = [[p] for p in pivots]
        for i in range(n):
            if i in pivot_set:
                continue
            best_g = min(range(len(pivots)), key=lambda g: cols[g][i])
            groups[best_g].append(i)
        boxseqs = [
            TBoxSeq.from_trajectories(
                [trajectories[i] for i in group], max_boxes=max_boxes
            )
            for group in groups
        ]

    return PartitionResult(pivots=pivots, groups=groups, boxseqs=boxseqs)


def _forced_two_pivots(
    trajectories: Sequence[Trajectory],
    rng: random.Random,
    distance: DistanceFn,
    distance_rows: Optional[DistanceRowsFn] = None,
) -> List[int]:
    """Seed + farthest-from-seed, ignoring θ — used when Alg. 1 stalls."""
    n = len(trajectories)
    seed = rng.randrange(n)
    col = _rows_fallback(distance, distance_rows)(
        trajectories, trajectories[seed]
    )
    best = None
    best_d = -1.0
    for i in range(n):
        if i == seed:
            continue
        if col[i] > best_d:
            best_d = col[i]
            best = i
    if best is None:
        return [seed]
    return [seed, best]
