"""Sharded TrajTree forest — many trees, one exact query surface.

A single :class:`~repro.index.trajtree.TrajTree` is built in one piece
and pickled in one piece; past ~10^4 trajectories both become the
bottleneck (ROADMAP item 2).  :class:`TrajForest` partitions the dataset
into shards, builds one independent TrajTree per shard — optionally in
parallel worker processes reading a memory-mapped
:class:`~repro.store.ColumnarStore` — and answers the same queries by
fanning out to every shard and k-way merging the per-shard results.

Exactness is free: each shard answers its sub-database exactly (the
single-tree guarantee), the shards partition the database, and the merge
keeps the global best under the library-wide ``(distance, traj_id)``
ascending tie order — so forest results are bit-identical to a single
tree over the whole dataset for any shard count
(``tests/test_forest_oracle.py`` pins shard counts 1/2/4/7 against the
single-tree oracle).  Shard *assignment* therefore only affects balance,
never answers; the two documented schemes are round-robin by dataset
position (default) and a multiplicative hash of the trajectory id — see
DESIGN.md ("Columnar store and sharded forest").

The forest conforms to :class:`~repro.index.protocol.QueryIndex`, so
``QueryService.set_tree`` serves one exactly like a single tree, and
per-query stats are the *elementwise sum* of the per-shard
:class:`~repro.index.trajtree.TrajTreeStats` counters (each shard's work
is counted exactly once — asserted in ``tests/test_trajtree_stats.py``).

Fault tolerance (DESIGN.md, "Fault model and degraded serving"): a
forest can serve **degraded** — assembled over the healthy shards of a
partially damaged snapshot (``load_forest(on_shard_error="skip")``), with
the failures recorded on :attr:`TrajForest.missing_shards` and reported
by :meth:`TrajForest.shard_census`; every query over a degraded forest is
exact over the shards it holds (the k-way merge does not care how many
shards exist).  Parallel builds survive worker-process deaths:
:meth:`TrajForest.from_store` rebuilds crashed shards serially in-process
— bit-identical results, since each shard's build seed derives from its
index, not from which process built it.
"""

from __future__ import annotations

import heapq
import itertools
import math
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import fields
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.trajectory import Trajectory
from ..store import ColumnarStore
from ..testing import faults
from .budget import AnytimeResult, as_tracker, bound_factor_for
from .trajtree import TrajTree, TrajTreeStats

__all__ = ["TrajForest", "assign_shards", "SHARD_SCHEMES"]

PathLike = Union[str, Path]

#: Documented shard-assignment schemes (DESIGN.md, "Shard assignment"):
#: ``round_robin`` — dataset position modulo shard count (default;
#: perfectly balanced, never empty); ``hash`` — Knuth multiplicative hash
#: of the trajectory id, stable under reordering of the dataset.
SHARD_SCHEMES = ("round_robin", "hash")


def _hash_shard(traj_id: int, num_shards: int) -> int:
    """Knuth multiplicative hash of the id, folded to a shard index."""
    return ((traj_id * 2654435761) & 0xFFFFFFFF) % num_shards


def assign_shards(
    ids: Sequence[int], num_shards: int, scheme: str = "round_robin"
) -> List[List[int]]:
    """Partition dataset *positions* into shard groups.

    Returns one list of positions (indices into the dataset order) per
    shard.  ``num_shards`` is clamped to the dataset size; with the
    ``hash`` scheme shards that receive no trajectory are dropped (a
    TrajTree cannot index an empty database), so the returned list may be
    shorter than requested — every group is non-empty.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be positive")
    if scheme not in SHARD_SCHEMES:
        raise ValueError(
            f"unknown shard scheme {scheme!r}; expected one of {SHARD_SCHEMES}"
        )
    n = len(ids)
    num_shards = min(num_shards, n) if n else num_shards
    groups: List[List[int]] = [[] for _ in range(num_shards)]
    for pos in range(n):
        if scheme == "round_robin":
            shard = pos % num_shards
        else:
            shard = _hash_shard(int(ids[pos]), num_shards)
        groups[shard].append(pos)
    return [g for g in groups if g]


def _build_shard_from_store(
    store_path: str, shard: int, positions: List[int], tree_kwargs: dict
) -> TrajTree:
    """Worker-process entry point: mmap the store, build one shard tree.

    Each worker opens its own read-only map of ``points.npy`` (page-cache
    shared across processes), materializes only its shard's trajectory
    views, and ships the finished tree back through pickle (store-backed
    views pickle as plain arrays, so the returned tree is self-contained).

    Fault point ``forest.build_shard:<i>`` — an ``exit`` rule here kills
    this worker mid-build (only in a forked child; see
    :mod:`repro.testing.faults`), which is how the chaos gate exercises
    the serial-rebuild recovery of :meth:`TrajForest.from_store`.
    """
    faults.fire(f"forest.build_shard:{shard}")
    store = ColumnarStore.load(store_path, mmap=True)
    trajs = [store.trajectory(pos) for pos in positions]
    return TrajTree(trajs, **tree_kwargs)


def _shard_seed(seed: int, shard: int) -> int:
    """Per-shard build seed: decorrelates pivot/VP draws across shards."""
    return seed + 1_000_003 * shard


def _accumulate(total: TrajTreeStats, delta: TrajTreeStats) -> None:
    """Elementwise ``total += delta`` over every counter field."""
    for f in fields(TrajTreeStats):
        setattr(total, f.name, getattr(total, f.name) + getattr(delta, f.name))


class TrajForest:
    """A forest of independent TrajTrees over a sharded dataset.

    Parameters
    ----------
    trajectories:
        The database to shard and index.  Global trajectory ids follow
        the single-tree rule (provided ids when all present and unique,
        positional otherwise) so forest answers share the id space of a
        ``TrajTree`` over the same dataset.
    num_shards:
        Requested shard count (clamped to the dataset size; see
        :func:`assign_shards`).
    scheme:
        Shard-assignment scheme, one of :data:`SHARD_SCHEMES`.
    seed:
        Base build seed; shard ``i`` builds with a seed derived from it
        (:func:`_shard_seed`) so shard trees make decorrelated pivot/VP
        draws.
    **tree_kwargs:
        Forwarded verbatim to every shard's :class:`TrajTree` constructor
        (``theta``, ``min_node_size``, ``normalized``, ``backend``, ...).
    """

    def __init__(
        self,
        trajectories: Sequence[Trajectory],
        num_shards: int = 4,
        scheme: str = "round_robin",
        seed: int = 0,
        **tree_kwargs,
    ):
        trajectories = list(trajectories)
        if not trajectories:
            raise ValueError("cannot index an empty database")
        provided = [t.traj_id for t in trajectories]
        use_provided = all(p is not None for p in provided) and len(
            set(provided)
        ) == len(provided)
        if use_provided:
            ids = [int(p) for p in provided]
            globalized = trajectories
        else:
            # Rewrap with explicit positional ids sharing the same data
            # arrays (zero-copy) so every shard tree keys on global ids.
            ids = list(range(len(trajectories)))
            globalized = [
                Trajectory(t.data, traj_id=pos, label=t.label,
                           validate=False)
                for pos, t in enumerate(trajectories)
            ]
        groups = assign_shards(ids, num_shards, scheme)
        shards = [
            TrajTree(
                [globalized[pos] for pos in group],
                seed=_shard_seed(seed, i),
                **tree_kwargs,
            )
            for i, group in enumerate(groups)
        ]
        self._init_from_shards(shards, scheme, seed, tree_kwargs)

    # ------------------------------------------------------------------ #
    # alternate constructors
    # ------------------------------------------------------------------ #

    def _init_from_shards(
        self,
        shards: List[TrajTree],
        scheme: str,
        seed: int,
        tree_kwargs: dict,
    ) -> None:
        if not shards:
            raise ValueError("a forest needs at least one shard")
        normalized = {tree.normalized for tree in shards}
        if len(normalized) != 1:
            raise ValueError(
                "every shard must share one normalization setting"
            )
        self.shards = shards
        self.scheme = scheme
        self.seed = seed
        self.tree_kwargs = dict(tree_kwargs)
        self.normalized = normalized.pop()
        # Health bookkeeping (DESIGN.md, "Fault model and degraded
        # serving").  A forest assembled here is healthy; degraded loads
        # (load_forest(on_shard_error="skip")) overwrite these, recording
        # the ShardLoadError per damaged shard and the snapshot directory
        # to retry loading from.  rebuilt_shards lists shards a parallel
        # from_store had to rebuild serially after a worker crash.
        self.total_shards = len(shards)
        self.missing_shards: List[Exception] = []
        self.snapshot_path: Optional[str] = None
        self.rebuilt_shards: List[int] = []
        self._shard_of: Dict[int, int] = {}
        for i, tree in enumerate(shards):
            for tid in tree.ids():
                if tid in self._shard_of:
                    raise ValueError(
                        f"trajectory id {tid} appears in more than one shard"
                    )
                self._shard_of[tid] = i

    @classmethod
    def from_shards(
        cls,
        shards: Sequence[TrajTree],
        scheme: str = "round_robin",
        seed: int = 0,
    ) -> "TrajForest":
        """Assemble a forest from already-built shard trees.

        Used by snapshot loading (:func:`repro.index.persistence.
        load_forest`); shard id spaces must be disjoint.
        """
        forest = cls.__new__(cls)
        forest._init_from_shards(list(shards), scheme, seed, {})
        return forest

    @classmethod
    def from_store(
        cls,
        store: Union[ColumnarStore, PathLike],
        num_shards: int = 4,
        scheme: str = "round_robin",
        seed: int = 0,
        workers: Optional[int] = None,
        **tree_kwargs,
    ) -> "TrajForest":
        """Build a forest straight from a columnar store.

        ``store`` may be a loaded :class:`~repro.store.ColumnarStore` or
        a store directory path.  With ``workers > 1`` *and* a path, shard
        trees build in that many worker processes, each memory-mapping
        the store independently (`np.load(..., mmap_mode="r")`) — the
        parent never materializes the whole dataset, and builds scale
        with cores.  Otherwise shards build serially in-process from
        zero-copy store views.  Both paths produce identical forests
        given identical parameters (worker fan-out does not change any
        build decision — each shard's seed is derived from its index).
        """
        store_path: Optional[Path] = None
        if not isinstance(store, ColumnarStore):
            store_path = Path(store)
            store = ColumnarStore.load(store_path, mmap=True)
        ids = [int(t) for t in store.ids]
        groups = assign_shards(ids, num_shards, scheme)

        def build_serial(i: int) -> TrajTree:
            return TrajTree(
                [store.trajectory(pos) for pos in groups[i]],
                seed=_shard_seed(seed, i),
                **tree_kwargs,
            )

        rebuilt: List[int] = []
        if workers is not None and workers > 1 and store_path is not None \
                and len(groups) > 1:
            shards: List[Optional[TrajTree]] = [None] * len(groups)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    i: pool.submit(
                        _build_shard_from_store, str(store_path), i,
                        group, dict(tree_kwargs, seed=_shard_seed(seed, i)),
                    )
                    for i, group in enumerate(groups)
                }
                for i, future in futures.items():
                    try:
                        shards[i] = future.result()
                    except BrokenProcessPool:
                        # A worker died (OOM-killed, segfault, injected
                        # kill): the pool is unusable, every unfinished
                        # shard lands here.  Rebuild those serially below
                        # — bit-identical, the shard seed derives from the
                        # shard index, not from which process builds it.
                        rebuilt.append(i)
            for i in rebuilt:
                shards[i] = build_serial(i)
        else:
            shards = [build_serial(i) for i in range(len(groups))]
        forest = cls.__new__(cls)
        forest._init_from_shards(shards, scheme, seed, dict(tree_kwargs))
        forest.rebuilt_shards = rebuilt
        return forest

    # ------------------------------------------------------------------ #
    # container surface (mirrors TrajTree's)
    # ------------------------------------------------------------------ #

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def degraded(self) -> bool:
        """True when the forest serves fewer shards than its snapshot
        holds (some failed to load; see :meth:`shard_census`)."""
        return bool(self.missing_shards)

    def shard_census(self) -> Dict[str, object]:
        """The health report of this forest: total vs healthy shard
        counts plus one record per missing shard (index, filename, and
        the error that disqualified it) — the shape the service's
        ``health`` endpoint and degraded query metadata serve."""
        return {
            "total": self.total_shards,
            "healthy": len(self.shards),
            "missing": [
                {
                    "shard": getattr(err, "shard", -1),
                    "file": getattr(err, "filename", "?"),
                    "error": str(err),
                }
                for err in self.missing_shards
            ],
        }

    def __len__(self) -> int:
        return sum(len(tree) for tree in self.shards)

    def __contains__(self, traj_id: int) -> bool:
        return traj_id in self._shard_of

    def shard_of(self, traj_id: int) -> int:
        """The shard index holding this trajectory id."""
        return self._shard_of[traj_id]

    def get(self, traj_id: int) -> Trajectory:
        """The stored trajectory with this id."""
        return self.shards[self._shard_of[traj_id]].get(traj_id)

    def ids(self) -> List[int]:
        """All indexed trajectory ids, ascending."""
        return sorted(self._shard_of)

    @property
    def build_stats(self) -> TrajTreeStats:
        """Elementwise sum of the per-shard build counters."""
        total = TrajTreeStats()
        for tree in self.shards:
            _accumulate(total, tree.build_stats)
        return total

    def storage_summary(self) -> Dict[str, int]:
        """Aggregated per-shard storage counts (elementwise sum)."""
        total: Dict[str, int] = {}
        for tree in self.shards:
            for key, value in tree.storage_summary().items():
                total[key] = total.get(key, 0) + value
        return total

    def warm_caches(self) -> None:
        """Warm every shard's lazy caches (see ``TrajTree.warm_caches``)."""
        for tree in self.shards:
            tree.warm_caches()

    # ------------------------------------------------------------------ #
    # queries: fan out, k-way merge
    # ------------------------------------------------------------------ #

    def _fanout(
        self,
        method: str,
        query: Trajectory,
        param,
        stats: Optional[TrajTreeStats],
        budget=None,
    ) -> List[List[Tuple[int, float]]]:
        """Run one query method on every shard, folding stats sums.

        With a ``budget``, the fan-out splits one ticking tracker into
        per-shard children (:meth:`~repro.index.budget.BudgetTracker.
        split`): all shards share the *absolute* wall-clock deadline —
        a slow early shard genuinely eats the later shards' time — while
        the bound allowance divides evenly.  Per-shard exactness is read
        back off the returned :class:`AnytimeResult` objects by the
        merge.

        Fault point ``forest.query_shard:<i>`` fires before shard ``i``
        queries; a ``delay`` rule there stalls the fan-out mid-flight,
        which is how the tests force deterministic per-shard deadline
        truncation.
        """
        tracker = as_tracker(budget)
        trackers = (
            [None] * len(self.shards) if tracker is None
            else tracker.split(len(self.shards))
        )
        per_shard: List[List[Tuple[int, float]]] = []
        for i, tree in enumerate(self.shards):
            faults.fire(f"forest.query_shard:{i}")
            shard_stats = TrajTreeStats()
            per_shard.append(
                getattr(tree, method)(query, param, stats=shard_stats,
                                      budget=trackers[i])
            )
            if stats is not None:
                _accumulate(stats, shard_stats)
        return per_shard

    @staticmethod
    def _merge_anytime(
        merged: List[Tuple[int, float]],
        per_shard: List[List[Tuple[int, float]]],
        k: Optional[int],
    ) -> AnytimeResult:
        """Fold per-shard anytime metadata into the merged answer.

        The merged answer is exact iff every shard answered exactly.  The
        global residual is the smallest residual among truncated shards
        (exact shards were fully enumerated — nothing of theirs is
        unexplored), and the factor follows from it exactly as in the
        single-tree case.  ``k=None`` (range queries) reports the subset
        semantics: exact distances, possibly missing hits.
        """
        shard_exact = [bool(getattr(r, "exact", True)) for r in per_shard]
        if all(shard_exact):
            return AnytimeResult(merged, shard_exact=shard_exact)
        residual = min(
            getattr(r, "residual_bound", math.inf)
            for r, ok in zip(per_shard, shard_exact) if not ok
        )
        reason = next(
            getattr(r, "reason", None)
            for r, ok in zip(per_shard, shard_exact) if not ok
        )
        factor = (1.0 if k is None
                  else bound_factor_for(merged, k, residual))
        return AnytimeResult(merged, exact=False, reason=reason,
                             residual_bound=residual, bound_factor=factor,
                             shard_exact=shard_exact)

    @staticmethod
    def _merge_topk(
        per_shard: List[List[Tuple[int, float]]], k: int
    ) -> List[Tuple[int, float]]:
        """K-way merge of per-shard result lists, keeping the global k.

        Every shard list is already sorted by the library-wide tie order
        — ascending ``(distance, traj_id)`` — so the lazy heap merge
        yields the global order and stops after ``k`` items.
        """
        merged = heapq.merge(*per_shard, key=lambda r: (r[1], r[0]))
        return list(itertools.islice(merged, k))

    def knn(
        self,
        query: Trajectory,
        k: int,
        stats: Optional[TrajTreeStats] = None,
        budget=None,
    ) -> List[Tuple[int, float]]:
        """Exact k nearest neighbours across all shards.

        Identical to ``TrajTree.knn`` over the unsharded dataset: each
        shard returns its exact top-k, and the k-way merge keeps the
        global top-k under the same ``(distance, traj_id)`` tie order.
        ``stats`` (optional) accumulates the summed per-shard counters.
        ``budget`` (optional) fans out per shard (see :meth:`_fanout`);
        the merged :class:`~repro.index.budget.AnytimeResult` carries
        per-shard exactness on ``shard_exact``.
        """
        per_shard = self._fanout("knn", query, int(k), stats, budget)
        merged = self._merge_topk(per_shard, int(k))
        if budget is None:
            return merged
        return self._merge_anytime(merged, per_shard, int(k))

    def range_query(
        self,
        query: Trajectory,
        radius: float,
        stats: Optional[TrajTreeStats] = None,
        budget=None,
    ) -> List[Tuple[int, float]]:
        """All trajectories within ``radius``, merged across shards."""
        per_shard = self._fanout("range_query", query, float(radius), stats,
                                 budget)
        out = [hit for shard in per_shard for hit in shard]
        out.sort(key=lambda r: (r[1], r[0]))
        if budget is None:
            return out
        return self._merge_anytime(out, per_shard, None)

    def subtrajectory_knn(
        self,
        query: Trajectory,
        k: int,
        stats: Optional[TrajTreeStats] = None,
        budget=None,
    ) -> List[Tuple[int, float]]:
        """Best-k sub-trajectory matches across all shards (raw EDwPsub)."""
        per_shard = self._fanout("subtrajectory_knn", query, int(k), stats,
                                 budget)
        merged = self._merge_topk(per_shard, int(k))
        if budget is None:
            return merged
        return self._merge_anytime(merged, per_shard, int(k))

    def query_many(
        self,
        requests: Sequence[Tuple[str, Trajectory, float]],
    ) -> List[Tuple[List[Tuple[int, float]], TrajTreeStats]]:
        """Reentrant multi-query dispatch — the forest half of the
        :class:`~repro.index.protocol.QueryIndex` contract.

        Same semantics as :meth:`TrajTree.query_many`: one
        ``(results, stats)`` pair per request in order, duplicates
        (same kind, parameter, bit-identical query points, and equal
        optional budget) singleflighted to the *same* result/stats
        objects.  Each request's stats are the per-shard sums.
        """
        dispatch = {
            "knn": lambda q, p, s, b: self.knn(q, int(p), stats=s, budget=b),
            "range":
                lambda q, p, s, b:
                    self.range_query(q, float(p), stats=s, budget=b),
            "subtrajectory_knn":
                lambda q, p, s, b:
                    self.subtrajectory_knn(q, int(p), stats=s, budget=b),
        }
        out: List[Tuple[List[Tuple[int, float]], TrajTreeStats]] = []
        seen: Dict[tuple, int] = {}
        for req in requests:
            kind, query, param = req[0], req[1], req[2]
            budget = req[3] if len(req) > 3 else None
            if kind not in dispatch:
                raise ValueError(
                    f"unknown query kind {kind!r}; expected one of "
                    f"{tuple(dispatch)}"
                )
            key = (kind, float(param), query.data.tobytes(), budget)
            first = seen.get(key)
            if first is not None:
                out.append(out[first])
                continue
            seen[key] = len(out)
            stats = TrajTreeStats()
            out.append((dispatch[kind](query, param, stats, budget), stats))
        return out

    def __repr__(self) -> str:
        return (
            f"TrajForest(shards={self.num_shards}, trajectories={len(self)}, "
            f"scheme={self.scheme!r})"
        )
