"""Spatio-temporal boxes (paper Definition 4).

An st-box ``b = (s1, s2, minL)`` is an axis-aligned spatial rectangle
bounding a set of st-segments, plus ``minL`` — the minimum length of any
segment enclosed.  ``minL`` feeds the generalized Coverage
(``Coverage(T.e, B.b) = length(e) + b.minL``), which is what lets a box
sequence lower-bound EDwP: the box never claims more coverage than the
shortest thing inside it.

Boxes only ever *grow* (inserting trajectories into a TrajTree node expands
boxes), so the class is immutable and expansion returns new instances.

The scalar geometry here (``dist_point``, ``project_on_segment``) is the
reference formulation consumed by the pure-Python bound DP; the vectorized
``"numpy"`` bound backend consumes whole box sequences as aligned arrays
instead (``TBoxSeq.geometry()`` / :mod:`repro.index.fast_bounds` — see
DESIGN.md, "Index bound kernels") and mirrors these operations
element-wise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from ..core.geometry import (
    Point,
    point_distance,
    point_rect_distance,
    project_point_on_rect,
    project_rect_on_segment,
)
from ..core.trajectory import Segment

__all__ = ["STBox"]


@dataclass(frozen=True)
class STBox:
    """Axis-aligned spatial bounding box over st-segments (Definition 4).

    Attributes
    ----------
    xmin, ymin, xmax, ymax:
        The spatial diagonal corners ``s1``/``s2`` of the paper's definition.
    min_len:
        ``minL`` — minimum spatial length among all segments enclosed.
    """

    xmin: float
    ymin: float
    xmax: float
    ymax: float
    min_len: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(
                f"degenerate box: ({self.xmin},{self.ymin})..({self.xmax},{self.ymax})"
            )
        if self.min_len < 0 or not math.isfinite(self.min_len):
            raise ValueError(f"min_len must be finite and non-negative: {self.min_len}")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_segment(segment: Segment) -> "STBox":
        """Tight box around a single st-segment; ``minL`` is its length."""
        x1, y1 = segment.s1.x, segment.s1.y
        x2, y2 = segment.s2.x, segment.s2.y
        return STBox(
            xmin=min(x1, x2),
            ymin=min(y1, y2),
            xmax=max(x1, x2),
            ymax=max(y1, y2),
            min_len=segment.length,
        )

    @staticmethod
    def from_points(points: Iterable[Sequence[float]], min_len: float) -> "STBox":
        """Tight box around a point cloud with an explicit ``minL``."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot build a box from zero points")
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        return STBox(min(xs), min(ys), max(xs), max(ys), min_len)

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #

    @property
    def area(self) -> float:
        """Spatial area — ``Vol(b)`` in 2-D (Definition 5)."""
        return (self.xmax - self.xmin) * (self.ymax - self.ymin)

    @property
    def center(self) -> Point:
        """Geometric center of the rectangle."""
        return ((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def contains_point(self, p: Sequence[float]) -> bool:
        """Whether spatial point ``p`` lies inside (or on the border of) the box."""
        return self.xmin <= p[0] <= self.xmax and self.ymin <= p[1] <= self.ymax

    def contains_segment(self, segment: Segment) -> bool:
        """``e ∈ b``: both endpoints inside (straight segments stay inside)."""
        return self.contains_point(segment.s1.xy) and self.contains_point(segment.s2.xy)

    def dist_point(self, p: Sequence[float]) -> float:
        """``dist(s, b) = min_{p' in b} dist(s, p')`` (Sec. IV-A)."""
        return point_rect_distance(p, self.xmin, self.ymin, self.xmax, self.ymax)

    def project_point(self, p: Sequence[float]) -> Point:
        """``p^{ins(b, s)}``: the point of the box closest to ``p``."""
        return project_point_on_rect(p, self.xmin, self.ymin, self.xmax, self.ymax)

    def project_on_segment(
        self, a: Sequence[float], b: Sequence[float]
    ) -> Tuple[Point, float]:
        """Reverse projection ``p^{ins(e, b)}``: the point of segment
        ``[a, b]`` closest to the box, as ``(point, fraction)``."""
        return project_rect_on_segment(
            a, b, self.xmin, self.ymin, self.xmax, self.ymax
        )

    # ------------------------------------------------------------------ #
    # expansion
    # ------------------------------------------------------------------ #

    def expanded_by_piece(self, start: Point, end: Point) -> "STBox":
        """Box grown to enclose a matched trajectory piece.

        ``minL`` drops to the piece length if it is shorter than anything
        previously enclosed, preserving the Definition-4 invariant.
        """
        return STBox(
            xmin=min(self.xmin, start[0], end[0]),
            ymin=min(self.ymin, start[1], end[1]),
            xmax=max(self.xmax, start[0], end[0]),
            ymax=max(self.ymax, start[1], end[1]),
            min_len=min(self.min_len, point_distance(start, end)),
        )

    def union(self, other: "STBox") -> "STBox":
        """Smallest box enclosing both boxes; ``minL`` is the smaller one."""
        return STBox(
            xmin=min(self.xmin, other.xmin),
            ymin=min(self.ymin, other.ymin),
            xmax=max(self.xmax, other.xmax),
            ymax=max(self.ymax, other.ymax),
            min_len=min(self.min_len, other.min_len),
        )

    def union_area_increase(self, start: Point, end: Point) -> float:
        """Area growth if the piece ``[start, end]`` were absorbed."""
        xmin = min(self.xmin, start[0], end[0])
        ymin = min(self.ymin, start[1], end[1])
        xmax = max(self.xmax, start[0], end[0])
        ymax = max(self.ymax, start[1], end[1])
        return (xmax - xmin) * (ymax - ymin) - self.area

    def __repr__(self) -> str:
        return (
            f"STBox(({self.xmin:g},{self.ymin:g})..({self.xmax:g},{self.ymax:g}),"
            f" minL={self.min_len:g})"
        )
