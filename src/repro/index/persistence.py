"""TrajTree and TrajForest persistence.

Index construction is the expensive phase (`O(|D|^2 / bf)` EDwPsub
alignments, Sec. IV-F), so a production deployment builds once and reloads
thereafter.  Two snapshot formats exist:

* **Single tree** — one pickle file with a version/fingerprint header
  (:func:`save_tree` / :func:`load_tree`).  The tree is a plain object
  graph of floats/ints/numpy arrays; pickle round-trips it faithfully.
* **Forest** — a directory: a ``forest.json`` manifest (magic, format
  version, shard scheme, per-shard filenames, fingerprints and sha256
  checksums) next to one single-tree pickle per shard
  (:func:`save_forest` / :func:`load_forest`, the ``ForestSnapshot``
  layout of DESIGN.md, "Columnar store and sharded forest").  Shards load
  independently, so a damaged snapshot fails with a
  :class:`ShardLoadError` *naming the shard* instead of a bare
  ``FileNotFoundError`` — or, with ``on_shard_error="skip"``, loads
  **degraded** over the healthy shards only (DESIGN.md, "Fault model and
  degraded serving").

Writes are crash-safe: every file goes through the
:mod:`repro.store.atomic` temp-sibling/fsync/atomic-rename protocol, the
forest manifest — which records each shard's checksum — is written last,
and stale temps from an interrupted save are swept on the next save.  A
crash at any byte offset therefore leaves either the previous intact
snapshot or damage the loaders detect as a typed error; never a load that
silently succeeds with wrong data.

The two formats version-gate each other cleanly: pointing
:func:`load_tree` at a forest directory (or :func:`load_forest` at a
single-tree pickle — including legacy 1.2.0 files) raises a ``ValueError``
telling you which loader to use.

Pickle executes code on load; only load index files you created.  (The
trajectory *data* has portable exchange formats in
:mod:`repro.datasets.io` and :mod:`repro.store`; the index is a cache,
not an interchange format.)
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path
from typing import Union

from ..store.atomic import (
    IntegrityError,
    atomic_write_bytes,
    atomic_write_json,
    cleanup_stale_temps,
    verify_checksum,
)
from .forest import SHARD_SCHEMES, TrajForest
from .trajtree import TrajTree

__all__ = [
    "save_tree",
    "load_tree",
    "save_forest",
    "load_forest",
    "ShardLoadError",
]

PathLike = Union[str, Path]

_MAGIC = "repro-trajtree"
#: bumped together with the package version when index layout changes
#: (1.1.0: TrajTree.backend attribute + Trajectory coordinate-cache slot;
#: 1.2.0: TBoxSeq geometry-cache slot + TrajTreeStats counter layout — the
#: cache itself is excluded from pickles, but the slot changes the state
#: shape old readers expect, exactly like the Trajectory bump before it)
_FORMAT_VERSION = "1.2.0"

_FOREST_MAGIC = "repro-trajforest"
#: the ForestSnapshot manifest version; bumped when the manifest schema
#: or the shard layout changes (shard payloads additionally carry the
#: single-tree version gate above).  1.1.0: per-shard sha256 checksums +
#: crash-safe manifest-last write order.
_FOREST_VERSION = "1.1.0"
_FOREST_MANIFEST = "forest.json"

#: the ``on_shard_error`` policies of :func:`load_forest`
ON_SHARD_ERROR = ("fail", "skip")


class ShardLoadError(ValueError):
    """One shard of a forest snapshot is missing or unreadable.

    Carries ``shard`` (the shard index) and ``filename`` so operators can
    see exactly which piece of the snapshot to restore.
    """

    def __init__(self, shard: int, filename: str, reason: str):
        self.shard = shard
        self.filename = filename
        super().__init__(
            f"forest shard {shard} ({filename}) {reason}"
        )


def _fingerprint(tree: TrajTree) -> dict:
    """Cheap integrity descriptor of the indexed database."""
    ids = sorted(tree.ids())
    return {
        "count": len(ids),
        "first_ids": ids[:8],
        "total_points": sum(len(tree.get(t)) for t in ids[:32]),
    }


def save_tree(tree: TrajTree, path: PathLike) -> str:
    """Serialize a TrajTree (including its trajectory database) to disk.

    Crash-safe (temp sibling + fsync + atomic rename): an interrupted
    save leaves any previous snapshot at ``path`` intact.  Returns the
    written payload's ``sha256:<hex>`` checksum — :func:`save_forest`
    records it in the manifest.
    """
    payload = {
        "magic": _MAGIC,
        "version": _FORMAT_VERSION,
        "fingerprint": _fingerprint(tree),
        "tree": tree,
    }
    return atomic_write_bytes(
        path, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    )


def load_tree(path: PathLike) -> TrajTree:
    """Load a TrajTree written by :func:`save_tree`.

    Raises ``ValueError`` for files that are not TrajTree snapshots,
    are truncated or corrupt (the unpickle failure is wrapped, not
    leaked raw), or were written by a different library version (rebuild
    instead: bounds and defaults may have changed between versions), and
    for forest snapshot directories (load those with :func:`load_forest`).
    """
    p = Path(path)
    if p.is_dir():
        if (p / _FOREST_MANIFEST).is_file():
            raise ValueError(
                f"{p!s} is a forest snapshot; load it with load_forest "
                f"(or serve it with --forest)"
            )
        raise ValueError(f"{p!s} is a directory, not a TrajTree snapshot")
    try:
        with open(path, "rb") as f:
            payload = pickle.load(f)
    except (pickle.UnpicklingError, EOFError, AttributeError, IndexError,
            MemoryError) as exc:
        raise ValueError(
            f"{path!s} is truncated or corrupt ({exc}); restore the "
            f"snapshot or rebuild the index"
        ) from None
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise ValueError(f"{path!s} is not a TrajTree snapshot")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"index was written by version {payload.get('version')}, "
            f"this library expects {_FORMAT_VERSION}; rebuild the index"
        )
    tree = payload["tree"]
    if not isinstance(tree, TrajTree):
        raise ValueError(f"{path!s} does not contain a TrajTree")
    if _fingerprint(tree) != payload.get("fingerprint"):
        raise ValueError(f"{path!s} fingerprint mismatch; file corrupted?")
    return tree


# ---------------------------------------------------------------------- #
# ForestSnapshot
# ---------------------------------------------------------------------- #


def _shard_filename(shard: int) -> str:
    return f"shard_{shard:04d}.pkl"


def save_forest(forest: TrajForest, path: PathLike) -> None:
    """Write a TrajForest as a snapshot directory (the ForestSnapshot
    layout): ``forest.json`` + one single-tree pickle per shard.

    Shards are written through :func:`save_tree`, so each carries its own
    version gate and fingerprint — and lands crash-safely; the manifest
    pins the shard count, the assignment scheme, and every shard's
    fingerprint *and sha256 checksum*, and is written **last**, so a save
    that dies mid-way leaves either the previous intact snapshot or a
    manifest/shard mismatch the loader reports as a typed error.  Stale
    temp files from an earlier interrupted save are swept first.
    """
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    cleanup_stale_temps(root)
    shards = []
    for i, tree in enumerate(forest.shards):
        filename = _shard_filename(i)
        checksum = save_tree(tree, root / filename)
        shards.append({
            "file": filename,
            "fingerprint": _fingerprint(tree),
            "sha256": checksum,
        })
    manifest = {
        "magic": _FOREST_MAGIC,
        "version": _FOREST_VERSION,
        "scheme": forest.scheme,
        "seed": forest.seed,
        "trajectories": len(forest),
        "shards": shards,
    }
    atomic_write_json(root / _FOREST_MANIFEST, manifest, indent=1)


def _load_shard(root: Path, shard: int, entry: dict,
                verify: bool) -> TrajTree:
    """Load + integrity-check one shard, every failure a ShardLoadError."""
    filename = entry.get("file", _shard_filename(shard))
    file = root / filename
    if not file.is_file():
        raise ShardLoadError(shard, filename, "is missing")
    if verify and entry.get("sha256"):
        try:
            verify_checksum(file, entry["sha256"])
        except IntegrityError as exc:
            raise ShardLoadError(shard, filename, str(exc)) from None
    try:
        tree = load_tree(file)
    except (ValueError, OSError, EOFError,
            pickle.UnpicklingError) as exc:
        raise ShardLoadError(
            shard, filename, f"failed to load: {exc}"
        ) from None
    if entry.get("fingerprint") is not None \
            and _fingerprint(tree) != entry["fingerprint"]:
        raise ShardLoadError(
            shard, filename, "fingerprint mismatch; file corrupted?"
        )
    return tree


def load_forest(
    path: PathLike,
    on_shard_error: str = "fail",
    verify: bool = True,
) -> TrajForest:
    """Load a TrajForest written by :func:`save_forest`.

    Every shard is integrity-checked before it is trusted: file present,
    sha256 checksum matching the manifest (``verify=False`` skips the
    hash pass), unpickle clean, version gate and fingerprint matching.

    ``on_shard_error`` decides what a damaged shard means:

    * ``"fail"`` (default) — raise the :class:`ShardLoadError` naming the
      shard; nothing loads.
    * ``"skip"`` — load **degraded**: the forest is assembled over the
      healthy shards only, with the failures recorded on
      ``forest.missing_shards`` (the ``ShardLoadError`` instances),
      ``forest.degraded`` true, and ``forest.snapshot_path`` remembering
      where to retry loading from (the service layer's background reload
      leans on it).  All shards damaged is still an error — there is no
      forest to serve.

    Raises ``ValueError`` for paths that are not forest snapshots —
    including single-tree pickles (legacy 1.2.0 files and current ones),
    which get a message pointing at :func:`load_tree`.
    """
    if on_shard_error not in ON_SHARD_ERROR:
        raise ValueError(
            f"unknown on_shard_error policy {on_shard_error!r}; "
            f"expected one of {ON_SHARD_ERROR}"
        )
    root = Path(path)
    if root.is_file():
        # A single-tree pickle (any version, including legacy 1.2.0
        # files): refuse with a pointer at the right loader rather than
        # failing inside the manifest parse.
        raise ValueError(
            f"{root!s} is a single-tree snapshot, not a forest snapshot "
            f"directory; load it with load_tree (or serve it with --index)"
        )
    if not root.is_dir() or not (root / _FOREST_MANIFEST).is_file():
        raise ValueError(f"{root!s} is not a forest snapshot")
    # Reap temp files a crashed writer left behind: the atomic-write
    # protocol guarantees they were never part of a committed snapshot.
    cleanup_stale_temps(root)
    try:
        manifest = json.loads((root / _FOREST_MANIFEST).read_text())
    except ValueError as exc:
        raise ValueError(
            f"{root!s}: forest manifest is not valid JSON: {exc}"
        ) from None
    if not isinstance(manifest, dict) \
            or manifest.get("magic") != _FOREST_MAGIC:
        raise ValueError(f"{root!s} is not a forest snapshot")
    if manifest.get("version") != _FOREST_VERSION:
        raise ValueError(
            f"forest snapshot was written by version "
            f"{manifest.get('version')}, this library expects "
            f"{_FOREST_VERSION}; rebuild the forest"
        )
    scheme = manifest.get("scheme", "round_robin")
    if scheme not in SHARD_SCHEMES:
        raise ValueError(
            f"{root!s}: unknown shard scheme {scheme!r} in manifest"
        )
    entries = manifest.get("shards")
    if not isinstance(entries, list) or not entries:
        raise ValueError(f"{root!s}: forest manifest lists no shards")

    trees = []
    missing = []
    for i, entry in enumerate(entries):
        try:
            trees.append(_load_shard(root, i, entry, verify))
        except ShardLoadError as exc:
            if on_shard_error == "fail":
                raise
            missing.append(exc)
    if not trees:
        raise ValueError(
            f"{root!s}: all {len(entries)} shards failed to load "
            f"(first: {missing[0]}); nothing to serve"
        )

    forest = TrajForest.from_shards(
        trees, scheme=scheme, seed=int(manifest.get("seed", 0))
    )
    forest.total_shards = len(entries)
    forest.missing_shards = missing
    forest.snapshot_path = str(root)
    if not missing and len(forest) != manifest.get("trajectories"):
        raise ValueError(
            f"{root!s}: manifest promises {manifest.get('trajectories')} "
            f"trajectories, shards hold {len(forest)}"
        )
    return forest
