"""TrajTree persistence.

Index construction is the expensive phase (`O(|D|^2 / bf)` EDwPsub
alignments, Sec. IV-F), so a production deployment builds once and reloads
thereafter.  The tree is a plain object graph of floats/ints/numpy arrays;
pickle round-trips it faithfully, and a version/fingerprint header guards
against loading an index built by an incompatible library version or over a
different database.

Pickle executes code on load; only load index files you created.  (The
trajectory *data* has a portable exchange format in
:mod:`repro.datasets.io`; the index is a cache, not an interchange format.)
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Union

from .trajtree import TrajTree

__all__ = ["save_tree", "load_tree"]

PathLike = Union[str, Path]

_MAGIC = "repro-trajtree"
#: bumped together with the package version when index layout changes
#: (1.1.0: TrajTree.backend attribute + Trajectory coordinate-cache slot;
#: 1.2.0: TBoxSeq geometry-cache slot + TrajTreeStats counter layout — the
#: cache itself is excluded from pickles, but the slot changes the state
#: shape old readers expect, exactly like the Trajectory bump before it)
_FORMAT_VERSION = "1.2.0"


def _fingerprint(tree: TrajTree) -> dict:
    """Cheap integrity descriptor of the indexed database."""
    ids = sorted(tree.ids())
    return {
        "count": len(ids),
        "first_ids": ids[:8],
        "total_points": sum(len(tree.get(t)) for t in ids[:32]),
    }


def save_tree(tree: TrajTree, path: PathLike) -> None:
    """Serialize a TrajTree (including its trajectory database) to disk."""
    payload = {
        "magic": _MAGIC,
        "version": _FORMAT_VERSION,
        "fingerprint": _fingerprint(tree),
        "tree": tree,
    }
    with open(path, "wb") as f:
        pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL)


def load_tree(path: PathLike) -> TrajTree:
    """Load a TrajTree written by :func:`save_tree`.

    Raises ``ValueError`` for files that are not TrajTree snapshots or were
    written by a different library version (rebuild instead: bounds and
    defaults may have changed between versions).
    """
    with open(path, "rb") as f:
        payload = pickle.load(f)
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise ValueError(f"{path!s} is not a TrajTree snapshot")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"index was written by version {payload.get('version')}, "
            f"this library expects {_FORMAT_VERSION}; rebuild the index"
        )
    tree = payload["tree"]
    if not isinstance(tree, TrajTree):
        raise ValueError(f"{path!s} does not contain a TrajTree")
    if _fingerprint(tree) != payload.get("fingerprint"):
        raise ValueError(f"{path!s} fingerprint mismatch; file corrupted?")
    return tree
