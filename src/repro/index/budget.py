"""Cooperative query budgets and anytime results (DESIGN.md, "Overload
control and anytime queries").

The TrajTree search is best-first over *monotone lower bounds*: the node
popped from the frontier always carries the smallest bound of anything
not yet explored.  Truncating the search at any pop therefore yields a
*sound* approximate answer — every unexplored trajectory is at least
``residual_bound`` away — and the quality of that answer is quantifiable
as an upper-bound factor, the same quantity the paper reports for the
VP bound (Eq. 15, Figs. 6c/d; measured by :mod:`repro.eval.ubfactor`).

Three pieces realize that contract:

* :class:`QueryBudget` — an immutable, hashable budget declaration: a
  wall-clock ``deadline`` (seconds), a ``max_bounds`` cap on box-DP
  bound evaluations, and an early-termination factor ``epsilon``
  (stop once the frontier cannot improve the k-th distance by more
  than ``1 + epsilon``).  Hashability makes budgets usable in
  singleflight/cache keys.
* :class:`BudgetTracker` — the mutable spend ledger one query (or one
  forest fan-out) charges against: an *absolute* deadline fixed at
  tracker creation, a bound counter, and a sticky exhaustion reason.
  :meth:`BudgetTracker.split` derives per-shard children that share
  the parent's absolute deadline (wall clock is global) while dividing
  the bound allowance evenly.
* :class:`AnytimeResult` — a ``list`` subclass carrying the anytime
  metadata (``exact``, ``reason``, ``residual_bound``,
  ``bound_factor``, per-shard ``shard_exact``).  Because list equality
  ignores the extra attributes, an exact budgeted answer compares equal
  to the plain list the unbudgeted call returns — the bit-identity
  contract ``tests/test_anytime.py`` pins across all three backends.

Soundness of the reported factor (the argument DESIGN.md walks through):
at truncation the search returns the refined top-k with k-th distance
``d_ret`` and a residual frontier bound ``r``.  Every trajectory not
refined lies under a frontier node of bound ``>= r`` (min-heap order) or
was pruned against a k-th distance that only shrank afterwards, so the
true k-th distance satisfies ``d_true >= min(r, d_ret)`` and the factor
``d_ret / d_true <= max(1, d_ret / r)`` — which is what
:func:`bound_factor_for` reports.  An epsilon stop fires only when
``r * (1 + epsilon) > d_ret``-to-be, so its factor is ``< 1 + epsilon``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = [
    "QueryBudget",
    "BudgetTracker",
    "AnytimeResult",
    "as_tracker",
    "bound_factor_for",
    "combine_budgets",
]


@dataclass(frozen=True)
class QueryBudget:
    """An immutable query cost budget.

    Parameters
    ----------
    deadline:
        Wall-clock seconds the query may spend, counted from the moment
        its tracker is created (``None`` = no deadline).  The clock is
        checked cooperatively at frontier pops, so a single batched
        kernel call can overshoot by its own duration — the budget
        bounds *search effort*, it is not a hard preemption.
    max_bounds:
        Cap on box-DP bound evaluations (the ``bound_computations``
        counter of :class:`~repro.index.trajtree.TrajTreeStats`);
        ``None`` = unlimited.  This one *is* a hard ceiling: the search
        clamps its batched bound calls to the remaining allowance.
    epsilon:
        Early-termination factor: stop once the best frontier bound
        ``b`` satisfies ``b * (1 + epsilon) > d_k`` — the returned k-th
        distance is then within ``1 + epsilon`` of optimal.  ``0.0``
        reproduces the exact search's natural break bit-for-bit
        (multiplying by an exact ``1.0`` changes nothing).
    """

    deadline: Optional[float] = None
    max_bounds: Optional[int] = None
    epsilon: float = 0.0

    def __post_init__(self):
        if self.deadline is not None and not self.deadline > 0:
            raise ValueError("deadline must be positive (or None)")
        if self.max_bounds is not None and self.max_bounds < 0:
            raise ValueError("max_bounds must be non-negative (or None)")
        if not self.epsilon >= 0.0:  # also rejects NaN
            raise ValueError("epsilon must be non-negative")

    @property
    def unlimited(self) -> bool:
        """Whether this budget can never alter a query's behaviour."""
        return (self.deadline is None and self.max_bounds is None
                and self.epsilon == 0.0)

    def tracker(
        self, clock: Callable[[], float] = time.monotonic
    ) -> "BudgetTracker":
        """Start the clock: a fresh spend ledger for one query."""
        return BudgetTracker(self, clock=clock)

    def to_dict(self) -> dict:
        """Wire form (the service protocol's ``budget`` object)."""
        out: dict = {}
        if self.deadline is not None:
            out["deadline"] = self.deadline
        if self.max_bounds is not None:
            out["max_bounds"] = self.max_bounds
        if self.epsilon:
            out["epsilon"] = self.epsilon
        return out

    @classmethod
    def from_dict(cls, obj: dict) -> "QueryBudget":
        """Parse the wire form; raises ``ValueError``/``TypeError`` on
        malformed fields (the service maps those onto InvalidRequest)."""
        if not isinstance(obj, dict):
            raise TypeError("budget must be an object")
        known = {"deadline", "max_bounds", "epsilon"}
        unknown = set(obj) - known
        if unknown:
            raise ValueError(
                f"unknown budget fields: {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        deadline = obj.get("deadline")
        max_bounds = obj.get("max_bounds")
        if max_bounds is not None:
            if int(max_bounds) != max_bounds:
                raise ValueError("max_bounds must be an integer")
            max_bounds = int(max_bounds)
        return cls(
            deadline=None if deadline is None else float(deadline),
            max_bounds=max_bounds,
            epsilon=float(obj.get("epsilon", 0.0)),
        )


def combine_budgets(
    a: Optional[QueryBudget], b: Optional[QueryBudget]
) -> Optional[QueryBudget]:
    """The tighter of two budgets, field-wise.

    Deadlines and bound caps take the smaller set value, epsilon the
    larger — so a service-imposed degradation budget can only tighten a
    client's request budget, never loosen it (and vice versa).
    """
    if a is None:
        return b
    if b is None:
        return a

    def _tight(x, y):
        if x is None:
            return y
        if y is None:
            return x
        return min(x, y)

    return QueryBudget(
        deadline=_tight(a.deadline, b.deadline),
        max_bounds=_tight(a.max_bounds, b.max_bounds),
        epsilon=max(a.epsilon, b.epsilon),
    )


class BudgetTracker:
    """The mutable spend ledger a search charges against.

    Created from a :class:`QueryBudget` (which fixes the *absolute*
    deadline at creation time) and passed to ``knn`` and friends in
    place of the budget when the caller wants to control the clock
    (tests inject a fake one) or share one deadline across several
    calls (the forest fan-out).  Exhaustion is *sticky*: once a reason
    is reported the tracker keeps reporting it, so a search that
    observed exhaustion never flip-flops back to running.
    """

    __slots__ = ("epsilon", "deadline_at", "max_bounds", "bounds_charged",
                 "_clock", "_reason")

    def __init__(
        self,
        budget: QueryBudget,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.epsilon = budget.epsilon
        self._clock = clock
        self.deadline_at = (
            None if budget.deadline is None else clock() + budget.deadline
        )
        self.max_bounds = budget.max_bounds
        self.bounds_charged = 0
        self._reason: Optional[str] = None

    def charge_bounds(self, n: int) -> None:
        """Record ``n`` box-DP bound evaluations."""
        self.bounds_charged += n

    def remaining_bounds(self) -> Optional[int]:
        """Bound evaluations still allowed (``None`` = unlimited)."""
        if self.max_bounds is None:
            return None
        return max(0, self.max_bounds - self.bounds_charged)

    def exhausted(self) -> Optional[str]:
        """``"bounds"`` / ``"deadline"`` once spent, else ``None`` (sticky)."""
        if self._reason is None:
            if (self.max_bounds is not None
                    and self.bounds_charged >= self.max_bounds):
                self._reason = "bounds"
            elif (self.deadline_at is not None
                    and self._clock() >= self.deadline_at):
                self._reason = "deadline"
        return self._reason

    def split(self, n: int) -> List["BudgetTracker"]:
        """Per-shard children for a fan-out over ``n`` shards.

        Children share this tracker's *absolute* deadline (shards run
        against the same wall clock, so a slow early shard eats into
        the later shards' time — exactly the behaviour a deadline
        promises) and divide the bound allowance evenly (ceiling), so
        the fan-out's total bound work stays within ``n`` rounding
        errors of the cap.
        """
        if n < 1:
            raise ValueError("cannot split a budget over zero shards")
        share = (None if self.max_bounds is None
                 else -(-self.max_bounds // n))  # ceil division
        children = []
        for _ in range(n):
            child = BudgetTracker.__new__(BudgetTracker)
            child.epsilon = self.epsilon
            child._clock = self._clock
            child.deadline_at = self.deadline_at
            child.max_bounds = share
            child.bounds_charged = 0
            child._reason = None
            children.append(child)
        return children


def as_tracker(
    budget, clock: Callable[[], float] = time.monotonic
) -> Optional[BudgetTracker]:
    """Normalize a ``budget=`` argument: ``None`` passes through, a
    :class:`QueryBudget` starts its clock, a :class:`BudgetTracker` is
    used as-is (already ticking)."""
    if budget is None:
        return None
    if isinstance(budget, BudgetTracker):
        return budget
    if isinstance(budget, QueryBudget):
        return budget.tracker(clock)
    raise TypeError(
        f"budget must be a QueryBudget, BudgetTracker or None, "
        f"not {type(budget).__name__}"
    )


def bound_factor_for(
    results: Sequence[Tuple[int, float]], k: int, residual: float
) -> float:
    """The implied upper-bound factor of a truncated top-k answer.

    ``results`` is the (ascending-sorted) returned list, ``residual``
    the smallest lower bound left on the frontier at truncation.  The
    true k-th distance is at least ``min(residual, d_ret)`` (module
    docstring), so the returned k-th overestimates the true k-th by at
    most this factor.  ``inf`` when fewer than ``k`` results came back
    or the residual is zero — the truncation then carries no quality
    guarantee at all.
    """
    if len(results) < k:
        return math.inf
    d_ret = results[k - 1][1]
    if d_ret <= residual:
        return 1.0
    if residual <= 0.0:
        return math.inf
    return d_ret / residual


class AnytimeResult(list):
    """Query results plus the anytime metadata of the search that made
    them.

    A ``list`` of ``(traj_id, distance)`` pairs — list equality ignores
    the extra attributes, so an *exact* budgeted answer compares equal
    to the plain list the unbudgeted call returns.

    Attributes
    ----------
    exact:
        True iff the search ran to its natural completion — no budget
        exhaustion and no epsilon stop actually truncated anything.
    reason:
        Why the search stopped early (``"deadline"`` / ``"bounds"`` /
        ``"epsilon"``), ``None`` when exact.
    residual_bound:
        Smallest lower bound left unexplored on the frontier at
        truncation; ``inf`` when exact (nothing unexplored can beat the
        returned set).  Every trajectory missing from the answer is at
        least this far from the query.
    bound_factor:
        The implied quality guarantee (:func:`bound_factor_for`):
        returned k-th distance ``<= bound_factor *`` true k-th
        distance.  ``1.0`` when exact; ``inf`` when the truncation
        carries no guarantee.
    shard_exact:
        Per-shard exactness of a forest fan-out (``None`` for a single
        tree): ``shard_exact[i]`` is False iff shard ``i`` truncated.
    """

    __slots__ = ("exact", "reason", "residual_bound", "bound_factor",
                 "shard_exact")

    def __init__(
        self,
        items=(),
        exact: bool = True,
        reason: Optional[str] = None,
        residual_bound: float = math.inf,
        bound_factor: float = 1.0,
        shard_exact: Optional[List[bool]] = None,
    ):
        super().__init__(items)
        self.exact = exact
        self.reason = reason
        self.residual_bound = residual_bound
        self.bound_factor = bound_factor
        self.shard_exact = shard_exact

    def meta_dict(self) -> dict:
        """The anytime fields as a JSON-able dict (service meta)."""
        out = {
            "exact": bool(self.exact),
            "reason": self.reason,
            "residual_bound": (None if math.isinf(self.residual_bound)
                               else float(self.residual_bound)),
            "bound_factor": (None if math.isinf(self.bound_factor)
                             else float(self.bound_factor)),
        }
        if self.shard_exact is not None:
            out["shard_exact"] = [bool(x) for x in self.shard_exact]
        return out

    def __repr__(self) -> str:
        tag = "exact" if self.exact else f"truncated:{self.reason}"
        return f"AnytimeResult({list.__repr__(self)}, {tag})"
