"""Trajectory box sequences and the box-generalized EDwPsub (Sec. IV-A/B/C).

A tBoxSeq summarizes a *set* of trajectories as an ordered sequence of
st-boxes.  Two operations matter:

* **Construction** (Sec. IV-B): a tBoxSeq starts from a single trajectory
  (one box per segment, compacted) and absorbs further trajectories by
  aligning them against the existing boxes with the box-generalized EDwPsub
  and growing every box by the pieces matched to it.
* **Lower bounding** (Sec. IV-C, Theorem 2): ``edwp_sub_box(Q, B)`` runs the
  same EDwPsub dynamic program with the generalized primitives — point-to-box
  distances, projections of boxes onto segments, and Coverage using the box's
  ``minL`` — yielding a cheap underestimate of ``EDwP(Q, T)`` for the
  trajectories ``T`` summarized by ``B``.

The DP mirrors :func:`repro.core.edwp._edwp_dp` with the second axis ranging
over boxes, with one crucial change to the cost model.  A true EDwP
alignment may split a query segment at arbitrary interior points; costing a
consumed piece as ``(d(start) + d(end)) * len`` (the chord/trapezoid form)
can then *overestimate* what the finely-split true alignment pays, because
the distance-to-box profile along a segment is convex — the chord lies
above the curve.  Every true edit with query piece ``P`` and trajectory
piece ``P_T`` costs at least ``2 * integral of d_box over P`` (trapezoid >=
integral for convex profiles) plus ``2 * min_P(d_box) * |P_T|``; both terms
are additive over arbitrary splits, so the DP uses them directly:

* consuming a piece costs ``2 * ∫ d_box`` (midpoint rule, which
  *under*-estimates convex integrals — soundness is preserved);
* consuming a *box* additionally costs ``2 * d_min * minL`` with ``d_min``
  the exact minimum distance from the piece to the box (the projection).

This makes the bound robust to how the true alignment subdivides segments;
the Theorem-2 property tests exercise it on adversarial inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import _native
from ..core.edwp import _spatial_points, resolve_backend
from ..core.geometry import Point, point_distance
from ..core.trajectory import Trajectory
from . import fast_bounds
from .stbox import STBox

__all__ = [
    "TBoxSeq",
    "BoxEdit",
    "edwp_sub_box",
    "edwp_sub_box_many",
    "edwp_sub_box_alignment",
]

_REP = 0
_INS_T = 1  # trajectory splits; the box is consumed
_INS_B = 2  # trajectory segment consumed against the current (unconsumed) box
_SKIP = 3
_OP_NAMES = {_REP: "rep", _INS_T: "ins_t", _INS_B: "ins_b"}

#: Default cap on the number of boxes per tBoxSeq.  Box count multiplies the
#: cost of every query-time lower bound, so node summaries stay coarse; 12
#: was tuned on the synthetic Beijing workload (pruning power saturates
#: while bound cost keeps rising with more boxes).
DEFAULT_MAX_BOXES = 12


@dataclass(frozen=True)
class BoxEdit:
    """One edit of a trajectory-vs-tBoxSeq alignment."""

    op: str
    piece: Tuple[Point, Point]
    box_index: int
    cost: float


class TBoxSeq:
    """A sequence of st-boxes summarizing a set of trajectories (Def. 5).

    Instances are immutable by convention: construction operations
    (:meth:`with_trajectory`, :meth:`compacted`) return new sequences.
    That convention is what makes the per-instance :meth:`geometry` cache
    sound — a new sequence starts with an empty cache, so the cached
    arrays can never go stale.
    """

    __slots__ = ("boxes", "_geom")

    def __init__(self, boxes: Sequence[STBox]):
        if not boxes:
            raise ValueError("a tBoxSeq needs at least one box")
        self.boxes = list(boxes)
        self._geom: Optional[fast_bounds.BoxGeometry] = None

    def __len__(self) -> int:
        return len(self.boxes)

    def __getitem__(self, index: int) -> STBox:
        return self.boxes[index]

    def __repr__(self) -> str:
        return f"TBoxSeq(n={len(self.boxes)}, volume={self.volume:.3g})"

    def __getstate__(self):
        # The geometry cache is derived data: dropping it keeps pickles
        # (index snapshots) lean and rebuilds lazily after load.
        return (self.boxes,)

    def __setstate__(self, state) -> None:
        if len(state) == 2 and isinstance(state[1], dict):
            # Legacy pickles (pre geometry-cache) carry the default slots
            # state ``(None, {slot: value})``.  Accept it so old index
            # snapshots decode far enough to reach the persistence layer's
            # version check instead of dying inside pickle.load.
            self.boxes = state[1]["boxes"]
        else:
            (self.boxes,) = state
        self._geom = None

    def geometry(self) -> fast_bounds.BoxGeometry:
        """Cached array form of the boxes (see ``repro.index.fast_bounds``).

        Built on first use and reused for every subsequent bound against
        this sequence.  Construction never mutates a sequence in place —
        ``with_trajectory``/``compacted`` return fresh instances whose
        caches start empty — and pickling drops the cache
        (:meth:`__getstate__`), so the arrays always describe ``boxes``.

        The lazy fill is idempotent and therefore safe under concurrent
        first access (the read-compute-assign contract documented at
        :meth:`repro.core.trajectory.Trajectory.coords`, asserted by
        ``tests/test_concurrent_caches.py``); servers warm it eagerly via
        :meth:`repro.index.trajtree.TrajTree.warm_caches`.
        """
        geom = self._geom
        if geom is None:
            geom = fast_bounds.box_geometry(self.boxes)
            self._geom = geom
        return geom

    @property
    def volume(self) -> float:
        """``Vol(B)``: sum of the box areas (Definition 5), as one array op."""
        return float(self.geometry().areas.sum())

    # ------------------------------------------------------------------ #
    # construction (Sec. IV-B)
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_trajectory(
        traj: Trajectory, max_boxes: int = DEFAULT_MAX_BOXES
    ) -> "TBoxSeq":
        """Initial tBoxSeq: one tight box per st-segment, then compacted.

        ``createTBoxSeq(T1)`` of the paper's iterative procedure.  The
        per-segment boxes and the compaction sweep both run as array ops
        (builds construct one of these per indexed trajectory *per pivot
        candidate*, so the object churn of the naive form was a measurable
        slice of build time); the resulting boxes are identical to the
        box-object formulation.
        """
        if traj.num_segments == 0:
            raise ValueError("cannot summarize a trajectory with no segments")
        coords = traj.coords()
        a = coords[:-1]
        b = coords[1:]
        arrays = _compact_arrays(
            np.minimum(a[:, 0], b[:, 0]),
            np.minimum(a[:, 1], b[:, 1]),
            np.maximum(a[:, 0], b[:, 0]),
            np.maximum(a[:, 1], b[:, 1]),
            np.hypot(b[:, 0] - a[:, 0], b[:, 1] - a[:, 1]),
            max_boxes,
        )
        return TBoxSeq(_boxes_from_arrays(*arrays))

    @staticmethod
    def from_trajectories(
        trajectories: Sequence[Trajectory], max_boxes: int = DEFAULT_MAX_BOXES
    ) -> "TBoxSeq":
        """``tBoxSeq(T)`` over a set: initialize from the first trajectory and
        absorb the rest one at a time (the paper's iterative procedure)."""
        if not trajectories:
            raise ValueError("cannot summarize an empty set of trajectories")
        seq = TBoxSeq.from_trajectory(trajectories[0], max_boxes=max_boxes)
        for traj in trajectories[1:]:
            seq = seq.with_trajectory(traj, max_boxes=max_boxes)
        return seq

    def with_trajectory(
        self, traj: Trajectory, max_boxes: int = DEFAULT_MAX_BOXES
    ) -> "TBoxSeq":
        """``createTBoxSeq(T, B)``: align ``T`` against the boxes with the
        generalized EDwPsub and grow each box by the pieces matched to it.

        Boxes the alignment skipped pass through unchanged.  The box count is
        stable (pieces merge into the boxes they matched), then compaction
        enforces ``max_boxes``.
        """
        if traj.num_segments == 0:
            return self
        _, edits = edwp_sub_box_alignment(traj, self)
        grown: Dict[int, STBox] = {}
        for edit in edits:
            idx = edit.box_index
            box = grown.get(idx, self.boxes[idx])
            grown[idx] = box.expanded_by_piece(*edit.piece)
        boxes = [grown.get(i, box) for i, box in enumerate(self.boxes)]
        return TBoxSeq(boxes).compacted(max_boxes)

    def volume_increase(self, traj: Trajectory) -> float:
        """``Vol(tBoxSeq({B, T})) - Vol(B)`` — the insertion criterion of
        Alg. 1 (line 11) and of dynamic inserts (Sec. IV-F)."""
        return self.with_trajectory(traj).volume - self.volume

    def compacted(self, max_boxes: int) -> "TBoxSeq":
        """Merge adjacent boxes (cheapest union first) until within budget.

        The greedy sweep scores every adjacent union as one array
        expression per round (``argmin``'s first-occurrence rule matches
        the scalar loop's strict-``<`` selection), merging in place on the
        geometry arrays and materializing boxes only once at the end.
        """
        if len(self.boxes) <= max_boxes:
            return self
        g = self.geometry()
        arrays = _compact_arrays(
            g.xmin.copy(), g.ymin.copy(), g.xmax.copy(), g.ymax.copy(),
            g.min_len.copy(), max_boxes,
        )
        return TBoxSeq(_boxes_from_arrays(*arrays))


def _compact_arrays(x0, y0, x1, y1, ml, max_boxes: int):
    """Greedy adjacent-union compaction on raw geometry arrays.

    Merge decisions are float-identical to the scalar box formulation:
    union extents are the same ``min``/``max`` expressions, growth is
    ``union_area - area_i - area_{i+1}`` in the same association order,
    and ``np.argmin`` keeps the first minimum exactly like the scalar
    loop's strict-``<`` scan.
    """
    while x0.shape[0] > max_boxes:
        ux0 = np.minimum(x0[:-1], x0[1:])
        uy0 = np.minimum(y0[:-1], y0[1:])
        ux1 = np.maximum(x1[:-1], x1[1:])
        uy1 = np.maximum(y1[:-1], y1[1:])
        area = (x1 - x0) * (y1 - y0)
        growth = (ux1 - ux0) * (uy1 - uy0) - area[:-1] - area[1:]
        i = int(np.argmin(growth))
        x0[i] = ux0[i]
        y0[i] = uy0[i]
        x1[i] = ux1[i]
        y1[i] = uy1[i]
        ml[i] = min(ml[i], ml[i + 1])
        keep = i + 1
        x0 = np.delete(x0, keep)
        y0 = np.delete(y0, keep)
        x1 = np.delete(x1, keep)
        y1 = np.delete(y1, keep)
        ml = np.delete(ml, keep)
    return x0, y0, x1, y1, ml


def _boxes_from_arrays(x0, y0, x1, y1, ml) -> List[STBox]:
    """Materialize :class:`STBox` objects from aligned geometry arrays."""
    return [
        STBox(float(a), float(b), float(c), float(d), float(e))
        for a, b, c, d, e in zip(x0, y0, x1, y1, ml)
    ]


# ---------------------------------------------------------------------- #
# the box-generalized EDwPsub dynamic program
# ---------------------------------------------------------------------- #


def _box_dp(
    pts: Sequence[Point],
    boxes: Sequence[STBox],
    keep_parents: bool,
    free_start_row: bool = True,
) -> Tuple[
    List[List[float]],
    Optional[List[List[int]]],
    List[List[Point]],
]:
    """Free-start / free-end DP of a trajectory against a box sequence.

    State ``(i, j)``: ``i`` trajectory segments and ``j`` boxes consumed.
    Cell payload is the current position on the trajectory (boxes have no
    interior position).  Row 0 is free (prefix skip) unless
    ``free_start_row`` is off (the PrefixDist-style anchored pass); the
    caller minimizes over the last row (suffix skip).
    """
    n = len(pts) - 1
    m = len(boxes)
    inf = math.inf
    rows, cols = n + 1, m + 1

    cost = [[inf] * cols for _ in range(rows)]
    pos: List[List[Point]] = [[(0.0, 0.0)] * cols for _ in range(rows)]
    parents: Optional[List[List[int]]] = (
        [[-1] * cols for _ in range(rows)] if keep_parents else None
    )

    start = pts[0]
    if free_start_row:
        for j in range(cols):
            cost[0][j] = 0.0
            pos[0][j] = start
            if parents is not None:
                parents[0][j] = _SKIP
    else:
        cost[0][0] = 0.0
        pos[0][0] = start
        if parents is not None:
            parents[0][0] = _SKIP

    dist = point_distance

    def piece_cost(cur: Point, end: Point, box: STBox) -> float:
        """``2 * ∫ d_box`` over the piece, by the 3-point midpoint rule.

        Midpoint sums under-estimate integrals of convex profiles, so the
        value never exceeds what any true alignment pays for this piece.
        """
        length = dist(cur, end)
        if length == 0.0:
            return 0.0
        cx, cy = cur
        dx = end[0] - cx
        dy = end[1] - cy
        acc = 0.0
        for f in (1.0 / 6.0, 0.5, 5.0 / 6.0):
            acc += box.dist_point((cx + dx * f, cy + dy * f))
        return 2.0 * length * (acc / 3.0)

    for i in range(rows):
        row_cost = cost[i]
        row_pos = pos[i]
        for j in range(cols):
            if i == 0 and (free_start_row or j == 0):
                continue
            best = inf
            best_pos = (0.0, 0.0)
            best_op = -1

            # rep: consume segment piece [cur, pts[i]] and box j-1.
            if i > 0 and j > 0:
                c = cost[i - 1][j - 1]
                if c < inf:
                    cur = pos[i - 1][j - 1]
                    box = boxes[j - 1]
                    end = pts[i]
                    proj, _ = box.project_on_segment(cur, end)
                    incr = piece_cost(cur, end, box) + (
                        2.0 * box.dist_point(proj) * box.min_len
                    )
                    total = c + incr
                    if total < best:
                        best = total
                        best_pos = end
                        best_op = _REP

            # ins on T: split the remaining segment at the point closest to
            # box j-1 and consume the box against the first piece (the box
            # analogue of the projection insert).
            if j > 0:
                c = row_cost[j - 1]
                if c < inf:
                    cur = row_pos[j - 1]
                    box = boxes[j - 1]
                    if i < n:
                        q, _ = box.project_on_segment(cur, pts[i + 1])
                    else:
                        q = cur
                    incr = piece_cost(cur, q, box) + (
                        2.0 * box.dist_point(q) * box.min_len
                    )
                    total = c + incr
                    if total < best:
                        best = total
                        best_pos = q
                        best_op = _INS_T

            # ins on B: consume the segment piece against the *current*
            # (still unconsumed) box.  Zero box-length coverage keeps the
            # bound an underestimate when several segments share one box.
            c = cost[i - 1][j] if i > 0 else inf
            if c < inf:
                cur = pos[i - 1][j]
                box = boxes[j] if j < m else boxes[m - 1]
                end = pts[i]
                incr = piece_cost(cur, end, box)
                total = c + incr
                if total < best:
                    best = total
                    best_pos = end
                    best_op = _INS_B

            row_cost[j] = best
            row_pos[j] = best_pos
            if parents is not None:
                parents[i][j] = best_op

    return cost, parents, pos


def edwp_sub_box(
    traj: Trajectory,
    seq: TBoxSeq,
    thorough: bool = False,
    backend: Optional[str] = None,
) -> float:
    """``EDwPsub(T, B)`` for a box sequence — the Theorem-2 lower bound.

    Returns 0 for a trajectory with no segments (nothing to align).

    With ``thorough`` the value is the minimum of the free-start and the
    anchored (PrefixDist-style) DP passes, mirroring
    :func:`repro.core.edwp_sub.edwp_sub`; the default single free-start
    pass is what query-time pruning uses — half the cost, and still an
    empirical underestimate of ``EDwP(Q, T)`` (validated by the Theorem-2
    property tests).

    ``backend`` overrides the global backend (see
    :func:`repro.core.set_backend`): ``"python"`` runs the reference DP in
    this module, ``"numpy"`` the vectorized kernel of
    :mod:`repro.index.fast_bounds` (same value to float tolerance).  For
    bounding one query against *many* sequences use
    :func:`edwp_sub_box_many`, which is where the numpy backend's lockstep
    batching pays off.
    """
    if traj.num_segments == 0:
        return 0.0
    resolved = resolve_backend(backend)
    if resolved == "numpy":
        return fast_bounds.edwp_sub_box_numpy(
            traj, seq.geometry(), thorough=thorough
        )
    if resolved == "native":
        return _native.load().edwp_sub_box_native(
            traj, seq.geometry(), thorough=thorough
        )
    pts = _spatial_points(traj)
    n = len(pts) - 1
    free, _, _ = _box_dp(pts, seq.boxes, keep_parents=False)
    value = min(free[n])
    if thorough:
        anchored, _, _ = _box_dp(pts, seq.boxes, keep_parents=False,
                                 free_start_row=False)
        value = min(value, min(anchored[n]))
    return value


def edwp_sub_box_many(
    traj: Trajectory,
    seqs: Sequence[TBoxSeq],
    thorough: bool = False,
    backend: Optional[str] = None,
) -> List[float]:
    """Theorem-2 bounds of one trajectory against many box sequences.

    The batched entry point of the index bound: on the ``"numpy"`` backend
    all sequences run through the lockstep kernel
    (:func:`repro.index.fast_bounds.edwp_sub_box_many_numpy`) in padded
    chunks, reusing each sequence's cached geometry arrays; on
    ``"python"`` it is a plain loop over the reference DP.  TrajTree's
    frontier batching routes every child-bound computation through this.
    """
    seqs = list(seqs)
    if traj.num_segments == 0:
        return [0.0] * len(seqs)
    resolved = resolve_backend(backend)
    if resolved == "numpy":
        return fast_bounds.edwp_sub_box_many_numpy(
            traj, [seq.geometry() for seq in seqs], thorough=thorough
        )
    if resolved == "native":
        return _native.load().edwp_sub_box_many_native(
            traj, [seq.geometry() for seq in seqs], thorough=thorough
        )
    return [
        edwp_sub_box(traj, seq, thorough=thorough, backend="python")
        for seq in seqs
    ]


def edwp_sub_box_alignment(
    traj: Trajectory, seq: TBoxSeq
) -> Tuple[float, List[BoxEdit]]:
    """Free-start lower-bound value plus the per-edit alignment.

    Construction (``with_trajectory``) consumes the alignment; the
    single-pass value matches the default :func:`edwp_sub_box`.
    """
    if traj.num_segments == 0:
        return 0.0, []
    pts = _spatial_points(traj)
    boxes = seq.boxes
    n = len(pts) - 1
    m = len(boxes)
    cost, parents, pos = _box_dp(pts, boxes, keep_parents=True)
    j = min(range(m + 1), key=cost[n].__getitem__)
    assert parents is not None
    value = cost[n][j]
    i = n
    edits: List[BoxEdit] = []
    while i > 0 or j > 0:
        op = parents[i][j]
        if op == _SKIP:
            break
        if op == _REP:
            pi, pj = i - 1, j - 1
            box_index = j - 1
        elif op == _INS_T:
            pi, pj = i, j - 1
            box_index = j - 1
        elif op == _INS_B:
            pi, pj = i - 1, j
            box_index = min(j, m - 1)
        else:
            raise RuntimeError(f"broken box DP backtrack at cell ({i}, {j})")
        start = pos[pi][pj]
        end = pos[i][j]
        edit_cost = cost[i][j] - cost[pi][pj]
        edits.append(
            BoxEdit(op=_OP_NAMES[op], piece=(start, end), box_index=box_index,
                    cost=edit_cost)
        )
        i, j = pi, pj
    edits.reverse()
    return value, edits
