"""NumPy-vectorized box-sequence bound kernels — the index ``"numpy"`` backend.

This module reimplements the box-generalized EDwPsub DP of
:func:`repro.index.tboxseq._box_dp` over preallocated geometry arrays, the
same way :mod:`repro.core.edwp_fast` reimplements the trajectory-level DP
(see DESIGN.md, "Index bound kernels").  Two ideas stack:

Anti-diagonal vectorization
    The recurrence at cell ``(i, j)`` (``i`` trajectory segments, ``j``
    boxes consumed) reads ``(i-1, j-1)``, ``(i, j-1)`` and ``(i-1, j)``,
    so cells on one anti-diagonal ``i + j = d`` are mutually independent
    and are swept in a single vectorized step from the two preceding
    diagonals.

Lockstep batching over box sequences
    One query is bounded against *many* nodes' box sequences at once:
    every diagonal buffer carries a leading batch axis, amortizing the
    per-diagonal numpy dispatch over the whole batch.  This is exactly the
    hot shape of Alg. 2: when TrajTree dequeues a node, the bounds of all
    surviving children are needed together, and sequentially they dominate
    query time (each pure-Python bound is an ``O(|Q| * max_boxes)`` DP
    whose every cell runs a ten-candidate projection scan).

Variable-length batches are exact, not approximate.  Box sequences shorter
than the widest in the batch are right-padded by *repeating their final
box*; transitions only move the box index forward, so cells within a
sequence's extent never read a padded column — with one deliberate
exception: the ins-on-B transition into column ``j == m`` reads ``box[j]``,
which the reference clamps to ``box[m - 1]``, and the repeated-final-box
padding reproduces that clamp bit-for-bit.  Per-sequence answers are read
as the minimum over that sequence's own columns ``0..m`` of the last row.

Numerical contract
------------------
The kernel mirrors the reference DP operation-for-operation: the same
additions and multiplications in the same association order, ``np.hypot``
for ``math.hypot``, the reference's exact candidate order in the
rectangle-on-segment projection with first-minimum selection (equivalent
to the reference's ordered strict-``<`` scan and its early exit at
distance zero), and the same strict-``<`` transition priority (``rep``,
then ``ins`` on T, then ``ins`` on B).  Results match the pure-Python
``_box_dp`` to float tolerance (asserted ``< 1e-9`` by
``tests/test_fast_bounds.py``), so the Theorem-2 soundness argument of
:mod:`repro.index.tboxseq` carries over unchanged.

Box geometry enters as :class:`BoxGeometry` — five aligned float64 arrays
(``xmin``/``ymin``/``xmax``/``ymax``/``min_len``) that
:meth:`repro.index.tboxseq.TBoxSeq.geometry` caches per instance, so
repeated bounds against the same node (every query!) pay the
object-to-array conversion once.

This module is self-contained (numpy + the core coordinate cache) and is
dispatched to by :func:`repro.index.tboxseq.edwp_sub_box` /
:func:`repro.index.tboxseq.edwp_sub_box_many` when the ``"numpy"`` backend
is active; the pure-Python DP remains the reference oracle.

Interaction with query budgets (:mod:`repro.index.budget`): budget
accounting happens one level up, in TrajTree, *before* a batch is handed
to these kernels — a ``max_bounds`` allowance clamps the batch to a prefix
of the surviving children and the remainder are enqueued on their cheap
union-rectangle bounds instead.  The kernels therefore never see a
partially-charged batch, and the internal ``BATCH_CHUNK`` splitting below
is purely a memory-shape concern with no budget semantics.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.edwp_fast import trajectory_complex

__all__ = [
    "BoxGeometry",
    "box_geometry",
    "box_dp_last_rows",
    "pack_geometries",
    "edwp_sub_box_numpy",
    "edwp_sub_box_many_numpy",
]

_INF = math.inf

#: Lockstep batch width for :func:`edwp_sub_box_many_numpy`.  Box sequences
#: are short by construction (``max_boxes``, default 12), so unlike the
#: trajectory kernels there is no length skew to sort away; the chunk only
#: caps buffer sizes when a caller bounds against very many nodes at once.
BATCH_CHUNK = 64


class BoxGeometry:
    """A box sequence as five aligned ``(m,)`` float64 arrays.

    The array form of ``TBoxSeq.boxes`` that every vectorized kernel
    consumes: spatial extents plus the per-box ``minL`` feeding the
    generalized Coverage.  Instances are derived data — built once per
    ``TBoxSeq`` by :meth:`repro.index.tboxseq.TBoxSeq.geometry`, never
    pickled, and treated as read-only.
    """

    __slots__ = ("xmin", "ymin", "xmax", "ymax", "min_len")

    def __init__(
        self,
        xmin: np.ndarray,
        ymin: np.ndarray,
        xmax: np.ndarray,
        ymax: np.ndarray,
        min_len: np.ndarray,
    ):
        self.xmin = xmin
        self.ymin = ymin
        self.xmax = xmax
        self.ymax = ymax
        self.min_len = min_len

    def __len__(self) -> int:
        return self.xmin.shape[0]

    @property
    def areas(self) -> np.ndarray:
        """Per-box spatial areas (the Definition-5 volume summands)."""
        return (self.xmax - self.xmin) * (self.ymax - self.ymin)


def box_geometry(boxes: Sequence) -> BoxGeometry:
    """Pack a sequence of :class:`~repro.index.stbox.STBox` into arrays."""
    arr = np.array(
        [(b.xmin, b.ymin, b.xmax, b.ymax, b.min_len) for b in boxes],
        dtype=np.float64,
    ).reshape(len(boxes), 5)
    return BoxGeometry(
        np.ascontiguousarray(arr[:, 0]),
        np.ascontiguousarray(arr[:, 1]),
        np.ascontiguousarray(arr[:, 2]),
        np.ascontiguousarray(arr[:, 3]),
        np.ascontiguousarray(arr[:, 4]),
    )


# ---------------------------------------------------------------------- #
# element-wise geometry (complex positions vs per-element rectangles)
# ---------------------------------------------------------------------- #


def _rect_dist(p: np.ndarray, xmin, ymin, xmax, ymax) -> np.ndarray:
    """``dist(p, box)`` element-wise; ``p`` complex, boxes as 4 arrays.

    ``|px - clip(px)|`` equals the reference's
    ``max(xmin - px, px - xmax, 0)`` exactly (the same single float
    subtraction survives on either side of the box, and 0 inside), and
    ``np.hypot`` returns the other leg exactly when one leg is zero, so
    this equals the reference ``point_rect_distance`` bit-for-bit.
    """
    px = p.real
    py = p.imag
    dx = np.abs(px - np.clip(px, xmin, xmax))
    dy = np.abs(py - np.clip(py, ymin, ymax))
    return np.hypot(dx, dy)


#: The reference's three midpoint-rule fractions.
_PIECE_FRACTIONS = np.array([1.0 / 6.0, 0.5, 5.0 / 6.0])


def _projection_scratch() -> dict:
    """Reusable buffer set for :func:`_project_on_segments`.

    One DP sweep calls the projection once per diagonal with (mostly) one
    shape, so reusing five ``(10, ...)`` candidate buffers avoids both the
    allocations and the page-touch traffic that otherwise dominate the
    kernel (the candidate block is the largest data the sweep touches).
    """
    return {"shape": None}


def _project_on_segments(
    a: np.ndarray,
    b: np.ndarray,
    xmin,
    ymin,
    xmax,
    ymax,
    scratch: Optional[dict] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized ``project_rect_on_segment``: ``(q, dist(q, box))`` per cell.

    Candidates are evaluated in the reference's exact order; candidates
    the reference *skips* (line crossings with a zero delta, corner
    projections of a degenerate segment) are replaced by ``t = 0`` — a
    duplicate of candidate 0, which can never win the first-minimum race
    ahead of the genuine candidate 0.  ``np.argmin``'s first-occurrence
    rule then reproduces the reference's ordered strict-``<`` scan,
    including its early exit at distance zero (both select the *first*
    zero-distance candidate).

    Candidates are *selected* by squared distance — float-monotone in
    each leg, so it orders candidates exactly like the reference's hypot
    comparison except on sub-ulp near-ties between geometrically distinct
    candidates (bitwise ties, e.g. clamped duplicates, still resolve to
    the first candidate either way).  The *returned* distance is the
    reference's hypot, evaluated only for the winner.

    Shapes broadcast: the DP sweep stacks its two projection problems
    (``rep`` and ``ins`` on T) along a leading axis and passes the box
    arrays un-stacked.  ``scratch`` (from :func:`_projection_scratch`)
    carries the candidate buffers across calls of one sweep.
    """
    d = b - a
    ax = a.real
    ay = a.imag
    dx = d.real
    dy = d.imag
    shape = np.broadcast_shapes(ax.shape, np.shape(xmin))
    full = (10,) + shape
    if scratch is None:
        scratch = {"shape": None}
    if scratch["shape"] != full:
        scratch["shape"] = full
        for key in ("ts", "qx", "qy", "s1", "s2"):
            scratch[key] = np.empty(full)
    ts = scratch["ts"]
    qx = scratch["qx"]
    qy = scratch["qy"]
    s1 = scratch["s1"]
    s2 = scratch["s2"]

    # Sides once, reused by the line-crossing and the corner candidates.
    ex0 = xmin - ax
    ex1 = xmax - ax
    ey0 = ymin - ay
    ey1 = ymax - ay
    # Zero-free divisors: where a delta (or the squared norm) vanishes the
    # divisor becomes inf, so the quotient is an exact 0.0 — candidate 0.
    div_x = np.where(dx != 0.0, dx, np.inf)
    div_y = np.where(dy != 0.0, dy, np.inf)
    norm_sq = dx * dx + dy * dy
    safe = np.where(norm_sq > 0.0, norm_sq, np.inf)

    ts[0] = 0.0
    ts[1] = 1.0
    np.divide(ex0, div_x, out=ts[2])
    np.divide(ex1, div_x, out=ts[3])
    np.divide(ey0, div_y, out=ts[4])
    np.divide(ey1, div_y, out=ts[5])
    np.divide(ex0 * dx + ey0 * dy, safe, out=ts[6])
    np.divide(ex0 * dx + ey1 * dy, safe, out=ts[7])
    np.divide(ex1 * dx + ey0 * dy, safe, out=ts[8])
    np.divide(ex1 * dx + ey1 * dy, safe, out=ts[9])
    np.clip(ts, 0.0, 1.0, out=ts)

    # In-place candidate geometry: qx/qy become the (signed) clamp
    # residuals ddx/ddy, s1/s2 their squares folded into d².
    np.multiply(ts, dx, out=qx)
    qx += ax
    np.multiply(ts, dy, out=qy)
    qy += ay
    np.clip(qx, xmin, xmax, out=s1)
    np.subtract(qx, s1, out=qx)
    np.clip(qy, ymin, ymax, out=s2)
    np.subtract(qy, s2, out=qy)
    np.multiply(qx, qx, out=s1)
    np.multiply(qy, qy, out=s2)
    s1 += s2

    d_sq = s1.reshape(10, -1)
    sel = np.argmin(d_sq, axis=0)
    pick = np.arange(sel.shape[0])
    t_best = ts.reshape(10, -1)[sel, pick].reshape(shape)
    d_best = np.hypot(
        qx.reshape(10, -1)[sel, pick], qy.reshape(10, -1)[sel, pick]
    ).reshape(shape)
    q = (ax + dx * t_best) + 1j * (ay + dy * t_best)
    return q, d_best


def _piece_cost(cur: np.ndarray, end: np.ndarray, xmin, ymin, xmax, ymax):
    """``2 * ∫ d_box`` over the piece by the reference's 3-point midpoint
    rule, element-wise (same evaluation points, same summation order —
    ``np.add.reduce`` associates left like the reference's accumulator)."""
    delta = end - cur
    length = np.abs(delta)
    fracs = _PIECE_FRACTIONS.reshape((3,) + (1,) * cur.ndim)
    mids = cur[None] + delta[None] * fracs
    dists = _rect_dist(mids, xmin, ymin, xmax, ymax)
    acc = np.add.reduce(dists, axis=0)
    return 2.0 * length * (acc / 3.0)


# ---------------------------------------------------------------------- #
# the lockstep anti-diagonal DP
# ---------------------------------------------------------------------- #


def box_dp_last_rows(
    z: np.ndarray,
    geom_pad: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    free_start_row: bool = True,
) -> np.ndarray:
    """Lockstep DP of one trajectory against a batch of box sequences.

    Parameters
    ----------
    z:
        ``(n + 1,)`` complex query points, ``n >= 1`` segments.
    geom_pad:
        Five ``(B, W)`` arrays ``(xmin, ymin, xmax, ymax, min_len)``
        packed by :func:`pack_geometries`: column 0 is a sentinel only
        ever read by transitions whose predecessor cost is the ``inf``
        sentinel, columns ``1..m_b`` hold sequence ``b``'s boxes, and the
        remaining columns repeat the final box (exact, see module
        docstring).  ``W = m_max + 2``.
    free_start_row:
        Make every cell ``(0, j)`` free — the Theorem-2 bound's
        free-start pass.  Off for the anchored (PrefixDist-style) pass.

    Returns
    -------
    ``(B, m_max + 1)`` array: the DP's last row ``cost[n][0..m_max]`` per
    sequence.  For a sequence with ``m`` boxes only columns ``0..m`` are
    meaningful; ``row[:m + 1].min()`` is the bound for that pass.
    """
    n = z.shape[0] - 1
    xmin, ymin, xmax, ymax, min_len = geom_pad
    batch, W = xmin.shape
    m = W - 2

    # Padded diagonal buffers: cell i lives at column i + 1; sentinel
    # columns at both ends keep cost inf with a finite dummy position, so
    # invalid transitions lose every strict-< race.  Three buffer sets
    # rotate through diagonals d-2, d-1, d.
    width = n + 3
    cost_p2 = np.full((batch, width), _INF)
    pos_p2 = np.zeros((batch, width), dtype=np.complex128)
    cost_p1 = np.full((batch, width), _INF)
    pos_p1 = np.zeros((batch, width), dtype=np.complex128)
    cost_d = np.full((batch, width), _INF)
    pos_d = np.zeros((batch, width), dtype=np.complex128)

    cost_p1[:, 1] = 0.0
    pos_p1[:, 1] = z[0]

    # pts[i + 1] with the final point repeated: row n's carried position is
    # always exactly pts[n] (every arrival there either places it on the
    # final sample or inherits it), so the repeated "remaining segment" is
    # zero-length and the projection degenerates to "stay in place" — the
    # reference's exhausted-trajectory rule for the ins-on-T transition.
    z_next = np.concatenate([z[1:], z[-1:]])

    # Box columns are consumed in *descending* padded-column order along a
    # diagonal's i-ascending cells; flipping the geometry once turns every
    # per-diagonal slice into a contiguous ascending view.
    fx0 = xmin[:, ::-1].copy()
    fy0 = ymin[:, ::-1].copy()
    fx1 = xmax[:, ::-1].copy()
    fy1 = ymax[:, ::-1].copy()
    fml = min_len[:, ::-1].copy()

    # Pre-stacked geometry for the fused three-way piece cost: lanes 0/1
    # (rep, ins on T) read box j-1, lane 2 (ins on B) the one-column-lower
    # box j.  Aligning lane 2 by trimming the *other* edge makes every
    # per-diagonal (3, B, C) geometry block a single strided view.
    gx0 = np.stack([fx0[:, 1:], fx0[:, 1:], fx0[:, :-1]])
    gy0 = np.stack([fy0[:, 1:], fy0[:, 1:], fy0[:, :-1]])
    gx1 = np.stack([fx1[:, 1:], fx1[:, 1:], fx1[:, :-1]])
    gy1 = np.stack([fy1[:, 1:], fy1[:, 1:], fy1[:, :-1]])

    last_rows = np.full((batch, m + 1), _INF)
    proj_scratch = _projection_scratch()

    for d in range(1, n + m + 1):
        lo = d - m if d > m else 0
        hi = n if d > n else d
        cells = slice(lo + 1, hi + 2)       # padded columns of cells (i, d-i)
        preds = slice(lo, hi + 1)           # same cells shifted to i-1

        end = z[lo:hi + 1][None, :]         # pts[i] per cell, i ascending
        nxt = z_next[lo:hi + 1][None, :]    # pts[i+1] (repeat past the end)

        # Geometry slices per cell in i-ascending order: box j-1 =
        # boxes[d-i-1] sits at padded column d-i (flipped: W-1-d+i), box j
        # at d-i+1 (flipped: W-2-d+i).
        sl_cur = slice(W - 1 - d + lo, W - d + hi)
        sl_nxt = slice(W - 2 - d + lo, W - 1 - d + hi)
        bx0 = fx0[:, sl_cur]
        by0 = fy0[:, sl_cur]
        bx1 = fx1[:, sl_cur]
        by1 = fy1[:, sl_cur]
        bml = fml[:, sl_cur]

        # Written in place; `best` is a view into the committed cost buffer
        # and candidates fold in with np.minimum, which keeps the earlier
        # candidate on ties — the reference's strict-< priority (rep, then
        # ins on T, then ins on B).
        cost_d.fill(_INF)       # pos_d keeps stale finite values: cells
        best = cost_d[:, cells]  # outside `cells` stay inf and never win
        best_pos = pos_d[:, cells]

        # All three transitions stack along one leading axis: the rep and
        # ins-on-T projections share the box j-1 geometry, and all three
        # piece costs (rep and ins-on-B against their consumed piece,
        # ins-on-T against the split point) evaluate in a single fused
        # call — one set of kernel invocations per diagonal instead of
        # three.
        a3 = np.stack([pos_p2[:, preds], pos_p1[:, cells],
                       pos_p1[:, preds]])
        b2v = np.empty_like(a3[:2])
        b2v[0] = end
        b2v[1] = nxt
        q2, d2 = _project_on_segments(a3[:2], b2v, bx0, by0, bx1, by1,
                                      scratch=proj_scratch)
        q_ins = q2[1]

        b3 = np.empty_like(a3)
        b3[0] = end
        b3[1] = q_ins
        b3[2] = end
        pc3 = _piece_cost(
            a3, b3,
            gx0[:, :, sl_nxt], gy0[:, :, sl_nxt],
            gx1[:, :, sl_nxt], gy1[:, :, sl_nxt],
        )
        coverage2 = 2.0 * d2 * bml

        # --- rep: consume piece [cur, pts[i]] and box j-1, from (i-1, j-1).
        best[...] = cost_p2[:, preds] + (pc3[0] + coverage2[0])
        best_pos[...] = end

        # --- ins on T: split the remaining segment at the point closest to
        # box j-1 and consume the box, from (i, j-1) on diagonal d-1.
        total = cost_p1[:, cells] + (pc3[1] + coverage2[1])
        take = total < best
        np.copyto(best_pos, q_ins, where=take)
        np.minimum(best, total, out=best)

        # --- ins on B: consume the piece against the current (still
        # unconsumed) box j, from (i-1, j) on diagonal d-1.  The padded
        # geometry realizes the reference's boxes[min(j, m-1)] clamp.
        total = cost_p1[:, preds] + pc3[2]
        take = total < best
        np.copyto(best_pos, end, where=take)
        np.minimum(best, total, out=best)

        # --- commit the diagonal ---------------------------------------- #
        if free_start_row and lo == 0:      # cell (0, d) is free
            cost_d[:, 1] = 0.0
            pos_d[:, 1] = z[0]
        if hi == n:
            last_rows[:, d - n] = cost_d[:, n + 1]

        cost_p2, pos_p2, cost_p1, pos_p1, cost_d, pos_d = (
            cost_p1, pos_p1, cost_d, pos_d, cost_p2, pos_p2,
        )

    return last_rows


def pack_geometries(
    geoms: Sequence[BoxGeometry],
) -> Tuple[Tuple[np.ndarray, ...], np.ndarray]:
    """Pack per-sequence geometry into padded ``(B, W)`` matrices.

    Returns ``(arrays, box_counts)`` with ``arrays`` in the
    :func:`box_dp_last_rows` layout: sentinel column 0, the real boxes at
    columns ``1..m_b``, the final box repeated through column ``W - 1``.
    """
    counts = np.array([len(g) for g in geoms])
    W = int(counts.max()) + 2
    packed = []
    for field in ("xmin", "ymin", "xmax", "ymax", "min_len"):
        mat = np.empty((len(geoms), W), dtype=np.float64)
        for row, g in enumerate(geoms):
            vals = getattr(g, field)
            mat[row, 0] = vals[0]
            mat[row, 1:len(g) + 1] = vals
            mat[row, len(g) + 1:] = vals[-1]
        packed.append(mat)
    return tuple(packed), counts


def _masked_min(rows: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Per-sequence minimum over its own in-extent columns ``0..m_b``."""
    cols = np.arange(rows.shape[1])
    return np.where(cols[None, :] <= counts[:, None], rows, _INF).min(axis=1)


def edwp_sub_box_many_numpy(
    traj, geoms: Sequence[BoxGeometry], thorough: bool = False
) -> List[float]:
    """Theorem-2 bounds of one trajectory against many box sequences.

    Callers guarantee ``traj`` has at least one segment.  Returns one
    bound per geometry, in order, each equal to the reference
    :func:`repro.index.tboxseq.edwp_sub_box` to float tolerance.
    """
    out = [0.0] * len(geoms)
    if not geoms:
        return out
    z = trajectory_complex(traj)
    order = sorted(range(len(geoms)), key=lambda i: len(geoms[i]))
    for start in range(0, len(order), BATCH_CHUNK):
        chunk = order[start:start + BATCH_CHUNK]
        packed, counts = pack_geometries([geoms[i] for i in chunk])
        values = _masked_min(box_dp_last_rows(z, packed), counts)
        if thorough:
            anchored = _masked_min(
                box_dp_last_rows(z, packed, free_start_row=False), counts
            )
            values = np.minimum(values, anchored)
        for i, value in zip(chunk, values):
            out[i] = float(value)
    return out


def edwp_sub_box_numpy(traj, geom: BoxGeometry, thorough: bool = False) -> float:
    """Single-sequence entry point (a batch of one)."""
    return edwp_sub_box_many_numpy(traj, [geom], thorough=thorough)[0]
