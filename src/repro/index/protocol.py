"""The query protocol shared by single trees and sharded forests.

:class:`~repro.index.trajtree.TrajTree` and
:class:`~repro.index.forest.TrajForest` answer the same query surface —
``knn`` / ``range_query`` / ``subtrajectory_knn``, the reentrant
``query_many`` dispatch, and the ``warm_caches`` / ``__len__`` /
``normalized`` plumbing the service layer leans on.
:class:`QueryIndex` names that surface so
:class:`repro.service.server.QueryService` can hold either interchangeably
(``set_tree`` accepts anything conforming) and so future index
implementations know exactly what to provide.

``REQUIRED_QUERY_INDEX_ATTRS`` is the runtime checklist
(:func:`ensure_query_index`): protocol ``isinstance`` checks cannot see
non-method members on every supported Python version, so the service
validates attribute presence explicitly and raises a ``TypeError`` naming
what is missing.
"""

from __future__ import annotations

from typing import (
    List,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..core.trajectory import Trajectory
from .trajtree import TrajTreeStats

__all__ = ["QueryIndex", "REQUIRED_QUERY_INDEX_ATTRS", "ensure_query_index"]

#: Attributes every servable index must expose (methods plus the
#: ``normalized`` flag the stats endpoint reports).
REQUIRED_QUERY_INDEX_ATTRS = (
    "knn",
    "range_query",
    "subtrajectory_knn",
    "query_many",
    "warm_caches",
    "normalized",
    "__len__",
)


@runtime_checkable
class QueryIndex(Protocol):
    """Anything that answers TrajTree-shaped queries over a trajectory db.

    Result lists are ``[(traj_id, distance), ...]`` sorted ascending by
    ``(distance, traj_id)`` — the library-wide tie policy — and
    ``query_many`` follows the reentrancy + duplicate-singleflight
    contract documented on :meth:`repro.index.trajtree.TrajTree.query_many`.

    Every query method accepts an optional ``budget`` — a
    :class:`repro.index.budget.QueryBudget` or live
    :class:`~repro.index.budget.BudgetTracker`.  When a budget is passed
    the result is an :class:`~repro.index.budget.AnytimeResult` (a list
    subclass, so exact answers stay bit-identical) whose ``exact`` flag
    and ``bound_factor`` report whether and how the search was truncated.
    ``query_many`` requests may carry the budget as an optional fourth
    tuple element; budgets participate in the singleflight key.
    """

    normalized: bool

    def __len__(self) -> int: ...

    def knn(
        self, query: Trajectory, k: int, stats=None, budget=None
    ) -> List[Tuple[int, float]]: ...

    def range_query(
        self, query: Trajectory, radius: float, stats=None, budget=None
    ) -> List[Tuple[int, float]]: ...

    def subtrajectory_knn(
        self, query: Trajectory, k: int, stats=None, budget=None
    ) -> List[Tuple[int, float]]: ...

    def query_many(
        self, requests: Sequence[Tuple]
    ) -> List[Tuple[List[Tuple[int, float]], TrajTreeStats]]: ...

    def warm_caches(self) -> None: ...


def ensure_query_index(index: object) -> None:
    """Raise ``TypeError`` naming the attributes ``index`` is missing.

    The runtime gate behind :class:`QueryIndex`: called by
    ``QueryService`` on construction and on every ``set_tree`` swap, so a
    non-conforming object fails fast with an actionable message instead
    of deep inside a query.
    """
    missing = [
        name
        for name in REQUIRED_QUERY_INDEX_ATTRS
        if not hasattr(index, name)
    ]
    if missing:
        raise TypeError(
            f"{type(index).__name__} does not implement the QueryIndex "
            f"protocol; missing: {', '.join(sorted(missing))}"
        )
