"""TrajTree — hierarchical index for exact k-NN retrieval under EDwP.

Paper Sec. IV-D..G.  Every node summarizes the trajectories of its subtree
with (a) a tBoxSeq, whose box-generalized EDwPsub gives a *lower bound* on
the distance from a query to anything below the node (Theorem 2), and (b) a
set of vantage points with descriptors for the whole subtree, whose
descriptor-space top-k gives a cheap *upper bound* on the k-NN distance
(Eq. 14).  Querying (Alg. 2) is a best-first search: nodes are dequeued in
lower-bound order, each dequeued node refines the upper bound through its
VPs and enqueues the children whose lower bounds beat it.

Deviation from the pseudo-code, documented in DESIGN.md: when a leaf node
survives pruning we compute the exact EDwP of all its (≤ ``min_node_size``)
unprocessed members immediately instead of re-enqueueing each trajectory
keyed by the trajectory-level EDwPsub.  The practical DP realization of
EDwPsub is not a guaranteed lower bound trajectory-to-trajectory (see
DESIGN.md), so this keeps retrieval exact at negligible cost.

The tree answers queries with either raw EDwP or the length-normalized
EDwPavg the paper's experiments use (``normalized=True``); the lower bound
for the normalized distance divides by ``length(Q) + max length`` in the
subtree, preserving the underestimate.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.edwp import _normalize, edwp, edwp_many, resolve_backend
from ..core.edwp_sub import (
    edwp_sub,
    edwp_sub_fast,
    edwp_sub_fast_queries,
    edwp_sub_many,
)
from ..core.geometry import polyline_rect_distance, polyline_rects_distance
from ..core.trajectory import Trajectory
from .budget import AnytimeResult, as_tracker, bound_factor_for
from .partition import partition
from .tboxseq import DEFAULT_MAX_BOXES, TBoxSeq, edwp_sub_box, edwp_sub_box_many
from .vantage import VantageIndex

__all__ = ["TrajTree", "TrajTreeStats"]

#: Deferred leaf refinements are flushed through one batched exact-distance
#: kernel call once this many members accumulate (or earlier, whenever a
#: pruning decision needs a fresh k-th distance).  Bounds the staleness of
#: the answer heap: at most this many extra members can be refined relative
#: to the fully sequential formulation (in practice none — see
#: tests/test_trajtree_stats.py).
REFINE_FLUSH = 128


@dataclass
class TrajTreeStats:
    """Counters describing one query or the tree shape.

    The query-time counters obey an exact accounting contract (asserted by
    ``tests/test_trajtree_stats.py``) so that fig6-style ablations can
    trust them:

    * Every node the search *considers* (the root plus the children of
      every visited internal node) is counted in exactly one of
      ``nodes_visited`` (dequeued and processed) or ``nodes_pruned``
      (discarded — by the quick bound, by the box bound, or in bulk when
      the best-first frontier's minimum bound passes the k-th distance).
    * ``quick_bound_computations`` counts union-rectangle pre-filter
      evaluations and ``bound_computations`` counts box-DP bound
      evaluations — a batched kernel call over ``c`` nodes adds ``c``.
      Quick-bound prunes therefore do *not* touch ``bound_computations``
      (no DP ran for them).
    * ``exact_computations`` counts exact distances actually evaluated
      (VP-offered candidates and refined leaf members).
      ``members_pruned`` counts leaf members skipped by the per-member
      re-normalized bound *instead of* being refined, so for ``knn`` over
      a freshly built tree, refined + member-pruned covers every member
      of every visited leaf exactly once.
    * The counters do not depend on the distance backend: both backends
      drive the identical traversal (batched leaf refinement included —
      see DESIGN.md, "Batched leaf refinement"), so python/numpy runs of
      the same query report the same numbers.
    """

    nodes_visited: int = 0
    nodes_pruned: int = 0
    exact_computations: int = 0
    bound_computations: int = 0
    quick_bound_computations: int = 0
    members_pruned: int = 0
    vp_rankings: int = 0


class _Node:
    """One TrajTree node: tBoxSeq summary + VP descriptors + children."""

    __slots__ = ("boxseq", "vantage", "children", "member_ids", "max_length",
                 "subtree_ids", "depth", "union_rect")

    def __init__(
        self,
        boxseq: TBoxSeq,
        vantage: Optional[VantageIndex],
        children: List["_Node"],
        member_ids: List[int],
        max_length: float,
        subtree_ids: List[int],
        depth: int = 0,
    ):
        self.boxseq = boxseq
        self.vantage = vantage
        self.children = children          # empty => leaf
        self.member_ids = member_ids      # leaf: trajectory ids stored here
        self.max_length = max_length      # max trajectory length in subtree
        self.subtree_ids = subtree_ids    # all ids under this node
        self.depth = depth                # root = 0
        self.refresh_union_rect()

    def refresh_union_rect(self) -> None:
        """Union rectangle over all boxes: feeds the cheap pre-filter bound.

        Must be re-derived whenever ``boxseq`` is replaced (dynamic
        inserts grow the boxes): a stale, smaller rectangle would
        *overestimate* the rectangle distance and break the quick bound's
        underestimate guarantee.
        """
        g = self.boxseq.geometry()
        self.union_rect = (
            float(g.xmin.min()),
            float(g.ymin.min()),
            float(g.xmax.max()),
            float(g.ymax.max()),
        )

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def count(self) -> int:
        return len(self.subtree_ids)


class TrajTree:
    """The TrajTree index (paper Sec. IV).

    Parameters
    ----------
    trajectories:
        The database to bulk-load.  Each trajectory needs at least one
        segment.  ``traj_id`` attributes are respected when present and
        unique; positional ids are assigned otherwise.
    theta:
        Diversity-drop threshold of Alg. 1 (default 0.8, the paper's tuned
        value, Fig. 6b).  Larger θ allows more pivots per node (higher
        branching factor): tighter bounds, more bound computations.
    num_vps:
        Vantage points per node (default 80, Sec. V-A).
    min_node_size:
        Maximum leaf size ``n`` (default 10, Sec. V-A).
    normalized:
        Answer queries with EDwPavg (Eq. 4) instead of raw EDwP.
    max_boxes:
        Box budget per tBoxSeq (implementation knob, see tboxseq module).
    max_branching:
        Hard cap on pivots per node.  Alg. 1 stops growing the pivot set
        only when diversity drops sharply; on data without cluster structure
        that may never happen, so the cap keeps the tree from degenerating
        into one child per trajectory (implementation guardrail).
    vp_levels:
        Apply the Alg.-2 VP refinement step only to nodes shallower than
        this depth (root = depth 0).  The paper refines at every dequeued
        node, which is right when ``k * nodes_visited`` is negligible
        against the database size; at laptop scales the root-level upper
        bound (already tight, Fig. 6c) does the work and deeper refinement
        mostly re-pays exact distances.  Set to a large value for the
        paper's literal behaviour.
    backend:
        EDwP backend for exact distances and build-time pivot selection
        (``"python"`` / ``"numpy"`` / ``"native"`` when numba is
        installed — validated here, so a bad name fails at construction
        rather than at first query); ``None`` (default) follows the global
        :func:`repro.core.set_backend` choice.  Leaf refinement and the
        scan oracles batch their exact distances through
        :func:`repro.core.edwp_many`, so the numpy backend's lockstep
        kernel applies there wholesale.
    seed:
        Seeds pivot/VP selection; builds are deterministic given a seed.
    rebuild_ratio:
        Fraction of accumulated updates (inserts + deletes) relative to the
        database size beyond which :meth:`needs_rebuild` reports True
        (Sec. IV-F's staleness heuristic).
    """

    def __init__(
        self,
        trajectories: Sequence[Trajectory],
        theta: float = 0.8,
        num_vps: int = 80,
        min_node_size: int = 10,
        normalized: bool = False,
        max_boxes: int = DEFAULT_MAX_BOXES,
        max_branching: int = 16,
        vp_levels: int = 1,
        use_quick_bound: bool = True,
        backend: Optional[str] = None,
        seed: int = 0,
        rebuild_ratio: float = 0.3,
    ):
        if not trajectories:
            raise ValueError("cannot index an empty database")
        for t in trajectories:
            if t.num_segments == 0:
                raise ValueError("every indexed trajectory needs >= 1 segment")
        self.theta = theta
        self.num_vps = num_vps
        self.min_node_size = min_node_size
        self.normalized = normalized
        self.max_boxes = max_boxes
        self.max_branching = max_branching
        self.vp_levels = vp_levels
        self.use_quick_bound = use_quick_bound
        if backend is not None:
            resolve_backend(backend)    # typed error at selection time
        self.backend = backend
        self.seed = seed
        self.rebuild_ratio = rebuild_ratio

        self._rng = random.Random(seed)
        self._db: Dict[int, Trajectory] = {}
        ids = self._assign_ids(trajectories)
        self._updates_since_build = 0
        self.build_stats = TrajTreeStats()
        self.root = self._build(ids)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def _assign_ids(self, trajectories: Sequence[Trajectory]) -> List[int]:
        provided = [t.traj_id for t in trajectories]
        use_provided = all(p is not None for p in provided) and len(
            set(provided)
        ) == len(provided)
        ids: List[int] = []
        for pos, traj in enumerate(trajectories):
            tid = int(traj.traj_id) if use_provided else pos
            self._db[tid] = traj
            ids.append(tid)
        return ids

    def _build(self, ids: List[int], depth: int = 0) -> _Node:
        trajs = [self._db[i] for i in ids]
        boxseq = TBoxSeq.from_trajectories(trajs, max_boxes=self.max_boxes)
        vantage: Optional[VantageIndex] = None
        if depth < self.vp_levels:
            vantage = VantageIndex.build(trajs, ids, self.num_vps, self._rng)
        max_length = max(t.length for t in trajs)
        self.build_stats.nodes_visited += 1

        result = partition(
            trajs,
            theta=self.theta,
            min_node_size=self.min_node_size,
            rng=self._rng,
            distance=self._pivot_distance,
            max_boxes=self.max_boxes,
            max_pivots=self.max_branching,
            distance_rows=self._pivot_distance_rows,
        )
        if result is None or len(result.groups) < 2:
            return _Node(boxseq, vantage, [], list(ids), max_length,
                         list(ids), depth)

        children = [
            self._build([ids[i] for i in group], depth + 1)
            for group in result.groups
        ]
        return _Node(boxseq, vantage, children, [], max_length, list(ids),
                     depth)

    # ------------------------------------------------------------------ #
    # public container surface
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._db)

    def __contains__(self, traj_id: int) -> bool:
        return traj_id in self._db

    def get(self, traj_id: int) -> Trajectory:
        """The stored trajectory with this id."""
        return self._db[traj_id]

    def ids(self) -> List[int]:
        """All trajectory ids currently indexed."""
        return list(self._db)

    def height(self) -> int:
        """Tree height (a leaf-only tree has height 1)."""

        def depth(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return 1 + max(depth(c) for c in node.children)

        return depth(self.root)

    def node_count(self) -> int:
        """Total number of nodes."""

        def count(node: _Node) -> int:
            return 1 + sum(count(c) for c in node.children)

        return count(self.root)

    def storage_summary(self) -> Dict[str, int]:
        """Concrete counts behind the paper's storage analysis (Sec. IV-F).

        The paper bounds storage by ``O(bf*|D|/(bf-1))`` nodes plus
        ``|V|*|D|*log_bf |D|`` stored vantage-descriptor entries; this
        reports the realized numbers for the current tree.
        """
        nodes = 0
        boxes = 0
        descriptor_entries = 0
        leaves = 0

        def walk(node: _Node) -> None:
            nonlocal nodes, boxes, descriptor_entries, leaves
            nodes += 1
            boxes += len(node.boxseq)
            if node.vantage is not None:
                descriptor_entries += node.vantage.descriptors.size
            if node.is_leaf:
                leaves += 1
            for child in node.children:
                walk(child)

        walk(self.root)
        return {
            "trajectories": len(self._db),
            "nodes": nodes,
            "leaves": leaves,
            "boxes": boxes,
            "descriptor_entries": descriptor_entries,
        }

    def branching_factors(self) -> List[int]:
        """Branching factor of every internal node (θ controls these)."""
        out: List[int] = []

        def walk(node: _Node) -> None:
            if not node.is_leaf:
                out.append(len(node.children))
                for c in node.children:
                    walk(c)

        walk(self.root)
        return out

    # ------------------------------------------------------------------ #
    # distances and bounds
    # ------------------------------------------------------------------ #

    def _pivot_distance(self, a: Trajectory, b: Trajectory) -> float:
        """Build-time diversity distance (Alg. 1), on this tree's backend."""
        return edwp_sub_fast(a, b, backend=self.backend)

    def _pivot_distance_rows(
        self, trajs: Sequence[Trajectory], pivot: Trajectory
    ) -> List[float]:
        """A whole diversity-distance column against one pivot, batched.

        Alg. 1's hot loop: on the ``"numpy"`` backend the column runs
        through the batch-first lockstep kernel (bit-identical to the
        per-pair numpy values), on ``"python"`` it loops — so pivot
        selections never depend on whether batching is available.
        """
        return edwp_sub_fast_queries(trajs, pivot, backend=self.backend)

    def _exact(self, query: Trajectory, traj: Trajectory) -> float:
        d = edwp(query, traj, backend=self.backend)
        if not self.normalized:
            return d
        return _normalize(d, query.length + traj.length)

    def _exact_many(
        self, query: Trajectory, traj_ids: Sequence[int]
    ) -> List[float]:
        """Batched exact distances (leaf refinement / scan oracles)."""
        return edwp_many(
            query,
            [self._db[tid] for tid in traj_ids],
            normalized=self.normalized,
            backend=self.backend,
        )

    def _normalize_bound(
        self, query: Trajectory, node: _Node, lb: float, normalized: bool
    ) -> float:
        if not normalized:
            return lb
        denom = query.length + node.max_length
        if denom <= 0.0:
            return 0.0
        return lb / denom

    def _bound(self, query: Trajectory, node: _Node) -> float:
        """Theorem-2 lower bound of one node (a batch of one)."""
        return self._bounds_many(query, [node])[0]

    def _bounds_many_raw(
        self, query: Trajectory, nodes: Sequence[_Node]
    ) -> List[float]:
        """Raw (unnormalized) box-DP bounds, one batched kernel call.

        On the ``"numpy"`` backend all nodes run through the lockstep
        kernel of :mod:`repro.index.fast_bounds`; on ``"python"`` the
        reference DP runs per node.
        """
        return edwp_sub_box_many(
            query, [node.boxseq for node in nodes], backend=self.backend
        )

    def _bounds_many(
        self,
        query: Trajectory,
        nodes: Sequence[_Node],
        normalized: Optional[bool] = None,
    ) -> List[float]:
        """Box-DP lower bounds of many nodes in one batched kernel call.

        ``normalized`` overrides the tree's normalization
        (``subtrajectory_knn`` reports raw EDwPsub, so it passes
        ``False``).
        """
        if normalized is None:
            normalized = self.normalized
        lbs = self._bounds_many_raw(query, nodes)
        return [
            self._normalize_bound(query, node, lb, normalized)
            for node, lb in zip(nodes, lbs)
        ]

    def _quick_bound(self, query: Trajectory, node: _Node) -> float:
        """Cheap pre-filter lower bound (a batch of one)."""
        return self._quick_bounds_many(query, [node])[0]

    def _quick_bounds_many_raw(
        self, query: Trajectory, nodes: Sequence[_Node]
    ) -> List[float]:
        """Raw quick bounds, one vectorized pass for all nodes.

        Every EDwP edit costs ``(d(start) + d(end)) * coverage`` with both
        positions on the query polyline and coverage at least the query
        piece length; pieces tile the query, so
        ``EDwP >= 2 * dist(polyline(Q), boxes) * length(Q)``.  The union
        rectangle of a node's boxes underestimates the box distance, so
        the expression stays a lower bound.  The same argument covers raw
        ``EDwPsub``: sub-matching skips target prefix/suffix cost but
        still consumes the whole query, and every position on a summarized
        trajectory lies inside the node's boxes.  All rectangle distances
        are computed in one
        :func:`repro.core.geometry.polyline_rects_distance` call.
        """
        rects = np.array([node.union_rect for node in nodes])
        dmins = polyline_rects_distance(query.spatial(), rects)
        q_len = query.length
        return [2.0 * dmin * q_len for dmin in dmins]

    def _quick_bounds_many(
        self,
        query: Trajectory,
        nodes: Sequence[_Node],
        normalized: Optional[bool] = None,
    ) -> List[float]:
        """Normalized form of :meth:`_quick_bounds_many_raw`."""
        if normalized is None:
            normalized = self.normalized
        return [
            self._normalize_bound(query, node, raw, normalized)
            for node, raw in zip(
                nodes, self._quick_bounds_many_raw(query, nodes)
            )
        ]

    # ------------------------------------------------------------------ #
    # querying (Alg. 2)
    # ------------------------------------------------------------------ #

    def knn(
        self,
        query: Trajectory,
        k: int,
        stats: Optional[TrajTreeStats] = None,
        budget=None,
    ) -> List[Tuple[int, float]]:
        """Exact k nearest neighbours of ``query`` under (normalized) EDwP.

        Returns ``[(traj_id, distance), ...]`` sorted ascending.  ``stats``
        (optional) accumulates visit/prune/computation counters.

        ``budget`` (optional — a :class:`~repro.index.budget.QueryBudget`
        or a ticking :class:`~repro.index.budget.BudgetTracker`) makes the
        search *anytime*: the budget is checked at every frontier pop, the
        bound allowance clamps the batched box-DP calls, and on exhaustion
        the search drains its deferred refinements in one batched call and
        returns an :class:`~repro.index.budget.AnytimeResult` carrying
        ``exact``, the frontier's residual lower bound and the implied
        upper-bound factor (DESIGN.md, "Overload control and anytime
        queries").  With an unlimited budget the result is bit-identical
        to the unbudgeted call.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if query.num_segments == 0:
            raise ValueError("query needs at least one segment")
        if stats is None:
            stats = TrajTreeStats()
        tracker = as_tracker(budget)
        eps = tracker.epsilon if tracker is not None else 0.0
        truncate_reason: Optional[str] = None
        residual = math.inf

        counter = itertools.count()
        # Heap entries carry both the (possibly normalized) bound ordering
        # the search pops by and the raw bound, which leaf refinement
        # re-normalizes per member (a member's true length can be far below
        # the subtree's max_length, making the per-member bound tighter).
        cands: List[Tuple[float, int, _Node, float]] = []
        heapq.heappush(cands, (0.0, next(counter), self.root, 0.0))

        # ans: max-heap of size <= k holding (-dist, -traj_id); ties resolve
        # by trajectory id so results match the sequential-scan oracle.
        ans: List[Tuple[float, int]] = []
        processed: set = set()
        pending: List[int] = []
        q_len = query.length

        def kth() -> float:
            return -ans[0][0] if len(ans) >= k else math.inf

        def offer_value(tid: int, d: float) -> None:
            stats.exact_computations += 1
            if len(ans) < k:
                heapq.heappush(ans, (-d, -tid))
            elif (d, tid) < (-ans[0][0], -ans[0][1]):
                heapq.heapreplace(ans, (-d, -tid))

        def flush() -> None:
            """Refine every deferred member in one batched kernel call."""
            if not pending:
                return
            for tid, d in zip(pending, self._exact_many(query, pending)):
                offer_value(tid, d)
            pending.clear()

        while cands:
            bound, _, node, raw = heapq.heappop(cands)
            if bound * (1.0 + eps) > kth():
                # min-heap order: every remaining candidate is also pruned.
                # (Strict comparison: an equal bound could still hide an
                # equal-distance trajectory that wins the id tie-break.
                # kth() without the deferred members is an upper bound on
                # the true k-th distance, so the break stays sound.  With
                # eps == 0 the multiply by an exact 1.0 is the identity,
                # so the exact path is bit-identical; with eps > 0 the
                # stop may fire early — flagged below unless the natural
                # condition held anyway.)
                stats.nodes_pruned += 1 + len(cands)
                if not bound > kth():
                    truncate_reason = "epsilon"
                    residual = bound
                break
            if tracker is not None:
                reason = tracker.exhausted()
                if reason is not None:
                    # Anytime truncation: the popped bound is the minimum
                    # over everything unexplored (min-heap), so it is the
                    # answer's residual lower bound.  Deferred refinements
                    # still drain through the final flush() below.
                    stats.nodes_pruned += 1 + len(cands)
                    truncate_reason = reason
                    residual = bound
                    break
            stats.nodes_visited += 1

            # Step 1 (Alg. 2 lines 8-10): refine the upper bound via VPs,
            # batched through the same deferral buffer (flushed at once so
            # the upper bound tightens before any pruning decision).
            if node.vantage is not None and len(node.vantage) > 0:
                stats.vp_rankings += 1
                qdesc = node.vantage.describe(query)
                for tid, _vd in node.vantage.top_k(qdesc, k,
                                                   exclude=processed):
                    processed.add(tid)
                    pending.append(tid)
                flush()

            if node.is_leaf:
                # Defer the members: consecutive leaf pops accumulate into
                # one lockstep kernel call (see DESIGN.md, "Batched leaf
                # refinement").  Deferral can only delay kth() updates, so
                # every decision made in the meantime is conservative —
                # results are still exact.
                limit = kth()
                for tid in node.member_ids:
                    if tid in processed:
                        continue
                    if self.normalized and raw > 0.0:
                        denom = q_len + self._db[tid].length
                        if denom > 0.0 and raw / denom > limit:
                            stats.members_pruned += 1
                            continue
                    processed.add(tid)
                    pending.append(tid)
                if len(pending) >= REFINE_FLUSH:
                    flush()
                continue

            # Step 2 (lines 11-13): enqueue children that can still matter.
            # Flush first so the k-th distance is fresh, then compute all
            # children's quick bounds and all surviving children's box
            # bounds in one batched kernel call each (the answer heap does
            # not change below, so the k-th distance is a loop constant and
            # batching is decision-identical to the sequential per-child
            # formulation).
            flush()
            children = node.children
            limit = kth()
            if self.use_quick_bound:
                stats.quick_bound_computations += len(children)
                quick_raws = self._quick_bounds_many_raw(query, children)
            else:
                quick_raws = [0.0] * len(children)
            survivors = [
                (child, qraw)
                for child, qraw in zip(children, quick_raws)
                if self._normalize_bound(query, child, qraw, self.normalized)
                <= limit
            ]
            stats.nodes_pruned += len(children) - len(survivors)
            if not survivors:
                continue
            # The bound allowance is a hard ceiling: the batched box-DP
            # call is clamped to what the budget still allows, and any
            # survivors past the allowance enqueue keyed by their quick
            # bound instead (still a valid lower bound, so the residual
            # stays sound; the tracker is exhausted at the next pop).
            allowance = len(survivors)
            if tracker is not None:
                remaining = tracker.remaining_bounds()
                if remaining is not None and remaining < allowance:
                    allowance = remaining
            stats.bound_computations += allowance
            if tracker is not None:
                tracker.charge_bounds(allowance)
            box_raws = (
                self._bounds_many_raw(
                    query, [c for c, _ in survivors[:allowance]]
                )
                if allowance else []
            )
            box_raws += [qraw for _, qraw in survivors[allowance:]]
            for (child, qraw), braw in zip(survivors, box_raws):
                child_raw = max(qraw, braw)
                lb = self._normalize_bound(
                    query, child, child_raw, self.normalized
                )
                if lb <= limit:
                    heapq.heappush(
                        cands, (lb, next(counter), child, child_raw)
                    )
                else:
                    stats.nodes_pruned += 1

        flush()
        result = sorted((( -negid, -negd) for negd, negid in ans),
                        key=lambda x: (x[1], x[0]))
        pairs = [(tid, d) for tid, d in result]
        if tracker is None:
            return pairs
        return self._anytime(pairs, k, truncate_reason, residual)

    @staticmethod
    def _anytime(
        pairs: List[Tuple[int, float]],
        k: int,
        reason: Optional[str],
        residual: float,
    ) -> AnytimeResult:
        """Wrap a budgeted answer with its anytime metadata.

        ``exact`` is True only when no truncation actually occurred —
        the search reached its natural break (or emptied the frontier),
        in which case the pairs are bit-identical to the unbudgeted
        answer.
        """
        if reason is None:
            return AnytimeResult(pairs)
        return AnytimeResult(
            pairs,
            exact=False,
            reason=reason,
            residual_bound=residual,
            bound_factor=bound_factor_for(pairs, k, residual),
        )

    def knn_batch(
        self,
        queries: Sequence[Trajectory],
        k: int,
        workers: Optional[int] = None,
    ) -> List[List[Tuple[int, float]]]:
        """:meth:`knn` for a batch of queries; one result list per query.

        Equivalent to ``[self.knn(q, k) for q in queries]``.  ``workers``
        (optional) fans the queries out over that many threads — the tree is
        read-only during queries, so concurrent searches are safe; within
        one process the GIL limits the gain, so it is off by default.  For
        per-query counters run :meth:`knn` directly with a ``stats``.
        """
        queries = list(queries)
        if workers is not None and workers > 1 and len(queries) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(lambda q: self.knn(q, k), queries))
        return [self.knn(q, k) for q in queries]

    def query_many(
        self,
        requests: Sequence[Tuple[str, Trajectory, float]],
    ) -> List[Tuple[List[Tuple[int, float]], TrajTreeStats]]:
        """Reentrant multi-query entry point (the service layer's dispatch).

        ``requests`` is a sequence of ``(kind, query, param)`` or
        ``(kind, query, param, budget)`` tuples with ``kind`` one of
        ``"knn"`` / ``"range"`` / ``"subtrajectory_knn"``, ``param`` the
        ``k`` (k-NN kinds) or radius (range), and ``budget`` an optional
        :class:`~repro.index.budget.QueryBudget` applied to that request
        (each budgeted request gets its own fresh tracker).  Returns one
        ``(results, stats)`` pair per request, in order, where
        ``results`` is exactly what the corresponding single-query method
        returns and ``stats`` its :class:`TrajTreeStats` counters.

        Duplicate requests — same kind, same parameter, bit-identical
        query points, equal budget — are computed once (singleflight):
        the duplicates share the *same* result list and stats object as
        their first occurrence, which is how the service coalesces many
        users' hot queries into one index pass per tick.  Budgets join
        the singleflight key because a truncated answer is only valid
        for requesters who accepted that budget.

        Reentrancy contract: the call never mutates tree state — each
        query gets a fresh stats object, traversal state is local, and
        the only shared writes are the idempotent lazy cache fills of
        :meth:`Trajectory.coords` / :meth:`TBoxSeq.geometry` (see
        :meth:`warm_caches`) — so concurrent calls from multiple threads
        are safe on a tree that is not being updated.
        """
        dispatch = {
            "knn": lambda q, p, s, b: self.knn(q, int(p), stats=s, budget=b),
            "range":
                lambda q, p, s, b:
                    self.range_query(q, float(p), stats=s, budget=b),
            "subtrajectory_knn":
                lambda q, p, s, b:
                    self.subtrajectory_knn(q, int(p), stats=s, budget=b),
        }
        out: List[Tuple[List[Tuple[int, float]], TrajTreeStats]] = []
        seen: Dict[tuple, int] = {}
        for req in requests:
            kind, query, param = req[0], req[1], req[2]
            budget = req[3] if len(req) > 3 else None
            if kind not in dispatch:
                raise ValueError(
                    f"unknown query kind {kind!r}; expected one of "
                    f"{tuple(dispatch)}"
                )
            key = (kind, float(param), query.data.tobytes(), budget)
            first = seen.get(key)
            if first is not None:
                out.append(out[first])
                continue
            seen[key] = len(out)
            stats = TrajTreeStats()
            out.append((dispatch[kind](query, param, stats, budget), stats))
        return out

    def warm_caches(self) -> None:
        """Populate every lazy derived cache the query path reads.

        Touches each stored trajectory's coordinate/length caches and each
        node's tBoxSeq geometry cache.  The fills themselves are idempotent
        (concurrent first calls each compute an equivalent value and the
        last assignment wins), so this is an optimization, not a
        correctness requirement — but a server warming once before
        accepting traffic avoids paying first-touch conversions inside
        latency-sensitive queries.  Called by
        :class:`repro.service.server.QueryService` on index load.
        """
        for traj in self._db.values():
            traj.coords()
            traj.length  # noqa: B018 — property access populates the cache

        def walk(node: _Node) -> None:
            node.boxseq.geometry()
            for child in node.children:
                walk(child)

        walk(self.root)

    def knn_scan(self, query: Trajectory, k: int) -> List[Tuple[int, float]]:
        """Brute-force sequential scan (the paper's baseline and the oracle
        used by the test-suite to verify exactness)."""
        ids = list(self._db)
        dists = list(zip(ids, self._exact_many(query, ids)))
        dists.sort(key=lambda x: (x[1], x[0]))
        return dists[:k]

    # ------------------------------------------------------------------ #
    # extensions beyond the paper's Alg. 2 (Sec. VI notes TrajTree
    # "can potentially be utilized for other trajectory operations")
    # ------------------------------------------------------------------ #

    def range_query(
        self,
        query: Trajectory,
        radius: float,
        stats: Optional[TrajTreeStats] = None,
        budget=None,
    ) -> List[Tuple[int, float]]:
        """All trajectories within (normalized) EDwP ``radius`` of the query.

        Uses the same lower bounds as k-NN: a subtree is skipped when its
        bound exceeds the radius.  Returns ``[(traj_id, distance), ...]``
        sorted ascending.

        ``budget`` (optional) is checked once per traversal wave; on
        exhaustion the collected hits come back as an anytime *subset*
        (every returned pair is a true in-radius hit with its exact
        distance, but hits under the unexplored frontier may be missing
        — ``exact=False``, ``residual_bound=0.0``).  Epsilon does not
        apply: the radius is fixed, there is no k-th distance to relax.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        if query.num_segments == 0:
            raise ValueError("query needs at least one segment")
        if stats is None:
            stats = TrajTreeStats()
        tracker = as_tracker(budget)
        truncate_reason: Optional[str] = None

        # Wave traversal: the radius never changes, so whole frontiers can
        # be filtered at once — one batched quick-bound call, one batched
        # box-bound call, and one batched exact-refinement call over every
        # surviving leaf's members per level.
        out: List[Tuple[int, float]] = []
        frontier: List[_Node] = [self.root]
        while frontier:
            if tracker is not None:
                truncate_reason = tracker.exhausted()
                if truncate_reason is not None:
                    stats.nodes_pruned += len(frontier)
                    break
            if self.use_quick_bound:
                stats.quick_bound_computations += len(frontier)
                quicks = self._quick_bounds_many(query, frontier)
                survivors = [
                    node
                    for node, quick in zip(frontier, quicks)
                    if quick <= radius
                ]
                stats.nodes_pruned += len(frontier) - len(survivors)
            else:
                survivors = frontier
            if not survivors:
                break
            stats.bound_computations += len(survivors)
            if tracker is not None:
                tracker.charge_bounds(len(survivors))
            bounds = self._bounds_many(query, survivors)
            next_frontier: List[_Node] = []
            leaf_ids: List[int] = []
            for node, lb in zip(survivors, bounds):
                if lb > radius:
                    stats.nodes_pruned += 1
                    continue
                stats.nodes_visited += 1
                if node.is_leaf:
                    leaf_ids.extend(node.member_ids)
                else:
                    next_frontier.extend(node.children)
            if leaf_ids:
                ds = self._exact_many(query, leaf_ids)
                stats.exact_computations += len(leaf_ids)
                out.extend(
                    (tid, d) for tid, d in zip(leaf_ids, ds) if d <= radius
                )
            frontier = next_frontier
        out.sort(key=lambda x: (x[1], x[0]))
        if tracker is None:
            return out
        if truncate_reason is None:
            return AnytimeResult(out)
        # A truncated range answer is a sound subset; distances are exact
        # (factor 1.0) but completeness is lost, which residual 0.0 states.
        return AnytimeResult(out, exact=False, reason=truncate_reason,
                             residual_bound=0.0, bound_factor=1.0)

    def range_query_scan(
        self, query: Trajectory, radius: float
    ) -> List[Tuple[int, float]]:
        """Brute-force range-query oracle."""
        ids = list(self._db)
        out = [
            (tid, d)
            for tid, d in zip(ids, self._exact_many(query, ids))
            if d <= radius
        ]
        out.sort(key=lambda x: (x[1], x[0]))
        return out

    def subtrajectory_knn(
        self,
        query: Trajectory,
        k: int,
        stats: Optional[TrajTreeStats] = None,
        budget=None,
    ) -> List[Tuple[int, float]]:
        """k trajectories containing the sub-trajectory most similar to
        ``query`` under ``EDwPsub`` (Eq. 6).

        The box-sequence bound underestimates ``EDwPsub(Q, T)`` for the
        same reason it underestimates ``EDwP(Q, T)`` (sub-alignment only
        removes cost), so the best-first search carries over — including
        the quick union-rectangle pre-filter, which only relies on the
        query being fully consumed (see :meth:`_quick_bounds_many`).
        Distances are raw ``EDwPsub`` values (length normalization is not
        meaningful when only part of the target is matched); leaf
        refinement batches them through
        :func:`repro.core.edwp_sub.edwp_sub_many`, and child bounds run
        through the same batched box kernel as :meth:`knn`.  ``stats``
        (optional) accumulates the same counters as :meth:`knn`;
        ``budget`` (optional) follows :meth:`knn`'s anytime contract.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if query.num_segments == 0:
            raise ValueError("query needs at least one segment")
        if stats is None:
            stats = TrajTreeStats()
        tracker = as_tracker(budget)
        eps = tracker.epsilon if tracker is not None else 0.0
        truncate_reason: Optional[str] = None
        residual = math.inf

        counter = itertools.count()
        cands: List[Tuple[float, int, _Node]] = []
        heapq.heappush(cands, (0.0, next(counter), self.root))
        pending: List[int] = []
        ans: List[Tuple[float, int]] = []

        def kth() -> float:
            return -ans[0][0] if len(ans) >= k else math.inf

        processed: set = set()

        def offer_value(tid: int, d: float) -> None:
            stats.exact_computations += 1
            if len(ans) < k:
                heapq.heappush(ans, (-d, -tid))
            elif (d, tid) < (-ans[0][0], -ans[0][1]):
                heapq.heapreplace(ans, (-d, -tid))

        def flush() -> None:
            """Refine deferred members in one batched kernel call."""
            if not pending:
                return
            ds = edwp_sub_many(
                query, [self._db[t] for t in pending], backend=self.backend
            )
            for tid, d in zip(pending, ds):
                offer_value(tid, d)
            pending.clear()

        while cands:
            bound, _, node = heapq.heappop(cands)
            if bound * (1.0 + eps) > kth():
                # kth() without the deferred members upper-bounds the true
                # k-th distance, so the bulk prune stays sound.  (eps == 0
                # multiplies by an exact 1.0 — the exact path unchanged.)
                stats.nodes_pruned += 1 + len(cands)
                if not bound > kth():
                    truncate_reason = "epsilon"
                    residual = bound
                break
            if tracker is not None:
                reason = tracker.exhausted()
                if reason is not None:
                    stats.nodes_pruned += 1 + len(cands)
                    truncate_reason = reason
                    residual = bound
                    break
            stats.nodes_visited += 1
            if node.is_leaf:
                # Deferred, like knn: consecutive leaf pops accumulate into
                # one lockstep EDwPsub call (DESIGN.md, "Batched leaf
                # refinement").
                for tid in node.member_ids:
                    if tid not in processed:
                        processed.add(tid)
                        pending.append(tid)
                if len(pending) >= REFINE_FLUSH:
                    flush()
                continue
            flush()
            children = node.children
            limit = kth()
            if self.use_quick_bound:
                stats.quick_bound_computations += len(children)
                quicks = self._quick_bounds_many(
                    query, children, normalized=False
                )
            else:
                quicks = [0.0] * len(children)
            survivors = [
                (child, quick)
                for child, quick in zip(children, quicks)
                if quick <= limit
            ]
            stats.nodes_pruned += len(children) - len(survivors)
            if not survivors:
                continue
            # Same hard bound-allowance ceiling as knn: past the
            # allowance, children enqueue keyed by their quick bound.
            allowance = len(survivors)
            if tracker is not None:
                remaining = tracker.remaining_bounds()
                if remaining is not None and remaining < allowance:
                    allowance = remaining
            stats.bound_computations += allowance
            if tracker is not None:
                tracker.charge_bounds(allowance)
            bounds = (
                self._bounds_many(
                    query, [c for c, _ in survivors[:allowance]],
                    normalized=False,
                )
                if allowance else []
            )
            bounds += [quick for _, quick in survivors[allowance:]]
            for (child, _), lb in zip(survivors, bounds):
                if lb <= limit:
                    heapq.heappush(cands, (lb, next(counter), child))
                else:
                    stats.nodes_pruned += 1

        flush()
        result = sorted(((-negid, -negd) for negd, negid in ans),
                        key=lambda x: (x[1], x[0]))
        pairs = [(tid, d) for tid, d in result]
        if tracker is None:
            return pairs
        return self._anytime(pairs, k, truncate_reason, residual)

    def subtrajectory_knn_scan(
        self, query: Trajectory, k: int
    ) -> List[Tuple[int, float]]:
        """Brute-force ``EDwPsub`` oracle, batched through
        :func:`repro.core.edwp_sub.edwp_sub_many`."""
        ids = list(self._db)
        ds = edwp_sub_many(
            query, [self._db[tid] for tid in ids], backend=self.backend
        )
        dists = list(zip(ids, ds))
        dists.sort(key=lambda x: (x[1], x[0]))
        return dists[:k]

    # ------------------------------------------------------------------ #
    # updates (Sec. IV-F)
    # ------------------------------------------------------------------ #

    def insert(self, traj: Trajectory, traj_id: Optional[int] = None) -> int:
        """Insert one trajectory without rebuilding.

        Descends along the children whose tBoxSeq volume grows the least
        (the bulk-load criterion), expanding every summary and descriptor
        store on the path.  Existing pivots/VPs are reused (Sec. IV-F).
        Returns the assigned id.
        """
        if traj.num_segments == 0:
            raise ValueError("trajectory needs at least one segment")
        if traj_id is None:
            traj_id = (max(self._db) + 1) if self._db else 0
        if traj_id in self._db:
            raise ValueError(f"trajectory id {traj_id} already indexed")
        self._db[traj_id] = traj

        node = self.root
        while True:
            node.boxseq = node.boxseq.with_trajectory(
                traj, max_boxes=self.max_boxes
            )
            # The boxes just grew; the quick bound's union rectangle must
            # grow with them or it would overestimate the box distance.
            node.refresh_union_rect()
            node.max_length = max(node.max_length, traj.length)
            node.subtree_ids.append(traj_id)
            if node.vantage is not None:
                node.vantage.keys.append(traj_id)
                row = node.vantage.describe(traj).reshape(1, -1)
                node.vantage.descriptors = np.vstack(
                    [node.vantage.descriptors, row]
                )
            if node.is_leaf:
                node.member_ids.append(traj_id)
                break
            node = min(
                node.children,
                key=lambda c: c.boxseq.with_trajectory(
                    traj, max_boxes=self.max_boxes
                ).volume
                - c.boxseq.volume,
            )
        self._updates_since_build += 1
        return traj_id

    def delete(self, traj_id: int) -> None:
        """Delete a trajectory: descriptors and leaf membership are removed
        along the path; tBoxSeqs remain unchanged (Sec. IV-F)."""
        if traj_id not in self._db:
            raise KeyError(f"trajectory id {traj_id} not indexed")
        del self._db[traj_id]
        self._delete_from(self.root, traj_id)
        self._updates_since_build += 1

    def _delete_from(self, node: _Node, traj_id: int) -> bool:
        if traj_id not in node.subtree_ids:
            return False
        node.subtree_ids.remove(traj_id)
        if node.vantage is not None and traj_id in node.vantage.keys:
            idx = node.vantage.keys.index(traj_id)
            node.vantage.keys.pop(idx)
            node.vantage.descriptors = np.delete(
                node.vantage.descriptors, idx, axis=0
            )
        if node.is_leaf:
            if traj_id in node.member_ids:
                node.member_ids.remove(traj_id)
            return True
        for child in node.children:
            if self._delete_from(child, traj_id):
                return True
        return True

    def needs_rebuild(self) -> bool:
        """Staleness heuristic: too many updates since the last build make
        the tBoxSeqs loose (Sec. IV-F)."""
        return self._updates_since_build > self.rebuild_ratio * max(1, len(self._db))

    def rebuild(self) -> None:
        """Bulk-rebuild the tree over the current database."""
        self._rng = random.Random(self.seed)
        self.build_stats = TrajTreeStats()
        ids = list(self._db)
        self.root = self._build(ids)
        self._updates_since_build = 0
