"""TrajTree index (paper Sec. IV).

Public surface:

* :class:`~repro.index.stbox.STBox` — spatio-temporal bounding box (Def. 4).
* :class:`~repro.index.tboxseq.TBoxSeq`,
  :func:`~repro.index.tboxseq.edwp_sub_box` and
  :func:`~repro.index.tboxseq.edwp_sub_box_many` — box sequences and the
  Theorem-2 lower bound (single and batched forms).
* :mod:`~repro.index.fast_bounds` — the vectorized ``"numpy"`` realization
  of the bound kernels (see DESIGN.md, "Index bound kernels").
* :func:`~repro.index.partition.partition` — pivot partitioning (Alg. 1).
* :class:`~repro.index.vantage.VantageIndex` — Lipschitz-style vantage
  descriptors and the VP-based upper bound (Sec. IV-E).
* :class:`~repro.index.trajtree.TrajTree` — the index with exact k-NN
  querying (Alg. 2).
* :class:`~repro.index.budget.QueryBudget` /
  :class:`~repro.index.budget.BudgetTracker` /
  :class:`~repro.index.budget.AnytimeResult` — cooperative query cost
  budgets and the anytime-answer contract (DESIGN.md, "Overload control
  and anytime queries").
* :class:`~repro.index.forest.TrajForest` — a sharded forest of
  TrajTrees with k-way merged exact queries (DESIGN.md, "Columnar store
  and sharded forest"), conforming to the
  :class:`~repro.index.protocol.QueryIndex` protocol the service layer
  serves.
* :func:`~repro.index.persistence.save_tree` /
  :func:`~repro.index.persistence.load_tree` and
  :func:`~repro.index.persistence.save_forest` /
  :func:`~repro.index.persistence.load_forest` — the two snapshot
  formats.
"""

from .stbox import STBox
from .tboxseq import TBoxSeq, edwp_sub_box, edwp_sub_box_many
from .budget import AnytimeResult, BudgetTracker, QueryBudget, combine_budgets
from .partition import partition
from .vantage import VantageIndex, select_vantage_points, vantage_distance, vp_distance
from .trajtree import TrajTree
from .forest import SHARD_SCHEMES, TrajForest, assign_shards
from .protocol import QueryIndex, ensure_query_index
from .persistence import (
    ShardLoadError,
    load_forest,
    load_tree,
    save_forest,
    save_tree,
)

__all__ = [
    "STBox",
    "TBoxSeq",
    "edwp_sub_box",
    "edwp_sub_box_many",
    "partition",
    "QueryBudget",
    "BudgetTracker",
    "AnytimeResult",
    "combine_budgets",
    "VantageIndex",
    "select_vantage_points",
    "vantage_distance",
    "vp_distance",
    "TrajTree",
    "TrajForest",
    "SHARD_SCHEMES",
    "assign_shards",
    "QueryIndex",
    "ensure_query_index",
    "ShardLoadError",
    "load_tree",
    "save_tree",
    "load_forest",
    "save_forest",
]
