"""Deterministic, seedable fault injection (DESIGN.md, "Fault model and
degraded serving").

Production code marks its failure-prone operations with *fault points* —
named :func:`fire` calls, e.g. ``fire("atomic.write:points.npy")`` in the
crash-safe writer or ``fire("client.send")`` in the service client.  With
no plan installed a fault point is one global read and a ``None`` check;
tests and the chaos gate install a :class:`FaultPlan` that maps points
(exact names or ``fnmatch`` patterns) onto faults:

``error``
    Raise :class:`FaultInjected` (an ``OSError``) — a failed syscall.
``crash``
    Raise :class:`CrashInjected` — the process "dies" here; whatever was
    written so far stays on disk exactly as a real crash would leave it
    (the atomic writer deliberately does *not* clean its temp file up on
    the way out).
``truncate``
    Return a :class:`Truncate` directive; the atomic writer honors it by
    writing exactly ``nbytes`` of the payload and then raising
    :class:`CrashInjected` — a crash at an arbitrary byte offset.
``delay``
    Sleep ``arg`` seconds, then continue.
``exit``
    ``os._exit(arg)`` — but **only in a process other than the one that
    created the plan** (a forked worker): the rule models the environment
    killing a worker, and must never take the test process down.  In the
    owning process it is a recorded no-op.
``drop``
    Raise ``ConnectionResetError`` — the peer vanished mid-request.

Determinism: rules fire in registration order, each bounded by ``times``
and offset by ``after``; probabilistic rules draw from the plan's own
``random.Random(seed)``, so a seeded plan injects the *same* fault
sequence on every run.  Worker processes inherit the installed plan via
``fork`` (the start method on Linux), which is how a plan created in a
test reaches :func:`repro.index.forest._build_shard_from_store`.
"""

from __future__ import annotations

import fnmatch
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

__all__ = [
    "FAULT_KINDS",
    "FaultInjected",
    "CrashInjected",
    "Truncate",
    "FaultPlan",
    "install",
    "uninstall",
    "active",
    "injected",
    "fire",
]

#: The fault kinds a rule may inject (module docstring documents each).
FAULT_KINDS = ("error", "crash", "truncate", "delay", "exit", "drop")


class FaultInjected(OSError):
    """An injected I/O failure — what a failed syscall would raise."""


class CrashInjected(RuntimeError):
    """A simulated process death: the operation stops *here*, mid-state.

    Raised (never caught) by the code under test so the harness can model
    a crash without actually killing the test process; whatever bytes were
    flushed before the crash point stay on disk, exactly as after a real
    crash + restart.
    """


@dataclass(frozen=True)
class Truncate:
    """Directive returned by :func:`fire` for ``truncate`` rules: the
    writer must persist exactly ``nbytes`` of its payload, then crash."""

    nbytes: int


@dataclass
class _Rule:
    """One armed fault: where, what, and how often."""

    point: str                      # exact name or fnmatch pattern
    kind: str
    arg: Optional[float] = None     # bytes / seconds / exit code
    times: Optional[int] = None     # fire at most this many times
    after: int = 0                  # skip the first `after` matches
    probability: float = 1.0
    matched: int = 0
    fired: int = 0


class FaultPlan:
    """A seeded set of fault rules, installable as the process-wide plan.

    Thread-safe: rule bookkeeping is guarded by one lock, so fault points
    on executor threads and the event loop see a consistent sequence.
    ``plan.log`` records every ``(point, kind)`` that fired, for test
    assertions.
    """

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self._rules: List[_Rule] = []
        self._lock = threading.Lock()
        self._owner_pid = os.getpid()
        self.log: List[Tuple[str, str]] = []

    def on(
        self,
        point: str,
        kind: str,
        arg: Optional[float] = None,
        *,
        times: Optional[int] = 1,
        after: int = 0,
        probability: float = 1.0,
    ) -> "FaultPlan":
        """Arm one rule; returns ``self`` so plans chain fluently.

        ``times=None`` means unlimited; ``probability < 1`` draws from the
        plan's seeded RNG per matching call.
        """
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        self._rules.append(
            _Rule(point, kind, arg, times=times, after=after,
                  probability=probability)
        )
        return self

    def fired(self, point_pattern: str = "*") -> int:
        """How many faults matching this point pattern have fired."""
        with self._lock:
            return sum(
                1 for point, _ in self.log
                if fnmatch.fnmatch(point, point_pattern)
            )

    # ------------------------------------------------------------------ #
    # the hot path
    # ------------------------------------------------------------------ #

    def _select(self, point: str) -> Optional[_Rule]:
        with self._lock:
            for rule in self._rules:
                if not fnmatch.fnmatch(point, rule.point):
                    continue
                if rule.times is not None and rule.fired >= rule.times:
                    continue
                rule.matched += 1
                if rule.matched <= rule.after:
                    continue
                if rule.probability < 1.0 \
                        and self._rng.random() >= rule.probability:
                    continue
                rule.fired += 1
                self.log.append((point, rule.kind))
                return rule
        return None

    def fire(self, point: str) -> Optional[Truncate]:
        """Evaluate this fault point; inject whatever rule matches first.

        Raises / sleeps / exits per the rule's kind; returns a
        :class:`Truncate` directive for ``truncate`` rules (the caller
        honors it) and ``None`` when nothing fires.
        """
        rule = self._select(point)
        if rule is None:
            return None
        kind, arg = rule.kind, rule.arg
        if kind == "delay":
            time.sleep(float(arg or 0.0))
            return None
        if kind == "error":
            raise FaultInjected(f"injected I/O error at {point}")
        if kind == "crash":
            raise CrashInjected(f"injected crash at {point}")
        if kind == "truncate":
            return Truncate(int(arg or 0))
        if kind == "drop":
            raise ConnectionResetError(f"injected connection drop at {point}")
        # kind == "exit": kill *worker* processes only — in the process
        # that owns the plan (the test / benchmark itself) this is a
        # recorded no-op, so a serial rebuild after a worker kill succeeds.
        if os.getpid() != self._owner_pid:
            os._exit(int(arg) if arg is not None else 17)
        return None


#: The process-wide active plan; ``None`` keeps every fault point a no-op.
_ACTIVE: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process-wide active plan (replacing any other)."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def uninstall() -> None:
    """Deactivate fault injection; every fault point is a no-op again."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultPlan]:
    """The installed plan, if any."""
    return _ACTIVE


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """``with injected(FaultPlan(seed).on(...)):`` — install for a block."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def fire(point: str) -> Optional[Truncate]:
    """The fault point marker production code calls; no-op when no plan
    is installed (one global read), otherwise :meth:`FaultPlan.fire`."""
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.fire(point)
