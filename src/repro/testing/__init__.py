"""repro.testing — deterministic test harnesses shipped with the library.

Currently one member: :mod:`repro.testing.faults`, the seedable
fault-injection harness behind the robustness suite and the chaos gate
(``benchmarks/bench_service_resilience.py``).  It lives in the package —
not under ``tests/`` — because production modules carry its fault points
(:func:`repro.testing.faults.fire` calls compiled into
``repro.store.atomic``, ``repro.index.forest`` and
``repro.service.client``), so injection works without monkeypatching and
from any process, including worker processes forked during parallel
forest builds.  With no plan installed every fault point is a cheap
no-op.  See DESIGN.md, "Fault model and degraded serving".
"""

from . import faults

__all__ = ["faults"]
