"""repro.service — the concurrent query service layer (ROADMAP item 3).

Serves warm :class:`~repro.index.trajtree.TrajTree` indexes to many
concurrent clients, coalescing in-flight kNN / range / subtrajectory-kNN
requests into batched index passes, with an LRU result cache, per-request
timeouts and cancellation, bounded-queue backpressure, and a structured
``/stats`` endpoint.  DESIGN.md ("Query service") documents the
coalescing window semantics, the cache key contract, the backpressure
policy, and the stats schema; ``python -m repro serve`` is the CLI entry
point.  DESIGN.md ("Fault model and degraded serving") covers the
resilience surface: typed ``ServiceConnectionError`` transport failures,
client retry with full-jitter backoff (:class:`~repro.service.retry.RetryPolicy`),
the ``health`` / ``reload`` control ops, degraded-forest serving and the
background reload-retry loop.  DESIGN.md ("Overload control and anytime
queries") covers the overload surface: two-class admission control
(:class:`~repro.service.admission.AdmissionController`), the dispatch
circuit breaker (:class:`~repro.service.breaker.CircuitBreaker`,
``ServiceUnavailable`` with retry-after), and SLO-driven budget
degradation (:class:`~repro.service.admission.DegradationPolicy`) that
turns overload into flagged anytime answers instead of timeouts.

Public surface:

* :class:`~repro.service.server.QueryService` /
  :class:`~repro.service.server.ServiceConfig` — the in-process service.
* :func:`~repro.service.server.serve` — expose a service over TCP
  (newline-delimited JSON).
* :class:`~repro.service.client.ServiceClient` — the matching asyncio
  client.
* The typed error family of :mod:`~repro.service.protocol`
  (``ServiceOverloaded``, ``RequestTimeout``, ...), plus
  :class:`~repro.service.protocol.QueryRequest` /
  :class:`~repro.service.protocol.QueryResponse` and
  :func:`~repro.service.protocol.query_digest`.
* :class:`~repro.service.cache.LRUCache`,
  :class:`~repro.service.batcher.CoalescingBatcher`,
  :class:`~repro.service.stats.ServiceStats` — the building blocks,
  importable on their own.
"""

from .admission import AdmissionController, DegradationPolicy
from .batcher import BatchOutcome, CoalescingBatcher
from .breaker import CircuitBreaker
from .cache import LRUCache
from .client import ServiceClient
from .protocol import (
    InvalidRequest,
    QueryRequest,
    QueryResponse,
    RequestTimeout,
    ServiceClosed,
    ServiceConnectionError,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
    query_digest,
)
from .retry import Backoff, RetryExhausted, RetryPolicy
from .server import QueryService, ServiceConfig, serve
from .stats import ServiceStats

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "DegradationPolicy",
    "BatchOutcome",
    "CoalescingBatcher",
    "LRUCache",
    "ServiceClient",
    "InvalidRequest",
    "QueryRequest",
    "QueryResponse",
    "RequestTimeout",
    "ServiceClosed",
    "ServiceConnectionError",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceUnavailable",
    "query_digest",
    "Backoff",
    "RetryExhausted",
    "RetryPolicy",
    "QueryService",
    "ServiceConfig",
    "serve",
    "ServiceStats",
]
