"""repro.service — the concurrent query service layer (ROADMAP item 3).

Serves warm :class:`~repro.index.trajtree.TrajTree` indexes to many
concurrent clients, coalescing in-flight kNN / range / subtrajectory-kNN
requests into batched index passes, with an LRU result cache, per-request
timeouts and cancellation, bounded-queue backpressure, and a structured
``/stats`` endpoint.  DESIGN.md ("Query service") documents the
coalescing window semantics, the cache key contract, the backpressure
policy, and the stats schema; ``python -m repro serve`` is the CLI entry
point.  DESIGN.md ("Fault model and degraded serving") covers the
resilience surface: typed ``ServiceConnectionError`` transport failures,
client retry with full-jitter backoff (:class:`~repro.service.retry.RetryPolicy`),
the ``health`` / ``reload`` control ops, degraded-forest serving and the
background reload-retry loop.

Public surface:

* :class:`~repro.service.server.QueryService` /
  :class:`~repro.service.server.ServiceConfig` — the in-process service.
* :func:`~repro.service.server.serve` — expose a service over TCP
  (newline-delimited JSON).
* :class:`~repro.service.client.ServiceClient` — the matching asyncio
  client.
* The typed error family of :mod:`~repro.service.protocol`
  (``ServiceOverloaded``, ``RequestTimeout``, ...), plus
  :class:`~repro.service.protocol.QueryRequest` /
  :class:`~repro.service.protocol.QueryResponse` and
  :func:`~repro.service.protocol.query_digest`.
* :class:`~repro.service.cache.LRUCache`,
  :class:`~repro.service.batcher.CoalescingBatcher`,
  :class:`~repro.service.stats.ServiceStats` — the building blocks,
  importable on their own.
"""

from .batcher import BatchOutcome, CoalescingBatcher
from .cache import LRUCache
from .client import ServiceClient
from .protocol import (
    InvalidRequest,
    QueryRequest,
    QueryResponse,
    RequestTimeout,
    ServiceClosed,
    ServiceConnectionError,
    ServiceError,
    ServiceOverloaded,
    query_digest,
)
from .retry import Backoff, RetryPolicy
from .server import QueryService, ServiceConfig, serve
from .stats import ServiceStats

__all__ = [
    "BatchOutcome",
    "CoalescingBatcher",
    "LRUCache",
    "ServiceClient",
    "InvalidRequest",
    "QueryRequest",
    "QueryResponse",
    "RequestTimeout",
    "ServiceClosed",
    "ServiceConnectionError",
    "ServiceError",
    "ServiceOverloaded",
    "query_digest",
    "Backoff",
    "RetryPolicy",
    "QueryService",
    "ServiceConfig",
    "serve",
    "ServiceStats",
]
