"""LRU result cache of the query service.

Plain ``OrderedDict`` recency cache with hit/miss/eviction counters.  The
service keys entries on ``(index snapshot id, query digest)`` — see
DESIGN.md, "Query service" — so loading a new index *implicitly*
invalidates every cached result (old snapshot ids can never be queried
again); :meth:`LRUCache.clear` additionally drops the dead entries so the
capacity budget is not wasted on them.

The cache itself is policy-free: it never inspects values and a capacity
of 0 disables it (every lookup is a miss, nothing is stored), which is how
the benchmark's naive-dispatch mode runs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

__all__ = ["LRUCache"]

_MISS = object()


class LRUCache:
    """Least-recently-used mapping with a hard entry cap.

    Not thread-safe by itself; the service only touches it from the event
    loop thread (dispatch work runs in an executor, cache bookkeeping does
    not).
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, refreshed to most-recently-used; None on miss."""
        value = self._data.get(key, _MISS)
        if value is _MISS:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh an entry, evicting the LRU entry past capacity."""
        if self.capacity == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def keys(self):
        """Keys from least- to most-recently used (for tests/introspection)."""
        return list(self._data.keys())

    def clear(self) -> None:
        """Drop every entry (counters are cumulative and survive)."""
        self._data.clear()

    def counters(self) -> Dict[str, int]:
        """Cumulative hit/miss/eviction counts plus the current size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._data),
            "capacity": self.capacity,
        }
