"""Request-coalescing batcher: many in-flight queries, one dispatch tick.

The batcher collects concurrently submitted requests for a short window
(``window`` seconds, counted from the first request of a tick) or until a
batch-size cap, then dispatches the whole batch through *one* synchronous
callable running on an executor thread — for the query service that is
one :meth:`repro.index.trajtree.TrajTree.query_many` call, so the event
loop stays free to accept/timeout/shed requests while the tree works.

Coalescing semantics (see DESIGN.md, "Query service"):

* Requests submit under a *key* (the service passes the query digest).
  Within one batch, equal keys are **singleflighted**: the computation
  runs once and every waiter receives the same value.  Exactly one
  still-waiting requester per key is marked ``primary`` so the caller can
  account the computation's cost once.
* The wait queue is **bounded**: a submit finding ``max_pending`` requests
  already waiting fails immediately with
  :class:`~repro.service.protocol.ServiceOverloaded` instead of growing
  memory without limit.
* A waiter whose future is cancelled (per-request timeout, client gone)
  is simply skipped at resolution time — its batch-mates' results are
  unaffected, and the computation still completes (feeding the service's
  result cache).
* Batches are serialized through one lock: at most one dispatch runs at a
  time, so the tree sees strictly sequential batched passes.
* :meth:`CoalescingBatcher.drain` refuses new requests, flushes whatever
  is queued, and waits for the in-flight dispatch — a clean shutdown
  delivers every accepted request's result.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from .protocol import ServiceClosed, ServiceOverloaded

__all__ = ["BatchOutcome", "CoalescingBatcher"]


@dataclass
class BatchOutcome:
    """What one waiter receives: the value plus its batch's shape.

    ``batch_size`` counts every request in the dispatched batch (dups
    included), ``distinct`` the singleflighted computations.  ``primary``
    is True for exactly one live waiter per distinct computation — the one
    that should account the computation's cost.
    """

    value: Any
    batch_size: int
    distinct: int
    primary: bool


class CoalescingBatcher:
    """Coalesce async submissions into synchronous batch dispatches.

    Parameters
    ----------
    dispatch:
        ``dispatch(requests) -> values`` (one value per request), called
        with the batch's *distinct* requests on an executor thread.
    window:
        Seconds to keep collecting after a tick's first request.  0 still
        coalesces whatever lands in the same event-loop turn (the flush is
        scheduled, not inline).
    max_batch:
        Dispatch immediately once this many requests wait; larger backlogs
        split into consecutive batches.
    max_pending:
        Bound on waiting requests (shed with ``ServiceOverloaded`` above
        it).  Requests already handed to the executor no longer count.
    on_batch:
        Optional ``on_batch(batch_size, distinct)`` observer, called once
        per dispatched batch on the event loop (after the dispatch
        returned or raised) — the service's batch-level stats hook.
    """

    def __init__(
        self,
        dispatch: Callable[[Sequence[Any]], List[Any]],
        window: float = 0.002,
        max_batch: int = 64,
        max_pending: int = 256,
        on_batch: Optional[Callable[[int, int], None]] = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self._dispatch = dispatch
        self._on_batch = on_batch
        self.window = window
        self.max_batch = max_batch
        self.max_pending = max_pending
        self._pending: List[Tuple[Hashable, Any, asyncio.Future]] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._lock = asyncio.Lock()
        self._tasks: set = set()
        self._closed = False

    @property
    def pending(self) -> int:
        """Requests currently waiting for a dispatch tick."""
        return len(self._pending)

    async def submit(self, key: Hashable, request: Any) -> BatchOutcome:
        """Queue one request and wait for its batch's outcome.

        Raises ``ServiceClosed`` after :meth:`drain` started and
        ``ServiceOverloaded`` when the wait queue is full.
        """
        if self._closed:
            raise ServiceClosed("service is shutting down")
        if len(self._pending) >= self.max_pending:
            raise ServiceOverloaded(
                f"request queue is full ({self.max_pending} waiting)"
            )
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        self._pending.append((key, request, fut))
        if len(self._pending) >= self.max_batch:
            self._arm(loop, 0.0)
        elif self._timer is None:
            self._arm(loop, self.window)
        return await fut

    def _arm(self, loop: asyncio.AbstractEventLoop, delay: float) -> None:
        if self._timer is not None:
            self._timer.cancel()
        self._timer = loop.call_later(delay, self._fire, loop)

    def _fire(self, loop: asyncio.AbstractEventLoop) -> None:
        self._timer = None
        task = loop.create_task(self._flush())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _flush(self) -> None:
        """Dispatch one batch (serialized; leftover re-arms immediately)."""
        async with self._lock:
            if not self._pending:
                return
            loop = asyncio.get_running_loop()
            batch = self._pending[: self.max_batch]
            del self._pending[: self.max_batch]
            if self._pending:
                self._arm(loop, 0.0)

            groups: Dict[Hashable, List[asyncio.Future]] = {}
            distinct: List[Tuple[Hashable, Any]] = []
            for key, request, fut in batch:
                if key not in groups:
                    groups[key] = []
                    distinct.append((key, request))
                groups[key].append(fut)

            try:
                values = await loop.run_in_executor(
                    None, self._dispatch, [req for _, req in distinct]
                )
            except Exception as exc:  # noqa: BLE001 — forwarded to waiters
                if self._on_batch is not None:
                    self._on_batch(len(batch), len(distinct))
                for futs in groups.values():
                    for fut in futs:
                        if not fut.done():
                            fut.set_exception(exc)
                return
            if self._on_batch is not None:
                self._on_batch(len(batch), len(distinct))

            batch_size = len(batch)
            for (key, _), value in zip(distinct, values):
                primary = True
                for fut in groups[key]:
                    if fut.done():      # cancelled (timeout / client gone)
                        continue
                    fut.set_result(BatchOutcome(
                        value=value,
                        batch_size=batch_size,
                        distinct=len(distinct),
                        primary=primary,
                    ))
                    primary = False

    async def drain(self) -> None:
        """Refuse new work, flush the queue, wait out in-flight dispatch."""
        self._closed = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        while self._pending:
            await self._flush()
        async with self._lock:     # in-flight dispatch (if any) finished
            pass
