"""The query service: warm indexes behind a coalescing asyncio front-end.

:class:`QueryService` owns one loaded index — anything conforming to the
:class:`~repro.index.protocol.QueryIndex` protocol: a single
:class:`~repro.index.trajtree.TrajTree` or a sharded
:class:`~repro.index.forest.TrajForest` — and answers kNN / range /
subtrajectory-kNN requests through three layers:

1. an LRU **result cache** keyed on ``(snapshot id, query digest)`` —
   loading a new index bumps the snapshot id, which invalidates every
   cached entry at once;
2. a **coalescing batcher** that collects concurrent cache misses for a
   short window and dispatches them as *one*
   :meth:`~repro.index.trajtree.TrajTree.query_many` call on an executor
   thread (identical in-flight queries are singleflighted — computed once,
   delivered to every waiter);
3. per-request **delivery policy**: a deadline (typed
   :class:`~repro.service.protocol.RequestTimeout` on expiry),
   cancellation tolerance (a dropped request never loses its batch-mates'
   results) and bounded-queue backpressure
   (:class:`~repro.service.protocol.ServiceOverloaded`).

Results are bit-identical to the equivalent serial library calls: the
dispatch path runs the very same ``knn`` / ``range_query`` /
``subtrajectory_knn`` code, queries are read-only on the tree, and
batches are serialized — ``tests/test_service_concurrency.py`` asserts
this against the oracle.  Observability is the stats schema of
:mod:`repro.service.stats`, served by the ``/stats`` endpoint
(``{"op": "stats"}`` on the wire).

:func:`serve` exposes a service over TCP with the newline-delimited JSON
protocol of :mod:`repro.service.protocol`; ``python -m repro serve`` is
the CLI entry point and :class:`repro.service.client.ServiceClient` the
matching client.

**Fault tolerance** (DESIGN.md, "Fault model and degraded serving"): the
service can hold a *degraded* forest (some shards failed to load) and
keep answering over the healthy shards — every query's meta then carries
``degraded: true`` plus the missing shard ids, the ``health`` op reports
the shard census, and :meth:`QueryService.start_reload_retry` runs a
background loop that periodically re-loads the snapshot with capped
exponential backoff and atomically swaps it in (via the same
:meth:`QueryService.set_tree` guard the admin ``reload`` op uses) once
the reload is strictly healthier than what is being served.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..index.budget import QueryBudget, combine_budgets
from ..index.protocol import QueryIndex, ensure_query_index
from ..index.trajtree import TrajTreeStats
from ..testing import faults
from .admission import AdmissionController, DegradationPolicy
from .batcher import CoalescingBatcher
from .breaker import CircuitBreaker
from .cache import LRUCache
from .protocol import (
    QueryRequest,
    QueryResponse,
    RequestTimeout,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
    decode_request,
    encode_response,
    query_digest,
    request_from_obj,
)
from .retry import Backoff
from .stats import ServiceStats, tree_stats_to_dict

__all__ = ["ServiceConfig", "QueryService", "serve"]

_ZERO_TREE_STATS = tree_stats_to_dict(TrajTreeStats())


@dataclass
class ServiceConfig:
    """Tunables of one :class:`QueryService` (DESIGN.md, "Query service").

    ``window=0.0`` with ``max_batch=1`` and ``cache_capacity=0`` is the
    *naive serial dispatch* configuration the throughput benchmark
    compares against.
    """

    window: float = 0.002          # coalescing window, seconds
    max_batch: int = 64            # dispatch as soon as this many wait
    max_pending: int = 256         # bounded queue: shed above this
    cache_capacity: int = 1024     # LRU entries; 0 disables caching
    default_timeout: Optional[float] = 30.0   # seconds; None = no deadline

    # -- overload control (DESIGN.md, "Overload control and anytime
    #    queries").  Defaults are deliberately generous: light workloads
    #    never hit admission limits, the breaker needs a sustained 50%
    #    dispatch-failure rate to trip, and degradation is off until an
    #    SLO is configured. --
    max_inflight: int = 64         # total admission tokens
    reserved_control: int = 2      # tokens only control ops may take
    admission_max_waiting: int = 512   # per-class wait-queue bound
    breaker_window: int = 64       # dispatch outcomes in the rate window
    breaker_threshold: float = 0.5     # failure rate that trips the breaker
    breaker_min_samples: int = 16  # outcomes needed before a trip
    breaker_cooldown: float = 0.5  # open duration before half-open, seconds
    breaker_probes: int = 2        # half-open successes needed to close
    slo_ms: Optional[float] = None     # latency SLO; None disables degradation
    degradation_floor: Optional[QueryBudget] = None   # budget at full pressure


@dataclass
class _CachedResult:
    """Cache payload: the results plus the stats of the computation that
    produced them (kept so introspection can show what the hit saved)."""

    results: List[Tuple[int, float]]
    tree_stats: TrajTreeStats


class QueryService:
    """One warm index plus the coalescing/caching/backpressure front-end.

    All coordination state (cache, stats, batcher bookkeeping) is touched
    only from the event loop thread; the tree itself is read-only during
    queries and pre-warmed (:meth:`TrajTree.warm_caches`) so the executor
    thread never races a lazy cache fill.
    """

    def __init__(self, tree: QueryIndex, config: Optional[ServiceConfig] = None,
                 warm: bool = True,
                 loader: Optional[Callable[[], QueryIndex]] = None):
        ensure_query_index(tree)
        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        self.cache = LRUCache(self.config.cache_capacity)
        self.snapshot_id = 0
        self._tree = tree
        if warm:
            tree.warm_caches()
        self._batcher = CoalescingBatcher(
            dispatch=lambda requests: self._execute_batch(requests),
            window=self.config.window,
            max_batch=self.config.max_batch,
            max_pending=self.config.max_pending,
            on_batch=self.stats.record_batch,
        )
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            reserved_control=self.config.reserved_control,
            max_waiting=self.config.admission_max_waiting,
        )
        self.breaker = CircuitBreaker(
            window=self.config.breaker_window,
            threshold=self.config.breaker_threshold,
            min_samples=self.config.breaker_min_samples,
            cooldown=self.config.breaker_cooldown,
            probes=self.config.breaker_probes,
        )
        floor = self.config.degradation_floor
        if floor is None and self.config.slo_ms is not None:
            # Sensible default: at full pressure, cap each query at the
            # SLO itself and accept a 1.5x-approximate answer.
            floor = QueryBudget(
                deadline=self.config.slo_ms / 1000.0, epsilon=0.5
            )
        self.degradation = DegradationPolicy(
            slo_ms=self.config.slo_ms, floor=floor
        )
        self._closed = False
        # fault tolerance: reload a fresh snapshot (admin op + background
        # retry) through `loader`, a zero-argument callable returning a
        # new QueryIndex — typically functools.partial(load_forest, path,
        # on_shard_error="skip").  Runs on an executor thread.
        self._loader = loader
        self._reload_lock = asyncio.Lock()
        self._reload_task: Optional[asyncio.Task] = None
        self._drain_task: Optional[asyncio.Future] = None

    # ------------------------------------------------------------------ #
    # index management
    # ------------------------------------------------------------------ #

    @property
    def tree(self) -> QueryIndex:
        """The currently served index (a single tree or a forest)."""
        return self._tree

    def set_tree(self, tree: QueryIndex, warm: bool = True) -> int:
        """Swap in a new index snapshot.

        Accepts any :class:`~repro.index.protocol.QueryIndex` — a single
        :class:`~repro.index.trajtree.TrajTree` or a
        :class:`~repro.index.forest.TrajForest` — and raises ``TypeError``
        naming the missing attributes otherwise.  Bumps the snapshot id —
        the cache keys on it, so every result computed on the old index
        becomes unreachable — and drops the dead entries so they stop
        occupying capacity.  Returns the new id.
        """
        ensure_query_index(tree)
        if warm:
            tree.warm_caches()
        self._tree = tree
        self.snapshot_id += 1
        self.cache.clear()
        return self.snapshot_id

    # ------------------------------------------------------------------ #
    # degraded state, health and reload
    # ------------------------------------------------------------------ #

    @property
    def degraded(self) -> bool:
        """Whether the served index is missing shards (a forest loaded
        with ``on_shard_error="skip"``); a single tree is never degraded."""
        return bool(getattr(self._tree, "degraded", False))

    def shard_census(self) -> Dict[str, Any]:
        """The served index's shard census (``{"total", "healthy",
        "missing": [...]}``); a single tree counts as one healthy shard."""
        census = getattr(self._tree, "shard_census", None)
        if callable(census):
            return census()
        return {"total": 1, "healthy": 1, "missing": []}

    def health_dict(self) -> Dict[str, Any]:
        """The ``health`` op payload: readiness, degraded state and the
        shard census."""
        if self._closed:
            status = "draining"
        elif self.degraded:
            status = "degraded"
        else:
            status = "ready"
        return {
            "status": status,
            "ready": not self._closed,
            "degraded": self.degraded,
            "snapshot_id": self.snapshot_id,
            "shards": self.shard_census(),
            "reloads": self.stats.reloads,
        }

    async def reload(self) -> Dict[str, Any]:
        """Re-run the configured loader and atomically swap the result in.

        The swap goes through :meth:`set_tree`, so it inherits the same
        guarantees as any snapshot swap: the snapshot id bumps (all cached
        results become unreachable) and in-flight batches finish on
        whichever tree they started on.  A failed load keeps the current
        index serving and raises a typed :class:`ServiceError`.
        """
        if self._loader is None:
            raise ServiceError(
                "no snapshot loader configured; reload is unavailable"
            )
        async with self._reload_lock:
            loop = asyncio.get_running_loop()
            try:
                tree = await loop.run_in_executor(None, self._loader)
            except Exception as exc:
                self.stats.record_error("reload")
                raise ServiceError(
                    f"reload failed, keeping the current index: {exc}"
                ) from exc
            snapshot = self.set_tree(tree)
            self.stats.record_reload()
            return {
                "snapshot_id": snapshot,
                "degraded": self.degraded,
                "shards": self.shard_census(),
            }

    def start_reload_retry(self, backoff: Optional[Backoff] = None
                           ) -> asyncio.Task:
        """Start the background degraded-recovery loop (idempotent).

        While the service is degraded, the loop sleeps the backoff delay,
        re-runs the loader, and swaps the result in *only* when it is
        strictly healthier than what is currently served (progress resets
        the backoff).  The loop ends on its own once the census is whole,
        and is cancelled by :meth:`aclose`.
        """
        if self._loader is None:
            raise ServiceError(
                "no snapshot loader configured; reload retry is unavailable"
            )
        if self._reload_task is None or self._reload_task.done():
            self._reload_task = asyncio.get_running_loop().create_task(
                self._reload_retry_loop(backoff or Backoff())
            )
        return self._reload_task

    async def _reload_retry_loop(self, backoff: Backoff) -> None:
        while self.degraded and not self._closed:
            await asyncio.sleep(backoff.next_delay())
            if self._closed:
                return
            async with self._reload_lock:
                healthy_now = self.shard_census()["healthy"]
                loop = asyncio.get_running_loop()
                try:
                    tree = await loop.run_in_executor(None, self._loader)
                except Exception:
                    continue          # snapshot still damaged; back off more
                census = getattr(tree, "shard_census", None)
                healthy_new = (census()["healthy"] if callable(census)
                               else 1)
                if healthy_new > healthy_now:
                    self.set_tree(tree)
                    self.stats.record_reload()
                    backoff.reset()

    # ------------------------------------------------------------------ #
    # the dispatch path
    # ------------------------------------------------------------------ #

    def _execute_batch(
        self, requests: Sequence[QueryRequest]
    ) -> List[Tuple[List[Tuple[int, float]], TrajTreeStats]]:
        """One coalesced tick: the batch's distinct queries through one
        :meth:`TrajTree.query_many` call (runs on an executor thread; must
        not touch service bookkeeping — that happens on the loop).

        The degradation floor is read once per batch, so every request in
        the tick sees the same tightening — a request's effective budget
        is ``combine_budgets(request.budget, floor)`` and digest-keyed
        singleflight stays correct within the batch.
        """
        faults.fire("service.dispatch")
        floor = self.degradation.current_budget()
        batch = []
        for r in requests:
            budget = combine_budgets(r.budget, floor)
            if budget is None:
                batch.append((r.kind, r.query, r.param))
            else:
                batch.append((r.kind, r.query, r.param, budget))
        return self._tree.query_many(batch)

    async def _admitted_submit(self, digest: str, request: QueryRequest):
        """Hold a ``query`` admission token across the batcher wait."""
        async with self.admission.admit("query"):
            return await self._batcher.submit(digest, request)

    async def submit(self, request: QueryRequest) -> QueryResponse:
        """Answer one query through cache → batcher → tree.

        Raises the typed :class:`~repro.service.protocol.ServiceError`
        family: ``InvalidRequest``, ``ServiceOverloaded``,
        ``ServiceUnavailable`` (breaker open), ``RequestTimeout``,
        ``ServiceClosed``.
        """
        loop = asyncio.get_running_loop()
        start = loop.time()
        try:
            request = request.validated()
        except ServiceError as exc:
            self.stats.record_error(exc.code)
            raise
        self.stats.record_submitted(request.kind)
        if self._closed:
            self.stats.record_error(ServiceClosed.code)
            raise ServiceClosed("service is shutting down")
        try:
            self.breaker.check()
        except ServiceUnavailable as exc:
            self.stats.record_error(exc.code)
            raise

        digest = query_digest(request)
        snapshot = self.snapshot_id
        key = (snapshot, digest)

        cached = self.cache.get(key)
        if cached is not None:
            latency_ms = (loop.time() - start) * 1000.0
            self.stats.record_completed(latency_ms, cache_hit=True,
                                        computed=False, batch_size=0)
            return QueryResponse(
                results=list(cached.results),
                meta=self._meta(request, latency_ms, snapshot,
                                cache_hit=True, computed=False,
                                batch_size=0, distinct=0,
                                tree_stats=_ZERO_TREE_STATS),
            )

        timeout = (request.timeout if request.timeout is not None
                   else self.config.default_timeout)
        try:
            outcome = await asyncio.wait_for(
                self._admitted_submit(digest, request), timeout
            )
        except asyncio.TimeoutError:
            self.breaker.record_failure()
            self.stats.record_error(RequestTimeout.code)
            raise RequestTimeout(
                f"query missed its {timeout:g}s deadline"
            ) from None
        except (ServiceOverloaded, ServiceClosed) as exc:
            # Shed / draining: says nothing about backend health, so the
            # breaker does not count it.
            self.stats.record_error(exc.code)
            raise
        except ServiceError as exc:
            self.breaker.record_failure()
            self.stats.record_error(exc.code)
            raise
        except Exception as exc:
            # Unexpected dispatch failure (tree bug, injected fault):
            # wrap as a typed error and count it against the breaker.
            self.breaker.record_failure()
            self.stats.record_error("internal")
            raise ServiceError(f"dispatch failed: {exc}") from exc
        self.breaker.record_success()

        results, tree_stats = outcome.value
        exact = bool(getattr(results, "exact", True))
        if outcome.primary:
            self.stats.record_tree_stats(tree_stats)
            if exact and self.snapshot_id == snapshot:
                # Guard against caching across a set_tree() that raced the
                # dispatch: a result computed on the new tree must not be
                # filed under the old snapshot's key (or vice versa).
                # Truncated (inexact) answers are never cached — a retry
                # under a healthier budget must be free to do better.
                self.cache.put(key, _CachedResult(list(results), tree_stats))
        latency_ms = (loop.time() - start) * 1000.0
        self.degradation.observe(latency_ms / 1000.0)
        self.stats.record_completed(latency_ms, cache_hit=False,
                                    computed=outcome.primary,
                                    batch_size=outcome.batch_size,
                                    exact=exact)
        return QueryResponse(
            results=list(results),
            meta=self._meta(request, latency_ms, snapshot,
                            cache_hit=False, computed=outcome.primary,
                            batch_size=outcome.batch_size,
                            distinct=outcome.distinct,
                            tree_stats=tree_stats_to_dict(tree_stats),
                            results_obj=results),
        )

    def _meta(self, request: QueryRequest, latency_ms: float, snapshot: int,
              cache_hit: bool, computed: bool, batch_size: int,
              distinct: int, tree_stats: Dict[str, int],
              results_obj: Any = None) -> Dict[str, Any]:
        """The per-request observability record (stats schema, DESIGN.md).

        ``tree_stats`` holds the ``TrajTreeStats`` deltas of the
        computation that produced the result: the real counters for a
        computed request (shared verbatim by coalesced duplicates, which
        carry ``computed: false``), all-zero for a cache hit (no tree work
        ran).  Aggregates count each computation exactly once.

        ``degraded`` / ``missing_shards`` flag answers computed over a
        partial forest: correct over the healthy shards, but possibly
        missing results that live on the absent ones.

        ``anytime`` reports the budget outcome when the computation ran
        under one (:meth:`AnytimeResult.meta_dict`): the ``exact`` flag,
        the truncation reason, the residual frontier bound and the implied
        upper-bound factor.  ``None`` when no budget was in play (cache
        hits included — only exact results are cached).
        """
        meta_fn = getattr(results_obj, "meta_dict", None)
        anytime = meta_fn() if callable(meta_fn) else None
        census = self.shard_census()
        return {
            "anytime": anytime,
            "kind": request.kind,
            "param": request.param,
            "latency_ms": latency_ms,
            "cache_hit": cache_hit,
            "computed": computed,
            "batch_size": batch_size,
            "distinct_in_batch": distinct,
            "snapshot_id": snapshot,
            "degraded": self.degraded,
            "missing_shards": [m["shard"] for m in census["missing"]],
            "tree_stats": dict(tree_stats),
        }

    # ------------------------------------------------------------------ #
    # observability and lifecycle
    # ------------------------------------------------------------------ #

    def stats_dict(self) -> Dict[str, Any]:
        """The ``/stats`` payload: service counters, cache counters, the
        served snapshot, and the effective configuration."""
        out = self.stats.to_dict()
        out["cache"] = self.cache.counters()
        out["index"] = {
            "snapshot_id": self.snapshot_id,
            "trajectories": len(self._tree),
            "normalized": self._tree.normalized,
            "degraded": self.degraded,
            "shards": self.shard_census(),
        }
        out["overload"] = {
            "admission": self.admission.stats_dict(),
            "breaker": self.breaker.stats_dict(),
            "degradation": self.degradation.stats_dict(),
        }
        out["config"] = {
            "window": self.config.window,
            "max_batch": self.config.max_batch,
            "max_pending": self.config.max_pending,
            "cache_capacity": self.config.cache_capacity,
            "default_timeout": self.config.default_timeout,
            "max_inflight": self.config.max_inflight,
            "reserved_control": self.config.reserved_control,
            "slo_ms": self.config.slo_ms,
        }
        return out

    async def aclose(self) -> None:
        """Drain cleanly: refuse new requests, deliver every accepted one
        (a shutdown mid-batch finishes the batch first).

        Idempotent and safe under concurrent calls: the first caller
        starts the drain, every caller — including repeats after it
        finished — awaits the same drain future.
        """
        self._closed = True
        if self._reload_task is not None:
            self._reload_task.cancel()
            try:
                await self._reload_task
            except asyncio.CancelledError:
                pass
            self._reload_task = None
        if self._drain_task is None:
            self._drain_task = asyncio.ensure_future(self._batcher.drain())
        await asyncio.shield(self._drain_task)


# ---------------------------------------------------------------------- #
# the TCP front-end
# ---------------------------------------------------------------------- #


async def _handle_connection(
    service: QueryService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """One client connection: JSON lines in, JSON lines out, in order.

    Concurrency across *connections* is what feeds the coalescing window;
    within a connection, requests are answered sequentially so responses
    line up with requests.
    """
    try:
        while True:
            try:
                line = await reader.readline()
            except (ConnectionError, asyncio.IncompleteReadError):
                break
            if not line:
                break
            if not line.strip():
                continue
            try:
                obj = decode_request(line)
                op = obj.get("op")
                if op in ("ping", "stats", "health", "reload"):
                    # Control ops run under the "control" admission class:
                    # they may take the reserved tokens, so health probes
                    # and stats scrapes answer promptly during kNN floods.
                    async with service.admission.admit("control"):
                        if op == "ping":
                            response = {"ok": True, "result": "pong"}
                        elif op == "stats":
                            response = {"ok": True,
                                        "result": service.stats_dict()}
                        elif op == "health":
                            response = {"ok": True,
                                        "result": service.health_dict()}
                        else:
                            response = {"ok": True,
                                        "result": await service.reload()}
                else:
                    answer = await service.submit(request_from_obj(obj))
                    response = {
                        "ok": True,
                        "result": [[tid, d] for tid, d in answer.results],
                        "meta": answer.meta,
                    }
            except ServiceError as exc:
                error: Dict[str, Any] = {
                    "code": exc.code, "message": str(exc)
                }
                retry_after = getattr(exc, "retry_after", None)
                if retry_after is not None:
                    error["retry_after"] = retry_after
                response = {"ok": False, "error": error}
            writer.write(encode_response(response))
            try:
                await writer.drain()
            except ConnectionError:
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass


async def serve(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8765,
) -> asyncio.AbstractServer:
    """Expose a service over TCP; returns the listening asyncio server.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.sockets[0].getsockname()``) — the form the tests and
    ``repro serve --selftest`` use.  Close with ``server.close()`` +
    ``await server.wait_closed()``, then ``await service.aclose()`` to
    drain in-flight batches.
    """
    return await asyncio.start_server(
        lambda r, w: _handle_connection(service, r, w), host, port
    )
