"""Admission control and SLO-driven degradation for the query service.

Two cooperating pieces sit in front of the dispatch path (DESIGN.md,
"Overload control and anytime queries"):

:class:`AdmissionController`
    A small token scheduler with two request classes.  ``query`` work
    (kNN / range floods) competes for at most ``max_inflight -
    reserved_control`` concurrency tokens; ``control`` work (``stats``,
    ``health``, ``ping``, ``reload``) may use *any* token, including the
    reserved ones — so a health probe never waits behind a pile of kNN
    requests for the last token.  Each class has a bounded FIFO wait
    queue; when a queue is full the request is shed immediately with
    :class:`~repro.service.protocol.ServiceOverloaded` rather than
    building unbounded latency.  Releases wake control waiters first —
    the "priority queue" half of the scheme.

:class:`DegradationPolicy`
    Watches completed-query latencies and, as the measured p99 approaches
    the configured SLO, emits a progressively tighter
    :class:`~repro.index.budget.QueryBudget` floor for the server to
    ``combine_budgets`` into every query.  Pressure rises instantly
    (one bad window tightens the floor now) and decays slowly (recovery
    is gradual, avoiding oscillation).  At full pressure the floor is the
    configured ``floor`` budget; between ``start`` and ``full`` pressure
    the knobs interpolate: deadlines and bound allowances shrink toward
    the floor, epsilon grows toward it.  The result is the ISSUE's
    degraded mode: under overload the service answers *approximately and
    flagged* instead of timing out.
"""

from __future__ import annotations

import asyncio
from collections import deque
from contextlib import asynccontextmanager
from typing import Deque, Dict, List, Optional

from ..index.budget import QueryBudget
from .protocol import ServiceOverloaded

__all__ = ["AdmissionController", "DegradationPolicy"]

#: Request classes the controller distinguishes.
CLASSES = ("query", "control")


class AdmissionController:
    """Two-class concurrency-token scheduler with bounded wait queues.

    ``max_inflight`` is the total token pool; ``reserved_control`` tokens
    are usable only by the ``control`` class.  ``max_waiting`` bounds each
    class's wait queue — an arriving request that finds its queue full is
    shed with :class:`ServiceOverloaded` carrying a ``retry_after`` hint.
    """

    def __init__(
        self,
        max_inflight: int = 64,
        reserved_control: int = 2,
        max_waiting: int = 512,
        retry_after: float = 0.05,
    ):
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        if not 0 <= reserved_control < max_inflight:
            raise ValueError(
                "reserved_control must be in [0, max_inflight)"
            )
        self.max_inflight = max_inflight
        self.reserved_control = reserved_control
        self.max_waiting = max_waiting
        self.retry_after = retry_after
        self._inflight = 0
        self._waiters: Dict[str, Deque[asyncio.Future]] = {
            cls: deque() for cls in CLASSES
        }
        self.admitted = {cls: 0 for cls in CLASSES}
        self.shed = {cls: 0 for cls in CLASSES}

    def _limit(self, cls: str) -> int:
        if cls == "control":
            return self.max_inflight
        return self.max_inflight - self.reserved_control

    def _try_acquire(self, cls: str) -> bool:
        if self._inflight < self._limit(cls):
            self._inflight += 1
            return True
        return False

    def _release(self) -> None:
        self._inflight -= 1
        # Wake control waiters first: they may use the reserved tokens
        # that query waiters cannot, and they are the latency-critical
        # class.  A woken future re-checks nothing — the token transfers
        # directly, so a burst of releases cannot over-admit.
        for cls in ("control", "query"):
            queue = self._waiters[cls]
            while queue:
                fut = queue.popleft()
                if fut.done():  # cancelled while waiting
                    continue
                if self._try_acquire(cls):
                    fut.set_result(None)
                else:
                    queue.appendleft(fut)
                return

    @asynccontextmanager
    async def admit(self, cls: str = "query"):
        """Hold one concurrency token for the duration of the block.

        Sheds with :class:`ServiceOverloaded` (with ``retry_after``) when
        the class's wait queue is full.  Safe under cancellation: a
        waiter cancelled before admission never holds a token; one
        cancelled *after* the token transferred releases it.
        """
        if cls not in CLASSES:
            raise ValueError(f"unknown admission class {cls!r}")
        if not self._try_acquire(cls):
            queue = self._waiters[cls]
            if len(queue) >= self.max_waiting:
                self.shed[cls] += 1
                exc = ServiceOverloaded(
                    f"admission queue full for class {cls!r} "
                    f"({len(queue)} waiting); retry after "
                    f"{self.retry_after:g}s"
                )
                exc.retry_after = self.retry_after
                raise exc
            fut: asyncio.Future = asyncio.get_running_loop().create_future()
            queue.append(fut)
            try:
                await fut
            except asyncio.CancelledError:
                if fut.done() and not fut.cancelled():
                    # The token already transferred; give it back.
                    self._release()
                else:
                    try:
                        queue.remove(fut)
                    except ValueError:
                        pass
                raise
        self.admitted[cls] += 1
        try:
            yield
        finally:
            self._release()

    def stats_dict(self) -> Dict[str, object]:
        """Snapshot for the ``/stats`` endpoint."""
        return {
            "max_inflight": self.max_inflight,
            "reserved_control": self.reserved_control,
            "inflight": self._inflight,
            "waiting": {
                cls: len(self._waiters[cls]) for cls in CLASSES
            },
            "admitted": dict(self.admitted),
            "shed": dict(self.shed),
        }


class DegradationPolicy:
    """Turn a measured p99-vs-SLO pressure signal into a budget floor.

    ``observe(latency_seconds)`` feeds completed-query latencies; every
    ``recompute_every`` observations the p99 of the sliding window is
    recomputed and the degradation *level* updated:

    * ``pressure = p99 / slo`` (both seconds).
    * The target level is ``clamp((pressure - start) / (full - start),
      0, 1)`` — 0 below ``start`` (default 0.7: p99 at 70% of SLO),
      1 at ``full`` (default 1.0: p99 at the SLO).
    * The level *rises* to the target immediately but *decays* toward it
      by at most ``decay`` per recompute, so one good window does not
      snap the service back to exact mode mid-overload.

    ``current_budget()`` maps the level onto the configured ``floor``
    budget: at level ``L`` the deadline is ``floor.deadline / L`` (so it
    reaches the floor exactly at full pressure and relaxes hyperbolically
    below), ``max_bounds`` likewise, and ``epsilon`` is ``floor.epsilon *
    L``.  At level 0 it returns ``None`` — no tightening.
    """

    def __init__(
        self,
        slo_ms: Optional[float],
        floor: Optional[QueryBudget] = None,
        window: int = 128,
        recompute_every: int = 16,
        start: float = 0.7,
        full: float = 1.0,
        decay: float = 0.25,
    ):
        if slo_ms is not None and slo_ms <= 0:
            raise ValueError("slo_ms must be positive")
        if not start < full:
            raise ValueError("start pressure must be below full pressure")
        self.slo_ms = slo_ms
        self.floor = floor
        self.start = start
        self.full = full
        self.decay = decay
        self.recompute_every = recompute_every
        self._latencies: Deque[float] = deque(maxlen=window)
        self._since_recompute = 0
        self.level = 0.0
        self.p99 = 0.0

    @property
    def enabled(self) -> bool:
        return self.slo_ms is not None and self.floor is not None

    def observe(self, latency_seconds: float) -> None:
        if not self.enabled:
            return
        self._latencies.append(latency_seconds)
        self._since_recompute += 1
        if self._since_recompute >= self.recompute_every:
            self._since_recompute = 0
            self._recompute()

    def _recompute(self) -> None:
        ordered: List[float] = sorted(self._latencies)
        if not ordered:
            return
        idx = min(len(ordered) - 1, int(0.99 * len(ordered)))
        self.p99 = ordered[idx]
        pressure = self.p99 / (self.slo_ms / 1000.0)
        span = self.full - self.start
        target = min(1.0, max(0.0, (pressure - self.start) / span))
        if target >= self.level:
            self.level = target
        else:
            self.level = max(target, self.level - self.decay)

    def current_budget(self) -> Optional[QueryBudget]:
        """The budget floor to fold into queries right now, or ``None``."""
        if not self.enabled or self.level <= 0.0:
            return None
        lvl = self.level
        floor = self.floor
        deadline = (
            None if floor.deadline is None else floor.deadline / lvl
        )
        max_bounds = (
            None
            if floor.max_bounds is None
            else max(1, int(floor.max_bounds / lvl))
        )
        epsilon = floor.epsilon * lvl if floor.epsilon else 0.0
        return QueryBudget(
            deadline=deadline, max_bounds=max_bounds, epsilon=epsilon
        )

    def stats_dict(self) -> Dict[str, object]:
        """Snapshot for the ``/stats`` endpoint."""
        budget = self.current_budget()
        return {
            "enabled": self.enabled,
            "slo_ms": self.slo_ms,
            "level": self.level,
            "p99_ms": self.p99 * 1000.0,
            "active_budget": None if budget is None else budget.to_dict(),
        }
