"""Asyncio client for the query service's JSON-line TCP protocol.

Mirrors the TrajTree query surface over the wire::

    from repro.service.client import ServiceClient

    async def main():
        client = await ServiceClient.connect("127.0.0.1", 8765)
        try:
            results, meta = await client.knn(query_traj, k=5)
            print(results, meta["latency_ms"], meta["cache_hit"])
            print(await client.stats())      # the /stats endpoint
        finally:
            await client.aclose()

Query methods return ``(results, meta)`` with ``results`` the same
``[(traj_id, distance), ...]`` list the library call returns and ``meta``
the per-request observability record (DESIGN.md, "Query service").
Server-side failures re-raise as the typed
:class:`~repro.service.protocol.ServiceError` subclasses.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Tuple

from ..core.trajectory import Trajectory
from .protocol import (
    QueryRequest,
    ServiceError,
    decode_response,
    encode_request,
    encode_response,
    error_from_code,
)

__all__ = ["ServiceClient"]

Results = List[Tuple[int, float]]


class ServiceClient:
    """One connection to a running query service.

    Requests on one client are sequential (the protocol answers in
    order); open several clients for concurrent load — that is exactly
    the shape the server's coalescing window feeds on.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str = "127.0.0.1",
                      port: int = 8765) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:
            pass

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    async def knn(self, query: Trajectory, k: int,
                  timeout: Optional[float] = None
                  ) -> Tuple[Results, Dict[str, Any]]:
        """k nearest neighbours; mirrors :meth:`TrajTree.knn`."""
        return await self._query(QueryRequest("knn", query, k, timeout))

    async def range_query(self, query: Trajectory, radius: float,
                          timeout: Optional[float] = None
                          ) -> Tuple[Results, Dict[str, Any]]:
        """All trajectories within ``radius``; mirrors
        :meth:`TrajTree.range_query`."""
        return await self._query(
            QueryRequest("range", query, radius, timeout)
        )

    async def subtrajectory_knn(self, query: Trajectory, k: int,
                                timeout: Optional[float] = None
                                ) -> Tuple[Results, Dict[str, Any]]:
        """Sub-trajectory k-NN; mirrors
        :meth:`TrajTree.subtrajectory_knn`."""
        return await self._query(
            QueryRequest("subtrajectory_knn", query, k, timeout)
        )

    async def stats(self) -> Dict[str, Any]:
        """The service's ``/stats`` payload."""
        return (await self._roundtrip({"op": "stats"}))["result"]

    async def ping(self) -> bool:
        return (await self._roundtrip({"op": "ping"}))["result"] == "pong"

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    async def _query(self, request: QueryRequest
                     ) -> Tuple[Results, Dict[str, Any]]:
        self._writer.write(encode_request(request))
        obj = await self._read_response()
        results = [(int(tid), float(d)) for tid, d in obj["result"]]
        return results, obj.get("meta", {})

    async def _roundtrip(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._writer.write(encode_response(payload))   # same line codec
        return await self._read_response()

    async def _read_response(self) -> Dict[str, Any]:
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ServiceError("server closed the connection")
        obj = decode_response(line)
        if not obj.get("ok"):
            err = obj.get("error") or {}
            raise error_from_code(err.get("code", "service_error"),
                                  err.get("message", "request failed"))
        return obj
