"""Asyncio client for the query service's JSON-line TCP protocol.

Mirrors the TrajTree query surface over the wire::

    from repro.service.client import ServiceClient
    from repro.service.retry import RetryPolicy

    async def main():
        client = await ServiceClient.connect("127.0.0.1", 8765,
                                             retry=RetryPolicy())
        try:
            results, meta = await client.knn(query_traj, k=5)
            print(results, meta["latency_ms"], meta["cache_hit"])
            print(await client.stats())      # the /stats endpoint
            print(await client.health())     # readiness + shard census
        finally:
            await client.aclose()

Query methods return ``(results, meta)`` with ``results`` the same
``[(traj_id, distance), ...]`` list the library call returns and ``meta``
the per-request observability record (DESIGN.md, "Query service").
Server-side failures re-raise as the typed
:class:`~repro.service.protocol.ServiceError` subclasses.

**Transport failures are typed too**: a reset connection, a drained
server, or a truncated response line raises
:class:`~repro.service.protocol.ServiceConnectionError` — never a raw
``ConnectionResetError`` or ``IncompleteReadError``.  With a
:class:`~repro.service.retry.RetryPolicy`, the client transparently
retries transient failures (connection errors reconnect first; an
:class:`~repro.service.protocol.ServiceOverloaded` shed keeps the
connection) with capped exponential backoff and full jitter.  Every
operation the client offers is an idempotent read or an idempotent
snapshot swap, so a retried request that the server already served
cannot corrupt anything.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Tuple

from ..core.trajectory import Trajectory
from ..index.budget import QueryBudget
from ..testing import faults
from .protocol import (
    QueryRequest,
    ServiceConnectionError,
    ServiceOverloaded,
    ServiceUnavailable,
    decode_response,
    encode_request,
    encode_response,
    error_from_code,
)
from .retry import RetryExhausted, RetryPolicy

__all__ = ["ServiceClient"]

Results = List[Tuple[int, float]]

#: Transport failures the client wraps into ServiceConnectionError.
_TRANSPORT_ERRORS = (ConnectionError, asyncio.IncompleteReadError,
                     BrokenPipeError, OSError)


class ServiceClient:
    """One connection to a running query service.

    Requests on one client are sequential (the protocol answers in
    order); open several clients for concurrent load — that is exactly
    the shape the server's coalescing window feeds on.

    Pass ``retry=RetryPolicy(...)`` to make the client survive transient
    failures on its own; without a policy every transport failure raises
    :class:`ServiceConnectionError` on the first occurrence.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 host: Optional[str] = None, port: Optional[int] = None,
                 retry: Optional[RetryPolicy] = None):
        self._reader: Optional[asyncio.StreamReader] = reader
        self._writer: Optional[asyncio.StreamWriter] = writer
        self._host = host
        self._port = port
        self._retry = retry
        self._rng = retry.rng() if retry is not None else None

    @classmethod
    async def connect(cls, host: str = "127.0.0.1", port: int = 8765,
                      retry: Optional[RetryPolicy] = None
                      ) -> "ServiceClient":
        """Open a connection; with ``retry``, connect attempts follow the
        same backoff schedule as requests."""
        client = cls.__new__(cls)
        ServiceClient.__init__(client, None, None, host=host, port=port,
                               retry=retry)
        attempts = retry.attempts if retry is not None else 1
        for attempt in range(attempts):
            try:
                await client._open()
                return client
            except ServiceConnectionError:
                if attempt + 1 >= attempts:
                    raise
                await asyncio.sleep(retry.delay(attempt, client._rng))
        raise AssertionError("unreachable")

    async def aclose(self) -> None:
        if self._writer is None:
            return
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except _TRANSPORT_ERRORS:
            pass
        self._reader = self._writer = None

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    async def knn(self, query: Trajectory, k: int,
                  timeout: Optional[float] = None,
                  budget: Optional[QueryBudget] = None
                  ) -> Tuple[Results, Dict[str, Any]]:
        """k nearest neighbours; mirrors :meth:`TrajTree.knn`.

        ``budget`` volunteers a :class:`~repro.index.budget.QueryBudget`;
        a truncated answer comes back flagged in ``meta["anytime"]``.
        """
        return await self._query(
            QueryRequest("knn", query, k, timeout, budget)
        )

    async def range_query(self, query: Trajectory, radius: float,
                          timeout: Optional[float] = None,
                          budget: Optional[QueryBudget] = None
                          ) -> Tuple[Results, Dict[str, Any]]:
        """All trajectories within ``radius``; mirrors
        :meth:`TrajTree.range_query`."""
        return await self._query(
            QueryRequest("range", query, radius, timeout, budget)
        )

    async def subtrajectory_knn(self, query: Trajectory, k: int,
                                timeout: Optional[float] = None,
                                budget: Optional[QueryBudget] = None
                                ) -> Tuple[Results, Dict[str, Any]]:
        """Sub-trajectory k-NN; mirrors
        :meth:`TrajTree.subtrajectory_knn`."""
        return await self._query(
            QueryRequest("subtrajectory_knn", query, k, timeout, budget)
        )

    async def stats(self) -> Dict[str, Any]:
        """The service's ``/stats`` payload."""
        return (await self._control({"op": "stats"}))["result"]

    async def ping(self) -> bool:
        return (await self._control({"op": "ping"}))["result"] == "pong"

    async def health(self) -> Dict[str, Any]:
        """Readiness, degraded state and the shard census (``health`` op)."""
        return (await self._control({"op": "health"}))["result"]

    async def reload(self) -> Dict[str, Any]:
        """Ask the service to reload its snapshot and atomically swap it
        in; returns the new snapshot's summary (``reload`` op)."""
        return (await self._control({"op": "reload"}))["result"]

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    async def _query(self, request: QueryRequest
                     ) -> Tuple[Results, Dict[str, Any]]:
        obj = await self._request(encode_request(request))
        results = [(int(tid), float(d)) for tid, d in obj["result"]]
        return results, obj.get("meta", {})

    async def _control(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return await self._request(encode_response(payload))  # same codec

    async def _open(self) -> None:
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self._host, self._port
            )
        except _TRANSPORT_ERRORS as exc:
            raise ServiceConnectionError(
                f"cannot connect to {self._host}:{self._port}: {exc}"
            ) from exc

    async def _teardown(self) -> None:
        """Drop a connection we no longer trust before reconnecting."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except _TRANSPORT_ERRORS:
                pass
        self._reader = self._writer = None

    async def _request(self, data: bytes) -> Dict[str, Any]:
        """One request line → one response object, with the retry loop.

        Transient failures (connection errors, overload sheds, breaker
        refusals) retry up to the policy's budget with full-jitter
        backoff; connection failures reconnect first (requires the client
        to know its ``host``/``port`` — one built from raw streams
        cannot).  A breaker refusal
        (:class:`~repro.service.protocol.ServiceUnavailable`) carries the
        server's ``retry_after`` suggestion, which stretches the next
        delay when it exceeds the jittered one.  When the whole budget is
        spent on transient failures, a typed non-retryable
        :class:`~repro.service.retry.RetryExhausted` surfaces instead of
        the last transient error.
        """
        policy = self._retry
        attempts = policy.attempts if policy is not None else 1
        for attempt in range(attempts):
            try:
                if self._writer is None:
                    if self._host is None:
                        raise ServiceConnectionError(
                            "connection lost and the client has no "
                            "host/port to reconnect to"
                        )
                    await self._open()
                return await self._roundtrip(data)
            except (ServiceConnectionError, ServiceOverloaded,
                    ServiceUnavailable) as exc:
                if isinstance(exc, ServiceConnectionError):
                    # Overload sheds and breaker refusals are healthy
                    # server answers — only transport failures poison
                    # the connection.
                    await self._teardown()
                if attempt + 1 >= attempts:
                    if attempts > 1:
                        raise RetryExhausted(
                            f"all {attempts} attempts failed transiently; "
                            f"last error: [{exc.code}] {exc}",
                            last_error=exc,
                        ) from exc
                    raise
                delay = policy.delay(attempt, self._rng)
                retry_after = getattr(exc, "retry_after", None)
                if retry_after is not None:
                    delay = max(delay, retry_after)
                await asyncio.sleep(delay)
        raise AssertionError("unreachable")

    async def _roundtrip(self, data: bytes) -> Dict[str, Any]:
        """Send one line, read one line; wrap every transport failure —
        including an empty read (server drained the socket) — into
        :class:`ServiceConnectionError`."""
        try:
            faults.fire("client.send")
            self._writer.write(data)
            await self._writer.drain()
            faults.fire("client.recv")
            line = await self._reader.readline()
        except _TRANSPORT_ERRORS as exc:
            raise ServiceConnectionError(
                f"connection to the service failed: {exc!r}"
            ) from exc
        if not line:
            raise ServiceConnectionError("server closed the connection")
        obj = decode_response(line)
        if not obj.get("ok"):
            err = obj.get("error") or {}
            raise error_from_code(err.get("code", "service_error"),
                                  err.get("message", "request failed"),
                                  retry_after=err.get("retry_after"))
        return obj
