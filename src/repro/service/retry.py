"""Retry and backoff policy of the resilient service client and the
degraded-snapshot reload loop (DESIGN.md, "Fault model and degraded
serving").

Two schedules, one module:

* :class:`RetryPolicy` — client-side request retry: **capped exponential
  backoff with full jitter** (AWS-style: each delay is drawn uniformly
  from ``[0, min(cap, base * 2**attempt)]``), so a thundering herd of
  clients retrying a shed or dropped request decorrelates instead of
  re-stampeding the service on a synchronized schedule.  Seedable for
  deterministic tests.
* :class:`Backoff` — server-side reload retry: plain capped exponential
  backoff (one process probing its own snapshot directory needs no
  jitter, and determinism keeps the chaos gate reproducible), with
  :meth:`Backoff.reset` for when an attempt makes progress.

:func:`is_transient` is the shared classification: overload sheds,
breaker refusals (:class:`~repro.service.protocol.ServiceUnavailable` —
the breaker *suggests* when to come back via ``retry_after``) and
transport failures are worth retrying (the query kinds are idempotent
reads); invalid requests, timeouts and closed services are not —
a timeout already *spent* its deadline, retrying it would double it.

When a policy's whole attempt budget is consumed by transient failures,
the client surfaces :class:`RetryExhausted` — a typed, *non-retryable*
error chaining the final transient failure — so callers distinguish "the
service refused N times in a row" from a single transient blip they might
themselves retry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from .protocol import (
    ServiceConnectionError,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
)

__all__ = ["RetryPolicy", "Backoff", "RetryExhausted", "is_transient",
           "TRANSIENT_ERRORS"]

#: Errors a retry may heal: backpressure sheds, breaker refusals, typed
#: transport failures, and raw OS-level connection errors (hit while
#: *re*-connecting).
TRANSIENT_ERRORS = (ServiceOverloaded, ServiceUnavailable,
                    ServiceConnectionError, ConnectionError)


class RetryExhausted(ServiceError):
    """Every attempt of a retry policy failed transiently.

    Non-retryable by construction (``is_transient`` returns ``False``):
    the policy already spent its budget.  ``last_error`` holds the final
    transient failure (also chained as ``__cause__``).
    """

    code = "retry_exhausted"

    def __init__(self, message: str, last_error: Optional[BaseException] = None):
        super().__init__(message)
        self.last_error = last_error


def is_transient(exc: BaseException) -> bool:
    """Whether retrying this failure can possibly succeed."""
    return isinstance(exc, TRANSIENT_ERRORS)


@dataclass(frozen=True)
class RetryPolicy:
    """Client retry tunables: ``attempts`` total tries, full-jitter
    delays growing from ``base`` and capped at ``cap`` seconds.

    ``seed`` pins the jitter sequence (tests, the chaos gate); ``None``
    draws from a fresh system-seeded RNG per client.
    """

    attempts: int = 4
    base: float = 0.05
    cap: float = 2.0
    seed: Optional[int] = None

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base < 0 or self.cap < 0:
            raise ValueError("base and cap must be non-negative")

    def rng(self) -> random.Random:
        """A jitter RNG for one client (seeded iff the policy is)."""
        return random.Random(self.seed)

    def delay(self, attempt: int, rng: random.Random) -> float:
        """The full-jitter delay before retry number ``attempt`` (0-based):
        uniform over ``[0, min(cap, base * 2**attempt)]``."""
        return rng.uniform(0.0, min(self.cap, self.base * (2 ** attempt)))


class Backoff:
    """Capped exponential backoff: ``base * 2**n`` seconds, ceilinged at
    ``cap``; :meth:`next_delay` advances, :meth:`reset` starts over."""

    def __init__(self, base: float = 1.0, cap: float = 30.0):
        if base < 0 or cap < 0:
            raise ValueError("base and cap must be non-negative")
        self.base = base
        self.cap = cap
        self.attempt = 0

    def next_delay(self) -> float:
        delay = min(self.cap, self.base * (2 ** self.attempt))
        self.attempt += 1
        return delay

    def reset(self) -> None:
        self.attempt = 0
