"""Service-side observability: per-request records folded into counters.

One :class:`ServiceStats` instance lives on the service and is only ever
mutated from the event loop thread (records are folded in after a request
completes, never from the executor running the batch), so it needs no
locking.  :meth:`ServiceStats.to_dict` is the stats schema the ``/stats``
endpoint serves — documented in DESIGN.md, "Query service".

``TrajTreeStats`` deltas are aggregated only for *computed* requests:
cache hits and batch-mates of a deduplicated computation report
zero-valued deltas in their per-request meta and add nothing here, so the
totals track actual tree work, matching the exact accounting contract of
:class:`repro.index.trajtree.TrajTreeStats`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, fields
from typing import Any, Deque, Dict, List

from ..index.trajtree import TrajTreeStats

__all__ = ["ServiceStats", "percentile"]

#: Latency samples kept for the p50/p99 figures (a sliding window — the
#: service is long-running and an unbounded list would be a slow leak).
LATENCY_WINDOW = 4096


def percentile(values: List[float], q: float) -> float:
    """The ``q``-quantile (0..1) by linear interpolation; 0.0 when empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def tree_stats_to_dict(stats: TrajTreeStats) -> Dict[str, int]:
    """A ``TrajTreeStats`` as a plain counter dict (the wire form)."""
    return {f.name: getattr(stats, f.name) for f in fields(TrajTreeStats)}


@dataclass
class ServiceStats:
    """Cumulative service counters plus a sliding latency window."""

    requests: int = 0
    completed: int = 0
    cache_hits: int = 0
    computed: int = 0            # requests whose result ran on the tree
    coalesced: int = 0           # completed requests that shared a batch
                                 # with at least one other request
    approximate: int = 0         # completed answers flagged exact=False
                                 # (budget-truncated anytime results)
    errors: Dict[str, int] = field(default_factory=dict)
    by_kind: Dict[str, int] = field(default_factory=dict)
    batches: int = 0
    batched_requests: int = 0    # sum of batch sizes over all batches
    distinct_dispatched: int = 0  # singleflighted computations dispatched
    max_batch_size: int = 0
    reloads: int = 0             # snapshot swaps via reload (admin or
                                 # background degraded-recovery)
    tree_totals: TrajTreeStats = field(default_factory=TrajTreeStats)
    _latencies_ms: Deque[float] = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW)
    )

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def record_submitted(self, kind: str) -> None:
        self.requests += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1

    def record_completed(
        self,
        latency_ms: float,
        cache_hit: bool,
        computed: bool,
        batch_size: int,
        exact: bool = True,
    ) -> None:
        self.completed += 1
        self._latencies_ms.append(latency_ms)
        if cache_hit:
            self.cache_hits += 1
        if computed:
            self.computed += 1
        if batch_size > 1:
            self.coalesced += 1
        if not exact:
            self.approximate += 1

    def record_error(self, code: str) -> None:
        self.errors[code] = self.errors.get(code, 0) + 1

    def record_reload(self) -> None:
        self.reloads += 1

    def record_batch(self, batch_size: int, distinct: int) -> None:
        self.batches += 1
        self.batched_requests += batch_size
        self.distinct_dispatched += distinct
        self.max_batch_size = max(self.max_batch_size, batch_size)

    def record_tree_stats(self, delta: TrajTreeStats) -> None:
        """Fold one computed query's counter deltas into the totals."""
        for f in fields(TrajTreeStats):
            setattr(self.tree_totals, f.name,
                    getattr(self.tree_totals, f.name)
                    + getattr(delta, f.name))

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def latency_summary(self) -> Dict[str, float]:
        values = list(self._latencies_ms)
        return {
            "count": len(values),
            "p50_ms": percentile(values, 0.50),
            "p99_ms": percentile(values, 0.99),
            "max_ms": max(values) if values else 0.0,
            "mean_ms": sum(values) / len(values) if values else 0.0,
        }

    def to_dict(self) -> Dict[str, Any]:
        """The ``/stats`` schema (see DESIGN.md, "Query service")."""
        mean_batch = (
            self.batched_requests / self.batches if self.batches else 0.0
        )
        return {
            "requests": self.requests,
            "completed": self.completed,
            "cache_hits": self.cache_hits,
            "computed": self.computed,
            "coalesced": self.coalesced,
            "approximate": self.approximate,
            "errors": dict(self.errors),
            "by_kind": dict(self.by_kind),
            "reloads": self.reloads,
            "batches": {
                "dispatched": self.batches,
                "requests": self.batched_requests,
                "distinct": self.distinct_dispatched,
                "mean_size": mean_batch,
                "max_size": self.max_batch_size,
            },
            "latency": self.latency_summary(),
            "tree": tree_stats_to_dict(self.tree_totals),
        }
