"""Circuit breaker guarding the query dispatch path.

Classic three-state machine (DESIGN.md, "Overload control and anytime
queries"):

``closed``
    Normal operation.  Every dispatch outcome lands in a sliding window
    of booleans; when the window holds at least ``min_samples`` outcomes
    and the failure rate reaches ``threshold``, the breaker *opens*.

``open``
    :meth:`check` raises :class:`~repro.service.protocol.ServiceUnavailable`
    with ``retry_after`` set to the remaining cooldown — callers get an
    immediate typed refusal instead of queueing work the backend is
    currently failing.  After ``cooldown`` seconds the next
    :meth:`check` transitions to half-open.

``half_open``
    A limited number of probe requests (``probes``) are let through.
    ``probes`` consecutive successes close the breaker and clear the
    window; any failure re-opens it for a fresh cooldown.

Failures are *dispatch* failures: per-request timeouts and unexpected
dispatch exceptions.  Shed requests (``ServiceOverloaded``) and client
mistakes (``InvalidRequest``) never count — they say nothing about
backend health.  The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, Optional

from .protocol import ServiceUnavailable

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Sliding-window failure-rate breaker with half-open probes."""

    def __init__(
        self,
        window: int = 64,
        threshold: float = 0.5,
        min_samples: int = 16,
        cooldown: float = 0.5,
        probes: int = 2,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if min_samples <= 0 or window < min_samples:
            raise ValueError("need 0 < min_samples <= window")
        if probes <= 0:
            raise ValueError("probes must be positive")
        self.threshold = threshold
        self.min_samples = min_samples
        self.cooldown = cooldown
        self.probes = probes
        self._clock = clock
        self._window: Deque[bool] = deque(maxlen=window)
        self.state = "closed"
        self._opened_at = 0.0
        self._probe_successes = 0
        self.trips = 0

    def check(self) -> None:
        """Gate one dispatch; raises :class:`ServiceUnavailable` if open."""
        if self.state == "open":
            elapsed = self._clock() - self._opened_at
            if elapsed >= self.cooldown:
                self.state = "half_open"
                self._probe_successes = 0
            else:
                remaining = max(0.0, self.cooldown - elapsed)
                raise ServiceUnavailable(
                    "circuit breaker open: dispatch failure rate exceeded "
                    f"{self.threshold:g}; retry after {remaining:.3f}s",
                    retry_after=remaining,
                )

    def record_success(self) -> None:
        if self.state == "half_open":
            self._probe_successes += 1
            if self._probe_successes >= self.probes:
                self.state = "closed"
                self._window.clear()
            return
        self._window.append(True)

    def record_failure(self) -> None:
        if self.state == "half_open":
            self._trip()
            return
        if self.state == "open":
            return
        self._window.append(False)
        if len(self._window) >= self.min_samples:
            failures = sum(1 for ok in self._window if not ok)
            if failures / len(self._window) >= self.threshold:
                self._trip()

    def _trip(self) -> None:
        self.state = "open"
        self._opened_at = self._clock()
        self._window.clear()
        self.trips += 1

    def retry_after(self) -> Optional[float]:
        """Remaining cooldown if open, else ``None``."""
        if self.state != "open":
            return None
        return max(0.0, self.cooldown - (self._clock() - self._opened_at))

    def stats_dict(self) -> Dict[str, object]:
        """Snapshot for the ``/stats`` endpoint."""
        return {
            "state": self.state,
            "trips": self.trips,
            "window": len(self._window),
            "failures": sum(1 for ok in self._window if not ok),
        }
