"""Wire protocol and typed errors of the query service.

The service speaks newline-delimited JSON over a plain TCP stream: one
request object per line in, one response object per line out, in order.
Three query operations mirror the :class:`~repro.index.trajtree.TrajTree`
query surface (``knn`` / ``range`` / ``subtrajectory_knn``) plus four
control operations: ``stats`` (the ``/stats`` endpoint), ``ping``,
``health`` (readiness + degraded state + shard census) and ``reload``
(atomically swap in a freshly loaded snapshot — see DESIGN.md, "Fault
model and degraded serving").

Every query request normalizes into a :class:`QueryRequest`, whose
:func:`query_digest` is the service-wide identity of the computation:
requests with equal digests ask for bit-identical work, so the coalescing
batcher computes them once per batch (singleflight) and the result cache
keys on ``(index snapshot id, digest)`` — see DESIGN.md, "Query service".

Errors cross the service boundary as :class:`ServiceError` subclasses with
stable ``code`` strings; the TCP layer maps them onto
``{"ok": false, "error": {"code": ..., "message": ...}}`` responses so
remote clients can re-raise the typed error (:func:`error_from_code`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.trajectory import Trajectory
from ..index.budget import QueryBudget

__all__ = [
    "KINDS",
    "QueryRequest",
    "QueryResponse",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceUnavailable",
    "RequestTimeout",
    "InvalidRequest",
    "ServiceClosed",
    "ServiceConnectionError",
    "query_digest",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "error_from_code",
]

#: The query kinds the service dispatches, named after the TrajTree methods.
KINDS = ("knn", "range", "subtrajectory_knn")


class ServiceError(Exception):
    """Base of every typed service failure; ``code`` is wire-stable."""

    code = "service_error"


class ServiceOverloaded(ServiceError):
    """Backpressure shed: the bounded request queue is full (the request
    was rejected *before* entering the batcher — retry later)."""

    code = "overloaded"


class ServiceUnavailable(ServiceError):
    """The dispatch circuit breaker is open: the service observed a
    sustained timeout/error rate and is refusing queries for a cooldown
    period instead of queueing more doomed work.

    ``retry_after`` (seconds, may be ``None``) is the server's suggestion
    for when a probe is worth sending; ``ServiceClient.retry`` honors it
    when scheduling the next attempt.
    """

    code = "unavailable"

    def __init__(self, message: str = "", retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = retry_after


class RequestTimeout(ServiceError):
    """The per-request timeout elapsed before the batch produced a result."""

    code = "timeout"


class InvalidRequest(ServiceError):
    """Malformed request: unknown kind, bad parameter, or unusable query."""

    code = "invalid_request"


class ServiceClosed(ServiceError):
    """The service is draining or closed and accepts no new requests."""

    code = "closed"


class ServiceConnectionError(ServiceError):
    """The transport to the service failed mid-request: connection reset,
    server drained the socket, or the response line was truncated.

    Transient from the caller's view — reconnect and retry (queries are
    idempotent reads); :class:`repro.service.client.ServiceClient` raises
    this instead of leaking raw ``ConnectionResetError`` /
    ``IncompleteReadError``, so callers can tell transport blips from
    fatal request errors, and its retry policy treats it as retryable.
    """

    code = "connection"


_ERRORS = {
    cls.code: cls
    for cls in (ServiceError, ServiceOverloaded, ServiceUnavailable,
                RequestTimeout, InvalidRequest, ServiceClosed,
                ServiceConnectionError)
}


def error_from_code(
    code: str, message: str, retry_after: Optional[float] = None
) -> ServiceError:
    """Reconstruct the typed error a remote service reported."""
    cls = _ERRORS.get(code, ServiceError)
    if cls is ServiceUnavailable:
        return ServiceUnavailable(message, retry_after=retry_after)
    return cls(message)


@dataclass(frozen=True)
class QueryRequest:
    """One normalized query: a kind, a query trajectory and one parameter.

    ``param`` is ``k`` for the k-NN kinds and the radius for ``range``.
    ``timeout`` (seconds) overrides the service's default per-request
    deadline; ``None`` keeps the default.  ``budget`` is an optional
    :class:`~repro.index.budget.QueryBudget` the caller volunteers; the
    server tightens it further under load (``combine_budgets`` with the
    degradation policy's current floor) and reports truncation in the
    response ``meta``.
    """

    kind: str
    query: Trajectory
    param: float
    timeout: Optional[float] = None
    budget: Optional[QueryBudget] = None

    def validated(self) -> "QueryRequest":
        """Raise :class:`InvalidRequest` unless the request is servable."""
        if self.kind not in KINDS:
            raise InvalidRequest(
                f"unknown query kind {self.kind!r}; expected one of {KINDS}"
            )
        if self.query.num_segments == 0:
            raise InvalidRequest("query needs at least one segment")
        if self.kind == "range":
            if self.param < 0:
                raise InvalidRequest("radius must be non-negative")
        elif int(self.param) <= 0 or int(self.param) != self.param:
            raise InvalidRequest("k must be a positive integer")
        return self


@dataclass
class QueryResponse:
    """A query's results plus its per-request observability record.

    ``results`` is the exact ``[(traj_id, distance), ...]`` list the
    equivalent library call returns.  ``meta`` is the stats-schema record
    documented in DESIGN.md ("Query service"): latency, cache hit flag,
    the size of the coalesced batch the request joined, and the
    ``TrajTreeStats`` counter deltas of the computation that produced the
    result (all zero for cache hits — no tree work ran).
    """

    results: List[Tuple[int, float]]
    meta: Dict[str, Any] = field(default_factory=dict)


def query_digest(request: QueryRequest) -> str:
    """Content digest identifying the computation a request asks for.

    Two requests digest equally iff they have the same kind, the same
    parameter, and bit-identical query points — exactly the condition
    under which the service may share one computed result between them.
    (``timeout`` is delivery policy, not computation identity, and is
    excluded; ``budget`` *is* computation identity — a truncated search
    and an exact one are different computations.)
    """
    h = hashlib.sha256()
    h.update(request.kind.encode())
    h.update(b"|")
    h.update(repr(float(request.param)).encode())
    h.update(b"|")
    h.update(request.query.data.tobytes())
    if request.budget is not None:
        h.update(b"|")
        h.update(
            json.dumps(request.budget.to_dict(), sort_keys=True).encode()
        )
    return h.hexdigest()


# ---------------------------------------------------------------------- #
# JSON line codec
# ---------------------------------------------------------------------- #


def encode_request(request: QueryRequest) -> bytes:
    """One request as a JSON line (client side)."""
    obj: Dict[str, Any] = {
        "op": request.kind,
        "points": [list(row) for row in request.query.data.tolist()],
        ("radius" if request.kind == "range" else "k"): request.param,
    }
    if request.timeout is not None:
        obj["timeout"] = request.timeout
    if request.budget is not None:
        obj["budget"] = request.budget.to_dict()
    return json.dumps(obj).encode() + b"\n"


def decode_request(line: bytes) -> Dict[str, Any]:
    """Parse one request line into its raw object (server side).

    Raises :class:`InvalidRequest` for non-JSON lines or non-object
    payloads; query-level validation happens in :func:`request_from_obj`.
    """
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise InvalidRequest(f"request is not valid JSON: {exc}") from None
    if not isinstance(obj, dict) or "op" not in obj:
        raise InvalidRequest("request must be a JSON object with an 'op'")
    return obj


def request_from_obj(obj: Dict[str, Any]) -> QueryRequest:
    """Build a validated :class:`QueryRequest` from a decoded query op."""
    kind = obj["op"]
    if kind not in KINDS:
        raise InvalidRequest(
            f"unknown query kind {kind!r}; expected one of {KINDS}"
        )
    points = obj.get("points")
    if not isinstance(points, list) or not points:
        raise InvalidRequest("query 'points' must be a non-empty list")
    try:
        query = Trajectory(points)
    except (TypeError, ValueError) as exc:
        raise InvalidRequest(f"bad query points: {exc}") from None
    try:
        param = float(obj["radius"] if kind == "range" else obj["k"])
    except (KeyError, TypeError, ValueError):
        needed = "radius" if kind == "range" else "k"
        raise InvalidRequest(f"query needs a numeric {needed!r}") from None
    timeout = obj.get("timeout")
    if timeout is not None:
        timeout = float(timeout)
    budget = obj.get("budget")
    if budget is not None:
        if not isinstance(budget, dict):
            raise InvalidRequest("'budget' must be a JSON object")
        try:
            budget = QueryBudget.from_dict(budget)
        except (TypeError, ValueError) as exc:
            raise InvalidRequest(f"bad budget: {exc}") from None
    return QueryRequest(kind, query, param, timeout, budget).validated()


def encode_response(obj: Dict[str, Any]) -> bytes:
    """One response object as a JSON line (server side)."""
    return json.dumps(obj).encode() + b"\n"


def decode_response(line: bytes) -> Dict[str, Any]:
    """Parse one response line (client side)."""
    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise ServiceError("malformed response from server")
    return obj
