"""Experiment drivers — one module per paper table/figure.

These produce the data rows; ``benchmarks/`` wraps them in pytest-benchmark
targets and ``python -m repro`` prints them interactively.  README.md's
benchmark matrix maps each to its paper figure.
"""

from .common import (
    beijing_database,
    classification_metrics,
    edr_interpolated_metric,
    robustness_metrics,
    suggest_eps,
)
from .fig5a import Fig5aResult, run_fig5a
from .fig5_robust import PAPER_PROTOCOL_FIGURES, SweepResult, robustness_sweep
from .fig6_index import QueryTimeResult, run_fig5j, run_scaling, run_theta_sweep
from .fig6cd import UBSweepResult, run_fig6c, run_fig6d
from .table1 import Table1Result, run_table1, scenario_anchors

__all__ = [
    "beijing_database",
    "classification_metrics",
    "edr_interpolated_metric",
    "robustness_metrics",
    "suggest_eps",
    "Fig5aResult",
    "run_fig5a",
    "PAPER_PROTOCOL_FIGURES",
    "SweepResult",
    "robustness_sweep",
    "QueryTimeResult",
    "run_fig5j",
    "run_scaling",
    "run_theta_sweep",
    "UBSweepResult",
    "run_fig6c",
    "run_fig6d",
    "Table1Result",
    "run_table1",
    "scenario_anchors",
]
