"""Fig. 5(a): multi-class 1-NN classification accuracy on the ASL workload.

Accuracy of EDwP, EDR, LCSS, DISSIM and MA as the number of sign classes
grows from 5 to 25 (10-fold CV, repeated class draws).  The paper's claims:
EDwP is most accurate at every class count and degrades slowest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..datasets import generate_asl
from ..eval.classification import classification_experiment
from .common import classification_metrics

__all__ = ["Fig5aResult", "run_fig5a"]


@dataclass
class Fig5aResult:
    """Accuracy per metric per class count."""

    class_counts: List[int] = field(default_factory=list)
    accuracy: Dict[str, List[float]] = field(default_factory=dict)


def run_fig5a(
    class_counts: Sequence[int] = (5, 10, 15, 20, 25),
    instances_per_class: int = 8,
    repeats: int = 2,
    folds: int = 5,
    seed: int = 7,
    backend: Optional[str] = None,
) -> Fig5aResult:
    """Run the Fig. 5(a) sweep at laptop scale.

    The full 98-class corpus is generated once; each cell draws ``repeats``
    random subsets of ``c`` classes (the paper repeats 100x with 10 folds;
    the defaults scale that down — see README.md's benchmark matrix).
    ``backend`` pins every metric's DP backend (default: the global
    :func:`repro.core.set_backend` choice); the 1-NN inner loops run each
    test point against its fold's references through the metrics' batched
    lockstep kernels either way.
    """
    dataset = generate_asl(
        num_classes=max(class_counts),
        instances_per_class=instances_per_class,
        seed=seed,
    )
    metrics = classification_metrics(dataset, backend=backend)
    res = classification_experiment(
        dataset, metrics, class_counts, repeats=repeats, folds=folds, seed=seed
    )
    return Fig5aResult(class_counts=res.class_counts, accuracy=res.accuracy)
