"""Shared plumbing for the experiment drivers.

Centralizes the choices every figure needs: which metrics to compare, how to
derive the EDR/LCSS threshold from a dataset, and the reduced database
scales the pure-Python reproduction runs at (recorded in README.md's
benchmark matrix).

The metric factories return :class:`~repro.baselines.registry.DistanceSpec`
objects (callable like plain functions), so every harness that feeds them
into :func:`repro.eval.knn.distance_table` or
:func:`repro.eval.classification.nn_classify` automatically gets the
metric's batched lockstep kernel.  ``backend=`` pins all of them to one DP
backend; the default follows the global :func:`repro.core.set_backend`
choice (which is how the CLI's ``--backend`` flag reaches every metric).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..baselines import DistanceSpec, MAParams, get_distance
from ..core.trajectory import Trajectory
from ..datasets import generate_beijing, interpolate_dataset

__all__ = [
    "suggest_eps",
    "robustness_metrics",
    "classification_metrics",
    "beijing_database",
    "edr_interpolated_metric",
]


def suggest_eps(trajectories: Sequence[Trajectory]) -> float:
    """Matching threshold for EDR/LCSS.

    Chen et al. (the EDR paper) set the threshold to a quarter of the
    maximum standard deviation — computed on *per-trajectory* normalized
    series; the reproduced paper sets baseline parameters "as outlined by
    the respective papers" (Sec. V-A).  We therefore use a quarter of the
    mean per-trajectory coordinate standard deviation, which scales with a
    single trip's extent rather than the whole city's.
    """
    stds: List[float] = []
    for t in trajectories:
        if len(t) >= 2:
            stds.append(float(t.spatial().std(axis=0).max()))
    if not stds:
        raise ValueError("no multi-point trajectory in the dataset")
    return float(0.25 * np.mean(stds))


def robustness_metrics(
    dataset: Sequence[Trajectory],
    eps: Optional[float] = None,
    ma_params: Optional[MAParams] = None,
    backend: Optional[str] = None,
) -> Dict[str, DistanceSpec]:
    """The Fig. 5(b)-(i) metric set: EDwP, EDR, LCSS, MA.

    (EDR-I is handled separately — it needs both databases interpolated, see
    :func:`edr_interpolated_metric`; DISSIM is excluded from these figures
    by the paper itself.)
    """
    if eps is None:
        eps = suggest_eps(dataset)
    gap = float(np.mean([t.segment_lengths().mean() for t in dataset if len(t) > 1]))
    params = ma_params or MAParams(gap_penalty=gap, match_threshold=2 * eps)
    return {
        "EDwP": get_distance("edwp", backend=backend),
        "EDR": get_distance("edr", eps=eps, backend=backend),
        "LCSS": get_distance("lcss", eps=eps, backend=backend),
        "MA": get_distance("ma", ma_params=params),
    }


def classification_metrics(
    dataset: Sequence[Trajectory],
    eps: Optional[float] = None,
    backend: Optional[str] = None,
) -> Dict[str, DistanceSpec]:
    """The Fig. 5(a) metric set: EDwP, EDR, LCSS, DISSIM, MA."""
    if eps is None:
        eps = suggest_eps(dataset)
    gap = float(np.mean([t.segment_lengths().mean() for t in dataset if len(t) > 1]))
    return {
        "EDwP": get_distance("edwp", backend=backend),
        "EDR": get_distance("edr", eps=eps, backend=backend),
        "LCSS": get_distance("lcss", eps=eps, backend=backend),
        "DISSIM": get_distance("dissim", backend=backend),
        "MA": get_distance("ma", ma_params=MAParams(gap_penalty=gap,
                                                    match_threshold=2 * eps)),
    }


def beijing_database(size: int, seed: int = 7) -> List[Trajectory]:
    """The standard Beijing-style database used across the figures."""
    return generate_beijing(size, seed=seed)


def edr_interpolated_metric(
    d1: Sequence[Trajectory],
    d2: Sequence[Trajectory],
    eps: Optional[float] = None,
    max_points: int = 128,
    backend: Optional[str] = None,
):
    """EDR-I: interpolate both databases to one uniform density, return the
    interpolated copies plus the EDR spec to run on them (Sec. V-C)."""
    if eps is None:
        eps = suggest_eps(d1)
    from ..datasets.interpolation import corpus_target_spacing

    spacing = corpus_target_spacing(list(d1) + list(d2))
    d1i = interpolate_dataset(d1, spacing=spacing, max_points=max_points)
    d2i = interpolate_dataset(d2, spacing=spacing, max_points=max_points)
    return d1i, d2i, get_distance("edr", eps=eps, backend=backend)
