"""Figs. 5(b)-(i): robustness sweeps against k and noise level n.

Each figure pair (b/c, d/e, f/g, h/i) is one noise protocol swept two ways:
correlation vs k at fixed n, and correlation vs n at fixed k.  The metric
set follows the figure legends: EDwP, EDR, LCSS, EDR-I, MA.

The drivers return ``SweepResult`` records; the benchmark wrappers and the
CLI print them with :func:`repro.eval.timing.format_series_table`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.trajectory import Trajectory
from ..eval.robustness import make_noisy_dataset, pair_correlations
from .common import (
    beijing_database,
    edr_interpolated_metric,
    robustness_metrics,
    suggest_eps,
)

__all__ = ["SweepResult", "robustness_sweep", "PAPER_PROTOCOL_FIGURES"]

#: protocol -> (figure vs k, figure vs n) as printed in the paper
PAPER_PROTOCOL_FIGURES = {
    "inter": ("5b", "5c"),
    "intra": ("5d", "5e"),
    "phase": ("5f", "5g"),
    "perturb": ("5h", "5i"),
}


@dataclass
class SweepResult:
    """One robustness sweep: x values plus one correlation series per metric."""

    protocol: str
    x_name: str                      # "k" or "noise %"
    x_values: List[float] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)


def _one_cell(
    clean: Sequence[Trajectory],
    protocol: str,
    k: int,
    noise: float,
    num_queries: int,
    seed: int,
    include_edr_i: bool,
    backend: Optional[str] = None,
) -> Dict[str, float]:
    """Mean correlation per metric for one (protocol, k, n) cell."""
    d1, d2 = make_noisy_dataset(clean, protocol, noise, seed)
    metrics = robustness_metrics(clean, backend=backend)
    rng = random.Random(seed)
    query_ids = rng.sample(range(len(d1)), min(num_queries, len(d1)))

    per_query = pair_correlations(d1, d2, metrics, k, query_ids)
    out = {name: float(np.mean(vals)) for name, vals in per_query.items()}

    if include_edr_i:
        eps = suggest_eps(clean)
        d1i, d2i, edr_metric = edr_interpolated_metric(d1, d2, eps=eps,
                                                       backend=backend)
        vals = pair_correlations(d1i, d2i, {"EDR-I": edr_metric}, k, query_ids)
        out["EDR-I"] = float(np.mean(vals["EDR-I"]))
    return out


def robustness_sweep(
    protocol: str,
    vary: str,
    db_size: int = 60,
    k_values: Sequence[int] = (5, 10, 20, 30, 50),
    noise_values: Sequence[float] = (0.05, 0.25, 0.50, 0.75, 1.0),
    fixed_k: int = 10,
    fixed_noise: float = 0.05,
    num_queries: int = 3,
    include_edr_i: bool = True,
    seed: int = 7,
    backend: Optional[str] = None,
) -> SweepResult:
    """One of the eight robustness panels.

    ``vary`` is ``"k"`` (Figs. 5b/d/f/h: noise fixed at ``fixed_noise``) or
    ``"n"`` (Figs. 5c/e/g/i: k fixed at ``fixed_k``).  Database sizes and
    query counts default to laptop scale; README.md's benchmark matrix
    records the scales used for the shipped results.  ``backend`` pins the
    metrics' DP backend (default: the global choice); every
    query-vs-database table runs through the batched lockstep kernels.
    """
    clean = beijing_database(db_size, seed=seed)
    result = SweepResult(protocol=protocol,
                         x_name="k" if vary == "k" else "noise %")
    if vary == "k":
        cells = [(k, fixed_noise) for k in k_values]
        result.x_values = [float(k) for k in k_values]
    elif vary == "n":
        cells = [(fixed_k, n) for n in noise_values]
        result.x_values = [100.0 * n for n in noise_values]
    else:
        raise ValueError("vary must be 'k' or 'n'")

    for k, noise in cells:
        cell = _one_cell(clean, protocol, k, noise, num_queries, seed,
                         include_edr_i, backend=backend)
        for name, value in cell.items():
            result.series.setdefault(name, []).append(value)
    return result
