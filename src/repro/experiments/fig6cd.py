"""Figs. 6(c)/(d): tightness of the vantage-point upper bound.

UB-factor (Eq. 15) of the VP-derived upper bound versus the random-subset
baseline, swept over the number of VPs (Fig. 6c) and over k (Fig. 6d), plus
the VP/true k-NN Spearman correlation the paper reports as 0.78-0.83.
Measured at the root node — the paper's stated worst case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..datasets import generate_beijing
from ..eval.ubfactor import vp_experiment
from .common import beijing_database

__all__ = ["UBSweepResult", "run_fig6c", "run_fig6d"]


@dataclass
class UBSweepResult:
    """UB-factor sweep: x values plus VP / random series (+ correlation)."""

    x_name: str
    x_values: List[float] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)


def run_fig6c(
    vp_counts: Sequence[int] = (10, 20, 40, 80, 160),
    db_size: int = 120,
    k: int = 10,
    num_queries: int = 4,
    seed: int = 7,
    backend: Optional[str] = None,
) -> UBSweepResult:
    """Fig. 6(c): UB-factor vs number of vantage points.

    ``backend`` pins the distance backend for the exact-distance tables
    behind the UB-factors (see :func:`repro.eval.ubfactor.vp_experiment`).
    """
    db = beijing_database(db_size, seed=seed)
    queries = generate_beijing(num_queries, seed=seed + 1000)
    result = UBSweepResult(x_name="#VPs",
                           x_values=[float(v) for v in vp_counts])
    for v in vp_counts:
        stats = vp_experiment(db, queries, num_vps=v, k=k, seed=seed,
                              backend=backend)
        result.series.setdefault("Beijing", []).append(stats["vp_ub_factor"])
        result.series.setdefault("Beijing Random", []).append(
            stats["random_ub_factor"])
        result.series.setdefault("VP-kNN corr", []).append(
            stats["vp_knn_correlation"])
    return result


def run_fig6d(
    k_values: Sequence[int] = (5, 10, 25, 50, 100),
    db_size: int = 120,
    num_vps: int = 80,
    num_queries: int = 4,
    seed: int = 7,
    backend: Optional[str] = None,
) -> UBSweepResult:
    """Fig. 6(d): UB-factor vs k at a fixed VP budget.

    ``backend`` as in :func:`run_fig6c`.
    """
    db = beijing_database(db_size, seed=seed)
    queries = generate_beijing(num_queries, seed=seed + 1000)
    result = UBSweepResult(x_name="k",
                           x_values=[float(k) for k in k_values])
    for k in k_values:
        stats = vp_experiment(db, queries, num_vps=num_vps, k=k, seed=seed,
                              backend=backend)
        result.series.setdefault("Beijing", []).append(stats["vp_ub_factor"])
        result.series.setdefault("Beijing Random", []).append(
            stats["random_ub_factor"])
        result.series.setdefault("VP-kNN corr", []).append(
            stats["vp_knn_correlation"])
    return result
