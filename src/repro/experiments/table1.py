"""Tables I/II and the Fig. 1 scenario numbers.

Regenerates the robustness feature matrix empirically (probe distances, see
:mod:`repro.eval.feature_matrix`), checks the paper's fully specified
worked examples (the Fig. 1(c) EDR threshold flip, the Fig. 1(d) MA
ordering pathology, the Appendix-A triangle-inequality counterexample and
the Example-1/4 EDwP anchors), and reports agreement with the printed
Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..baselines import MAParams, get_distance
from ..core import Trajectory, edwp
from ..core.edwp_sub import edwp_sub
from ..baselines.edr import edr
from ..baselines.ma import ma
from ..eval.feature_matrix import (
    PAPER_TABLE_I,
    FeatureProbe,
    feature_matrix,
    fig1d_ordering_scenario,
    format_feature_table,
)

__all__ = ["Table1Result", "run_table1", "scenario_anchors"]


@dataclass
class Table1Result:
    """Empirical feature matrix plus scenario anchor values."""

    probes: Dict[str, Dict[str, FeatureProbe]] = field(default_factory=dict)
    threshold_free: Dict[str, bool] = field(default_factory=dict)
    anchors: Dict[str, float] = field(default_factory=dict)
    rendered: str = ""


def scenario_anchors() -> Dict[str, float]:
    """Every fully-specified number the paper prints for its scenarios."""
    # Appendix A: triangle inequality counterexample
    t1 = Trajectory.from_xy([(0, 0), (0, 1)])
    t2 = Trajectory.from_xy([(0, 0), (0, 1), (0, 2)])
    t3 = Trajectory.from_xy([(0, 0), (0, 1), (0, 2), (0, 3)])

    # Fig. 2(a) / Examples 1 and 4 (T1's second segment is not printed in
    # the paper; only the EDwPsub(T2, T1) = 80 value is fully determined)
    fig2_t1 = Trajectory([(0, 0, 0), (0, 10, 30), (3, 17, 51)])
    fig2_t2 = Trajectory([(2, 0, 0), (2, 7, 14), (2, 10, 20)])

    # Fig. 1(c): phase-shifted pair, EDR = max at eps 2 but 0 at eps 3
    pha = Trajectory([(0, 0, 0), (0, 50, 50), (0, 100, 100)])
    phb = Trajectory([(0, 3, 0), (0, 53, 50), (0, 103, 100)])

    return {
        "appendixA_edwp_t1_t2": edwp(t1, t2),        # paper: 1
        "appendixA_edwp_t2_t3": edwp(t2, t3),        # paper: 1
        "appendixA_edwp_t1_t3": edwp(t1, t3),        # paper: 4
        "example4_edwpsub_t2_t1": edwp_sub(fig2_t2, fig2_t1),  # paper: 80
        "fig1c_edr_eps2": float(edr(pha, phb, 2.0)),  # paper: 3 (maximum)
        "fig1c_edr_eps3": float(edr(pha, phb, 3.0)),  # paper: 0
    }


def run_table1(eps: float = 3.0, backend: Optional[str] = None) -> Table1Result:
    """Build the empirical Table I and the scenario anchors.

    ``eps`` parameterizes the threshold-dependent comparators for the
    behavioural probes (the probe trajectories live on a ~100-unit extent;
    3.0 matches the paper's Fig. 1 scale).  ``backend`` pins every metric
    to one DP backend; by default all follow the global
    :func:`repro.core.set_backend` choice — both backends produce the same
    table (the kernels agree to float tolerance).
    """
    metrics = {
        "DTW": get_distance("dtw", backend=backend),
        "LCSS": get_distance("lcss", eps=eps, backend=backend),
        "ERP": get_distance("erp", backend=backend),
        "EDR": get_distance("edr", eps=eps, backend=backend),
        "DISSIM": get_distance("dissim", backend=backend),
        "MA": get_distance("ma", ma_params=MAParams(gap_penalty=5.0,
                                                    match_threshold=eps)),
        "EDwP": get_distance("edwp", backend=backend),
    }
    threshold_free = {
        name: spec.threshold_free for name, spec in metrics.items()
    }
    probes = feature_matrix(metrics)
    anchors = scenario_anchors()

    # Fig. 1(d): MA rates the out-of-order T1 as close to T2 as the ordered
    # T3 is, while EDwP separates them.
    t1, t2, t3 = fig1d_ordering_scenario()
    anchors["fig1d_ma_ratio"] = (
        ma(t1, t2) / max(ma(t3, t2), 1e-12)
    )
    anchors["fig1d_edwp_ratio"] = (
        edwp(t1, t2) / max(edwp(t3, t2), 1e-12)
    )

    rendered = format_feature_table(probes, threshold_free)
    return Table1Result(
        probes=probes,
        threshold_free=threshold_free,
        anchors=anchors,
        rendered=rendered,
    )
