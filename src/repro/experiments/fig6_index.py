"""Index performance experiments: Figs. 5(j), 6(a), 6(b), 6(e), 6(f).

Retrieval-time comparisons of TrajTree against an EDwP sequential scan, the
EDR filter-and-refine index on uniformly re-interpolated data (EDR-I, the
paper's indexed comparator) and an MA sequential scan — plus the build-time
and θ-sensitivity studies.

All timings run at reduced, documented database scales (README.md):
absolute seconds are not comparable with the paper's Java testbed, but the
orderings and growth shapes are the reproduction targets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines import EDRIndex, MAParams, get_distance
from ..core.trajectory import Trajectory
from ..datasets import generate_beijing, interpolate_dataset
from ..datasets.interpolation import corpus_target_spacing
from ..eval.knn import knn_scan
from ..index import TrajTree
from .common import beijing_database, suggest_eps

__all__ = ["QueryTimeResult", "run_fig5j", "run_scaling", "run_theta_sweep"]

#: Interpolation cap for the EDR-I comparator (keeps its quadratic DP sane).
EDR_I_MAX_POINTS = 96


@dataclass
class QueryTimeResult:
    """An x-sweep of wall-clock seconds per method (plus optional extras)."""

    x_name: str
    x_values: List[float] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)
    build_seconds: Dict[str, List[float]] = field(default_factory=dict)


def _queries(num: int, seed: int) -> List[Trajectory]:
    """Fresh out-of-database query trips."""
    return generate_beijing(num, seed=seed + 1000)


def _setup_methods(
    db: Sequence[Trajectory],
    seed: int,
    theta: float = 0.8,
    num_vps: int = 40,
    include_ma: bool = True,
    backend: Optional[str] = None,
):
    """Build all retrieval methods over one database.

    Returns ``(methods, build_seconds)`` where methods maps a name to a
    ``(query, k) -> result`` callable.
    """
    eps = suggest_eps(db)

    start = time.perf_counter()
    tree = TrajTree(db, theta=theta, num_vps=num_vps, normalized=True,
                    seed=seed, backend=backend)
    tree_build = time.perf_counter() - start

    spacing = corpus_target_spacing(db)
    dbi = interpolate_dataset(db, spacing=spacing,
                              max_points=EDR_I_MAX_POINTS)
    start = time.perf_counter()
    edr_index = EDRIndex(dbi, eps=eps, num_references=6, seed=seed)
    edr_build = time.perf_counter() - start

    edwp_avg_fn = get_distance("edwp").fn
    gap = suggest_eps(db)
    ma_fn = get_distance("ma", ma_params=MAParams(gap_penalty=gap,
                                                  match_threshold=2 * eps)).fn

    def trajtree_knn(q: Trajectory, k: int):
        return tree.knn(q, k)

    def edwp_scan(q: Trajectory, k: int):
        return knn_scan(q, db, edwp_avg_fn, k)

    def edr_knn(q: Trajectory, k: int):
        qi = interpolate_dataset([q], spacing=spacing,
                                 max_points=EDR_I_MAX_POINTS)[0]
        return edr_index.knn(qi, k)

    def ma_scan(q: Trajectory, k: int):
        return knn_scan(q, db, ma_fn, k)

    methods = {
        "TrajTree": trajtree_knn,
        "EDwP-scan": edwp_scan,
        "EDR": edr_knn,
    }
    if include_ma:
        methods["MA"] = ma_scan
    builds = {"TrajTree": tree_build, "EDR": edr_build}
    return methods, builds


def _time_methods(methods, queries: Sequence[Trajectory], k: int) -> Dict[str, float]:
    """Total wall seconds per method over all queries at this k."""
    out: Dict[str, float] = {}
    for name, fn in methods.items():
        start = time.perf_counter()
        for q in queries:
            fn(q, k)
        out[name] = time.perf_counter() - start
    return out


def run_fig5j(
    db_size: int = 200,
    k_values: Sequence[int] = (5, 10, 20, 30, 50),
    num_queries: int = 3,
    seed: int = 7,
    include_ma: bool = True,
    backend: Optional[str] = None,
) -> QueryTimeResult:
    """Fig. 5(j): query time growth with k for all four methods.

    ``backend`` selects the distance backend for the TrajTree method
    (bounds, build and refinement alike); ``None`` follows the global
    :func:`repro.core.set_backend` choice, so CLI ``--backend`` reaches
    this either way.
    """
    db = beijing_database(db_size, seed=seed)
    methods, _ = _setup_methods(db, seed, include_ma=include_ma,
                                backend=backend)
    queries = _queries(num_queries, seed)
    result = QueryTimeResult(x_name="k",
                             x_values=[float(k) for k in k_values])
    for k in k_values:
        cell = _time_methods(methods, queries, k)
        for name, secs in cell.items():
            result.series.setdefault(name, []).append(secs)
    return result


def run_scaling(
    db_sizes: Sequence[int] = (50, 100, 200, 400),
    k: int = 10,
    num_queries: int = 3,
    seed: int = 7,
    include_ma: bool = True,
    backend: Optional[str] = None,
) -> QueryTimeResult:
    """Figs. 6(a) and 6(e): query time and build time vs database size.

    ``backend`` as in :func:`run_fig5j` — the ``"numpy"`` backend runs
    TrajTree builds and queries through the batched bound/refinement
    kernels (identical results, see the benchmark gate in
    ``benchmarks/bench_fig6a_querytime_dbsize.py``).
    """
    result = QueryTimeResult(x_name="db size",
                             x_values=[float(s) for s in db_sizes])
    queries = _queries(num_queries, seed)
    for size in db_sizes:
        db = beijing_database(size, seed=seed)
        methods, builds = _setup_methods(db, seed, include_ma=include_ma,
                                         backend=backend)
        cell = _time_methods(methods, queries, k)
        for name, secs in cell.items():
            result.series.setdefault(name, []).append(secs)
        for name, secs in builds.items():
            result.build_seconds.setdefault(name, []).append(secs)
    return result


def run_theta_sweep(
    thetas: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 0.95),
    db_size: int = 150,
    k: int = 10,
    num_queries: int = 3,
    seed: int = 7,
    backend: Optional[str] = None,
) -> QueryTimeResult:
    """Figs. 6(b) and 6(f): TrajTree query and build time vs θ.

    θ trades lower-bound tightness against per-level bound computations;
    the paper finds query time minimized near 0.8 while build time rises
    monotonically with θ.  ``backend`` as in :func:`run_fig5j`.
    """
    db = beijing_database(db_size, seed=seed)
    queries = _queries(num_queries, seed)
    result = QueryTimeResult(x_name="theta",
                             x_values=[float(t) for t in thetas])
    for theta in thetas:
        start = time.perf_counter()
        tree = TrajTree(db, theta=theta, num_vps=40, normalized=True,
                        seed=seed, backend=backend)
        build = time.perf_counter() - start
        start = time.perf_counter()
        for q in queries:
            tree.knn(q, k)
        query_secs = time.perf_counter() - start
        result.series.setdefault("TrajTree-query", []).append(query_secs)
        result.build_seconds.setdefault("TrajTree", []).append(build)
    return result
