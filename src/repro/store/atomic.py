"""Crash-safe file writes and sha256 integrity checks.

Every on-disk artifact of the library — columnar store arrays,
``meta.json``, single-tree pickles, forest manifests — goes through one
write protocol (DESIGN.md, "Fault model and degraded serving"):

1. write the full payload to a hidden *temp sibling* in the same
   directory (``.<name>.<pid>.tmp`` — same filesystem, so the rename
   below is atomic);
2. flush and ``fsync`` the temp file — the bytes are durable before the
   name is;
3. atomically rename (``os.replace``) the temp over the final name, then
   best-effort ``fsync`` the directory so the rename itself is durable.

A crash before step 3 leaves the previous version of the file untouched
plus a stale temp sibling; a crash after step 3 leaves the new version.
There is no window in which the final name holds a partial write, so "a
torn file under its real name" can only come from outside (bit rot, a
truncating copy) — which is what the checksums catch:
:func:`atomic_write_bytes` returns the payload's ``sha256:<hex>`` digest,
manifests record it per file, and loaders call :func:`verify_checksum`
before trusting any artifact.

Stale temp siblings are ignored by every loader (loaders open files by
their recorded names only) and swept by :func:`cleanup_stale_temps` at
the start of the next save into the same directory.

Fault points (:mod:`repro.testing.faults`): ``atomic.write:<name>``
before the temp write — ``truncate`` rules make the writer persist
exactly N payload bytes and then crash — and ``atomic.rename:<name>``
between fsync and rename.  On an injected crash the temp file is
deliberately left behind, exactly as a real crash would leave it.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from pathlib import Path
from typing import Any, List, Union

import numpy as np

from ..testing import faults

__all__ = [
    "TMP_SUFFIX",
    "IntegrityError",
    "sha256_bytes",
    "sha256_file",
    "atomic_write_bytes",
    "atomic_write_json",
    "npy_bytes",
    "cleanup_stale_temps",
    "verify_checksum",
]

PathLike = Union[str, Path]

#: Temp siblings are ``.<final-name>.<pid>.tmp`` — hidden, same directory.
TMP_SUFFIX = ".tmp"


class IntegrityError(ValueError):
    """A file's content does not match its recorded sha256 checksum."""


def sha256_bytes(data: bytes) -> str:
    """The ``sha256:<hex>`` digest of a byte payload."""
    return "sha256:" + hashlib.sha256(data).hexdigest()


def sha256_file(path: PathLike, chunk_size: int = 1 << 20) -> str:
    """The ``sha256:<hex>`` digest of a file, read in chunks."""
    h = hashlib.sha256()
    with open(path, "rb") as f:
        while True:
            chunk = f.read(chunk_size)
            if not chunk:
                break
            h.update(chunk)
    return "sha256:" + h.hexdigest()


def _tmp_path(path: Path) -> Path:
    return path.with_name(f".{path.name}.{os.getpid()}{TMP_SUFFIX}")


def _fsync_directory(directory: Path) -> None:
    """Make a completed rename durable (best-effort: not every filesystem
    or platform supports directory fsync — failure is not corruption,
    only a shorter durability window)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes) -> str:
    """Write ``data`` to ``path`` crash-safely; returns its checksum.

    Follows the temp-sibling / fsync / atomic-rename protocol of the
    module docstring: after this returns, ``path`` holds exactly ``data``;
    if it raises (or the process dies), ``path`` is untouched — the
    previous version, or absent — and at worst a stale temp sibling
    remains for the next :func:`cleanup_stale_temps` sweep.
    """
    path = Path(path)
    tmp = _tmp_path(path)
    truncate = faults.fire(f"atomic.write:{path.name}")
    payload = data if truncate is None else data[: truncate.nbytes]
    with open(tmp, "wb") as f:
        f.write(payload)
        f.flush()
        os.fsync(f.fileno())
    if truncate is not None:
        # The injected crash-at-byte-offset: the partial payload is
        # durable in the temp sibling, the final name untouched.
        raise faults.CrashInjected(
            f"injected crash after {truncate.nbytes} bytes of {path.name}"
        )
    faults.fire(f"atomic.rename:{path.name}")
    os.replace(tmp, path)
    _fsync_directory(path.parent)
    return sha256_bytes(data)


def atomic_write_json(path: PathLike, obj: Any, indent: int = None) -> str:
    """JSON-serialize ``obj`` and write it crash-safely; returns the
    checksum of the encoded payload."""
    return atomic_write_bytes(path, json.dumps(obj, indent=indent).encode())


def npy_bytes(array: np.ndarray) -> bytes:
    """An array serialized to ``.npy`` bytes (``np.save`` into memory), so
    array files can go through :func:`atomic_write_bytes` like any other
    payload.  ``np.save`` writes float64/int64 verbatim — the round trip
    through :func:`numpy.load` is bit-identical."""
    buf = io.BytesIO()
    np.save(buf, array)
    return buf.getvalue()


def cleanup_stale_temps(directory: PathLike) -> List[str]:
    """Remove temp siblings a crashed save left in ``directory``.

    Called at the start of every save into the directory; returns the
    removed names (tests assert the sweep).  Only this module's naming
    pattern (``.<name>*.tmp``) is touched.
    """
    removed = []
    for stale in Path(directory).glob(f".*{TMP_SUFFIX}"):
        try:
            stale.unlink()
        except OSError:
            continue
        removed.append(stale.name)
    return removed


def verify_checksum(
    path: PathLike,
    expected: str,
    error_cls: type = IntegrityError,
) -> None:
    """Raise ``error_cls`` unless ``path`` hashes to ``expected``.

    ``error_cls`` lets each loader surface its own typed error
    (``StoreError``, ``ShardLoadError`` wrapping, ...) while sharing the
    one checking path.
    """
    actual = sha256_file(path)
    if actual != expected:
        raise error_cls(
            f"{Path(path).name} failed its integrity check "
            f"(recorded {expected}, found {actual}); file corrupted?"
        )
