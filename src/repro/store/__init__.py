"""repro.store — columnar, memory-mappable trajectory storage.

Packs a ragged trajectory dataset into one contiguous ``(P, 3)`` float64
point matrix plus an int64 offsets prefix array (ids and labels ride
along), persisted as plain ``.npy`` files loadable with
``np.load(..., mmap_mode="r")``.  Store-backed
:class:`~repro.core.trajectory.Trajectory` views are zero-copy, so every
distance kernel and index in the library consumes them unchanged — see
DESIGN.md ("Columnar store and sharded forest") for the layout and the
offsets contract, and ``python -m repro build-store`` for the CLI entry
point.
"""

from .columnar import ColumnarStore, StoreError

__all__ = ["ColumnarStore", "StoreError"]
