"""repro.store — columnar, memory-mappable trajectory storage.

Packs a ragged trajectory dataset into one contiguous ``(P, 3)`` float64
point matrix plus an int64 offsets prefix array (ids and labels ride
along), persisted as plain ``.npy`` files loadable with
``np.load(..., mmap_mode="r")``.  Store-backed
:class:`~repro.core.trajectory.Trajectory` views are zero-copy, so every
distance kernel and index in the library consumes them unchanged — see
DESIGN.md ("Columnar store and sharded forest") for the layout and the
offsets contract, and ``python -m repro build-store`` for the CLI entry
point.

All persistence goes through :mod:`repro.store.atomic` — temp-sibling +
fsync + atomic-rename writes with per-file sha256 checksums recorded in
``meta.json`` and verified on load, so a torn or corrupted store is
always a typed :class:`StoreError`, never silently wrong data (DESIGN.md,
"Fault model and degraded serving").
"""

from .atomic import (
    IntegrityError,
    atomic_write_bytes,
    atomic_write_json,
    cleanup_stale_temps,
    sha256_bytes,
    sha256_file,
    verify_checksum,
)
from .columnar import ColumnarStore, StoreError

__all__ = [
    "ColumnarStore",
    "StoreError",
    "IntegrityError",
    "atomic_write_bytes",
    "atomic_write_json",
    "cleanup_stale_temps",
    "sha256_bytes",
    "sha256_file",
    "verify_checksum",
]
