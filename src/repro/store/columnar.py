"""Columnar trajectory storage (ROADMAP item 2).

A dataset of ragged trajectories is packed into two flat arrays:

* ``points`` — one contiguous ``(P, 3)`` float64 matrix of every st-point
  of every trajectory, concatenated in dataset order (row = ``[x, y, t]``,
  the exact layout of :attr:`repro.core.trajectory.Trajectory.data`);
* ``offsets`` — an ``(n + 1,)`` int64 prefix array with ``offsets[0] == 0``,
  non-decreasing, ``offsets[-1] == P``: trajectory ``i`` is the row slice
  ``points[offsets[i]:offsets[i + 1]]``.

Plus ``ids`` (``(n,)`` int64 trajectory ids, unique) and optional per-
trajectory labels.  DESIGN.md ("Columnar store and sharded forest")
documents the layout and the offsets contract.

The slice *is* the trajectory: :meth:`ColumnarStore.trajectory` wraps it
in a :class:`~repro.core.trajectory.Trajectory` without copying, so a
store loaded with ``mmap_mode="r"`` serves trajectory data straight off
the page cache and the batched kernels (``edwp_many``,
``repro.index.fast_bounds``) consume store-backed trajectories unchanged
— their first :meth:`~repro.core.trajectory.Trajectory.coords` call makes
the same contiguous spatial copy it makes for object-backed trajectories,
and every distance is bit-identical
(``tests/test_store_roundtrip.py``).

On disk a store is a directory of ``.npy`` files (``points.npy``,
``offsets.npy``, ``ids.npy``) next to a ``meta.json`` manifest carrying
the format version, the labels, and one sha256 checksum per array file;
:meth:`ColumnarStore.load` memory-maps the points by default, so opening
a multi-gigabyte dataset costs pages, not RAM.

Persistence is crash-safe (DESIGN.md, "Fault model and degraded
serving"): every file is written through the
:mod:`repro.store.atomic` temp-sibling/fsync/rename protocol and
``meta.json`` — which names the checksums — is written *last*, so a save
interrupted at any byte offset leaves either the previous intact store or
a directory :meth:`ColumnarStore.load` rejects with a typed
:class:`StoreError`; it never loads silently wrong data.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

import numpy as np

from ..core.trajectory import Trajectory
from .atomic import (
    atomic_write_bytes,
    atomic_write_json,
    cleanup_stale_temps,
    npy_bytes,
    verify_checksum,
)

__all__ = ["ColumnarStore", "StoreError"]

PathLike = Union[str, Path]

_MAGIC = "repro-columnar-store"
#: bumped when the on-disk layout changes (arrays, meta schema)
#: (1.1.0: per-file sha256 checksums in meta.json, crash-safe writes)
_FORMAT_VERSION = "1.1.0"

#: the array files a store directory must contain
_ARRAY_FILES = ("points.npy", "offsets.npy", "ids.npy")


class StoreError(ValueError):
    """A store directory is missing, incomplete, or malformed.

    Raised instead of bare ``FileNotFoundError`` / ``KeyError`` so callers
    (and the CLI) can report *which* file or invariant failed.
    """


class ColumnarStore:
    """A trajectory dataset packed into contiguous columnar arrays.

    Parameters
    ----------
    points:
        ``(P, 3)`` float64 array of concatenated ``[x, y, t]`` rows.
    offsets:
        ``(n + 1,)`` int64 prefix array (see the module docstring for the
        contract).  Zero-length slices (empty trajectories) are legal.
    ids:
        ``(n,)`` int64 unique trajectory ids; defaults to ``0..n-1``.
    labels:
        Optional per-trajectory labels (``None`` entries allowed).
    validate:
        Check the offsets contract and id uniqueness (cheap — O(n), not
        O(P); default True).
    """

    def __init__(
        self,
        points: np.ndarray,
        offsets: np.ndarray,
        ids: Optional[np.ndarray] = None,
        labels: Optional[Sequence[Optional[str]]] = None,
        validate: bool = True,
    ):
        points = np.asarray(points, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise StoreError(
                f"points must be a (P, 3) array, got shape {points.shape}"
            )
        if offsets.ndim != 1 or offsets.shape[0] < 1:
            raise StoreError(
                f"offsets must be a (n + 1,) array, got shape {offsets.shape}"
            )
        n = offsets.shape[0] - 1
        if ids is None:
            ids = np.arange(n, dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
        if validate:
            if int(offsets[0]) != 0:
                raise StoreError("offsets[0] must be 0")
            if np.any(np.diff(offsets) < 0):
                raise StoreError("offsets must be non-decreasing")
            if int(offsets[-1]) != points.shape[0]:
                raise StoreError(
                    f"offsets[-1] ({int(offsets[-1])}) must equal the "
                    f"number of point rows ({points.shape[0]})"
                )
            if ids.shape != (n,):
                raise StoreError(
                    f"ids must have shape ({n},), got {ids.shape}"
                )
            if len(np.unique(ids)) != n:
                raise StoreError("trajectory ids must be unique")
            if labels is not None and len(labels) != n:
                raise StoreError(
                    f"labels must have length {n}, got {len(labels)}"
                )
        self.points = points
        self.offsets = offsets
        self.ids = ids
        self.labels = list(labels) if labels is not None else None
        self._id_to_pos = {int(tid): pos for pos, tid in enumerate(ids)}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_trajectories(
        cls, trajectories: Sequence[Trajectory]
    ) -> "ColumnarStore":
        """Pack object-backed trajectories into one columnar store.

        Trajectory ids are respected when all are present and unique,
        positional otherwise (the same rule as
        ``TrajTree``'s bulk-load), so a store round-trip preserves the id
        space an index over the same dataset would use.

        Input hardening: zero-point trajectories and non-finite (NaN/inf)
        coordinates raise :class:`StoreError` naming the offending
        trajectory — the DP kernels downstream would silently propagate
        NaNs into every distance they touch, so garbage is rejected at
        the packing boundary instead.
        """
        trajectories = list(trajectories)
        n = len(trajectories)
        for i, t in enumerate(trajectories):
            name = (f"id {t.traj_id}" if t.traj_id is not None
                    else f"position {i}")
            if len(t) == 0:
                raise StoreError(
                    f"trajectory {name} has zero points; stores only "
                    f"accept non-empty trajectories"
                )
            if not np.isfinite(t.data).all():
                raise StoreError(
                    f"trajectory {name} contains NaN/inf coordinates"
                )
        offsets = np.zeros(n + 1, dtype=np.int64)
        for i, t in enumerate(trajectories):
            offsets[i + 1] = offsets[i] + len(t)
        points = np.empty((int(offsets[-1]), 3), dtype=np.float64)
        for i, t in enumerate(trajectories):
            points[offsets[i]:offsets[i + 1]] = t.data
        provided = [t.traj_id for t in trajectories]
        use_provided = all(p is not None for p in provided) and len(
            set(provided)
        ) == len(provided)
        if use_provided:
            ids = np.array([int(p) for p in provided], dtype=np.int64)
        else:
            ids = np.arange(n, dtype=np.int64)
        labels: Optional[List[Optional[str]]] = [
            t.label for t in trajectories
        ]
        if all(lab is None for lab in labels):
            labels = None
        return cls(points, offsets, ids, labels, validate=False)

    # ------------------------------------------------------------------ #
    # container surface
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        """Number of trajectories."""
        return self.offsets.shape[0] - 1

    @property
    def num_points(self) -> int:
        """Total st-point rows across all trajectories."""
        return self.points.shape[0]

    @property
    def nbytes(self) -> int:
        """Bytes held (or mapped) by the three arrays."""
        return self.points.nbytes + self.offsets.nbytes + self.ids.nbytes

    def __contains__(self, traj_id: int) -> bool:
        return int(traj_id) in self._id_to_pos

    def trajectory(self, pos: int) -> Trajectory:
        """The trajectory at dataset position ``pos``, as a zero-copy view.

        The returned ``Trajectory.data`` is a slice of :attr:`points` —
        no rows are copied, whether the store is in-memory or mmap'd.
        Treat it as read-only (mmap-backed slices enforce this).
        """
        n = len(self)
        if not 0 <= pos < n:
            raise IndexError(f"trajectory position {pos} out of range")
        lo, hi = int(self.offsets[pos]), int(self.offsets[pos + 1])
        label = self.labels[pos] if self.labels is not None else None
        return Trajectory(
            self.points[lo:hi],
            traj_id=int(self.ids[pos]),
            label=label,
            validate=False,
        )

    def get(self, traj_id: int) -> Trajectory:
        """The trajectory with this id (zero-copy, like :meth:`trajectory`)."""
        pos = self._id_to_pos.get(int(traj_id))
        if pos is None:
            raise KeyError(f"trajectory id {traj_id} not in store")
        return self.trajectory(pos)

    def trajectories(self) -> List[Trajectory]:
        """All trajectories, in dataset order (each a zero-copy view)."""
        return [self.trajectory(i) for i in range(len(self))]

    def __iter__(self) -> Iterator[Trajectory]:
        for i in range(len(self)):
            yield self.trajectory(i)

    def fingerprint(self) -> dict:
        """Cheap integrity descriptor (mirrors the index snapshots')."""
        ids = sorted(int(t) for t in self.ids[:8])
        return {
            "count": len(self),
            "points": self.num_points,
            "first_ids": ids,
        }

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def save(self, path: PathLike) -> None:
        """Write the store as a directory of ``.npy`` files + ``meta.json``.

        ``np.save`` writes float64/int64 verbatim, so a round-trip is
        bit-identical; the directory is created if missing.

        Crash-safe: stale temp files from an earlier interrupted save are
        swept first, each file goes through the
        :mod:`repro.store.atomic` write protocol, and ``meta.json`` —
        recording one sha256 checksum per array file — lands last.  A
        save that dies at any point leaves either the previous intact
        store or a directory whose damage :meth:`load` detects as a typed
        :class:`StoreError` (checksum or manifest mismatch).
        """
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        cleanup_stale_temps(root)
        checksums = {
            "points.npy": atomic_write_bytes(
                root / "points.npy",
                npy_bytes(np.ascontiguousarray(self.points)),
            ),
            "offsets.npy": atomic_write_bytes(
                root / "offsets.npy", npy_bytes(self.offsets)
            ),
            "ids.npy": atomic_write_bytes(
                root / "ids.npy", npy_bytes(self.ids)
            ),
        }
        meta = {
            "magic": _MAGIC,
            "version": _FORMAT_VERSION,
            "trajectories": len(self),
            "points": self.num_points,
            "labels": self.labels,
            "checksums": checksums,
        }
        atomic_write_json(root / "meta.json", meta)

    @classmethod
    def load(cls, path: PathLike, mmap: bool = True,
             verify: bool = True) -> "ColumnarStore":
        """Load a store written by :meth:`save`.

        ``mmap=True`` (default) maps ``points.npy`` read-only
        (``np.load(..., mmap_mode="r")``): trajectory views then read
        straight from the file and the resident cost is pages touched,
        not dataset size.  ``mmap=False`` reads everything into RAM.

        ``verify=True`` (default) checks every array file against the
        sha256 checksum ``meta.json`` records before trusting it, so a
        torn or bit-flipped file is a typed error, never wrong floats.
        The check streams each file once — ``verify=False`` skips it when
        mmap-opening a huge store whose load-time scan you cannot afford
        (integrity then rests on the atomic-write protocol alone).

        Raises :class:`StoreError` naming the missing/invalid piece for
        anything that is not a complete, compatible store directory.

        Opening also sweeps stale ``*.tmp*`` files a crashed writer left
        behind (:func:`repro.store.atomic.cleanup_stale_temps`) — the
        atomic-write protocol guarantees they are never part of a
        committed store, so reaping them on the read path keeps crash
        debris from accumulating.
        """
        root = Path(path)
        if not root.is_dir():
            raise StoreError(f"{root!s} is not a store directory")
        cleanup_stale_temps(root)
        meta_path = root / "meta.json"
        if not meta_path.is_file():
            raise StoreError(f"{root!s} has no meta.json; not a store?")
        try:
            meta = json.loads(meta_path.read_text())
        except ValueError as exc:
            raise StoreError(f"{meta_path!s} is not valid JSON: {exc}") from None
        if not isinstance(meta, dict) or meta.get("magic") != _MAGIC:
            raise StoreError(f"{root!s} is not a columnar trajectory store")
        if meta.get("version") != _FORMAT_VERSION:
            raise StoreError(
                f"store was written by format version {meta.get('version')}, "
                f"this library expects {_FORMAT_VERSION}; repack the store"
            )
        checksums = meta.get("checksums")
        if not isinstance(checksums, dict):
            raise StoreError(
                f"{meta_path!s} records no file checksums; "
                f"store incomplete or tampered with"
            )
        arrays = {}
        for name in _ARRAY_FILES:
            file = root / name
            if not file.is_file():
                raise StoreError(f"store file {file!s} is missing")
            if verify:
                expected = checksums.get(name)
                if not expected:
                    raise StoreError(
                        f"{meta_path!s} records no checksum for {name}"
                    )
                verify_checksum(file, expected, error_cls=StoreError)
            try:
                mode = "r" if (mmap and name == "points.npy") else None
                arrays[name] = np.load(file, mmap_mode=mode)
            except (OSError, ValueError) as exc:
                raise StoreError(
                    f"store file {file!s} is unreadable: {exc}"
                ) from None
        store = cls(
            arrays["points.npy"],
            arrays["offsets.npy"],
            arrays["ids.npy"],
            meta.get("labels"),
            validate=True,
        )
        if len(store) != meta.get("trajectories"):
            raise StoreError(
                f"{root!s}: meta.json promises {meta.get('trajectories')} "
                f"trajectories, arrays hold {len(store)}"
            )
        return store

    def __repr__(self) -> str:
        return (
            f"ColumnarStore(trajectories={len(self)}, "
            f"points={self.num_points})"
        )
