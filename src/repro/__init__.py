"""repro — reproduction of "Indexing and Matching Trajectories under
Inconsistent Sampling Rates" (Ranu, P, Telang, Deshpande, Raghavan;
ICDE 2015).

The package provides:

* ``repro.core`` — the EDwP distance family (Sec. III): the
  :class:`~repro.core.trajectory.Trajectory` model, :func:`~repro.core.edwp.edwp`,
  :func:`~repro.core.edwp.edwp_avg` and the sub-trajectory distance
  :func:`~repro.core.edwp_sub.edwp_sub`.
* ``repro.index`` — the TrajTree index (Sec. IV): st-boxes, tBoxSeqs, pivot
  partitioning, vantage points and exact k-NN querying, plus the sharded
  :class:`~repro.index.forest.TrajForest` with k-way merged queries.
* ``repro.store`` — columnar, memory-mappable trajectory storage
  (:class:`~repro.store.ColumnarStore`): zero-copy store-backed
  trajectories every kernel and index consumes unchanged.
* ``repro.baselines`` — DTW, LCSS, ERP, EDR, DISSIM, MA, Lp, Fréchet,
  Hausdorff and an EDR filter-and-refine index (the paper's comparators),
  each dual-backend, plus the batched distance-matrix engine
  (:func:`~repro.baselines.matrix.pairwise_matrix` /
  :func:`~repro.baselines.matrix.cross_matrix`).
* ``repro.datasets`` — synthetic Beijing-taxi and ASL-sign workloads, the
  Sec. V noise protocols, trip splitting and uniform re-interpolation.
* ``repro.eval`` — classification, robustness, UB-factor and feature-matrix
  harnesses regenerating every table and figure (see the benchmark matrix
  in README.md).

Every distance runs on one of up to three interchangeable backends — the
pure-Python reference DPs, the vectorized numpy kernels
(``set_backend("numpy")``), and the optional numba-compiled native tier
(``set_backend("native")``, ``pip install .[native]``); DESIGN.md
documents the contract between them ("Dual-backend EDwP kernels",
"Baseline kernels" and "Native kernel tier").  numba is never imported
eagerly: without it the package works unchanged and ``"native"`` raises
a typed :class:`~repro.core.edwp.NativeBackendUnavailableError`.

Quickstart::

    from repro import Trajectory, edwp_avg, TrajTree

    t1 = Trajectory([(0, 0, 0), (0, 10, 30)])
    t2 = Trajectory([(2, 0, 0), (2, 7, 14), (2, 10, 20)])
    print(edwp_avg(t1, t2))

    from repro.datasets import generate_beijing
    db = generate_beijing(200, seed=7)
    tree = TrajTree(db, normalized=True)
    print(tree.knn(db[0], k=5))
"""

from .core import (
    BACKENDS,
    KNOWN_BACKENDS,
    BackendError,
    EditOp,
    EdwpResult,
    NativeBackendUnavailableError,
    STPoint,
    Segment,
    Trajectory,
    UnknownBackendError,
    available_backends,
    edwp,
    edwp_alignment,
    edwp_avg,
    edwp_many,
    get_backend,
    set_backend,
    use_backend,
)
from .core.edwp_sub import edwp_sub, edwp_sub_alignment, prefix_dist
from .index import STBox, TBoxSeq, TrajForest, TrajTree, edwp_sub_box
from .baselines import cross_matrix, pairwise_matrix
from .store import ColumnarStore

__version__ = "1.0.0"

__all__ = [
    "STPoint",
    "Segment",
    "Trajectory",
    "EditOp",
    "EdwpResult",
    "edwp",
    "edwp_alignment",
    "edwp_avg",
    "edwp_many",
    "get_backend",
    "set_backend",
    "use_backend",
    "BACKENDS",
    "KNOWN_BACKENDS",
    "available_backends",
    "BackendError",
    "UnknownBackendError",
    "NativeBackendUnavailableError",
    "edwp_sub",
    "edwp_sub_alignment",
    "prefix_dist",
    "STBox",
    "TBoxSeq",
    "TrajTree",
    "TrajForest",
    "ColumnarStore",
    "edwp_sub_box",
    "cross_matrix",
    "pairwise_matrix",
    "__version__",
]
