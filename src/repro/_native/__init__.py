"""Optional compiled (``"native"``) backend — numba-jitted DP kernels.

This package is the third realization of the dual-backend contract (see
DESIGN.md, "Native kernel tier"): the same dynamic programs as the
``"python"`` reference and the ``"numpy"`` anti-diagonal kernels, written
as scalar loops that `numba <https://numba.pydata.org>`_ compiles to
machine code with ``@njit(cache=True)``.

numba is an *optional* dependency (``pip install .[native]``).  Nothing in
this package — and nothing in ``repro`` — imports numba at package import
time:

* :func:`numba_available` probes for numba with ``importlib.util.find_spec``
  (no import) and memoizes the answer; backend selection
  (:func:`repro.core.edwp.set_backend` / ``resolve_backend``) consults it
  and raises the typed
  :class:`~repro.core.edwp.NativeBackendUnavailableError` when
  ``"native"`` is requested without numba installed.
* :func:`load` imports :mod:`repro._native.api` lazily on first native
  dispatch.  Importing that module imports numba (when present) but does
  not compile anything; each kernel JIT-compiles on first call and the
  compiled code is persisted by numba's on-disk cache.
* Without numba the kernels degrade to their plain-Python definitions (an
  identity ``njit`` shim), which is how the differential tests exercise
  the kernel *logic* on numba-less machines.

The memoized probe result lives in the module global ``_AVAILABLE`` so
tests can monkeypatch numba's absence without uninstalling anything.
"""

from __future__ import annotations

import importlib.util
from typing import Optional

__all__ = ["numba_available", "load", "warmup"]

#: Memoized availability probe; ``None`` means "not probed yet".  Tests
#: monkeypatch this to simulate a numba-less environment.
_AVAILABLE: Optional[bool] = None

_api = None


def numba_available() -> bool:
    """Whether numba is installed (probed once, without importing it)."""
    global _AVAILABLE
    if _AVAILABLE is None:
        _AVAILABLE = importlib.util.find_spec("numba") is not None
    return bool(_AVAILABLE)


def load():
    """Import (once) and return the native kernel API module.

    Cheap after the first call.  The module itself imports fine without
    numba — the kernels just run un-jitted — so callers that must *refuse*
    to run interpreted (the backend dispatch) gate on
    :func:`numba_available` first.
    """
    global _api
    if _api is None:
        from . import api
        _api = api
    return _api


def warmup() -> None:
    """Force-compile every native kernel on tiny inputs.

    Benchmarks call this before timing so JIT compilation (or the
    on-disk-cache load) never lands inside a measured region.  A no-op
    waste of microseconds when numba is absent.
    """
    load().warmup()
