"""Python-side wrappers around the compiled kernels.

This is what the dispatch layer routes to when the ``"native"`` backend is
resolved: each function mirrors the calling convention *and the base-case
semantics* of its numpy counterpart in :mod:`repro.core.edwp_fast`,
:mod:`repro.baselines.fast` and :mod:`repro.index.fast_bounds` — the
callers have already peeled the trivial cases they peel for numpy (e.g.
:func:`repro.core.edwp.edwp` never dispatches a segment-less pair), and
the batched entry points here fill the same per-target base values the
python loop would (``inf`` for a segment-less EDwP target, ``n`` for an
empty EDR target, and so on) before handing the live targets to one
kernel call over a concatenated coordinate array.

Importing this module imports numba when it is installed (kernels compile
lazily on first call, cached on disk); without numba the kernels run
un-jitted, which only the differential tests do on purpose.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from ..core.trajectory import Trajectory
from . import kernels

__all__ = [
    "warmup",
    "edwp_native",
    "edwp_many_native",
    "edwp_sub_native",
    "edwp_sub_many_native",
    "edwp_sub_fast_native",
    "edwp_sub_fast_queries_native",
    "prefix_dist_native",
    "dtw_native",
    "dtw_many_native",
    "edr_native",
    "edr_many_native",
    "erp_native",
    "erp_many_native",
    "lcss_length_native",
    "lcss_length_many_native",
    "frechet_native",
    "frechet_many_native",
    "edwp_sub_box_native",
    "edwp_sub_box_many_native",
]


def _pack(trajectories: Sequence[Trajectory]) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate cached coordinate matrices plus int64 offsets.

    The ragged-batch wire format of every ``*_many`` kernel: ``pts`` is the
    row-stacked ``(sum n_k, 2)`` float64 array, ``offs[b]:offs[b+1]`` the
    rows of batch member ``b``.
    """
    offs = np.zeros(len(trajectories) + 1, dtype=np.int64)
    for k, t in enumerate(trajectories):
        offs[k + 1] = offs[k] + len(t)
    pts = np.empty((int(offs[-1]), 2), dtype=np.float64)
    for k, t in enumerate(trajectories):
        pts[offs[k]:offs[k + 1]] = t.coords()
    return pts, offs


# ---------------------------------------------------------------------- #
# EDwP family
# ---------------------------------------------------------------------- #


def edwp_native(t1: Trajectory, t2: Trajectory) -> float:
    """EDwP distance (both arguments have >= 1 segment; caller checked)."""
    return float(kernels.edwp_value(t1.coords(), t2.coords()))


def edwp_many_native(
    query: Trajectory, trajectories: Sequence[Trajectory]
) -> List[float]:
    """Raw EDwP of one query (>= 1 segment) against many targets."""
    out = [math.inf] * len(trajectories)
    live = [k for k, t in enumerate(trajectories)
            if t.num_segments > 0]
    if live:
        pts, offs = _pack([trajectories[k] for k in live])
        res = np.empty(len(live), dtype=np.float64)
        kernels.edwp_many_kernel(query.coords(), pts, offs, res)
        for k, value in zip(live, res):
            out[k] = float(value)
    return out


def edwp_sub_native(t: Trajectory, s: Trajectory) -> float:
    """Two-pass EDwPsub (both arguments have >= 1 segment)."""
    return float(kernels.edwp_sub_value(t.coords(), s.coords(), True))


def edwp_sub_many_native(
    t: Trajectory, trajectories: Sequence[Trajectory]
) -> List[float]:
    """EDwPsub of one query (>= 1 segment) against many targets."""
    out = [math.inf] * len(trajectories)
    live = [k for k, s in enumerate(trajectories) if s.num_segments > 0]
    if live:
        pts, offs = _pack([trajectories[k] for k in live])
        res = np.empty(len(live), dtype=np.float64)
        kernels.edwp_sub_many_kernel(t.coords(), pts, offs, True, res)
        for k, value in zip(live, res):
            out[k] = float(value)
    return out


def edwp_sub_fast_native(t: Trajectory, s: Trajectory) -> float:
    """Single-pass (free-start only) EDwPsub."""
    return float(kernels.edwp_sub_value(t.coords(), s.coords(), False))


def edwp_sub_fast_queries_native(
    queries: Sequence[Trajectory], s: Trajectory
) -> List[float]:
    """Single-pass EDwPsub of many queries against one target
    (>= 1 segment); segment-less queries match trivially (0.0)."""
    out = [0.0] * len(queries)
    live = [k for k, q in enumerate(queries) if q.num_segments > 0]
    if live:
        pts, offs = _pack([queries[k] for k in live])
        res = np.empty(len(live), dtype=np.float64)
        kernels.edwp_sub_fast_queries_kernel(pts, offs, s.coords(), res)
        for k, value in zip(live, res):
            out[k] = float(value)
    return out


def prefix_dist_native(t: Trajectory, s: Trajectory) -> float:
    """PrefixDist (both arguments have >= 1 segment)."""
    return float(kernels.prefix_dist_value(t.coords(), s.coords()))


# ---------------------------------------------------------------------- #
# baseline comparators
# ---------------------------------------------------------------------- #


def dtw_native(t1: Trajectory, t2: Trajectory, window: int = 0) -> float:
    """DTW (both non-empty)."""
    return float(kernels.dtw_kernel(t1.coords(), t2.coords(), window))


def dtw_many_native(query: Trajectory, trajectories: Sequence[Trajectory],
                    window: int = 0) -> List[float]:
    q = query.coords()
    return [
        math.inf if len(t) == 0
        else float(kernels.dtw_kernel(q, t.coords(), window))
        for t in trajectories
    ]


def edr_native(t1: Trajectory, t2: Trajectory, eps: float) -> int:
    """EDR edit count (both non-empty)."""
    return int(kernels.edr_kernel(t1.coords(), t2.coords(), eps))


def edr_many_native(query: Trajectory, trajectories: Sequence[Trajectory],
                    eps: float) -> List[int]:
    q = query.coords()
    n = len(query)
    return [
        n if len(t) == 0 else int(kernels.edr_kernel(q, t.coords(), eps))
        for t in trajectories
    ]


def _gap_total(traj: Trajectory, g: Tuple[float, float]) -> float:
    """ERP's empty-side base case: the sum of gap distances (in the
    reference's left-to-right accumulation order)."""
    total = 0.0
    for row in traj.data:
        total += math.hypot(row[0] - g[0], row[1] - g[1])
    return float(total)


def erp_native(t1: Trajectory, t2: Trajectory,
               g: Tuple[float, float]) -> float:
    """ERP (both non-empty)."""
    return float(kernels.erp_kernel(t1.coords(), t2.coords(), g[0], g[1]))


def erp_many_native(query: Trajectory, trajectories: Sequence[Trajectory],
                    g: Tuple[float, float]) -> List[float]:
    q = query.coords()
    return [
        _gap_total(query, g) if len(t) == 0
        else float(kernels.erp_kernel(q, t.coords(), g[0], g[1]))
        for t in trajectories
    ]


def lcss_length_native(t1: Trajectory, t2: Trajectory, eps: float) -> int:
    """LCSS match count, delta = 0 (both non-empty)."""
    return int(kernels.lcss_kernel(t1.coords(), t2.coords(), eps))


def lcss_length_many_native(query: Trajectory,
                            trajectories: Sequence[Trajectory],
                            eps: float) -> List[int]:
    q = query.coords()
    return [
        0 if len(t) == 0 else int(kernels.lcss_kernel(q, t.coords(), eps))
        for t in trajectories
    ]


def frechet_native(t1: Trajectory, t2: Trajectory) -> float:
    """Discrete Fréchet (both non-empty)."""
    return float(kernels.frechet_kernel(t1.coords(), t2.coords()))


def frechet_many_native(query: Trajectory,
                        trajectories: Sequence[Trajectory]) -> List[float]:
    q = query.coords()
    return [
        math.inf if len(t) == 0
        else float(kernels.frechet_kernel(q, t.coords()))
        for t in trajectories
    ]


# ---------------------------------------------------------------------- #
# Theorem-2 box bounds
# ---------------------------------------------------------------------- #


def edwp_sub_box_native(traj: Trajectory, geom,
                        thorough: bool = False) -> float:
    """Theorem-2 bound against one :class:`BoxGeometry` (caller checked
    ``traj.num_segments > 0``)."""
    return float(kernels.box_sub_value(
        traj.coords(), geom.xmin, geom.ymin, geom.xmax, geom.ymax,
        geom.min_len, thorough,
    ))


def edwp_sub_box_many_native(traj: Trajectory, geoms: Sequence,
                             thorough: bool = False) -> List[float]:
    """Bounds of one trajectory against many box sequences, one kernel
    call over concatenated geometry arrays."""
    if not geoms:
        return []
    offs = np.zeros(len(geoms) + 1, dtype=np.int64)
    for k, geom in enumerate(geoms):
        offs[k + 1] = offs[k] + len(geom)
    total = int(offs[-1])
    gx0 = np.empty(total, dtype=np.float64)
    gy0 = np.empty(total, dtype=np.float64)
    gx1 = np.empty(total, dtype=np.float64)
    gy1 = np.empty(total, dtype=np.float64)
    gml = np.empty(total, dtype=np.float64)
    for k, geom in enumerate(geoms):
        s, e = offs[k], offs[k + 1]
        gx0[s:e] = geom.xmin
        gy0[s:e] = geom.ymin
        gx1[s:e] = geom.xmax
        gy1[s:e] = geom.ymax
        gml[s:e] = geom.min_len
    out = np.empty(len(geoms), dtype=np.float64)
    kernels.box_many_kernel(
        traj.coords(), gx0, gy0, gx1, gy1, gml, offs, thorough, out
    )
    return [float(v) for v in out]


# ---------------------------------------------------------------------- #
# warm-up
# ---------------------------------------------------------------------- #


def warmup() -> None:
    """Call every kernel once on tiny inputs to trigger (cached) JIT
    compilation outside any measured or latency-sensitive region."""
    p = np.array([[0.0, 0.0], [1.0, 0.0]], dtype=np.float64)
    q = np.array([[0.0, 1.0], [1.0, 1.0], [2.0, 1.0]], dtype=np.float64)
    offs = np.array([0, 3], dtype=np.int64)
    out = np.empty(1, dtype=np.float64)
    kernels.edwp_value(p, q)
    kernels.edwp_sub_value(p, q, True)
    kernels.prefix_dist_value(p, q)
    kernels.edwp_many_kernel(p, q, offs, out)
    kernels.edwp_sub_many_kernel(p, q, offs, True, out)
    kernels.edwp_sub_fast_queries_kernel(q, offs, p, out)
    kernels.dtw_kernel(p, q, 0)
    kernels.edr_kernel(p, q, 0.5)
    kernels.erp_kernel(p, q, 0.0, 0.0)
    kernels.lcss_kernel(p, q, 0.5)
    kernels.frechet_kernel(p, q)
    bx0 = np.array([0.0])
    by0 = np.array([0.0])
    bx1 = np.array([1.0])
    by1 = np.array([1.0])
    bml = np.array([1.0])
    goffs = np.array([0, 1], dtype=np.int64)
    kernels.box_sub_value(p, bx0, by0, bx1, by1, bml, True)
    kernels.box_many_kernel(p, bx0, by0, bx1, by1, bml, goffs, True, out)
