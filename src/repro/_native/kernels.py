"""The compiled DP kernels — scalar loops under ``@njit(cache=True)``.

Every kernel is an operation-for-operation port of its pure-Python
reference (the same additions and multiplications in the same association
order, the same strict-``<`` tie-breaking, the same candidate order in the
rectangle projection scan), so the numerical contract of the ``"numpy"``
tier (DESIGN.md) carries over: agreement with the ``"python"`` oracle to
float tolerance, exact integer answers for the edit-count DPs.  The only
licensed deviation is ``math.hypot`` — CPython computes it with its own
correctly-rounded algorithm while compiled code calls libm's, which may
differ in the last ulps; the cross-backend tests therefore compare at
``1e-9`` relative, same as the numpy tier.

Kernels take plain ``(n, 2)`` float64 C-contiguous coordinate arrays
(:meth:`repro.core.trajectory.Trajectory.coords` caches exactly that) and,
for the batched drivers, one concatenated point array plus an ``int64``
offset vector — ragged batches are exact, with no padding.  Each kernel is
monomorphic: one argument-type signature per kernel, so one compilation,
persisted across processes by numba's on-disk cache.

When numba is not installed the ``njit`` decorator below degrades to an
identity wrapper and the kernels run as ordinary Python.  That keeps this
module importable everywhere and lets the differential suite pin the
kernel *logic* against the reference DPs even on numba-less machines;
the dispatch layer never routes to them un-jitted (selecting
``backend="native"`` without numba raises the typed unavailable error).

Base cases (empty / segment-less trajectories) are handled python-side by
:mod:`repro._native.api`; every kernel here may assume at least one point
(and for the EDwP family, at least one segment) per input.
"""

from __future__ import annotations

import math

import numpy as np

try:
    from numba import njit

    NUMBA = True
except ImportError:  # pragma: no cover - exercised via the fallback tests
    NUMBA = False

    def njit(*args, **kwargs):
        """Identity decorator standing in for numba's when it is absent."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


__all__ = [
    "NUMBA",
    "edwp_last_row",
    "edwp_value",
    "edwp_sub_value",
    "prefix_dist_value",
    "edwp_many_kernel",
    "edwp_sub_many_kernel",
    "edwp_sub_fast_queries_kernel",
    "dtw_kernel",
    "edr_kernel",
    "erp_kernel",
    "lcss_kernel",
    "frechet_kernel",
    "box_dp_min",
    "box_sub_value",
    "box_many_kernel",
]


# ---------------------------------------------------------------------- #
# geometry primitives (ports of repro.core.geometry)
# ---------------------------------------------------------------------- #


@njit(cache=True)
def _project_on_segment(ax, ay, bx, by, sx, sy):
    """Projection of point ``s`` onto segment ``[a, b]`` (closest point)."""
    dx = bx - ax
    dy = by - ay
    norm_sq = dx * dx + dy * dy
    if norm_sq <= 0.0:
        return ax, ay
    t = ((sx - ax) * dx + (sy - ay) * dy) / norm_sq
    if t <= 0.0:
        return ax, ay
    if t >= 1.0:
        return bx, by
    return ax + t * dx, ay + t * dy


@njit(cache=True)
def _rect_dist(px, py, xmin, ymin, xmax, ymax):
    """Distance from a point to an axis-aligned rectangle (0 if inside)."""
    dx = 0.0
    if px < xmin:
        dx = xmin - px
    elif px > xmax:
        dx = px - xmax
    dy = 0.0
    if py < ymin:
        dy = ymin - py
    elif py > ymax:
        dy = py - ymax
    if dx == 0.0:
        return dy
    if dy == 0.0:
        return dx
    return math.hypot(dx, dy)


@njit(cache=True)
def _rect_project_on_segment(ax, ay, bx, by, xmin, ymin, xmax, ymax):
    """Point of segment ``[a, b]`` closest to the rectangle — exactly.

    The reference's ten-candidate scan (endpoints, the four supporting-line
    crossings, the four corner projections) in the reference's candidate
    order, with the same clamp, strict-``<`` selection and early exit at
    distance zero.
    """
    # builtin-float casts: a no-op under numba, but un-jitted they keep the
    # near-degenerate divisions below on python-float semantics (silent inf,
    # as in the reference) instead of np.float64 overflow warnings
    ax = float(ax)
    ay = float(ay)
    bx = float(bx)
    by = float(by)
    xmin = float(xmin)
    ymin = float(ymin)
    xmax = float(xmax)
    ymax = float(ymax)
    dx = bx - ax
    dy = by - ay
    cand = np.empty(10)
    k = 0
    cand[k] = 0.0
    k += 1
    cand[k] = 1.0
    k += 1
    if dx != 0.0:
        cand[k] = (xmin - ax) / dx
        k += 1
        cand[k] = (xmax - ax) / dx
        k += 1
    if dy != 0.0:
        cand[k] = (ymin - ay) / dy
        k += 1
        cand[k] = (ymax - ay) / dy
        k += 1
    norm_sq = dx * dx + dy * dy
    if norm_sq > 0.0:
        cand[k] = ((xmin - ax) * dx + (ymin - ay) * dy) / norm_sq
        k += 1
        cand[k] = ((xmin - ax) * dx + (ymax - ay) * dy) / norm_sq
        k += 1
        cand[k] = ((xmax - ax) * dx + (ymin - ay) * dy) / norm_sq
        k += 1
        cand[k] = ((xmax - ax) * dx + (ymax - ay) * dy) / norm_sq
        k += 1
    best_t = 0.0
    best_d = math.inf
    for idx in range(k):
        t = cand[idx]
        if t < 0.0:
            t = 0.0
        elif t > 1.0:
            t = 1.0
        d = _rect_dist(ax + dx * t, ay + dy * t, xmin, ymin, xmax, ymax)
        if d < best_d:
            best_d = d
            best_t = t
            if d == 0.0:
                break
    return ax + dx * best_t, ay + dy * best_t


# ---------------------------------------------------------------------- #
# the EDwP family (ports of repro.core.edwp._edwp_dp)
# ---------------------------------------------------------------------- #


@njit(cache=True)
def edwp_last_row(p1, p2, free_start_row):
    """Last cost row of the EDwP cell DP over rolling rows.

    Same recurrence as :func:`repro.core.edwp._edwp_dp` (rep / ins-on-T1 /
    ins-on-T2, strict-``<`` priority), with each cell carrying the current
    position on both trajectories; only two rows are live at a time and the
    position matrices are never materialized (values only, no backtrack —
    alignment recovery stays on the python backend).
    """
    n1 = p1.shape[0] - 1
    n2 = p2.shape[0] - 1
    cols = n2 + 1
    inf = math.inf

    prev_cost = np.empty(cols)
    prev_1x = np.empty(cols)
    prev_1y = np.empty(cols)
    prev_2x = np.empty(cols)
    prev_2y = np.empty(cols)
    cur_cost = np.empty(cols)
    cur_1x = np.empty(cols)
    cur_1y = np.empty(cols)
    cur_2x = np.empty(cols)
    cur_2y = np.empty(cols)

    for i in range(n1 + 1):
        for j in range(cols):
            cur_cost[j] = inf
            cur_1x[j] = 0.0
            cur_1y[j] = 0.0
            cur_2x[j] = 0.0
            cur_2y[j] = 0.0
        if i == 0:
            if free_start_row:
                for j in range(cols):
                    cur_cost[j] = 0.0
                    cur_1x[j] = p1[0, 0]
                    cur_1y[j] = p1[0, 1]
                    cur_2x[j] = p2[j, 0]
                    cur_2y[j] = p2[j, 1]
            else:
                cur_cost[0] = 0.0
                cur_1x[0] = p1[0, 0]
                cur_1y[0] = p1[0, 1]
                cur_2x[0] = p2[0, 0]
                cur_2y[0] = p2[0, 1]
        for j in range(cols):
            if i == 0 and (j == 0 or free_start_row):
                continue
            best = inf
            b1x = 0.0
            b1y = 0.0
            b2x = 0.0
            b2y = 0.0

            # rep: from (i-1, j-1) — replace both current segments wholesale.
            if i > 0 and j > 0:
                c = prev_cost[j - 1]
                if c < inf:
                    a1x = prev_1x[j - 1]
                    a1y = prev_1y[j - 1]
                    a2x = prev_2x[j - 1]
                    a2y = prev_2y[j - 1]
                    e1x = p1[i, 0]
                    e1y = p1[i, 1]
                    e2x = p2[j, 0]
                    e2y = p2[j, 1]
                    incr = (
                        math.hypot(a1x - a2x, a1y - a2y)
                        + math.hypot(e1x - e2x, e1y - e2y)
                    ) * (
                        math.hypot(a1x - e1x, a1y - e1y)
                        + math.hypot(a2x - e2x, a2y - e2y)
                    )
                    total = c + incr
                    if total < best:
                        best = total
                        b1x = e1x
                        b1y = e1y
                        b2x = e2x
                        b2y = e2y

            # ins on T1: from (i, j-1) — T2 advances to P2[j]; T1 advances
            # to the projection of P2[j] on its remaining segment.
            if j > 0:
                c = cur_cost[j - 1]
                if c < inf:
                    a1x = cur_1x[j - 1]
                    a1y = cur_1y[j - 1]
                    a2x = cur_2x[j - 1]
                    a2y = cur_2y[j - 1]
                    e2x = p2[j, 0]
                    e2y = p2[j, 1]
                    if i < n1:
                        qx, qy = _project_on_segment(
                            a1x, a1y, p1[i + 1, 0], p1[i + 1, 1], e2x, e2y
                        )
                    else:
                        qx = a1x
                        qy = a1y
                    base = math.hypot(a1x - a2x, a1y - a2y)
                    incr = (base + math.hypot(qx - e2x, qy - e2y)) * (
                        math.hypot(a1x - qx, a1y - qy)
                        + math.hypot(a2x - e2x, a2y - e2y)
                    )
                    total = c + incr
                    if total < best:
                        best = total
                        b1x = qx
                        b1y = qy
                        b2x = e2x
                        b2y = e2y

            # ins on T2: from (i-1, j) — symmetric.
            if i > 0:
                c = prev_cost[j]
                if c < inf:
                    a1x = prev_1x[j]
                    a1y = prev_1y[j]
                    a2x = prev_2x[j]
                    a2y = prev_2y[j]
                    e1x = p1[i, 0]
                    e1y = p1[i, 1]
                    if j < n2:
                        qx, qy = _project_on_segment(
                            a2x, a2y, p2[j + 1, 0], p2[j + 1, 1], e1x, e1y
                        )
                    else:
                        qx = a2x
                        qy = a2y
                    base = math.hypot(a1x - a2x, a1y - a2y)
                    incr = (base + math.hypot(e1x - qx, e1y - qy)) * (
                        math.hypot(a1x - e1x, a1y - e1y)
                        + math.hypot(a2x - qx, a2y - qy)
                    )
                    total = c + incr
                    if total < best:
                        best = total
                        b1x = e1x
                        b1y = e1y
                        b2x = qx
                        b2y = qy

            cur_cost[j] = best
            cur_1x[j] = b1x
            cur_1y[j] = b1y
            cur_2x[j] = b2x
            cur_2y[j] = b2y

        prev_cost, cur_cost = cur_cost, prev_cost
        prev_1x, cur_1x = cur_1x, prev_1x
        prev_1y, cur_1y = cur_1y, prev_1y
        prev_2x, cur_2x = cur_2x, prev_2x
        prev_2y, cur_2y = cur_2y, prev_2y

    return prev_cost


@njit(cache=True)
def _row_min(row):
    best = math.inf
    for j in range(row.shape[0]):
        if row[j] < best:
            best = row[j]
    return best


@njit(cache=True)
def edwp_value(p1, p2):
    """EDwP distance: anchored DP, corner cell."""
    row = edwp_last_row(p1, p2, False)
    return row[row.shape[0] - 1]


@njit(cache=True)
def edwp_sub_value(p1, p2, thorough):
    """EDwPsub: min over the free-start last row; with ``thorough`` also
    the anchored pass (the two-pass :func:`repro.core.edwp_sub.edwp_sub`
    contract; single-pass is ``edwp_sub_fast``)."""
    value = _row_min(edwp_last_row(p1, p2, True))
    if thorough:
        anchored = _row_min(edwp_last_row(p1, p2, False))
        if anchored < value:
            value = anchored
    return value


@njit(cache=True)
def prefix_dist_value(p1, p2):
    """PrefixDist (Eq. 5): anchored DP, min over the last row."""
    return _row_min(edwp_last_row(p1, p2, False))


@njit(cache=True)
def edwp_many_kernel(q, pts, offs, out):
    """EDwP of one query against a ragged batch of targets."""
    for b in range(offs.shape[0] - 1):
        out[b] = edwp_value(q, pts[offs[b]:offs[b + 1]])


@njit(cache=True)
def edwp_sub_many_kernel(q, pts, offs, thorough, out):
    """EDwPsub of one query against a ragged batch of targets."""
    for b in range(offs.shape[0] - 1):
        out[b] = edwp_sub_value(q, pts[offs[b]:offs[b + 1]], thorough)


@njit(cache=True)
def edwp_sub_fast_queries_kernel(pts, offs, s, out):
    """Single-pass EDwPsub of a ragged batch of queries against one target."""
    for b in range(offs.shape[0] - 1):
        out[b] = _row_min(edwp_last_row(pts[offs[b]:offs[b + 1]], s, True))


# ---------------------------------------------------------------------- #
# baseline DPs (ports of repro.baselines.{dtw,edr,erp,lcss,frechet})
# ---------------------------------------------------------------------- #


@njit(cache=True)
def dtw_kernel(p1, p2, window):
    """DTW over sampled points, optional Sakoe-Chiba band (0 = off)."""
    n = p1.shape[0]
    m = p2.shape[0]
    inf = math.inf
    prev = np.empty(m + 1)
    cur = np.empty(m + 1)
    prev[0] = 0.0
    for j in range(1, m + 1):
        prev[j] = inf
    for i in range(1, n + 1):
        for j in range(m + 1):
            cur[j] = inf
        lo = 1
        hi = m
        if window > 0:
            lo = max(1, i - window)
            hi = min(m, i + window)
        ax = p1[i - 1, 0]
        ay = p1[i - 1, 1]
        for j in range(lo, hi + 1):
            d = math.hypot(ax - p2[j - 1, 0], ay - p2[j - 1, 1])
            best = prev[j - 1]
            if prev[j] < best:
                best = prev[j]
            if cur[j - 1] < best:
                best = cur[j - 1]
            cur[j] = d + best
        prev, cur = cur, prev
    return prev[m]


@njit(cache=True)
def edr_kernel(p1, p2, eps):
    """EDR edit count (inclusive ``<= eps`` per-coordinate match)."""
    n = p1.shape[0]
    m = p2.shape[0]
    prev = np.empty(m + 1, dtype=np.int64)
    cur = np.empty(m + 1, dtype=np.int64)
    for j in range(m + 1):
        prev[j] = j
    for i in range(1, n + 1):
        cur[0] = i
        x1 = p1[i - 1, 0]
        y1 = p1[i - 1, 1]
        for j in range(1, m + 1):
            if abs(x1 - p2[j - 1, 0]) <= eps and abs(y1 - p2[j - 1, 1]) <= eps:
                sub = 0
            else:
                sub = 1
            best = prev[j - 1] + sub
            if prev[j] + 1 < best:
                best = prev[j] + 1
            if cur[j - 1] + 1 < best:
                best = cur[j - 1] + 1
            cur[j] = best
        prev, cur = cur, prev
    return prev[m]


@njit(cache=True)
def erp_kernel(p1, p2, gx, gy):
    """ERP with gap point ``(gx, gy)`` (both inputs non-empty)."""
    n = p1.shape[0]
    m = p2.shape[0]
    gap2 = np.empty(m)
    for j in range(m):
        gap2[j] = math.hypot(p2[j, 0] - gx, p2[j, 1] - gy)
    prev = np.empty(m + 1)
    cur = np.empty(m + 1)
    prev[0] = 0.0
    for j in range(1, m + 1):
        prev[j] = prev[j - 1] + gap2[j - 1]
    for i in range(1, n + 1):
        ax = p1[i - 1, 0]
        ay = p1[i - 1, 1]
        ga = math.hypot(ax - gx, ay - gy)
        cur[0] = prev[0] + ga
        for j in range(1, m + 1):
            best = prev[j - 1] + math.hypot(ax - p2[j - 1, 0], ay - p2[j - 1, 1])
            gap_t1 = prev[j] + ga
            if gap_t1 < best:
                best = gap_t1
            gap_t2 = cur[j - 1] + gap2[j - 1]
            if gap_t2 < best:
                best = gap_t2
            cur[j] = best
        prev, cur = cur, prev
    return prev[m]


@njit(cache=True)
def lcss_kernel(p1, p2, eps):
    """LCSS match count, unconstrained (``delta = 0``; strict ``< eps``)."""
    n = p1.shape[0]
    m = p2.shape[0]
    prev = np.zeros(m + 1, dtype=np.int64)
    cur = np.empty(m + 1, dtype=np.int64)
    for i in range(1, n + 1):
        cur[0] = 0
        x1 = p1[i - 1, 0]
        y1 = p1[i - 1, 1]
        for j in range(1, m + 1):
            if abs(x1 - p2[j - 1, 0]) < eps and abs(y1 - p2[j - 1, 1]) < eps:
                cur[j] = prev[j - 1] + 1
            elif prev[j] >= cur[j - 1]:
                cur[j] = prev[j]
            else:
                cur[j] = cur[j - 1]
        prev, cur = cur, prev
    return prev[m]


@njit(cache=True)
def frechet_kernel(p1, p2):
    """Discrete Fréchet (both inputs non-empty)."""
    n = p1.shape[0]
    m = p2.shape[0]
    inf = math.inf
    prev = np.empty(m)
    cur = np.empty(m)
    for j in range(m):
        prev[j] = inf
    for i in range(n):
        ax = p1[i, 0]
        ay = p1[i, 1]
        for j in range(m):
            d = math.hypot(ax - p2[j, 0], ay - p2[j, 1])
            if i == 0 and j == 0:
                best = d
            elif i == 0:
                best = cur[j - 1]
                if d > best:
                    best = d
            elif j == 0:
                best = prev[j]
                if d > best:
                    best = d
            else:
                reach = prev[j - 1]
                if prev[j] < reach:
                    reach = prev[j]
                if cur[j - 1] < reach:
                    reach = cur[j - 1]
                best = reach
                if d > best:
                    best = d
            cur[j] = best
        prev, cur = cur, prev
    return prev[m - 1]


# ---------------------------------------------------------------------- #
# the Theorem-2 box DP (port of repro.index.tboxseq._box_dp)
# ---------------------------------------------------------------------- #


@njit(cache=True)
def _box_piece_cost(cx, cy, ex, ey, xmin, ymin, xmax, ymax):
    """``2 * ∫ d_box`` over the piece, by the 3-point midpoint rule."""
    length = math.hypot(cx - ex, cy - ey)
    if length == 0.0:
        return 0.0
    dx = ex - cx
    dy = ey - cy
    acc = _rect_dist(cx + dx * (1.0 / 6.0), cy + dy * (1.0 / 6.0),
                     xmin, ymin, xmax, ymax)
    acc += _rect_dist(cx + dx * 0.5, cy + dy * 0.5, xmin, ymin, xmax, ymax)
    acc += _rect_dist(cx + dx * (5.0 / 6.0), cy + dy * (5.0 / 6.0),
                      xmin, ymin, xmax, ymax)
    return 2.0 * length * (acc / 3.0)


@njit(cache=True)
def box_dp_min(pts, bx0, by0, bx1, by1, bml, free_start_row):
    """Min over the last row of the box-generalized EDwPsub DP.

    Same recurrence and tie-breaking as
    :func:`repro.index.tboxseq._box_dp` (rep, then ins-on-T, then
    ins-on-B, strict ``<``), with the cell position (on the trajectory
    only) carried in rolling rows.
    """
    n = pts.shape[0] - 1
    m = bx0.shape[0]
    cols = m + 1
    inf = math.inf

    prev_cost = np.empty(cols)
    prev_x = np.empty(cols)
    prev_y = np.empty(cols)
    cur_cost = np.empty(cols)
    cur_x = np.empty(cols)
    cur_y = np.empty(cols)

    sx = pts[0, 0]
    sy = pts[0, 1]

    for i in range(n + 1):
        for j in range(cols):
            cur_cost[j] = inf
            cur_x[j] = 0.0
            cur_y[j] = 0.0
        if i == 0:
            if free_start_row:
                for j in range(cols):
                    cur_cost[j] = 0.0
                    cur_x[j] = sx
                    cur_y[j] = sy
            else:
                cur_cost[0] = 0.0
                cur_x[0] = sx
                cur_y[0] = sy
        for j in range(cols):
            if i == 0 and (free_start_row or j == 0):
                continue
            best = inf
            bpx = 0.0
            bpy = 0.0

            # rep: consume segment piece [cur, pts[i]] and box j-1.
            if i > 0 and j > 0:
                c = prev_cost[j - 1]
                if c < inf:
                    cx = prev_x[j - 1]
                    cy = prev_y[j - 1]
                    xmin = bx0[j - 1]
                    ymin = by0[j - 1]
                    xmax = bx1[j - 1]
                    ymax = by1[j - 1]
                    ex = pts[i, 0]
                    ey = pts[i, 1]
                    px, py = _rect_project_on_segment(
                        cx, cy, ex, ey, xmin, ymin, xmax, ymax
                    )
                    incr = _box_piece_cost(
                        cx, cy, ex, ey, xmin, ymin, xmax, ymax
                    ) + (
                        2.0 * _rect_dist(px, py, xmin, ymin, xmax, ymax)
                        * bml[j - 1]
                    )
                    total = c + incr
                    if total < best:
                        best = total
                        bpx = ex
                        bpy = ey

            # ins on T: split the remaining segment at the point closest to
            # box j-1 and consume the box against the first piece.
            if j > 0:
                c = cur_cost[j - 1]
                if c < inf:
                    cx = cur_x[j - 1]
                    cy = cur_y[j - 1]
                    xmin = bx0[j - 1]
                    ymin = by0[j - 1]
                    xmax = bx1[j - 1]
                    ymax = by1[j - 1]
                    if i < n:
                        qx, qy = _rect_project_on_segment(
                            cx, cy, pts[i + 1, 0], pts[i + 1, 1],
                            xmin, ymin, xmax, ymax
                        )
                    else:
                        qx = cx
                        qy = cy
                    incr = _box_piece_cost(
                        cx, cy, qx, qy, xmin, ymin, xmax, ymax
                    ) + (
                        2.0 * _rect_dist(qx, qy, xmin, ymin, xmax, ymax)
                        * bml[j - 1]
                    )
                    total = c + incr
                    if total < best:
                        best = total
                        bpx = qx
                        bpy = qy

            # ins on B: consume the segment piece against the *current*
            # (still unconsumed) box, clamped at the last one.
            if i > 0:
                c = prev_cost[j]
                if c < inf:
                    cx = prev_x[j]
                    cy = prev_y[j]
                    jb = j
                    if jb >= m:
                        jb = m - 1
                    ex = pts[i, 0]
                    ey = pts[i, 1]
                    incr = _box_piece_cost(
                        cx, cy, ex, ey, bx0[jb], by0[jb], bx1[jb], by1[jb]
                    )
                    total = c + incr
                    if total < best:
                        best = total
                        bpx = ex
                        bpy = ey

            cur_cost[j] = best
            cur_x[j] = bpx
            cur_y[j] = bpy

        prev_cost, cur_cost = cur_cost, prev_cost
        prev_x, cur_x = cur_x, prev_x
        prev_y, cur_y = cur_y, prev_y

    return _row_min(prev_cost)


@njit(cache=True)
def box_sub_value(pts, bx0, by0, bx1, by1, bml, thorough):
    """Theorem-2 bound: free-start pass, plus the anchored pass when
    ``thorough`` (mirroring :func:`repro.index.tboxseq.edwp_sub_box`)."""
    value = box_dp_min(pts, bx0, by0, bx1, by1, bml, True)
    if thorough:
        anchored = box_dp_min(pts, bx0, by0, bx1, by1, bml, False)
        if anchored < value:
            value = anchored
    return value


@njit(cache=True)
def box_many_kernel(pts, gx0, gy0, gx1, gy1, gml, offs, thorough, out):
    """Bounds of one trajectory against a ragged batch of box sequences."""
    for b in range(offs.shape[0] - 1):
        s = offs[b]
        e = offs[b + 1]
        out[b] = box_sub_value(
            pts, gx0[s:e], gy0[s:e], gx1[s:e], gy1[s:e], gml[s:e], thorough
        )
