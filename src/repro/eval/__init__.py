"""Evaluation harnesses regenerating the paper's tables and figures."""

from .bootstrap import BootstrapCI, bootstrap_diff_ci, bootstrap_mean_ci
from .classification import (
    ClassificationResult,
    classification_experiment,
    cross_validated_accuracy,
    nn_classify,
)
from .feature_matrix import (
    PAPER_TABLE_I,
    FeatureProbe,
    feature_matrix,
    fig1d_ordering_scenario,
    format_feature_table,
)
from .knn import distance_table, knn_from_table, knn_scan
from .robustness import (
    NOISE_PROTOCOLS,
    RobustnessResult,
    make_noisy_dataset,
    robustness_experiment,
)
from .spearman import knn_list_correlation, rank, spearman
from .timing import Timer, format_series_table, time_call
from .ubfactor import (
    UBFactorResult,
    anytime_factor,
    random_ub_factor,
    ub_factor,
    vp_experiment,
)

__all__ = [
    "BootstrapCI",
    "bootstrap_diff_ci",
    "bootstrap_mean_ci",
    "ClassificationResult",
    "classification_experiment",
    "cross_validated_accuracy",
    "nn_classify",
    "PAPER_TABLE_I",
    "FeatureProbe",
    "feature_matrix",
    "fig1d_ordering_scenario",
    "format_feature_table",
    "distance_table",
    "knn_from_table",
    "knn_scan",
    "NOISE_PROTOCOLS",
    "RobustnessResult",
    "make_noisy_dataset",
    "robustness_experiment",
    "knn_list_correlation",
    "rank",
    "spearman",
    "Timer",
    "format_series_table",
    "time_call",
    "UBFactorResult",
    "anytime_factor",
    "random_ub_factor",
    "ub_factor",
    "vp_experiment",
]
