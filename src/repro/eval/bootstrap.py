"""Bootstrap confidence intervals for experiment statistics.

The paper reports point estimates (means over repeated draws); for a
reproduction it is useful to know whether an observed gap between two
metrics (e.g. EDwP vs EDR correlation) is larger than the resampling noise
of a laptop-scale run.  Percentile-bootstrap utilities over per-query /
per-draw result vectors provide that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["BootstrapCI", "bootstrap_mean_ci", "bootstrap_diff_ci"]


@dataclass(frozen=True)
class BootstrapCI:
    """A point estimate plus a percentile-bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (f"{self.estimate:.4f} "
                f"[{self.low:.4f}, {self.high:.4f}] "
                f"@{self.confidence:.0%}")


def bootstrap_mean_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile bootstrap CI for the mean of ``values``."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(num_resamples, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=float(arr.mean()),
        low=float(np.quantile(means, alpha)),
        high=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


def bootstrap_diff_ci(
    values_a: Sequence[float],
    values_b: Sequence[float],
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """CI for ``mean(A) - mean(B)`` over *paired* observations.

    Pairing (one observation per query for each metric) removes the shared
    query-difficulty variance, which is what makes small robustness sweeps
    interpretable.  Raises when the two vectors have different lengths.
    """
    a = np.asarray(values_a, dtype=np.float64)
    b = np.asarray(values_b, dtype=np.float64)
    if a.size != b.size:
        raise ValueError("paired bootstrap requires equal-length samples")
    if a.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    diffs = a - b
    ci = bootstrap_mean_ci(diffs, confidence, num_resamples, seed)
    return ci
