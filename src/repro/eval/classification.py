"""Clean-data accuracy — Fig. 5(a) (paper Sec. V-B).

The ASL-style dataset carries a sign label per trajectory.  The paper picks
``c`` random classes, runs 10-fold cross-validation with a 1-NN classifier
under each distance metric, and repeats the draw for stability.  Accuracy
as a function of ``c`` is Fig. 5(a); EDwP should degrade slowest.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.trajectory import Trajectory
from .knn import DistanceFn, distance_values

__all__ = ["nn_classify", "cross_validated_accuracy", "classification_experiment",
           "ClassificationResult"]


def nn_classify(
    query: Trajectory,
    references: Sequence[Trajectory],
    distance: DistanceFn,
) -> Optional[str]:
    """Label of the nearest reference (1-NN); None for no references.

    Query-vs-references distances run through the metric's batched
    ``many`` form when it has one (:func:`repro.eval.knn.distance_values`),
    so the CV folds of Fig. 5(a) amortize numpy dispatch per test point.
    Ties keep the first-seen reference, matching the strict-``<`` scan.
    """
    references = list(references)
    if not references:
        return None
    values = distance_values(query, references, distance)
    best_label: Optional[str] = None
    best_d = float("inf")
    for ref, d in zip(references, values):
        if d < best_d:
            best_d = d
            best_label = ref.label
    return best_label


def cross_validated_accuracy(
    dataset: Sequence[Trajectory],
    distance: DistanceFn,
    folds: int = 10,
    seed: int = 0,
) -> float:
    """k-fold cross-validated 1-NN accuracy on a labelled dataset."""
    n = len(dataset)
    if n < 2:
        raise ValueError("need at least two trajectories")
    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)
    folds = min(folds, n)
    correct = 0
    total = 0
    for f in range(folds):
        test_idx = set(order[f::folds])
        train = [dataset[i] for i in range(n) if i not in test_idx]
        for i in test_idx:
            predicted = nn_classify(dataset[i], train, distance)
            total += 1
            if predicted == dataset[i].label:
                correct += 1
    return correct / total if total else 0.0


@dataclass
class ClassificationResult:
    """Accuracy per metric per class count."""

    class_counts: List[int] = field(default_factory=list)
    accuracy: Dict[str, List[float]] = field(default_factory=dict)


def classification_experiment(
    dataset: Sequence[Trajectory],
    metrics: Dict[str, DistanceFn],
    class_counts: Sequence[int],
    repeats: int = 3,
    folds: int = 10,
    seed: int = 0,
) -> ClassificationResult:
    """The Fig. 5(a) sweep: accuracy vs number of classes.

    For each ``c`` in ``class_counts``, ``repeats`` random subsets of ``c``
    classes are drawn (the paper repeats 100 times; scale down via
    ``repeats``), 10-fold CV accuracy is measured per metric, and the mean
    over draws is reported.
    """
    labels = sorted({t.label for t in dataset if t.label is not None})
    by_label: Dict[str, List[Trajectory]] = {lab: [] for lab in labels}
    for t in dataset:
        if t.label is not None:
            by_label[t.label].append(t)

    result = ClassificationResult(class_counts=list(class_counts))
    for name in metrics:
        result.accuracy[name] = []

    rng = random.Random(seed)
    for c in class_counts:
        if c > len(labels):
            raise ValueError(f"dataset has only {len(labels)} classes, need {c}")
        draws = [rng.sample(labels, c) for _ in range(repeats)]
        for name, dist in metrics.items():
            accs: List[float] = []
            for draw_i, chosen in enumerate(draws):
                subset = [t for lab in chosen for t in by_label[lab]]
                accs.append(
                    cross_validated_accuracy(subset, dist, folds=folds,
                                             seed=seed + draw_i)
                )
            result.accuracy[name].append(float(np.mean(accs)))
    return result
