"""Robustness experiments — Figs. 5(b)-(i) (paper Sec. V-C).

One experiment: take a clean database ``D1``, derive a noised copy ``D2``
with one of the four protocols, pick query trajectories, and measure — for
each distance metric — the Spearman correlation between the query's k-NN
list in D1 and in D2 (union-rank protocol, :mod:`repro.eval.spearman`).
A robust metric keeps its neighbourhoods under noise (correlation near 1).

:func:`make_noisy_dataset` builds D1/D2 pairs for all four protocols;
:func:`robustness_experiment` runs the measurement sweep.

``metrics`` maps display names to distance callables — pass
:class:`~repro.baselines.registry.DistanceSpec` objects (as the
experiment drivers now do) and every query-vs-database table runs through
the metric's batched lockstep kernel via
:func:`repro.eval.knn.distance_table`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.trajectory import Trajectory
from ..datasets.noise import (
    densify,
    densify_first_half,
    perturb,
    phase_pair,
    thirty_second_radius,
)
from .knn import DistanceFn, distance_table
from .spearman import knn_list_correlation

__all__ = ["NOISE_PROTOCOLS", "make_noisy_dataset", "pair_correlations",
           "robustness_experiment", "RobustnessResult"]

#: The four protocols of Sec. V-C, by figure.
NOISE_PROTOCOLS = ("inter", "intra", "phase", "perturb")


def make_noisy_dataset(
    clean: Sequence[Trajectory],
    protocol: str,
    noise_fraction: float,
    seed: int = 0,
) -> Tuple[List[Trajectory], List[Trajectory]]:
    """Build the (D1, D2) pair for one protocol at noise level ``n``.

    For ``inter``, ``intra`` and ``perturb``, D1 is the clean input and D2
    its noised copy.  For ``phase``, *both* copies are re-sampled versions
    of the input (the paper inserts a point into the same segments of both,
    at different locations), so D1 differs from the raw input as well.
    """
    rng = np.random.default_rng(seed)
    d1: List[Trajectory] = []
    d2: List[Trajectory] = []
    if protocol == "inter":
        for t in clean:
            d1.append(t)
            d2.append(densify(t, noise_fraction, rng))
    elif protocol == "intra":
        for t in clean:
            d1.append(t)
            d2.append(densify_first_half(t, noise_fraction, rng))
    elif protocol == "phase":
        for t in clean:
            a, b = phase_pair(t, noise_fraction, rng)
            d1.append(a)
            d2.append(b)
    elif protocol == "perturb":
        radius = thirty_second_radius(clean)
        for t in clean:
            d1.append(t)
            d2.append(perturb(t, noise_fraction, radius, rng))
    else:
        raise ValueError(
            f"unknown protocol {protocol!r}; expected one of {NOISE_PROTOCOLS}"
        )
    return d1, d2


@dataclass
class RobustnessResult:
    """Per-metric mean correlation plus the individual query values."""

    protocol: str
    k: int
    noise_fraction: float
    correlations: Dict[str, float] = field(default_factory=dict)
    per_query: Dict[str, List[float]] = field(default_factory=dict)


def pair_correlations(
    d1: Sequence[Trajectory],
    d2: Sequence[Trajectory],
    metrics: Dict[str, DistanceFn],
    k: int,
    query_ids: Sequence[int],
) -> Dict[str, List[float]]:
    """Per-query k-NN rank correlations for an already-built (D1, D2) pair.

    The query trajectory is taken from D1 (the clean side) and excluded from
    both tables so the correlation measures the neighbourhood rather than
    the trivial self-match.
    """
    out: Dict[str, List[float]] = {}
    for name, dist in metrics.items():
        values: List[float] = []
        for qid in query_ids:
            query = d1[qid]
            table1 = distance_table(query, d1, dist)
            table2 = distance_table(query, d2, dist)
            key = query.traj_id if query.traj_id is not None else qid
            table1.pop(key, None)
            table2.pop(key, None)
            values.append(knn_list_correlation(table1, table2, k))
        out[name] = values
    return out


def robustness_experiment(
    clean: Sequence[Trajectory],
    metrics: Dict[str, DistanceFn],
    protocol: str,
    k: int = 10,
    noise_fraction: float = 0.05,
    num_queries: int = 5,
    seed: int = 0,
) -> RobustnessResult:
    """Run one cell of the Fig. 5(b)-(i) sweeps.

    ``metrics`` maps display names to distance callables; queries are drawn
    (seeded) from the clean database, and each query's distance to every D1
    and D2 trajectory is computed per metric.  Returns mean correlations.
    """
    d1, d2 = make_noisy_dataset(clean, protocol, noise_fraction, seed)
    rng = random.Random(seed)
    query_ids = rng.sample(range(len(d1)), min(num_queries, len(d1)))

    result = RobustnessResult(protocol=protocol, k=k,
                              noise_fraction=noise_fraction)
    per_query = pair_correlations(d1, d2, metrics, k, query_ids)
    for name, values in per_query.items():
        result.per_query[name] = values
        result.correlations[name] = float(np.mean(values)) if values else 0.0
    return result
