"""Spearman rank correlation and the paper's k-NN comparison protocol.

Sec. V-C: robustness of a metric is the Spearman correlation between the
k-NN list computed on the clean database ``D1`` and the list for the same
query on the noised database ``D2``.  Because the two lists may not overlap,
the paper forms the *union* of the two lists, fetches every union element's
rank in each database's full ordering, and correlates those two rank
vectors.  :func:`knn_list_correlation` implements exactly that protocol.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

__all__ = ["spearman", "rank", "knn_list_correlation"]


def rank(values: Sequence[float]) -> np.ndarray:
    """Fractional ranks (average ranks for ties), 1-based."""
    arr = np.asarray(values, dtype=np.float64)
    order = np.argsort(arr, kind="stable")
    ranks = np.empty(arr.size, dtype=np.float64)
    i = 0
    while i < arr.size:
        j = i
        while j + 1 < arr.size and arr[order[j + 1]] == arr[order[i]]:
            j += 1
        avg = (i + j) / 2.0 + 1.0
        for t in range(i, j + 1):
            ranks[order[t]] = avg
        i = j + 1
    return ranks


def spearman(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman's rank correlation coefficient (tie-aware).

    Returns 1.0 for degenerate inputs of length < 2 or zero rank variance
    on both sides (two constant rankings agree trivially), following the
    convention that identical orderings correlate perfectly.
    """
    if len(x) != len(y):
        raise ValueError("x and y must have equal length")
    if len(x) < 2:
        return 1.0
    rx = rank(x)
    ry = rank(y)
    sx = rx.std()
    sy = ry.std()
    if sx == 0.0 and sy == 0.0:
        return 1.0
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(np.corrcoef(rx, ry)[0, 1])


def knn_list_correlation(
    dists_clean: Dict[Hashable, float],
    dists_noisy: Dict[Hashable, float],
    k: int,
) -> float:
    """The paper's protocol: Spearman over the union of the two k-NN lists.

    ``dists_clean`` / ``dists_noisy`` map every database trajectory id to
    its distance from the query in D1 / D2.  The two top-k lists are formed,
    their union is ranked within each full ordering, and the two rank
    vectors are correlated.  Values near 1 mean the metric's neighbourhoods
    survived the injected noise.
    """
    if set(dists_clean) != set(dists_noisy):
        raise ValueError("both databases must contain the same trajectory ids")
    if k <= 0:
        raise ValueError("k must be positive")

    def top_k(d: Dict[Hashable, float]) -> List[Hashable]:
        return [tid for tid, _ in sorted(d.items(), key=lambda x: (x[1], str(x[0])))[:k]]

    union = list(dict.fromkeys(top_k(dists_clean) + top_k(dists_noisy)))

    def ranks_of(d: Dict[Hashable, float]) -> List[float]:
        ordered = sorted(d.items(), key=lambda x: (x[1], str(x[0])))
        position = {tid: i for i, (tid, _) in enumerate(ordered)}
        return [float(position[tid]) for tid in union]

    return spearman(ranks_of(dists_clean), ranks_of(dists_noisy))
