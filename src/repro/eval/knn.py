"""k-NN helpers shared by the evaluation harnesses.

A ``distance`` argument here is any ``(Trajectory, Trajectory) -> float``
callable; when it is a :class:`~repro.baselines.registry.DistanceSpec`
(or anything else exposing a ``many`` batched form), the whole
query-vs-database sweep runs through one lockstep batch instead of
``len(database)`` python calls — the same dispatch amortization the
matrix engine (:mod:`repro.baselines.matrix`) uses.  Plain callables keep
working unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Sequence, Tuple

from ..core.trajectory import Trajectory

__all__ = ["distance_values", "distance_table", "knn_from_table", "knn_scan"]

DistanceFn = Callable[[Trajectory, Trajectory], float]


def distance_values(
    query: Trajectory,
    database: Sequence[Trajectory],
    distance: DistanceFn,
) -> List[float]:
    """Distances from ``query`` to each database trajectory, in order.

    Routes through the metric's batched ``many`` form when it has one.
    """
    many = getattr(distance, "many", None)
    if many is not None:
        return list(many(query, list(database)))
    return [distance(query, traj) for traj in database]


def distance_table(
    query: Trajectory,
    database: Sequence[Trajectory],
    distance: DistanceFn,
) -> Dict[int, float]:
    """Distance from ``query`` to every database trajectory.

    Keys are each trajectory's ``traj_id`` when set, else its position.
    """
    database = list(database)
    values = distance_values(query, database, distance)
    out: Dict[int, float] = {}
    for pos, (traj, value) in enumerate(zip(database, values)):
        tid = traj.traj_id if traj.traj_id is not None else pos
        out[tid] = value
    return out


def knn_from_table(table: Dict[Hashable, float], k: int) -> List[Tuple[Hashable, float]]:
    """Top-k (id, distance) pairs of a distance table, deterministic ties."""
    ordered = sorted(table.items(), key=lambda x: (x[1], str(x[0])))
    return ordered[:k]


def knn_scan(
    query: Trajectory,
    database: Sequence[Trajectory],
    distance: DistanceFn,
    k: int,
) -> List[Tuple[Hashable, float]]:
    """Brute-force k-NN under an arbitrary distance function."""
    return knn_from_table(distance_table(query, database, distance), k)
