"""k-NN helpers shared by the evaluation harnesses."""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Sequence, Tuple

from ..core.trajectory import Trajectory

__all__ = ["distance_table", "knn_from_table", "knn_scan"]

DistanceFn = Callable[[Trajectory, Trajectory], float]


def distance_table(
    query: Trajectory,
    database: Sequence[Trajectory],
    distance: DistanceFn,
) -> Dict[int, float]:
    """Distance from ``query`` to every database trajectory.

    Keys are each trajectory's ``traj_id`` when set, else its position.
    """
    out: Dict[int, float] = {}
    for pos, traj in enumerate(database):
        tid = traj.traj_id if traj.traj_id is not None else pos
        out[tid] = distance(query, traj)
    return out


def knn_from_table(table: Dict[Hashable, float], k: int) -> List[Tuple[Hashable, float]]:
    """Top-k (id, distance) pairs of a distance table, deterministic ties."""
    ordered = sorted(table.items(), key=lambda x: (x[1], str(x[0])))
    return ordered[:k]


def knn_scan(
    query: Trajectory,
    database: Sequence[Trajectory],
    distance: DistanceFn,
    k: int,
) -> List[Tuple[Hashable, float]]:
    """Brute-force k-NN under an arbitrary distance function."""
    return knn_from_table(distance_table(query, database, distance), k)
