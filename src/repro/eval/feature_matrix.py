"""Empirical regeneration of Tables I/II and the Fig. 1 scenarios.

Table I of the paper asserts, per metric, robustness to: local time shifts,
inter-trajectory sampling variance, intra-trajectory sampling variance,
phase variations, and threshold dependence.  This module turns each claim
into a *measurable probe*: a pair of trajectories that differ only by the
nuisance in question, compared against a reference pair that differs
genuinely.  A metric "handles" the nuisance when the nuisance-induced
distance is a small fraction of the reference distance.

The probes reuse the paper's own Fig. 1 constructions where they are fully
specified (the Fig. 1(c) phase scenario, the Fig. 1(d) MA ordering
pathology) and the Sec. V-C noise protocols otherwise.

Matrix layout (what Table 1 consumes)
-------------------------------------
:func:`feature_matrix` returns a nested mapping ``{metric_name ->
{probe_name -> FeatureProbe}}`` — metrics on the rows (in the caller's
insertion order, which :func:`format_feature_table` preserves), the four
behavioural probes (``time_shift``, ``inter``, ``intra``, ``phase``) on
the columns, and each cell a :class:`FeatureProbe` holding the
nuisance/reference distance pair whose ratio decides the Y/n verdict.
The fifth printed column (threshold-freeness) is structural — it comes
from :attr:`DistanceSpec.threshold_free`, not from a probe — so the
driver (:mod:`repro.experiments.table1`) supplies it alongside.  Each
probe is a *single* distance pair per metric, so this harness gains
nothing from the batched matrix engine; the Fig. 5 sweeps are where
``DistanceSpec.many`` pays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..core.trajectory import Trajectory
from ..datasets.noise import densify, densify_first_half, phase_pair
from .knn import DistanceFn

__all__ = [
    "FeatureProbe",
    "PAPER_TABLE_I",
    "probe_time_shift",
    "probe_inter_sampling",
    "probe_intra_sampling",
    "probe_phase",
    "fig1d_ordering_scenario",
    "feature_matrix",
    "format_feature_table",
]

#: Table I as printed in the paper (True = checkmark).
#: Columns: time shifts, inter, intra, phase, threshold-free.
PAPER_TABLE_I: Dict[str, Tuple[bool, bool, bool, bool, bool]] = {
    "DTW": (True, False, False, False, True),
    "LCSS": (True, False, False, False, False),
    "ERP": (True, False, False, False, False),
    "EDR": (True, False, False, False, False),
    "DISSIM": (False, True, False, False, True),
    "MA": (True, False, False, True, False),
    "EDwP": (True, True, True, True, True),
}

#: A nuisance-induced distance below this fraction of the reference
#: distance counts as "handled".
PASS_RATIO = 0.25


def _zigzag_path(n: int = 11) -> np.ndarray:
    """A distinctive spatial path used by all probes."""
    xs = np.linspace(0.0, 100.0, n)
    ys = 15.0 * np.sin(xs / 18.0)
    return np.column_stack([xs, ys])


def _reference_pair() -> Tuple[Trajectory, Trajectory]:
    """Two genuinely different trajectories (the probe denominators)."""
    path = _zigzag_path()
    other = path.copy()
    other[:, 1] = -other[:, 1] + 40.0
    return Trajectory.from_xy(path, dt=10.0), Trajectory.from_xy(other, dt=10.0)


@dataclass
class FeatureProbe:
    """One probe outcome: nuisance distance, reference distance, verdict."""

    nuisance_distance: float
    reference_distance: float

    @property
    def ratio(self) -> float:
        if self.reference_distance <= 0:
            return float("inf") if self.nuisance_distance > 0 else 0.0
        return self.nuisance_distance / self.reference_distance

    @property
    def handled(self) -> bool:
        return self.ratio <= PASS_RATIO


def probe_time_shift(distance: DistanceFn) -> FeatureProbe:
    """Same spatial contour at different speed profiles (Sec. I example)."""
    path = _zigzag_path(21)
    ref1, ref2 = _reference_pair()
    # slow first half vs slow second half: resample the same contour with
    # time spent differently (points bunch where the object is slow)
    s = np.linspace(0.0, 1.0, 21)
    slow_first = s ** 1.8
    slow_second = s ** (1.0 / 1.8)
    base = np.linspace(0.0, 1.0, 21)
    xa = np.interp(slow_first, base, path[:, 0])
    ya = np.interp(slow_first, base, path[:, 1])
    xb = np.interp(slow_second, base, path[:, 0])
    yb = np.interp(slow_second, base, path[:, 1])
    ta = Trajectory.from_xy(np.column_stack([xa, ya]), dt=10.0)
    tb = Trajectory.from_xy(np.column_stack([xb, yb]), dt=10.0)
    return FeatureProbe(distance(ta, tb), distance(ref1, ref2))


def probe_inter_sampling(distance: DistanceFn, seed: int = 0) -> FeatureProbe:
    """Identical shape at very different sampling rates (Fig. 1(a))."""
    ref1, ref2 = _reference_pair()
    sparse = Trajectory.from_xy(_zigzag_path(6), dt=40.0)
    rng = np.random.default_rng(seed)
    dense = densify(densify(sparse, 1.0, rng), 1.0, rng)
    return FeatureProbe(distance(sparse, dense), distance(ref1, ref2))


def probe_intra_sampling(distance: DistanceFn, seed: int = 0) -> FeatureProbe:
    """Sampling rate that varies inside the trajectory (Fig. 1(b))."""
    ref1, ref2 = _reference_pair()
    base = Trajectory.from_xy(_zigzag_path(11), dt=20.0)
    rng = np.random.default_rng(seed)
    lopsided = densify_first_half(densify_first_half(base, 1.0, rng), 1.0, rng)
    return FeatureProbe(distance(base, lopsided), distance(ref1, ref2))


def probe_phase(distance: DistanceFn, seed: int = 0) -> FeatureProbe:
    """Same shape and rate, different recorded samples (Fig. 1(c))."""
    ref1, ref2 = _reference_pair()
    base = Trajectory.from_xy(_zigzag_path(11), dt=20.0)
    rng = np.random.default_rng(seed)
    d1, d2 = phase_pair(base, 1.0, rng)
    return FeatureProbe(distance(d1, d2), distance(ref1, ref2))


def fig1d_ordering_scenario() -> Tuple[Trajectory, Trajectory, Trajectory]:
    """The Fig. 1(d) construction: T1 revisits points out of order.

    ``T2`` is a straight reference line; ``T1`` and ``T3`` consist of points
    equally far from ``T2``, but ``T1`` traverses them going *backward* in
    between while ``T3`` is monotone.  A semantically consistent metric
    rates ``(T2, T3)`` more similar than ``(T2, T1)``; the paper shows MA
    rates them equal (its interpolated assignments may go backward in time).
    """
    t2 = Trajectory([(0, 0, 0), (10, 0, 10)])
    t1 = Trajectory([(2, 1, 0), (7, 1, 5), (4, 1, 10)])
    t3 = Trajectory([(2, 1, 0), (4, 1, 5), (7, 1, 10)])
    return t1, t2, t3


def feature_matrix(
    metrics: Dict[str, DistanceFn],
) -> Dict[str, Dict[str, FeatureProbe]]:
    """Run all four behavioural probes for every metric.

    Returns ``{metric: {probe_name: FeatureProbe}}``; the threshold-free
    column is structural (whether the metric needs a tolerance parameter)
    and is supplied by the caller/registry, not probed.
    """
    probes: Dict[str, Callable[[DistanceFn], FeatureProbe]] = {
        "time_shift": probe_time_shift,
        "inter": probe_inter_sampling,
        "intra": probe_intra_sampling,
        "phase": probe_phase,
    }
    out: Dict[str, Dict[str, FeatureProbe]] = {}
    for name, dist in metrics.items():
        out[name] = {pname: probe(dist) for pname, probe in probes.items()}
    return out


def format_feature_table(
    results: Dict[str, Dict[str, FeatureProbe]],
    threshold_free: Dict[str, bool],
) -> str:
    """Render the empirical Table I next to the paper's claims."""
    cols = ["time_shift", "inter", "intra", "phase"]
    header = (
        f"{'Technique':<10}"
        + "".join(f"{c:>12}" for c in cols)
        + f"{'thr-free':>10}   (ratios; <= {PASS_RATIO:g} = handled)"
    )
    lines = [header, "-" * len(header)]
    for name, probes in results.items():
        cells = []
        for c in cols:
            p = probes[c]
            mark = "Y" if p.handled else "n"
            cells.append(f"{mark} {min(p.ratio, 99.0):>7.3f}")
        tf = "Y" if threshold_free.get(name, False) else "n"
        lines.append(f"{name:<10}" + "".join(f"{c:>12}" for c in cells) + f"{tf:>10}")
    return "\n".join(lines)
