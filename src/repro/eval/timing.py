"""Small timing and reporting helpers shared by benchmarks and the CLI."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

__all__ = ["Timer", "time_call", "format_series_table"]


class Timer:
    """Context manager measuring wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


def time_call(fn: Callable, *args, repeat: int = 1, **kwargs) -> Tuple[float, object]:
    """Best-of-``repeat`` wall time of ``fn(*args, **kwargs)`` plus its result."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result


def format_series_table(
    x_name: str,
    x_values: Sequence,
    series: Dict[str, Sequence[float]],
    value_format: str = "{:>12.4f}",
) -> str:
    """Render aligned rows of ``x`` against several named series.

    This is the shape every figure of the paper reduces to (an x-axis sweep
    with one line per technique), so all benchmark harnesses print through
    it.
    """
    names = list(series)
    header = f"{x_name:>10}" + "".join(f"{n:>14}" for n in names)
    lines = [header, "-" * len(header)]
    for i, x in enumerate(x_values):
        cells = []
        for n in names:
            vals = series[n]
            cells.append(
                value_format.format(vals[i]).rjust(14)
                if i < len(vals) else " " * 14
            )
        lines.append(f"{str(x):>10}" + "".join(cells))
    return "\n".join(lines)
