"""UB-factor experiments — Figs. 6(c)/(d) and the VP-correlation claim.

Eq. 15: ``UB-Factor = (VP-based upper bound) / (k-th distance of the true
k-NN)``.  The VP-based upper bound (Eq. 14) is the largest true distance
among the k trajectories the vantage descriptors rank nearest; the paper
compares it against the *random* UB-factor (same quantity for a uniformly
random k-subset) to show the descriptors carry signal, and reports the
Spearman correlation between VP-ranked and true k-NN lists (0.78-0.83).

:func:`anytime_factor` measures the same ratio for *budget-truncated*
anytime answers (DESIGN.md, "Overload control and anytime queries"): the
realized error factor of an :class:`~repro.index.budget.AnytimeResult`
against the true k-NN, which the anytime soundness argument guarantees
never exceeds the result's self-reported ``bound_factor``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.edwp import edwp_avg, resolve_backend, use_backend
from ..core.trajectory import Trajectory
from ..index.vantage import VantageIndex
from .knn import DistanceFn, distance_table, knn_from_table
from .spearman import spearman

__all__ = ["UBFactorResult", "ub_factor", "random_ub_factor",
           "vp_experiment", "anytime_factor"]


def anytime_factor(
    results: Sequence,
    query: Trajectory,
    database: Sequence[Trajectory],
    k: int,
    distance: DistanceFn = edwp_avg,
) -> float:
    """Realized error factor of an anytime k-NN answer.

    ``max(returned distance) / (true k-th nearest distance)`` — the same
    ratio as the paper's UB-factor, with the anytime answer in place of
    the VP-ranked candidate set.  ``1.0`` means the truncated answer is
    as good as exact (every returned distance within the true k-NN
    radius); the anytime contract says this value never exceeds the
    ``bound_factor`` the result reports about itself.

    Returns ``inf`` for answers with fewer than ``k`` entries (the
    reported factor is also ``inf`` there) and ``1.0`` for empty-vs-empty
    degenerate cases.
    """
    table = distance_table(query, database, distance)
    true_knn = knn_from_table(table, min(k, len(table)))
    if not true_knn:
        return 1.0
    if len(results) < min(k, len(table)):
        return float("inf")
    optimal = true_knn[-1][1]
    worst = max(d for _, d in results)
    if worst <= optimal:
        return 1.0
    return worst / (optimal if optimal > 0 else 1.0)


@dataclass
class UBFactorResult:
    """One measurement: VP-based and random UB-factors plus correlation."""

    vp_ub_factor: float
    random_ub_factor: float
    vp_knn_correlation: float


def ub_factor(
    query: Trajectory,
    database: Sequence[Trajectory],
    vantage: VantageIndex,
    k: int,
    distance: DistanceFn = edwp_avg,
) -> UBFactorResult:
    """UB-factor of a single query at one node's vantage index.

    Also computes the random baseline (seeded by the query's id) and the
    Spearman correlation between the VP ranking and the true ranking over
    the database — the three quantities Figs. 6(c)-(d) report.
    """
    by_id = {
        (t.traj_id if t.traj_id is not None else i): t
        for i, t in enumerate(database)
    }
    table = distance_table(query, database, distance)
    true_knn = knn_from_table(table, k)
    optimal = true_knn[-1][1]

    qdesc = vantage.describe(query)
    vp_top = vantage.top_k(qdesc, k)
    vp_ub = max(table[tid] for tid, _ in vp_top)

    seed = query.traj_id if query.traj_id is not None else 0
    rng = random.Random(seed)
    sample = rng.sample(list(by_id), min(k, len(by_id)))
    rand_ub = max(table[tid] for tid in sample)

    # rank correlation between VP ordering and true ordering (full database)
    vd_all = {
        tid: vd
        for tid, vd in vantage.top_k(qdesc, len(vantage))
    }
    ids = [tid for tid in by_id if tid in vd_all]
    corr = spearman([table[t] for t in ids], [vd_all[t] for t in ids])

    denom = optimal if optimal > 0 else 1.0
    return UBFactorResult(
        vp_ub_factor=vp_ub / denom,
        random_ub_factor=rand_ub / denom,
        vp_knn_correlation=corr,
    )


def random_ub_factor(
    query: Trajectory,
    database: Sequence[Trajectory],
    k: int,
    distance: DistanceFn = edwp_avg,
    seed: int = 0,
) -> float:
    """UB-factor of a uniformly random k-subset (the Fig. 6c/d baseline)."""
    table = distance_table(query, database, distance)
    optimal = knn_from_table(table, k)[-1][1]
    rng = random.Random(seed)
    sample = rng.sample(list(table), min(k, len(table)))
    ub = max(table[tid] for tid in sample)
    return ub / (optimal if optimal > 0 else 1.0)


def vp_experiment(
    database: Sequence[Trajectory],
    queries: Sequence[Trajectory],
    num_vps: int,
    k: int,
    distance: DistanceFn = edwp_avg,
    seed: int = 0,
    backend: Optional[str] = None,
) -> Dict[str, float]:
    """Aggregate UB-factor measurement over several queries.

    Builds a root-level vantage index with ``num_vps`` VPs (the Fig. 6(c)
    worst case: the paper notes deeper nodes only tighten the bound) and
    averages the three statistics over the queries.

    ``backend`` pins the distance backend for every exact distance the
    measurement needs (``None`` follows the global
    :func:`repro.core.set_backend` choice); the distance *tables* behind
    the UB-factors batch one-query-vs-database through the registry, so
    the ``"numpy"`` backend's lockstep kernels apply wholesale.
    """
    with use_backend(resolve_backend(backend)):
        return _vp_experiment(database, queries, num_vps, k, distance, seed)


def _vp_experiment(
    database: Sequence[Trajectory],
    queries: Sequence[Trajectory],
    num_vps: int,
    k: int,
    distance: DistanceFn,
    seed: int,
) -> Dict[str, float]:
    rng = random.Random(seed)
    keys = [t.traj_id if t.traj_id is not None else i
            for i, t in enumerate(database)]
    vantage = VantageIndex.build(database, keys, num_vps, rng)
    vp_fac: List[float] = []
    rand_fac: List[float] = []
    corr: List[float] = []
    for q in queries:
        r = ub_factor(q, database, vantage, k, distance)
        vp_fac.append(r.vp_ub_factor)
        rand_fac.append(r.random_ub_factor)
        corr.append(r.vp_knn_correlation)
    return {
        "vp_ub_factor": float(np.mean(vp_fac)),
        "random_ub_factor": float(np.mean(rand_fac)),
        "vp_knn_correlation": float(np.mean(corr)),
    }
