"""Corpus statistics — the sampling-noise diagnostics of Sec. I/II.

The paper's motivation is an empirical property of modern trajectory data:
sampling intervals vary wildly within and across trajectories.  This module
measures exactly that for any corpus, so a user can check whether EDwP's
robustness matters for *their* data before adopting it:

* inter-trajectory variation — spread of per-trajectory mean sampling
  intervals;
* intra-trajectory variation — per-trajectory coefficient of variation of
  the sampling intervals;
* spatial statistics (lengths, speeds) used to parameterize baselines
  (e.g. the perturbation radius, the EDR threshold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.trajectory import Trajectory

__all__ = ["CorpusStats", "corpus_stats", "format_stats"]


@dataclass
class CorpusStats:
    """Summary statistics of a trajectory corpus."""

    num_trajectories: int
    total_points: int
    points_min: int
    points_median: float
    points_max: int
    length_mean: float
    duration_mean: float
    speed_mean: float
    # sampling-rate structure (the paper's motivating nuisance)
    interval_mean: float
    inter_traj_interval_cv: float   # spread of per-trajectory mean intervals
    intra_traj_interval_cv: float   # mean per-trajectory interval spread

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_trajectories": self.num_trajectories,
            "total_points": self.total_points,
            "points_min": self.points_min,
            "points_median": self.points_median,
            "points_max": self.points_max,
            "length_mean": self.length_mean,
            "duration_mean": self.duration_mean,
            "speed_mean": self.speed_mean,
            "interval_mean": self.interval_mean,
            "inter_traj_interval_cv": self.inter_traj_interval_cv,
            "intra_traj_interval_cv": self.intra_traj_interval_cv,
        }


def corpus_stats(trajectories: Sequence[Trajectory]) -> CorpusStats:
    """Compute :class:`CorpusStats` for a corpus.

    Trajectories with fewer than two points contribute to counts but not to
    interval statistics.  Raises on an empty corpus.
    """
    if not trajectories:
        raise ValueError("empty corpus")

    counts = np.array([len(t) for t in trajectories])
    lengths = np.array([t.length for t in trajectories])
    durations = np.array([t.duration for t in trajectories])

    mean_intervals: List[float] = []
    intra_cvs: List[float] = []
    for t in trajectories:
        if len(t) < 2:
            continue
        gaps = np.diff(t.times())
        gaps = gaps[gaps > 0]
        if gaps.size == 0:
            continue
        mean_intervals.append(float(gaps.mean()))
        if gaps.size >= 2 and gaps.mean() > 0:
            intra_cvs.append(float(gaps.std() / gaps.mean()))

    interval_mean = float(np.mean(mean_intervals)) if mean_intervals else 0.0
    inter_cv = (
        float(np.std(mean_intervals) / np.mean(mean_intervals))
        if mean_intervals and np.mean(mean_intervals) > 0 else 0.0
    )
    intra_cv = float(np.mean(intra_cvs)) if intra_cvs else 0.0
    total_duration = float(durations.sum())
    speed = float(lengths.sum() / total_duration) if total_duration > 0 else 0.0

    return CorpusStats(
        num_trajectories=len(trajectories),
        total_points=int(counts.sum()),
        points_min=int(counts.min()),
        points_median=float(np.median(counts)),
        points_max=int(counts.max()),
        length_mean=float(lengths.mean()),
        duration_mean=float(durations.mean()),
        speed_mean=speed,
        interval_mean=interval_mean,
        inter_traj_interval_cv=inter_cv,
        intra_traj_interval_cv=intra_cv,
    )


def format_stats(stats: CorpusStats) -> str:
    """Human-readable report of :class:`CorpusStats`."""
    lines = [
        f"trajectories          {stats.num_trajectories}",
        f"points                {stats.total_points} "
        f"(per trajectory: {stats.points_min}"
        f"/{stats.points_median:g}/{stats.points_max} min/med/max)",
        f"mean length           {stats.length_mean:.1f}",
        f"mean duration         {stats.duration_mean:.1f}",
        f"mean speed            {stats.speed_mean:.2f}",
        f"mean sample interval  {stats.interval_mean:.1f}",
        f"interval CV across trajectories  {stats.inter_traj_interval_cv:.2f}",
        f"interval CV within trajectories  {stats.intra_traj_interval_cv:.2f}",
    ]
    return "\n".join(lines)
