"""Trip segmentation — the paper's Beijing preprocessing (Sec. V-A).

"Since we would like each trajectory to represent a single trip, we
partition a trajectory into two if either the cab is stationary for more
than 15 minutes, or the time gap between two consecutive points is more
than 15 minutes."

:func:`split_trips` implements exactly that rule on raw location streams.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.trajectory import Trajectory

__all__ = ["split_trajectory", "split_trips", "DEFAULT_MAX_GAP",
           "DEFAULT_MAX_STATIONARY", "DEFAULT_STATIONARY_RADIUS"]

#: 15 minutes, in seconds (the paper's threshold for both rules).
DEFAULT_MAX_GAP = 15 * 60.0
DEFAULT_MAX_STATIONARY = 15 * 60.0
#: Movement below this spatial radius counts as "stationary".
DEFAULT_STATIONARY_RADIUS = 50.0


def split_trajectory(
    traj: Trajectory,
    max_gap: float = DEFAULT_MAX_GAP,
    max_stationary: float = DEFAULT_MAX_STATIONARY,
    stationary_radius: float = DEFAULT_STATIONARY_RADIUS,
    min_points: int = 2,
) -> List[Trajectory]:
    """Split one raw stream into single-trip trajectories.

    A cut is made between consecutive points when the time gap exceeds
    ``max_gap``, or at the end of any dwell — a maximal run of points within
    ``stationary_radius`` of its first point — longer than ``max_stationary``
    (the dwell itself is dropped: the cab was parked).  Pieces shorter than
    ``min_points`` are discarded.
    """
    n = len(traj)
    if n == 0:
        return []
    data = traj.data
    pieces: List[List[int]] = []
    current: List[int] = [0]

    dwell_start = 0  # index into `current` of the anchor of the current dwell

    def flush() -> None:
        nonlocal current, dwell_start
        if len(current) >= min_points:
            pieces.append(current)
        current = []
        dwell_start = 0

    for i in range(1, n):
        gap = data[i, 2] - data[i - 1, 2]
        if gap > max_gap:
            flush()
            current = [i]
            continue
        if not current:
            current = [i]
            continue

        anchor = data[current[dwell_start]]
        moved = np.hypot(data[i, 0] - anchor[0], data[i, 1] - anchor[1])
        if moved <= stationary_radius:
            dwell_time = data[i, 2] - anchor[2]
            if dwell_time > max_stationary:
                # the cab has been parked: close the trip at the dwell start
                current = current[: dwell_start + 1]
                flush()
                current = [i]
                continue
        else:
            dwell_start = len(current)
        current.append(i)

    flush()

    out: List[Trajectory] = []
    for piece in pieces:
        out.append(
            Trajectory(data[piece], traj_id=None, label=traj.label,
                       validate=False)
        )
    return out


def split_trips(
    streams: Sequence[Trajectory],
    max_gap: float = DEFAULT_MAX_GAP,
    max_stationary: float = DEFAULT_MAX_STATIONARY,
    stationary_radius: float = DEFAULT_STATIONARY_RADIUS,
    min_points: int = 2,
) -> List[Trajectory]:
    """Apply :func:`split_trajectory` to a fleet of streams, assigning
    fresh sequential ``traj_id`` values to the resulting trips."""
    trips: List[Trajectory] = []
    for stream in streams:
        trips.extend(
            split_trajectory(stream, max_gap, max_stationary,
                             stationary_radius, min_points)
        )
    for i, trip in enumerate(trips):
        trip.traj_id = i
    return trips
